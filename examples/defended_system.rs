//! The same three attack families — spray, templating, Algorithm 1 —
//! thrown at a CTA-protected kernel. Everything fails; the verifier shows
//! why.
//!
//! ```sh
//! cargo run --example defended_system
//! ```

use monotonic_cta::attack::{BruteForceCtaAttack, SprayAttack, TemplatingAttack};
use monotonic_cta::core::verify::{check_theorem_exhaustive, verify_system};
use monotonic_cta::core::SystemBuilder;
use monotonic_cta::dram::DisturbanceParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("The theorem, machine-checked on a 12-bit model:");
    let checked = check_theorem_exhaustive(12, 0xC00);
    println!("  {checked} (pointer, corruption) pairs verified: γ(p) < mark always\n");

    for seed in 0..4u64 {
        let build = |pf: f64, threshold: u64| {
            SystemBuilder::new(8 << 20)
                .ptp_bytes(512 * 1024)
                .seed(seed)
                .protected(true)
                .disturbance(DisturbanceParams {
                    pf,
                    hammer_threshold: threshold,
                    ..DisturbanceParams::default()
                })
                .build()
        };

        println!("module seed {seed}:");
        let mut kernel = build(0.05, 128 * 1024)?;
        let spray = SprayAttack::default().run(&mut kernel)?;
        println!("  spray attack:      {}", if spray.success() { "ESCALATED" } else { "defeated" });
        assert!(!spray.success());

        let mut kernel = build(0.004, 128 * 1024)?;
        let templating = TemplatingAttack::default().run(&mut kernel)?;
        println!(
            "  templating attack: {}",
            if templating.success() { "ESCALATED" } else { "defeated (cannot template ZONE_PTP)" }
        );
        assert!(!templating.success());

        let mut kernel = build(0.02, 128)?;
        let (brute, report) = BruteForceCtaAttack::default().run(&mut kernel)?;
        println!(
            "  Algorithm 1:       {} ({} flips induced in ZONE_PTP, {} PTEs checked)",
            if brute.success() { "ESCALATED" } else { "defeated" },
            brute.flips_induced,
            report.ptes_checked
        );
        assert!(!brute.success());

        let verify = verify_system(&kernel)?;
        println!(
            "  verifier:          {} self-references in {} entries\n",
            verify.self_references().count(),
            verify.entries_checked
        );
        assert_eq!(verify.self_references().count(), 0);
    }
    println!("All attacks defeated on every module. Monotonicity holds.");
    Ok(())
}
