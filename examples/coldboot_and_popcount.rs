//! The section 8 extensions: the coldboot guard and the hamming-weight
//! error-detection code, driven through their public APIs.
//!
//! ```sh
//! cargo run --example coldboot_and_popcount
//! ```

use monotonic_cta::dram::{DramConfig, DramModule, RowId};
use monotonic_cta::ext::{BootDecision, ColdbootGuard, PopcountCode, Verdict};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ----- coldboot guard ------------------------------------------------
    let mut module = DramModule::new(DramConfig::small_test());
    let probe = module.config().retention.max_ns * 2;
    let mut guard = ColdbootGuard::install(&mut module, 0..32, probe)?;
    println!("coldboot guard: {} long-retention canaries installed", guard.canaries().len());

    module.write(48 * 4096, b"disk-encryption-key!")?;
    guard.arm(&mut module)?;

    // An attacker power-cycles the machine in half a second.
    module.power_off(500_000_000);
    match guard.check(&mut module)? {
        BootDecision::Halt { charged_canaries } => println!(
            "quick power-cycle: {} canaries still charged → HALT (coldboot suspected)",
            charged_canaries
        ),
        BootDecision::Proceed => unreachable!("remanence must be detected"),
    }
    let still_there = module.peek(48 * 4096, 20)? == b"disk-encryption-key!";
    println!("  (and indeed the key is still in DRAM: {still_there})");

    // An honest cold start hours later.
    module.power_off(module.config().retention.long_max_ns + 1);
    assert_eq!(guard.check(&mut module)?, BootDecision::Proceed);
    let gone = module.peek(48 * 4096, 20)? != b"disk-encryption-key!";
    println!("honest cold start: canaries decayed → PROCEED (key decayed too: {gone})\n");

    // ----- popcount code -------------------------------------------------
    let mut module = DramModule::new(DramConfig::small_test());
    let data: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
    // small_test: rows 0-7 true-cells, rows 8-15 anti-cells.
    let code = PopcountCode::encode(&mut module, RowId(2), RowId(10), &data)?;
    println!("popcount code: data in true-cell row 2, weight in anti-cell row 10");
    assert_eq!(code.check(&mut module)?, Verdict::Clean);
    println!("  pre-hammer check: clean");

    module.hammer_double_sided(RowId(2))?;
    match code.check(&mut module)? {
        Verdict::ErrorDetected { observed_weight, stored_weight } => println!(
            "  post-hammer check: corruption detected (weight {observed_weight} < stored {stored_weight})"
        ),
        Verdict::Clean => println!("  post-hammer check: no flips on this module"),
    }
    println!("OK: one POPCNT instruction per check, log2(n) redundant bits.");
    Ok(())
}
