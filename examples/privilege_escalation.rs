//! The Figure 3 attack, end to end, on an *unprotected* kernel: spray page
//! tables, hammer, find a self-referencing PTE, build a write window, walk
//! physical memory, and read (then overwrite) the kernel secret.
//!
//! ```sh
//! cargo run --example privilege_escalation
//! ```

use monotonic_cta::attack::SprayAttack;
use monotonic_cta::core::verify::verify_system;
use monotonic_cta::core::SystemBuilder;
use monotonic_cta::dram::DisturbanceParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let attack = SprayAttack::default();
    for seed in 0..32u64 {
        let mut kernel = SystemBuilder::new(8 << 20)
            .ptp_bytes(512 * 1024)
            .seed(seed)
            .protected(false) // stock kernel: page tables mix with data
            .disturbance(DisturbanceParams { pf: 0.05, ..DisturbanceParams::default() })
            .build()?;
        println!("module seed {seed}: attacking…");
        let outcome = attack.run(&mut kernel)?;
        print!("{outcome}");
        if outcome.success() {
            let report = verify_system(&kernel)?;
            println!(
                "ground truth: {} self-referencing PTE(s) in the page tables",
                report.self_references().count()
            );
            let (pfn, _) = kernel.kernel_secret();
            let now = kernel.dram().peek(pfn.addr().0, 16)?;
            println!("kernel secret frame now reads: {:?}", String::from_utf8_lossy(&now));
            println!("\nPrivilege escalation demonstrated — this is why CTA exists.");
            return Ok(());
        }
    }
    println!("no module in this sweep was exploitable; rerun with more seeds");
    Ok(())
}
