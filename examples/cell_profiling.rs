//! Section 2.2 in action: identify true/anti-cell regions from software,
//! then boot a CTA kernel from the *profiled* map and confirm it matches a
//! ground-truth boot.
//!
//! ```sh
//! cargo run --example cell_profiling
//! ```

use monotonic_cta::core::SystemBuilder;
use monotonic_cta::dram::{
    profile_cell_types, CellLayout, CellType, DramConfig, DramModule, ProfilerConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Profile a module with an interesting layout.
    let layout = CellLayout::Alternating { period_rows: 16, first: CellType::Anti };
    let mut module = DramModule::new(DramConfig::small_test().with_layout(layout));
    println!("profiling: write 1s → disable refresh → wait past retention → read back");
    let profile = profile_cell_types(&mut module, &ProfilerConfig::default())?;
    for region in profile.map.regions() {
        println!(
            "  rows {:>3}..{:<3} {} ({} KiB)",
            region.start_row.0,
            region.end_row.0,
            region.cell_type,
            region.rows() * module.geometry().row_bytes() / 1024
        );
    }
    println!(
        "long-retention stragglers: at most {} dissenting bits per row",
        profile.max_dissent()
    );
    assert_eq!(profile.map, module.ground_truth_cell_map());
    println!("profile matches ground truth exactly\n");

    // 2. Boot CTA from the profiler instead of the oracle.
    let oracle_boot = SystemBuilder::small_test().protected(true).build()?;
    let profiled_boot = SystemBuilder::small_test().protected(true).profile_cells(true).build()?;
    println!(
        "low water mark — oracle boot: {:#x}, profiled boot: {:#x}",
        oracle_boot.ptp_layout().expect("cta").low_water_mark(),
        profiled_boot.ptp_layout().expect("cta").low_water_mark(),
    );
    assert_eq!(
        oracle_boot.ptp_layout().expect("cta").low_water_mark(),
        profiled_boot.ptp_layout().expect("cta").low_water_mark()
    );
    println!("OK: the one-time boot profile is all CTA needs — no hardware changes.");
    Ok(())
}
