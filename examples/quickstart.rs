//! Quickstart: boot a CTA-protected machine, run a process, hammer its
//! memory, and verify the No Self-Reference property survived.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use monotonic_cta::core::verify::verify_system;
use monotonic_cta::core::SystemBuilder;
use monotonic_cta::vm::{Access, VirtAddr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Boot a 16 MiB machine with CTA: page tables will live in true-cell
    //    rows above the low water mark.
    let mut kernel =
        SystemBuilder::new(16 << 20).ptp_bytes(1 << 20).seed(2024).protected(true).build()?;
    let layout = kernel.ptp_layout().expect("CTA enabled").clone();
    println!("booted: {} MiB DRAM, low water mark at {:#x}", 16, layout.low_water_mark());
    println!(
        "ZONE_PTP: {} true-cell sub-zones, {} KiB capacity loss",
        layout.subzones().len(),
        layout.capacity_loss_bytes() >> 10
    );

    // 2. Run a process: map memory, write, read back.
    let pid = kernel.create_process(false)?;
    let va = VirtAddr(0x4000_0000);
    kernel.mmap_anonymous(pid, va, 16 * 4096, true)?;
    kernel.write_virt(pid, va, b"hello, monotonic world", Access::user_write())?;
    let mut buf = [0u8; 22];
    kernel.read_virt(pid, va, &mut buf, Access::user_read())?;
    println!(
        "round trip through 4-level page tables in simulated DRAM: {}",
        String::from_utf8_lossy(&buf)
    );

    // 3. Where did the page tables land?
    for (pfn, level) in kernel.process(pid)?.pt_pages() {
        let row = kernel.dram().geometry().row_of_addr(pfn.addr().0)?;
        println!(
            "  {level} page at {:#x} ({}, {})",
            pfn.addr().0,
            row,
            kernel.dram().cell_type_of_row(row)?
        );
        assert!(pfn.addr().0 >= layout.low_water_mark());
    }

    // 4. Hammer every row the process's data lives in, hard.
    for page in 0..16u64 {
        let row = kernel.row_of_virt(pid, va.offset(page * 4096))?;
        kernel.dram_mut().hammer_double_sided(row)?;
        let interval = kernel.dram().config().refresh_interval_ns;
        kernel.dram_mut().advance(interval);
    }
    println!("hammered 16 rows; {} bits flipped", kernel.dram().stats().total_flips());

    // 5. Verify the defense: no PTE self-reference anywhere.
    let report = verify_system(&kernel)?;
    println!(
        "verifier: {} entries checked, {} page tables checked, {} self-references",
        report.entries_checked,
        report.pt_pages_checked,
        report.self_references().count()
    );
    assert!(report.is_clean());
    println!("OK: monotonic pointers kept every page table out of reach.");
    Ok(())
}
