//! # monotonic-cta
//!
//! A full-system reproduction of *Protecting Page Tables from RowHammer
//! Attacks using Monotonic Pointers in DRAM True-Cells* (Wu, Sherwood,
//! Chong, Li — ASPLOS 2019), built as a pure-Rust simulation stack.
//!
//! This facade crate re-exports the workspace:
//!
//! - [`dram`] — bit-accurate DRAM module simulator (true/anti-cells,
//!   RowHammer disturbance, refresh, retention, profiling);
//! - [`mem`] — zoned buddy allocator with GFP flags and the Cell-Type-Aware
//!   `ZONE_PTP` construction;
//! - [`vm`] — x86-64 page tables stored in simulated DRAM, software MMU,
//!   TLB, processes, and a miniature kernel;
//! - [`core`] — the paper's contribution: CTA policy, low-water-mark
//!   calculus, monotonic pointers, and the No Self-Reference verifier;
//! - [`attack`] — RowHammer attacks: PTE spray, memory templating, and the
//!   paper's Algorithm 1;
//! - [`analysis`] — the section 5 analytic security model (Tables 2–3) and
//!   Monte Carlo validation;
//! - [`workloads`] — SPEC/Phoronix-shaped workloads for the Table 4
//!   overhead study;
//! - [`ext`] — section 8 extensions (permission vectors, coldboot guard,
//!   hamming-weight error detection).
//!
//! See `examples/quickstart.rs` for a guided tour and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment inventory.

pub use cta_analysis as analysis;
pub use cta_attack as attack;
pub use cta_core as core;
pub use cta_dram as dram;
pub use cta_ext as ext;
pub use cta_mem as mem;
pub use cta_vm as vm;
pub use cta_workloads as workloads;
