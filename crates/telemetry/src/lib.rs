//! Unified observability layer for the monotonic-CTA simulator.
//!
//! Every subsystem in the workspace counts things — DRAM activations and
//! disturbance flips, TLB hits and flushes, kernel page-table walks, buddy
//! and CTA allocator traffic, attack campaign outcomes. This crate gives
//! those counters one home:
//!
//! * [`Counters`] — a registry of named counter groups that any stat struct
//!   can snapshot itself into via the [`StatSource`] trait. Snapshots can be
//!   [`Counters::merge`]d (e.g. across parallel campaign shards) and
//!   [`Counters::diff`]ed (e.g. before/after a workload phase), and emit
//!   deterministic JSON via [`Counters::to_json`] / [`Counters::write_to`].
//! * [`RingLog`] — a bounded ring-buffer event log with an exact drop
//!   counter, replacing unbounded `Vec` event logs. The invariant
//!   `len() + dropped() == total_recorded()` means aggregate totals stay
//!   exact no matter how small the retained window is.
//! * [`json`] — a strict JSON parser (duplicate keys and non-finite
//!   numbers rejected) so CI can prove every emitted artifact is real
//!   JSON, not just JSON-shaped text.
//! * [`jsonl`] — JSON Lines streaming on top of the strict layer: one
//!   compact document per line, flushed per line, so a long-running
//!   service can emit per-campaign telemetry incrementally instead of
//!   one snapshot at shutdown.
//! * [`schema`] — shape validation on top of the parser: the universal
//!   snapshot envelope, per-binary required groups/keys with declared
//!   [`ValueKind`]s, and the bench-baseline record shape, so a snapshot
//!   that silently lost a group or turned a counter into a float fails CI
//!   instead of misleading every downstream consumer.
//!
//! The crate is dependency-free (JSON is emitted by hand with `BTreeMap`
//! ordering) so every other crate in the workspace can depend on it without
//! widening the build graph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
pub mod json;
pub mod jsonl;
mod ring;
pub mod schema;

pub use counters::{Counters, Group, StatSource, Value};
pub use json::{JsonError, JsonValue};
pub use jsonl::{JsonlError, JsonlWriter};
pub use ring::{RingLog, DEFAULT_LOG_CAPACITY};
pub use schema::{SchemaError, SnapshotSchema, ValueKind};
