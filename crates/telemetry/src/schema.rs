//! Shape validation for the workspace's machine-readable artifacts.
//!
//! The strict [`crate::json`] parser proves an emitted file is
//! standards-valid JSON; this module proves it is the *right* JSON. A
//! telemetry snapshot that parses but silently lost its `dram` group, or
//! whose counters turned into floats, would still sail through a
//! syntax-only gate — and every downstream consumer (drift watchers,
//! replay verifiers, dashboards) would misread it. Schema validation turns
//! those shape regressions into CI failures:
//!
//! * [`validate_snapshot`] checks the universal envelope every
//!   [`crate::Counters::to_json`] snapshot has — exactly the top-level keys
//!   `label` / `flags` / `groups`, string flags, flat groups of
//!   number/bool/text values — and then applies the per-binary
//!   [`declarations`]: required groups and keys with declared
//!   [`ValueKind`]s, matched by snapshot-label prefix.
//! * [`validate_baseline`] checks the `BENCH_baseline.json` record: one
//!   object per label, each with exactly `quick` (bool) and `metrics`
//!   (flat object of finite numbers).
//!
//! Kind checking is necessarily approximate for numbers — JSON has one
//! number type, so a `UInt` declaration is enforced as "non-negative,
//! integral, and exactly representable (≤ 2⁵³)" rather than by token
//! shape. That still catches the real failure modes: a counter emitted as
//! `1.5`, a rate emitted as a string, a boolean flipped to `0`/`1`.

use std::fmt;

use crate::json::JsonValue;

/// The integer range within which every `f64` is exact: `±2^53`. JSON
/// numbers round-trip through `f64`, so declared `UInt` values outside
/// this range could not be validated (or replayed) faithfully.
pub const MAX_EXACT_INT: f64 = 9_007_199_254_740_992.0; // 2^53

/// Declared kind of a telemetry value, mirroring [`crate::Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueKind {
    /// A monotonic counter: non-negative integral number (≤ 2⁵³).
    UInt,
    /// A derived metric: any finite number.
    Float,
    /// A condition flag: `true` / `false`.
    Bool,
    /// Free-form metadata: a string.
    Text,
}

impl ValueKind {
    /// True when `v` is admissible for this kind.
    #[must_use]
    pub fn admits(self, v: &JsonValue) -> bool {
        match self {
            ValueKind::UInt => match v {
                JsonValue::Number(n) => *n >= 0.0 && n.fract() == 0.0 && *n <= MAX_EXACT_INT,
                _ => false,
            },
            ValueKind::Float => matches!(v, JsonValue::Number(_)),
            ValueKind::Bool => matches!(v, JsonValue::Bool(_)),
            ValueKind::Text => matches!(v, JsonValue::String(_)),
        }
    }

    /// Human-readable kind name for error messages.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ValueKind::UInt => "uint (non-negative integral number)",
            ValueKind::Float => "float (finite number)",
            ValueKind::Bool => "bool",
            ValueKind::Text => "text (string)",
        }
    }
}

/// One shape violation, addressed by a `.`-separated path into the
/// document (e.g. `groups.dram.flips_one_to_zero`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// Where in the document the violation sits.
    pub path: String,
    /// What is wrong there.
    pub message: String,
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

/// A required key within a required group.
#[derive(Debug, Clone, Copy)]
pub struct KeyReq {
    /// Key name inside the group.
    pub key: &'static str,
    /// Declared kind the value must satisfy.
    pub kind: ValueKind,
}

/// A group a snapshot must contain, with its required keys.
#[derive(Debug, Clone, Copy)]
pub struct GroupReq {
    /// Group name under `groups`.
    pub group: &'static str,
    /// Keys the group must contain (it may contain more).
    pub keys: &'static [KeyReq],
}

/// Required shape of one binary's telemetry snapshot, matched by label
/// prefix (labels are `<binary>` or `<binary>-<variant>`).
#[derive(Debug, Clone, Copy)]
pub struct SnapshotSchema {
    /// Snapshot-label prefix this declaration applies to.
    pub label_prefix: &'static str,
    /// Groups (and keys within them) the snapshot must contain.
    pub required: &'static [GroupReq],
}

/// Per-binary snapshot declarations. A snapshot whose label matches no
/// declaration still gets the universal envelope checks; one that matches
/// (longest prefix wins) must additionally carry the declared groups/keys
/// with the declared kinds.
#[must_use]
pub fn declarations() -> &'static [SnapshotSchema] {
    const BENCH_BASELINE: &[GroupReq] = &[
        GroupReq {
            group: "bench",
            keys: &[
                KeyReq { key: "quick", kind: ValueKind::Bool },
                KeyReq { key: "total_wall_s", kind: ValueKind::Float },
                KeyReq { key: "pte_walk_cold_stock_ns", kind: ValueKind::Float },
                KeyReq { key: "dram_write_u64_ops_per_sec", kind: ValueKind::Float },
            ],
        },
        GroupReq { group: "tlb", keys: &[KeyReq { key: "hit_rate", kind: ValueKind::Float }] },
        GroupReq { group: "psc", keys: &[KeyReq { key: "hit_rate", kind: ValueKind::Float }] },
    ];
    const EXP_TABLE4: &[GroupReq] = &[
        GroupReq { group: "tlb", keys: &[KeyReq { key: "hit_rate", kind: ValueKind::Float }] },
        GroupReq { group: "psc", keys: &[KeyReq { key: "hit_rate", kind: ValueKind::Float }] },
    ];
    // The embedded telemetry of a flip-log recording (cta-attack): replay
    // verifies these counters against the flip-event transcript, so their
    // presence and integer kind are load-bearing.
    const RECORDING: &[GroupReq] = &[
        GroupReq {
            group: "campaign",
            keys: &[
                KeyReq { key: "trials", kind: ValueKind::UInt },
                KeyReq { key: "total_flips", kind: ValueKind::UInt },
                KeyReq { key: "successes", kind: ValueKind::UInt },
                KeyReq { key: "total_rows_hammered", kind: ValueKind::UInt },
                KeyReq { key: "total_sim_time_ns", kind: ValueKind::UInt },
            ],
        },
        GroupReq {
            group: "dram",
            keys: &[
                KeyReq { key: "flips_one_to_zero", kind: ValueKind::UInt },
                KeyReq { key: "flips_zero_to_one", kind: ValueKind::UInt },
                KeyReq { key: "flip_log_retained", kind: ValueKind::UInt },
                KeyReq { key: "flip_log_dropped", kind: ValueKind::UInt },
                KeyReq { key: "activations", kind: ValueKind::UInt },
            ],
        },
    ];
    // The attacks × defenses × cell-layouts cross-product (exp-matrix):
    // the aggregate defense counters and overhead gauges are what the
    // Table-4-style comparison reads, so their presence and kinds gate.
    const EXP_MATRIX: &[GroupReq] = &[
        GroupReq {
            group: "matrix",
            keys: &[
                KeyReq { key: "attacks", kind: ValueKind::UInt },
                KeyReq { key: "defenses", kind: ValueKind::UInt },
                KeyReq { key: "layouts", kind: ValueKind::UInt },
                KeyReq { key: "cells", kind: ValueKind::UInt },
                KeyReq { key: "seeds_per_cell", kind: ValueKind::UInt },
                KeyReq { key: "quick", kind: ValueKind::Bool },
            ],
        },
        GroupReq {
            group: "defense",
            keys: &[
                KeyReq { key: "softtrr_refreshes", kind: ValueKind::UInt },
                KeyReq { key: "blockhammer_blacklisted", kind: ValueKind::UInt },
                KeyReq { key: "anvil_alarms", kind: ValueKind::UInt },
                KeyReq { key: "activations_denied", kind: ValueKind::UInt },
            ],
        },
        GroupReq {
            group: "overhead",
            keys: &[
                KeyReq { key: "catt_delta_percent", kind: ValueKind::Float },
                KeyReq { key: "anvil_delta_percent", kind: ValueKind::Float },
                KeyReq { key: "softtrr_delta_percent", kind: ValueKind::Float },
                KeyReq { key: "blockhammer_delta_percent", kind: ValueKind::Float },
            ],
        },
    ];
    // A campaign merged by the persistent executor carries the same
    // load-bearing counters as a recorded campaign: the executor's merge
    // is pinned byte-identical to the serial recording path, so the shape
    // requirements are shared.
    const EXECUTOR: &[GroupReq] = RECORDING;
    &[
        SnapshotSchema { label_prefix: "bench-baseline", required: BENCH_BASELINE },
        SnapshotSchema { label_prefix: "exp-table4", required: EXP_TABLE4 },
        SnapshotSchema { label_prefix: "exp-matrix", required: EXP_MATRIX },
        SnapshotSchema { label_prefix: "recording", required: RECORDING },
        SnapshotSchema { label_prefix: "executor", required: EXECUTOR },
    ]
}

/// Top-level fields of one executor JSONL campaign event, in emission
/// order: scheduling metadata plus the embedded merged-telemetry snapshot.
const EXECUTOR_EVENT_FIELDS: &[KeyReq] = &[
    KeyReq { key: "event", kind: ValueKind::Text },
    KeyReq { key: "seq", kind: ValueKind::UInt },
    KeyReq { key: "tenant", kind: ValueKind::Text },
    KeyReq { key: "campaign", kind: ValueKind::UInt },
    KeyReq { key: "trials", kind: ValueKind::UInt },
    KeyReq { key: "dropped_trials", kind: ValueKind::UInt },
    KeyReq { key: "successes", kind: ValueKind::UInt },
    KeyReq { key: "total_flips", kind: ValueKind::UInt },
    KeyReq { key: "wall_ns", kind: ValueKind::UInt },
    KeyReq { key: "p99_trial_ns", kind: ValueKind::UInt },
];

/// Top-level fields of one executor JSONL `cancelled` event, in emission
/// order. Cancellation drops queued trials before any kernel runs, so
/// there is no merged telemetry to embed — just which campaign lost how
/// many trials.
const EXECUTOR_CANCELLED_FIELDS: &[KeyReq] = &[
    KeyReq { key: "event", kind: ValueKind::Text },
    KeyReq { key: "seq", kind: ValueKind::UInt },
    KeyReq { key: "tenant", kind: ValueKind::Text },
    KeyReq { key: "campaign", kind: ValueKind::UInt },
    KeyReq { key: "dropped_trials", kind: ValueKind::UInt },
];

/// Validates one line of the campaign executor's JSONL stream, dispatching
/// on the `event` member (see EXPERIMENTS.md):
///
/// * `"campaign"` — exactly the declared scheduling fields plus a
///   `telemetry` member that must itself pass [`validate_snapshot`], so a
///   streamed campaign carries the same schema-checked counters as a
///   recorded one;
/// * `"cancelled"` — exactly the drop-accounting fields, with no embedded
///   telemetry (the dropped trials never ran).
///
/// Returns every violation found (empty ⇒ valid).
#[must_use]
pub fn validate_executor_event(doc: &JsonValue) -> Vec<SchemaError> {
    let mut errors = Vec::new();
    let Some(members) = doc.as_object() else {
        return vec![err("$", "executor event must be a JSON object")];
    };
    let (fields, telemetry) = match doc.get("event") {
        Some(JsonValue::String(event)) if event == "campaign" => (EXECUTOR_EVENT_FIELDS, true),
        Some(JsonValue::String(event)) if event == "cancelled" => {
            (EXECUTOR_CANCELLED_FIELDS, false)
        }
        _ => {
            errors.push(err("event", "must be \"campaign\" or \"cancelled\""));
            (EXECUTOR_EVENT_FIELDS, true)
        }
    };
    for (key, _) in members {
        let known = (telemetry && key == "telemetry") || fields.iter().any(|f| f.key == key);
        if !known {
            errors.push(err(key, "unknown executor-event key"));
        }
    }
    for field in fields {
        match doc.get(field.key) {
            None => errors.push(err(field.key, "missing")),
            Some(v) if !field.kind.admits(v) => {
                errors.push(err(field.key, format!("expected {}", field.kind.name())));
            }
            Some(_) => {}
        }
    }
    if telemetry {
        match doc.get("telemetry") {
            None => errors.push(err("telemetry", "missing")),
            Some(snapshot) => {
                for e in validate_snapshot(snapshot) {
                    errors.push(err(format!("telemetry.{}", e.path), e.message));
                }
            }
        }
    }
    errors
}

/// The declaration applying to `label`, if any (longest matching prefix).
#[must_use]
pub fn schema_for(label: &str) -> Option<&'static SnapshotSchema> {
    declarations()
        .iter()
        .filter(|s| label.starts_with(s.label_prefix))
        .max_by_key(|s| s.label_prefix.len())
}

fn err(path: impl Into<String>, message: impl Into<String>) -> SchemaError {
    SchemaError { path: path.into(), message: message.into() }
}

/// Validates a telemetry snapshot: the universal
/// [`crate::Counters::to_json`] envelope plus, when the label matches a
/// per-binary declaration, that binary's required groups/keys/kinds.
/// Returns every violation found (empty ⇒ valid).
#[must_use]
pub fn validate_snapshot(doc: &JsonValue) -> Vec<SchemaError> {
    let mut errors = Vec::new();
    let Some(members) = doc.as_object() else {
        return vec![err("$", "snapshot must be a JSON object")];
    };

    // Exactly the envelope keys — an unknown top-level key means some
    // emitter grew a side channel no consumer knows about.
    for (key, _) in members {
        if !matches!(key.as_str(), "label" | "flags" | "groups") {
            errors.push(err(key, "unknown top-level key (expected label, flags, groups)"));
        }
    }

    let label = match doc.get("label") {
        None => {
            errors.push(err("label", "missing"));
            None
        }
        Some(JsonValue::String(s)) if !s.is_empty() => Some(s.clone()),
        Some(JsonValue::String(_)) => {
            errors.push(err("label", "must be non-empty"));
            None
        }
        Some(_) => {
            errors.push(err("label", "must be a string"));
            None
        }
    };

    match doc.get("flags") {
        None => errors.push(err("flags", "missing")),
        Some(JsonValue::Array(items)) => {
            for (i, item) in items.iter().enumerate() {
                if !matches!(item, JsonValue::String(_)) {
                    errors.push(err(format!("flags[{i}]"), "flags must be strings"));
                }
            }
        }
        Some(_) => errors.push(err("flags", "must be an array")),
    }

    match doc.get("groups") {
        None => errors.push(err("groups", "missing")),
        Some(JsonValue::Object(groups)) => {
            for (name, group) in groups {
                let Some(values) = group.as_object() else {
                    errors.push(err(format!("groups.{name}"), "group must be an object"));
                    continue;
                };
                for (key, value) in values {
                    let flat = matches!(
                        value,
                        JsonValue::Number(_) | JsonValue::Bool(_) | JsonValue::String(_)
                    );
                    if !flat {
                        errors.push(err(
                            format!("groups.{name}.{key}"),
                            "group values must be numbers, booleans, or strings",
                        ));
                    }
                }
            }
        }
        Some(_) => errors.push(err("groups", "must be an object")),
    }

    if let Some(label) = label {
        if let Some(schema) = schema_for(&label) {
            errors.extend(validate_required(doc, schema));
        }
    }
    errors
}

/// Checks `doc` against one declaration's required groups/keys/kinds
/// (assumes the envelope checks ran separately).
#[must_use]
pub fn validate_required(doc: &JsonValue, schema: &SnapshotSchema) -> Vec<SchemaError> {
    let mut errors = Vec::new();
    let groups = doc.get("groups");
    for req in schema.required {
        let Some(group) = groups.and_then(|g| g.get(req.group)) else {
            errors.push(err(
                format!("groups.{}", req.group),
                format!("required group missing (schema `{}`)", schema.label_prefix),
            ));
            continue;
        };
        for key_req in req.keys {
            let path = format!("groups.{}.{}", req.group, key_req.key);
            match group.get(key_req.key) {
                None => errors.push(err(path, "required key missing")),
                Some(v) if !key_req.kind.admits(v) => {
                    errors.push(err(path, format!("expected {}", key_req.kind.name())));
                }
                Some(_) => {}
            }
        }
    }
    errors
}

/// Validates the `BENCH_baseline.json` record: a top-level object of
/// labeled sections, each with exactly `quick` (bool) and `metrics` (a
/// flat object of finite numbers). Returns every violation found.
#[must_use]
pub fn validate_baseline(doc: &JsonValue) -> Vec<SchemaError> {
    let mut errors = Vec::new();
    let Some(sections) = doc.as_object() else {
        return vec![err("$", "baseline must be a JSON object")];
    };
    for (label, section) in sections {
        let Some(members) = section.as_object() else {
            errors.push(err(label, "section must be an object"));
            continue;
        };
        for (key, _) in members {
            if !matches!(key.as_str(), "quick" | "metrics") {
                errors.push(err(
                    format!("{label}.{key}"),
                    "unknown section key (expected quick, metrics)",
                ));
            }
        }
        match section.get("quick") {
            Some(JsonValue::Bool(_)) => {}
            Some(_) => errors.push(err(format!("{label}.quick"), "must be a boolean")),
            None => errors.push(err(format!("{label}.quick"), "missing")),
        }
        match section.get("metrics") {
            Some(JsonValue::Object(metrics)) => {
                for (metric, value) in metrics {
                    if !matches!(value, JsonValue::Number(_)) {
                        errors.push(err(
                            format!("{label}.metrics.{metric}"),
                            "metrics must be numbers",
                        ));
                    }
                }
                let required: &[&str] = match label.as_str() {
                    "service" => SERVICE_BASELINE_METRICS,
                    "rollback" => ROLLBACK_BASELINE_METRICS,
                    _ => &[],
                };
                for required in required {
                    if !metrics.iter().any(|(metric, _)| metric == required) {
                        errors.push(err(
                            format!("{label}.metrics.{required}"),
                            format!("required {label} metric missing"),
                        ));
                    }
                }
            }
            Some(_) => errors.push(err(format!("{label}.metrics"), "must be an object")),
            None => errors.push(err(format!("{label}.metrics"), "missing")),
        }
    }
    errors
}

/// Metrics the `service` baseline section must record: the saturating
/// multi-tenant queue's sustained throughput, its tail latency, and the
/// amortization win over booting per campaign (the label's whole point).
pub const SERVICE_BASELINE_METRICS: &[&str] =
    &["service_trials_per_sec", "service_p99_trial_latency_ms", "service_speedup_vs_reboot"];

/// Metrics the `rollback` baseline section must record: journaled
/// in-place trial throughput against the fork path it replaces, the tail
/// latencies of both, and the speedup ratio (the label's whole point).
pub const ROLLBACK_BASELINE_METRICS: &[&str] = &[
    "rollback_trials_per_sec",
    "fork_trials_per_sec",
    "rollback_speedup_vs_fork",
    "rollback_p50_trial_latency_ms",
    "rollback_p99_trial_latency_ms",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::Counters;

    #[test]
    fn live_counters_snapshots_validate() {
        let mut c = Counters::new("exp-anything");
        c.set_u64("dram", "reads", 7);
        c.set_f64("tlb", "hit_rate", 0.5);
        c.set_bool("bench", "quick", true);
        c.set_text("bench", "note", "hi");
        c.flag("checked");
        let doc = parse(&c.to_json()).unwrap();
        assert_eq!(validate_snapshot(&doc), vec![]);
    }

    #[test]
    fn unknown_top_level_key_is_rejected() {
        let doc = parse(r#"{"label": "x", "flags": [], "groups": {}, "extra": 1}"#).unwrap();
        let errors = validate_snapshot(&doc);
        assert!(errors.iter().any(|e| e.path == "extra"), "{errors:?}");
    }

    #[test]
    fn missing_envelope_pieces_are_each_reported() {
        let errors = validate_snapshot(&parse("{}").unwrap());
        for path in ["label", "flags", "groups"] {
            assert!(errors.iter().any(|e| e.path == path), "missing {path}: {errors:?}");
        }
    }

    #[test]
    fn nested_group_values_are_rejected() {
        let doc = parse(r#"{"label": "x", "flags": [], "groups": {"g": {"k": [1]}}}"#).unwrap();
        let errors = validate_snapshot(&doc);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].path, "groups.g.k");
    }

    #[test]
    fn declared_snapshot_must_carry_required_groups() {
        // A bench-baseline label without its bench group fails the
        // per-binary declaration even though the envelope is fine.
        let doc = parse(r#"{"label": "bench-baseline-check", "flags": [], "groups": {}}"#).unwrap();
        let errors = validate_snapshot(&doc);
        assert!(errors.iter().any(|e| e.path == "groups.bench"), "{errors:?}");
    }

    #[test]
    fn uint_kind_rejects_fractional_and_negative_numbers() {
        assert!(ValueKind::UInt.admits(&JsonValue::Number(0.0)));
        assert!(ValueKind::UInt.admits(&JsonValue::Number(936.0)));
        assert!(!ValueKind::UInt.admits(&JsonValue::Number(1.5)));
        assert!(!ValueKind::UInt.admits(&JsonValue::Number(-1.0)));
        assert!(!ValueKind::UInt.admits(&JsonValue::Number(MAX_EXACT_INT * 2.0)));
        assert!(!ValueKind::UInt.admits(&JsonValue::Bool(true)));
        assert!(ValueKind::Float.admits(&JsonValue::Number(-0.5)));
        assert!(!ValueKind::Float.admits(&JsonValue::String("0.5".into())));
    }

    #[test]
    fn recording_declaration_enforces_integer_counters() {
        let doc = parse(
            r#"{"label": "recording", "flags": [], "groups": {
                "campaign": {"trials": 2, "total_flips": 1.5, "successes": 0,
                             "total_rows_hammered": 4, "total_sim_time_ns": 9},
                "dram": {"flips_one_to_zero": 1, "flips_zero_to_one": 0,
                         "flip_log_retained": 1, "flip_log_dropped": 0,
                         "activations": 3}}}"#,
        )
        .unwrap();
        let errors = validate_snapshot(&doc);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert_eq!(errors[0].path, "groups.campaign.total_flips");
    }

    #[test]
    fn schema_for_picks_longest_prefix() {
        assert_eq!(schema_for("bench-baseline-check").unwrap().label_prefix, "bench-baseline");
        assert_eq!(schema_for("recording").unwrap().label_prefix, "recording");
        assert!(schema_for("exp-fig1").is_none());
    }

    #[test]
    fn matrix_declaration_requires_defense_counters_and_overhead_gauges() {
        assert_eq!(schema_for("exp-matrix").unwrap().label_prefix, "exp-matrix");
        // A matrix snapshot that lost its defense counters or overhead
        // gauges must fail even with a clean envelope.
        let doc = parse(
            r#"{"label": "exp-matrix", "flags": [], "groups": {
                "matrix": {"attacks": 4, "defenses": 5, "layouts": 3,
                           "cells": 60, "seeds_per_cell": 4, "quick": false},
                "overhead": {"catt_delta_percent": 0.5, "anvil_delta_percent": 1.5,
                             "softtrr_delta_percent": 0.1,
                             "blockhammer_delta_percent": -0.2}}}"#,
        )
        .unwrap();
        let errors = validate_snapshot(&doc);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert_eq!(errors[0].path, "groups.defense");
    }

    #[test]
    fn executor_event_envelope_validates() {
        let good = parse(
            r#"{"event": "campaign", "seq": 0, "tenant": "t0", "campaign": 3,
                "trials": 2, "dropped_trials": 0, "successes": 1, "total_flips": 9,
                "wall_ns": 120, "p99_trial_ns": 55,
                "telemetry": {"label": "executor", "flags": [], "groups": {
                    "campaign": {"trials": 2, "total_flips": 9, "successes": 1,
                                 "total_rows_hammered": 4, "total_sim_time_ns": 9},
                    "dram": {"flips_one_to_zero": 5, "flips_zero_to_one": 4,
                             "flip_log_retained": 9, "flip_log_dropped": 0,
                             "activations": 30}}}}"#,
        )
        .unwrap();
        assert_eq!(validate_executor_event(&good), vec![]);
    }

    #[test]
    fn executor_event_rejects_drift() {
        // Wrong event name, missing seq, stray key, and an embedded
        // snapshot that lost its campaign group: all reported.
        let bad = parse(
            r#"{"event": "trial", "tenant": "t0", "campaign": 3, "trials": 2,
                "dropped_trials": 0, "successes": 1, "total_flips": 9,
                "wall_ns": 120, "p99_trial_ns": 55, "stray": 1,
                "telemetry": {"label": "executor", "flags": [], "groups": {}}}"#,
        )
        .unwrap();
        let errors = validate_executor_event(&bad);
        let paths: Vec<&str> = errors.iter().map(|e| e.path.as_str()).collect();
        assert!(paths.contains(&"event"), "{errors:?}");
        assert!(paths.contains(&"seq"), "{errors:?}");
        assert!(paths.contains(&"stray"), "{errors:?}");
        assert!(paths.contains(&"telemetry.groups.campaign"), "{errors:?}");
    }

    #[test]
    fn cancelled_event_validates_without_telemetry() {
        let good = parse(
            r#"{"event": "cancelled", "seq": 4, "tenant": "t0", "campaign": 3,
                "dropped_trials": 7}"#,
        )
        .unwrap();
        assert_eq!(validate_executor_event(&good), vec![]);

        // A cancelled event must not smuggle campaign-only members: the
        // dropped trials never ran, so there is no telemetry to embed.
        let bad = parse(
            r#"{"event": "cancelled", "seq": 4, "tenant": "t0", "campaign": 3,
                "dropped_trials": 7, "trials": 9,
                "telemetry": {"label": "executor", "flags": [], "groups": {}}}"#,
        )
        .unwrap();
        let errors = validate_executor_event(&bad);
        let paths: Vec<&str> = errors.iter().map(|e| e.path.as_str()).collect();
        assert!(paths.contains(&"trials"), "{errors:?}");
        assert!(paths.contains(&"telemetry"), "{errors:?}");
    }

    #[test]
    fn executor_snapshot_label_shares_recording_shape() {
        let schema = schema_for("executor").unwrap();
        assert_eq!(schema.label_prefix, "executor");
        let doc = parse(r#"{"label": "executor", "flags": [], "groups": {}}"#).unwrap();
        let errors = validate_snapshot(&doc);
        assert!(errors.iter().any(|e| e.path == "groups.campaign"), "{errors:?}");
        assert!(errors.iter().any(|e| e.path == "groups.dram"), "{errors:?}");
    }

    #[test]
    fn service_baseline_section_requires_its_metrics() {
        let missing =
            parse(r#"{"service": {"quick": false, "metrics": {"service_trials_per_sec": 50.0}}}"#)
                .unwrap();
        let errors = validate_baseline(&missing);
        let paths: Vec<&str> = errors.iter().map(|e| e.path.as_str()).collect();
        assert!(paths.contains(&"service.metrics.service_p99_trial_latency_ms"), "{errors:?}");
        assert!(paths.contains(&"service.metrics.service_speedup_vs_reboot"), "{errors:?}");

        let complete = parse(
            r#"{"service": {"quick": false, "metrics": {
                "service_trials_per_sec": 50.0,
                "service_p99_trial_latency_ms": 12.5,
                "service_speedup_vs_reboot": 4.2}}}"#,
        )
        .unwrap();
        assert_eq!(validate_baseline(&complete), vec![]);
    }

    #[test]
    fn rollback_baseline_section_requires_its_metrics() {
        let missing = parse(
            r#"{"rollback": {"quick": false, "metrics": {"rollback_trials_per_sec": 90.0}}}"#,
        )
        .unwrap();
        let errors = validate_baseline(&missing);
        let paths: Vec<&str> = errors.iter().map(|e| e.path.as_str()).collect();
        assert!(paths.contains(&"rollback.metrics.fork_trials_per_sec"), "{errors:?}");
        assert!(paths.contains(&"rollback.metrics.rollback_speedup_vs_fork"), "{errors:?}");
        assert!(paths.contains(&"rollback.metrics.rollback_p50_trial_latency_ms"), "{errors:?}");
        assert!(paths.contains(&"rollback.metrics.rollback_p99_trial_latency_ms"), "{errors:?}");

        let complete = parse(
            r#"{"rollback": {"quick": false, "metrics": {
                "rollback_trials_per_sec": 90.0,
                "fork_trials_per_sec": 45.0,
                "rollback_speedup_vs_fork": 2.0,
                "rollback_p50_trial_latency_ms": 8.0,
                "rollback_p99_trial_latency_ms": 20.0}}}"#,
        )
        .unwrap();
        assert_eq!(validate_baseline(&complete), vec![]);
    }

    #[test]
    fn baseline_shape_validates_and_rejects_drift() {
        let good = parse(
            r#"{"before": {"quick": false, "metrics": {"ns": 1.5, "hits": 936}},
                "check": {"quick": true, "metrics": {}}}"#,
        )
        .unwrap();
        assert_eq!(validate_baseline(&good), vec![]);

        let bad = parse(
            r#"{"before": {"quick": "yes", "metrics": {"ns": "fast"}, "notes": 1},
                "late": {"metrics": {}}}"#,
        )
        .unwrap();
        let errors = validate_baseline(&bad);
        let paths: Vec<&str> = errors.iter().map(|e| e.path.as_str()).collect();
        assert!(paths.contains(&"before.quick"), "{errors:?}");
        assert!(paths.contains(&"before.metrics.ns"), "{errors:?}");
        assert!(paths.contains(&"before.notes"), "{errors:?}");
        assert!(paths.contains(&"late.quick"), "{errors:?}");
    }
}
