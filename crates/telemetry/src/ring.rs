//! Bounded ring-buffer event log with an exact drop counter.

use std::collections::VecDeque;

/// Default retained-event capacity for a [`RingLog`].
///
/// Large enough to hold every flip of a typical single-experiment run,
/// small enough that multi-seed campaigns stay memory-stable.
pub const DEFAULT_LOG_CAPACITY: usize = 4096;

/// A bounded event log: retains the most recent `capacity` events and
/// counts (exactly) how many older events were dropped to make room.
///
/// The key invariant is that `total_recorded() == len() + dropped()`, so
/// consumers that only need aggregate totals lose nothing when the window
/// wraps; consumers that inspect individual events see the most recent
/// `capacity` of them. A capacity of zero disables retention entirely
/// (every push is counted as dropped), which keeps hot paths allocation-free
/// when event detail is not needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingLog<T> {
    buf: VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> Default for RingLog<T> {
    fn default() -> Self {
        RingLog::new(DEFAULT_LOG_CAPACITY)
    }
}

impl<T> RingLog<T> {
    /// Creates an empty log retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        // Bound the eager allocation: `with_capacity` on a huge cap would
        // defeat the point of a memory-stable log.
        let pre = capacity.min(DEFAULT_LOG_CAPACITY);
        RingLog { buf: VecDeque::with_capacity(pre), capacity, dropped: 0 }
    }

    /// Appends an event, evicting the oldest retained event (and counting
    /// it as dropped) if the log is full.
    pub fn push(&mut self, event: T) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() >= self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events evicted (or rejected, for capacity zero) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total number of events ever pushed: retained plus dropped.
    pub fn total_recorded(&self) -> u64 {
        self.dropped + self.buf.len() as u64
    }

    /// Iterates over retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Changes the retention capacity in place. Shrinking evicts the oldest
    /// retained events and counts them as dropped.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.buf.len() > capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
    }

    /// Removes and returns all retained events (oldest first) **and** the
    /// number of events that were dropped before this drain, leaving a
    /// fresh log with the same capacity.
    ///
    /// The drop count is part of the return value on purpose: a caller that
    /// treats the drained `Vec` as "the complete event history" is wrong
    /// whenever the window wrapped, and an earlier version of this method
    /// silently reset the counter — making a truncated log indistinguishable
    /// from a complete one. Callers that genuinely only want the retained
    /// window can ignore the count explicitly; record/replay callers must
    /// fail loudly when it is non-zero.
    pub fn drain_to_vec(&mut self) -> (Vec<T>, u64) {
        let dropped = self.dropped;
        self.dropped = 0;
        (self.buf.drain(..).collect(), dropped)
    }

    /// Discards all retained events and resets the drop counter.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.dropped = 0;
    }
}

impl<'a, T> IntoIterator for &'a RingLog<T> {
    type Item = &'a T;
    type IntoIter = std::collections::vec_deque::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_most_recent_and_counts_drops() {
        let mut log = RingLog::new(3);
        for i in 0..10u32 {
            log.push(i);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 7);
        assert_eq!(log.total_recorded(), 10);
        assert_eq!(log.iter().copied().collect::<Vec<_>>(), vec![7, 8, 9]);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut log = RingLog::new(0);
        for i in 0..5u32 {
            log.push(i);
        }
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 5);
        assert_eq!(log.total_recorded(), 5);
    }

    #[test]
    fn shrinking_capacity_evicts_oldest() {
        let mut log = RingLog::new(8);
        for i in 0..6u32 {
            log.push(i);
        }
        log.set_capacity(2);
        assert_eq!(log.iter().copied().collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(log.dropped(), 4);
        assert_eq!(log.total_recorded(), 6);
    }

    #[test]
    fn drain_resets_log_and_reports_drops() {
        let mut log = RingLog::new(2);
        for i in 0..5u32 {
            log.push(i);
        }
        let (events, dropped) = log.drain_to_vec();
        assert_eq!(events, vec![3, 4]);
        assert_eq!(dropped, 3, "the drain must surface the loss, not swallow it");
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);
        assert_eq!(log.capacity(), 2);
    }

    #[test]
    fn lossless_drain_reports_zero_drops() {
        let mut log = RingLog::new(8);
        for i in 0..5u32 {
            log.push(i);
        }
        let (events, dropped) = log.drain_to_vec();
        assert_eq!(events, vec![0, 1, 2, 3, 4]);
        assert_eq!(dropped, 0);
        // A second drain of the now-empty log is also lossless.
        assert_eq!(log.drain_to_vec(), (vec![], 0));
    }

    #[test]
    fn under_capacity_behaves_like_a_vec() {
        let mut log = RingLog::new(100);
        log.push("a");
        log.push("b");
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 0);
        assert_eq!(log.iter().copied().collect::<Vec<_>>(), vec!["a", "b"]);
    }
}
