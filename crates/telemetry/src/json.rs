//! A strict JSON parser for validating the workspace's emitted artifacts.
//!
//! Every machine-readable file this workspace writes — telemetry snapshots
//! and `BENCH_baseline.json` — is emitted by hand-rolled string building
//! (the workspace deliberately has no JSON dependency). Hand-rolled
//! emitters can rot: `BENCH_baseline.json` once accumulated `{,` artifacts
//! because its line-based merge re-appended separators. This module is the
//! other half of the contract: a parser strict enough that "it parses" means
//! "any standards-compliant consumer can read it".
//!
//! Strictness, beyond RFC 8259 conformance:
//!
//! * duplicate object keys are rejected (legal JSON, but always an emitter
//!   bug here — the merge code must collapse labels, not repeat them);
//! * non-finite numbers are rejected (they cannot be emitted as JSON at
//!   all, but an overflowing literal like `1e999` would otherwise parse to
//!   `inf` and round-trip as garbage);
//! * trailing input after the top-level value is rejected.
//!
//! Errors carry line/column positions so a failing gate points at the
//! offending byte, not just the file.

use std::collections::HashSet;
use std::fmt;

/// A parsed JSON value.
///
/// Object members keep their source order (a `Vec`, not a map), so a file
/// can be round-tripped without reshuffling sections — the baseline merge
/// relies on this to keep `BENCH_baseline.json` in historical order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always finite).
    Number(f64),
    /// A string, with escapes resolved.
    String(String),
    /// `[ ... ]`, in source order.
    Array(Vec<JsonValue>),
    /// `{ ... }`, members in source order, keys unique.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The members of an object, or `None` for any other value.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The numeric value, or `None` for non-numbers.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Serializes back to compact (single-line) JSON.
    ///
    /// Numbers use the shortest representation that round-trips; integral
    /// values print without a fractional part. `parse(v.to_compact_string())`
    /// reproduces `v` exactly.
    #[must_use]
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                debug_assert!(n.is_finite(), "parser only admits finite numbers");
                out.push_str(&format_number(*n));
            }
            JsonValue::String(s) => write_escaped(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_escaped(key, out);
                    out.push_str(": ");
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

/// Shortest-round-trip rendering of a finite `f64` as a JSON number.
fn format_number(n: f64) -> String {
    if n == n.trunc() && n.abs() < 1e15 {
        // Integral and exactly representable: print without `.0` (Rust's
        // `{}` would keep it off anyway, but be explicit about the intent).
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, positioned at the offending byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// 1-based line of the error.
    pub line: usize,
    /// 1-based column (in bytes) of the error.
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses `input` as a single strict JSON document.
///
/// # Errors
///
/// [`JsonError`] on any deviation from the grammar, on duplicate object
/// keys, on non-finite numbers, or on trailing input.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing input after top-level value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        JsonError { line, column, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected byte `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        let mut keys = HashSet::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.error("expected string key (strict JSON: no trailing commas)"));
            }
            let key = self.string()?;
            if !keys.insert(key.clone()) {
                return Err(self.error(format!("duplicate object key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            if self.peek() == Some(b']') {
                return Err(self.error("trailing comma in array (strict JSON)"));
            }
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return Err(self.error("unpaired low surrogate"));
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("unescaped control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input is valid UTF-8");
                    let c = s.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let digits = &self.bytes[self.pos..self.pos + 4];
        let s = std::str::from_utf8(digits).map_err(|_| self.error("invalid \\u escape"))?;
        let unit = u32::from_str_radix(s, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        let n: f64 = text.parse().map_err(|_| self.error("unparseable number"))?;
        if !n.is_finite() {
            return Err(self.error(format!("number `{text}` overflows to non-finite")));
        }
        Ok(JsonValue::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_baseline_shape() {
        let doc = r#"{
  "check": {"quick": true, "metrics": {"pte_walk_cold_stock_ns": 141.917, "hits": 936}},
  "empty": {}
}"#;
        let v = parse(doc).unwrap();
        let check = v.get("check").unwrap();
        assert_eq!(check.get("quick"), Some(&JsonValue::Bool(true)));
        let walk = check.get("metrics").unwrap().get("pte_walk_cold_stock_ns").unwrap();
        assert_eq!(walk.as_f64(), Some(141.917));
        assert_eq!(v.get("empty").unwrap().as_object(), Some(&[][..]));
    }

    #[test]
    fn preserves_member_order() {
        let v = parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let keys: Vec<&str> = v.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a", "m"], "objects must keep source order");
    }

    #[test]
    fn rejects_the_historical_corruptions() {
        // The exact artifacts the old line-based baseline merge produced.
        assert!(parse("{\n  \"before\": {,\n}").is_err(), "`{{,` must not parse");
        assert!(parse(r#"{"a": 1, "a": 2}"#).unwrap_err().message.contains("duplicate"));
        assert!(parse(r#"{"a": {"quick": true}"#).is_err(), "unclosed object");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, 2,]",
            r#"{"a": 1,}"#,
            "01",
            "1.",
            ".5",
            "1e",
            "+1",
            "nul",
            "truex",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800 unpaired\"",
            "{} trailing",
            "NaN",
            "Infinity",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn accepts_the_full_grammar() {
        let v = parse(
            r#"{"s": "a\"b\\c\nA😀", "arr": [null, true, false, -0.5, 1e3, 6e-2], "nested": [[], {}]}"#,
        )
        .unwrap();
        assert_eq!(v.get("s"), Some(&JsonValue::String("a\"b\\c\nA😀".into())));
        let arr = match v.get("arr").unwrap() {
            JsonValue::Array(a) => a,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr[3].as_f64(), Some(-0.5));
        assert_eq!(arr[4].as_f64(), Some(1000.0));
        assert_eq!(arr[5].as_f64(), Some(0.06));
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse("{\n  \"a\": {,\n}").unwrap_err();
        assert_eq!(err.line, 2, "error should point at the bad line: {err}");
        assert!(err.column > 1);
    }

    #[test]
    fn astral_strings_round_trip_through_escapes_and_raw() {
        // The same astral character must survive whether it arrives as a
        // surrogate-pair escape or as raw UTF-8, and must re-parse from the
        // compact rendering (which emits astral characters raw).
        let escaped = parse(r#""😀""#).unwrap();
        assert_eq!(escaped, JsonValue::String("😀".into()));
        let raw = parse("\"😀\"").unwrap();
        assert_eq!(escaped, raw);
        assert_eq!(parse(&escaped.to_compact_string()).unwrap(), escaped);

        // Boundary code points of the astral plane via escapes.
        assert_eq!(
            parse(r#""𐀀""#).unwrap(),
            JsonValue::String("\u{10000}".into()),
            "first astral code point"
        );
        assert_eq!(
            parse(r#""􏿿""#).unwrap(),
            JsonValue::String("\u{10FFFF}".into()),
            "last astral code point"
        );
    }

    #[test]
    fn broken_surrogate_escapes_are_rejected() {
        for (bad, why) in [
            (r#""\ud800""#, "lone high surrogate at end of string"),
            (r#""\ud800x""#, "high surrogate followed by a plain char"),
            (r#""\ud800\n""#, "high surrogate followed by a non-\\u escape"),
            (r#""\ud800\ud800""#, "high surrogate followed by another high"),
            (r#""\udc00""#, "lone low surrogate"),
            (r#""\udfff""#, "lone low surrogate (upper bound)"),
            (r#""\ude00\ud83d""#, "reversed pair"),
            (r#""a\udc00b""#, "lone low surrogate mid-string"),
        ] {
            assert!(parse(bad).is_err(), "{why}: {bad} must be rejected");
        }
    }

    #[test]
    fn random_strings_round_trip_through_compact_rendering() {
        // Fuzz-style: seeded random strings over a charset that covers every
        // escape class (controls, quotes, backslashes, BMP, astral) must
        // survive value → compact JSON → value unchanged.
        const CHARSET: &[char] = &[
            'a',
            'Z',
            '9',
            ' ',
            '"',
            '\\',
            '/',
            '\n',
            '\r',
            '\t',
            '\u{0}',
            '\u{1F}',
            'é',
            '\u{7FF}',
            'あ',
            '\u{FFFD}',
            '😀',
            '\u{10000}',
            '\u{10FFFF}',
            '𝔘',
        ];
        let mut state = 0x0123_4567_89AB_CDEFu64;
        let mut next = move || {
            // SplitMix64, as used by the differential suites.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for trial in 0..200 {
            let len = (next() % 24) as usize;
            let s: String =
                (0..len).map(|_| CHARSET[(next() % CHARSET.len() as u64) as usize]).collect();
            let value = JsonValue::String(s.clone());
            let rendered = value.to_compact_string();
            let reparsed = parse(&rendered).unwrap_or_else(|e| {
                panic!("trial {trial}: {s:?} rendered as {rendered:?} failed to parse: {e}")
            });
            assert_eq!(reparsed, value, "trial {trial}: round-trip mangled {s:?}");
        }
    }

    #[test]
    fn compact_serialization_round_trips() {
        let doc = r#"{"label": {"quick": false, "metrics": {"ns": 141.917, "rate": 18374516.413, "hits": 936, "neg": -0.001, "tiny": 6.5e-7}}, "s": "a\"b\n", "arr": [1, 2.5, true, null]}"#;
        let v = parse(doc).unwrap();
        let rendered = v.to_compact_string();
        assert_eq!(parse(&rendered).unwrap(), v, "round-trip must be lossless");
        // Integral numbers stay integral in the re-render.
        assert!(rendered.contains("\"hits\": 936"), "got {rendered}");
        assert!(rendered.contains("141.917"), "got {rendered}");
    }
}
