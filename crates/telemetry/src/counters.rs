//! Counter registry: named groups of values, snapshotted from stat structs,
//! mergeable across shards, and emitted as deterministic JSON.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A single telemetry value.
///
/// Monotonic counters are `UInt` and merge by addition; derived metrics
/// (rates, percentages) are `Float`; `Bool` merges by OR; `Text` is
/// first-writer-wins metadata (labels, config descriptions).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A monotonic counter; merges by addition.
    UInt(u64),
    /// A derived metric; merges by addition, sanitized to finite values.
    Float(f64),
    /// A condition flag; merges by logical OR.
    Bool(bool),
    /// Free-form metadata; first writer wins on merge.
    Text(String),
}

/// A named set of values, e.g. everything the DRAM module counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Group {
    values: BTreeMap<String, Value>,
}

impl Group {
    /// Adds `v` to the `key` counter (starting from zero), so repeated
    /// snapshots of per-trial stat structs aggregate naturally.
    pub fn add_u64(&mut self, key: &str, v: u64) {
        match self.values.get_mut(key) {
            Some(Value::UInt(cur)) => *cur = cur.saturating_add(v),
            _ => {
                self.values.insert(key.to_string(), Value::UInt(v));
            }
        }
    }

    /// Overwrites the `key` counter with `v`.
    pub fn set_u64(&mut self, key: &str, v: u64) {
        self.values.insert(key.to_string(), Value::UInt(v));
    }

    /// Overwrites `key` with a float value. Callers should sanitize via
    /// [`Counters::set_f64`]; this low-level setter stores `v` as-is.
    pub fn set_f64(&mut self, key: &str, v: f64) {
        self.values.insert(key.to_string(), Value::Float(v));
    }

    /// Overwrites `key` with a boolean.
    pub fn set_bool(&mut self, key: &str, v: bool) {
        self.values.insert(key.to_string(), Value::Bool(v));
    }

    /// Overwrites `key` with free-form text.
    pub fn set_text(&mut self, key: &str, v: &str) {
        self.values.insert(key.to_string(), Value::Text(v.to_string()));
    }

    /// Looks up a value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.values.get(key)
    }

    /// Convenience accessor for `UInt` values; `None` for other types.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        match self.values.get(key) {
            Some(Value::UInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// Convenience accessor for `Float` values; `None` for other types.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        match self.values.get(key) {
            Some(Value::Float(v)) => Some(*v),
            _ => None,
        }
    }

    /// Iterates over `(key, value)` pairs in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of values in the group.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the group holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn merge_from(&mut self, other: &Group) {
        for (key, theirs) in &other.values {
            match (self.values.get_mut(key), theirs) {
                (Some(Value::UInt(a)), Value::UInt(b)) => *a = a.saturating_add(*b),
                (Some(Value::Float(a)), Value::Float(b)) => *a += b,
                (Some(Value::Bool(a)), Value::Bool(b)) => *a |= b,
                (Some(Value::Text(_)), Value::Text(_)) => {} // first writer wins
                (Some(mine), theirs) => *mine = theirs.clone(), // type conflict: last type wins
                (None, theirs) => {
                    self.values.insert(key.clone(), theirs.clone());
                }
            }
        }
    }
}

/// Anything that can snapshot itself into a counter [`Group`].
///
/// Implementations should record raw monotonic counters (`add_u64`) so that
/// snapshots from many trials, shards, or kernels aggregate by addition;
/// derived metrics (hit rates, percentages) belong in the caller via
/// [`Counters::set_f64`], computed after aggregation.
pub trait StatSource {
    /// Default group name for this source, e.g. `"dram"` or `"tlb"`.
    fn group(&self) -> &'static str;

    /// Records this source's counters into `g`.
    fn record(&self, g: &mut Group);
}

/// A labeled registry of counter groups plus condition flags.
///
/// This is the unit of telemetry: one `Counters` per run (or per shard,
/// merged in deterministic order), emitted as one JSON snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Counters {
    label: String,
    groups: BTreeMap<String, Group>,
    flags: BTreeSet<String>,
}

impl Counters {
    /// Creates an empty registry labeled `label` (typically the experiment
    /// or benchmark name; it becomes the `label` field of the snapshot).
    pub fn new(label: &str) -> Self {
        Counters { label: label.to_string(), groups: BTreeMap::new(), flags: BTreeSet::new() }
    }

    /// The snapshot label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Snapshots `src` into its default group (adding to any prior values,
    /// so recording several kernels' stats aggregates them).
    pub fn record(&mut self, src: &dyn StatSource) {
        self.record_as(src.group(), src);
    }

    /// Snapshots `src` into an explicitly named group, for callers that
    /// track several instances of the same source (e.g. per-zone stats).
    pub fn record_as(&mut self, group: &str, src: &dyn StatSource) {
        src.record(self.groups.entry(group.to_string()).or_default());
    }

    /// Adds `v` to a counter, creating the group as needed.
    pub fn add_u64(&mut self, group: &str, key: &str, v: u64) {
        self.groups.entry(group.to_string()).or_default().add_u64(key, v);
    }

    /// Overwrites a counter, creating the group as needed.
    pub fn set_u64(&mut self, group: &str, key: &str, v: u64) {
        self.groups.entry(group.to_string()).or_default().set_u64(key, v);
    }

    /// Stores a float metric. Non-finite values (NaN/±inf) are replaced by
    /// `0.0` and surfaced as a `non_finite:<group>.<key>` flag so snapshots
    /// never poison downstream means while still reporting the condition.
    pub fn set_f64(&mut self, group: &str, key: &str, v: f64) {
        let stored = if v.is_finite() {
            v
        } else {
            self.flags.insert(format!("non_finite:{group}.{key}"));
            0.0
        };
        self.groups.entry(group.to_string()).or_default().set_f64(key, stored);
    }

    /// Stores a boolean, creating the group as needed.
    pub fn set_bool(&mut self, group: &str, key: &str, v: bool) {
        self.groups.entry(group.to_string()).or_default().set_bool(key, v);
    }

    /// Stores free-form text, creating the group as needed.
    pub fn set_text(&mut self, group: &str, key: &str, v: &str) {
        self.groups.entry(group.to_string()).or_default().set_text(key, v);
    }

    /// Raises a named condition flag (idempotent).
    pub fn flag(&mut self, name: &str) {
        self.flags.insert(name.to_string());
    }

    /// True when `name` has been flagged.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.contains(name)
    }

    /// Iterates over raised flags in sorted order.
    pub fn flags(&self) -> impl Iterator<Item = &str> {
        self.flags.iter().map(String::as_str)
    }

    /// Looks up a group by name.
    pub fn group(&self, name: &str) -> Option<&Group> {
        self.groups.get(name)
    }

    /// Iterates over `(name, group)` pairs in sorted name order.
    pub fn groups(&self) -> impl Iterator<Item = (&str, &Group)> {
        self.groups.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds `other` into `self`: `UInt` counters add, `Float` metrics add,
    /// `Bool` flags OR, `Text` keeps the first writer; condition flags
    /// union. Merging shards in index order is deterministic for counters
    /// (integer addition is associative and commutative); float sums should
    /// be folded in a fixed shard order, as `cta-parallel` reductions do.
    pub fn merge(&mut self, other: &Counters) {
        for (name, theirs) in &other.groups {
            self.groups.entry(name.clone()).or_default().merge_from(theirs);
        }
        self.flags.extend(other.flags.iter().cloned());
    }

    /// Returns `self - baseline` per counter: `UInt` values subtract
    /// (saturating at zero), `Float` values subtract, `Bool`/`Text` and
    /// flags are taken from `self`. Groups or keys absent from `baseline`
    /// pass through unchanged — useful for before/after phase deltas.
    pub fn diff(&self, baseline: &Counters) -> Counters {
        let mut out = self.clone();
        for (name, base_group) in &baseline.groups {
            if let Some(group) = out.groups.get_mut(name) {
                for (key, base) in &base_group.values {
                    match (group.values.get_mut(key), base) {
                        (Some(Value::UInt(a)), Value::UInt(b)) => *a = a.saturating_sub(*b),
                        (Some(Value::Float(a)), Value::Float(b)) => *a -= b,
                        _ => {}
                    }
                }
            }
        }
        out
    }

    /// True when any stored float is NaN or infinite (possible after
    /// overflowing float merges even though `set_f64` sanitizes inputs).
    pub fn has_non_finite(&self) -> bool {
        self.groups
            .values()
            .any(|g| g.values.values().any(|v| matches!(v, Value::Float(f) if !f.is_finite())))
    }

    /// Serializes the snapshot as a deterministic JSON object:
    /// `{"label": ..., "flags": [...], "groups": {name: {key: value}}}`.
    /// Keys are emitted in sorted order; non-finite floats are emitted as
    /// `0.0` (JSON has no NaN/inf) — check [`Counters::has_non_finite`] if
    /// that distinction matters.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"label\": ");
        push_json_string(&mut out, &self.label);
        out.push_str(",\n  \"flags\": [");
        for (i, flag) in self.flags.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            push_json_string(&mut out, flag);
        }
        out.push_str("],\n  \"groups\": {");
        for (gi, (name, group)) in self.groups.iter().enumerate() {
            if gi > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_string(&mut out, name);
            out.push_str(": {");
            for (ki, (key, value)) in group.values.iter().enumerate() {
                if ki > 0 {
                    out.push(',');
                }
                out.push_str("\n      ");
                push_json_string(&mut out, key);
                out.push_str(": ");
                push_json_value(&mut out, value);
            }
            if !group.values.is_empty() {
                out.push_str("\n    ");
            }
            out.push('}');
        }
        if !self.groups.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}");
        out
    }

    /// Writes [`Counters::to_json`] (plus a trailing newline) to `path`,
    /// creating parent directories as needed.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json() + "\n")
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_value(out: &mut String, value: &Value) {
    match value {
        Value::UInt(v) => {
            let _ = write!(out, "{v}");
        }
        Value::Float(v) => {
            let v = if v.is_finite() { *v } else { 0.0 };
            // `{:?}` prints the shortest round-trip form, which is valid
            // JSON for finite floats (always contains a '.' or exponent
            // is fine either way).
            let _ = write!(out, "{v:?}");
        }
        Value::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        Value::Text(v) => push_json_string(out, v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake {
        a: u64,
        b: u64,
    }

    impl StatSource for Fake {
        fn group(&self) -> &'static str {
            "fake"
        }

        fn record(&self, g: &mut Group) {
            g.add_u64("a", self.a);
            g.add_u64("b", self.b);
        }
    }

    #[test]
    fn record_aggregates_across_snapshots() {
        let mut c = Counters::new("t");
        c.record(&Fake { a: 1, b: 10 });
        c.record(&Fake { a: 2, b: 20 });
        let g = c.group("fake").unwrap();
        assert_eq!(g.get_u64("a"), Some(3));
        assert_eq!(g.get_u64("b"), Some(30));
    }

    #[test]
    fn merge_matches_serial_recording() {
        let mut serial = Counters::new("t");
        serial.record(&Fake { a: 1, b: 10 });
        serial.record(&Fake { a: 2, b: 20 });

        let mut shard0 = Counters::new("t");
        shard0.record(&Fake { a: 1, b: 10 });
        let mut shard1 = Counters::new("t");
        shard1.record(&Fake { a: 2, b: 20 });
        shard0.merge(&shard1);

        assert_eq!(serial, shard0);
    }

    #[test]
    fn set_f64_sanitizes_non_finite() {
        let mut c = Counters::new("t");
        c.set_f64("g", "bad", f64::NAN);
        c.set_f64("g", "worse", f64::INFINITY);
        c.set_f64("g", "fine", 1.5);
        assert_eq!(c.group("g").unwrap().get_f64("bad"), Some(0.0));
        assert_eq!(c.group("g").unwrap().get_f64("worse"), Some(0.0));
        assert_eq!(c.group("g").unwrap().get_f64("fine"), Some(1.5));
        assert!(c.has_flag("non_finite:g.bad"));
        assert!(c.has_flag("non_finite:g.worse"));
        assert!(!c.has_non_finite());
    }

    #[test]
    fn diff_subtracts_counters() {
        let mut before = Counters::new("t");
        before.set_u64("g", "n", 5);
        let mut after = Counters::new("t");
        after.set_u64("g", "n", 12);
        after.set_u64("g", "new", 3);
        let d = after.diff(&before);
        assert_eq!(d.group("g").unwrap().get_u64("n"), Some(7));
        assert_eq!(d.group("g").unwrap().get_u64("new"), Some(3));
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let mut c = Counters::new("exp \"x\"");
        c.set_u64("zeta", "k", 1);
        c.set_u64("alpha", "k", 2);
        c.set_f64("alpha", "rate", 0.5);
        c.set_bool("alpha", "ok", true);
        c.set_text("alpha", "note", "line\nbreak");
        c.flag("checked");
        let json = c.to_json();
        assert_eq!(json, c.clone().to_json());
        assert!(json.contains("\"label\": \"exp \\\"x\\\"\""));
        assert!(json.contains("\"flags\": [\"checked\"]"));
        assert!(json.contains("\"line\\nbreak\""));
        // Sorted group order: alpha before zeta.
        let alpha = json.find("\"alpha\"").unwrap();
        let zeta = json.find("\"zeta\"").unwrap();
        assert!(alpha < zeta);
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn empty_counters_emit_valid_skeleton() {
        let c = Counters::new("empty");
        let json = c.to_json();
        assert!(json.contains("\"groups\": {}"));
        assert!(json.contains("\"flags\": []"));
    }
}
