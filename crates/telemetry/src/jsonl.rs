//! JSON Lines streaming on top of the strict [`crate::json`] layer.
//!
//! A long-running campaign service cannot wait for shutdown to emit one
//! big snapshot: each completed campaign appends **one line, one strict
//! JSON document** to a stream, so consumers can tail progress and a
//! crash loses at most the line being written. Every line goes through
//! [`JsonValue::to_compact_string`] — the same emitter the snapshot path
//! uses — so the duplicate-key and non-finite guarantees carry over, and
//! the compact form never contains a raw newline (strings are escaped).
//!
//! [`parse_lines`] is the reading half: it re-parses a stream with the
//! strict parser line by line, reporting the 1-based line number of the
//! first malformed line. Blank lines are ignored (a trailing newline is
//! the normal final state of an append-only stream).

use std::fmt;
use std::io::{self, Write};

use crate::json::{parse, JsonError, JsonValue};

/// A malformed line in a JSON Lines stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonlError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// The strict-parser error for that line.
    pub error: JsonError,
}

impl fmt::Display for JsonlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.error)
    }
}

impl std::error::Error for JsonlError {}

/// Append-only JSON Lines writer: one compact strict-JSON document per
/// line, flushed after every line so concurrent tailing sees whole lines.
#[derive(Debug)]
pub struct JsonlWriter<W: Write> {
    sink: W,
    lines: u64,
}

impl<W: Write> JsonlWriter<W> {
    /// Wraps `sink` (a file, a `Vec<u8>`, a locked stdout, ...).
    pub fn new(sink: W) -> Self {
        JsonlWriter { sink, lines: 0 }
    }

    /// Writes `value` as one compact line and flushes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write(&mut self, value: &JsonValue) -> io::Result<()> {
        self.sink.write_all(value.to_compact_string().as_bytes())?;
        self.sink.write_all(b"\n")?;
        self.sink.flush()?;
        self.lines += 1;
        Ok(())
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Unwraps the underlying sink.
    pub fn into_inner(self) -> W {
        self.sink
    }
}

/// Parses a JSON Lines stream with the strict parser, one document per
/// non-blank line.
///
/// # Errors
///
/// The first malformed line, with its 1-based line number.
pub fn parse_lines(input: &str) -> Result<Vec<JsonValue>, JsonlError> {
    let mut docs = Vec::new();
    for (index, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse(line) {
            Ok(doc) => docs.push(doc),
            Err(error) => return Err(JsonlError { line: index + 1, error }),
        }
    }
    Ok(docs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(n: f64) -> JsonValue {
        JsonValue::Object(vec![("n".to_string(), JsonValue::Number(n))])
    }

    #[test]
    fn lines_round_trip_through_strict_parser() {
        let mut writer = JsonlWriter::new(Vec::new());
        writer.write(&doc(1.0)).unwrap();
        writer.write(&doc(2.5)).unwrap();
        assert_eq!(writer.lines(), 2);
        let text = String::from_utf8(writer.into_inner()).unwrap();
        assert_eq!(text.matches('\n').count(), 2, "one newline per line");
        let docs = parse_lines(&text).unwrap();
        assert_eq!(docs, vec![doc(1.0), doc(2.5)]);
    }

    #[test]
    fn embedded_newlines_stay_escaped() {
        let tricky = JsonValue::Object(vec![(
            "msg".to_string(),
            JsonValue::String("two\nlines \"quoted\"".to_string()),
        )]);
        let mut writer = JsonlWriter::new(Vec::new());
        writer.write(&tricky).unwrap();
        let text = String::from_utf8(writer.into_inner()).unwrap();
        assert_eq!(text.matches('\n').count(), 1, "escape, don't break, lines");
        assert_eq!(parse_lines(&text).unwrap(), vec![tricky]);
    }

    #[test]
    fn malformed_line_reports_its_line_number() {
        let stream = "{\"a\": 1}\n\n{\"b\": }\n";
        let err = parse_lines(stream).unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn blank_lines_and_missing_trailing_newline_are_fine() {
        assert_eq!(parse_lines("").unwrap(), Vec::<JsonValue>::new());
        assert_eq!(parse_lines("\n\n").unwrap(), Vec::<JsonValue>::new());
        assert_eq!(parse_lines("{\"a\": 1}").unwrap().len(), 1);
    }
}
