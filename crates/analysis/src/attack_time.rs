//! Expected attack-time model for Algorithm 1 (section 5).

use crate::params::SystemShape;

/// Nanoseconds per day.
const DAY_NS: f64 = 86_400.0 * 1e9;

/// The three measured step costs of Algorithm 1 (i7-6700 prototype):
/// filling `ZONE_PTP` with PTEs for a target page (~184 ms), hammering one
/// row (≥ one refresh interval, 64 ms), and checking one PTE (~600 ns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackTiming {
    /// Step (1) per target page, nanoseconds.
    pub fill_ns: f64,
    /// Step (2) per row, nanoseconds.
    pub hammer_row_ns: f64,
    /// Step (3) per PTE, nanoseconds.
    pub check_pte_ns: f64,
}

impl Default for AttackTiming {
    fn default() -> Self {
        AttackTiming { fill_ns: 184e6, hammer_row_ns: 64e6, check_pte_ns: 600.0 }
    }
}

impl AttackTiming {
    /// Worst-case whole-sweep duration in days.
    pub fn worst_case_days(&self, shape: &SystemShape) -> f64 {
        let per_row = self.hammer_row_ns + shape.ptes_per_row() as f64 * self.check_pte_ns;
        let per_target = self.fill_ns + shape.zone_rows() as f64 * per_row;
        shape.target_pages() as f64 * per_target / DAY_NS
    }

    /// Expected attack duration in days (section 5):
    /// `worst / (⌈E⌉ + 1)` when exploitable locations are expected
    /// (`E ≥ 1`), `worst / 2` in the rare-success regime (conditioned on
    /// the system being one of the vulnerable few, with exactly one
    /// exploitable location).
    pub fn expected_days(&self, shape: &SystemShape, expected_exploitable: f64) -> f64 {
        let worst = self.worst_case_days(shape);
        if expected_exploitable >= 1.0 {
            worst / (expected_exploitable.ceil() + 1.0)
        } else {
            worst / 2.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exploit::{expected_exploitable_ptes, Restriction};
    use crate::params::FlipStats;

    fn shape(gb: u64, mb: u64) -> SystemShape {
        SystemShape::new(gb << 30, mb << 20)
    }

    #[test]
    fn table2_attack_days() {
        let t = AttackTiming::default();
        let stats = FlipStats::paper_default();
        // (GB, MB, restriction, paper days)
        let cases: [(u64, u64, Restriction, f64); 6] = [
            (8, 32, Restriction::None, 57.6),
            (8, 64, Restriction::None, 70.3),
            (16, 32, Restriction::None, 102.7),
            (16, 64, Restriction::None, 122.4),
            (32, 32, Restriction::None, 185.1),
            (32, 64, Restriction::None, 216.5),
        ];
        for (gb, mb, r, paper) in cases {
            let s = shape(gb, mb);
            let e = expected_exploitable_ptes(&s, &stats, r);
            let days = t.expected_days(&s, e);
            assert!(
                (days - paper).abs() / paper < 0.02,
                "{gb}GB/{mb}MB: model={days:.1} paper={paper}"
            );
        }
    }

    #[test]
    fn table2_restricted_days() {
        let t = AttackTiming::default();
        let cases: [(u64, u64, f64); 6] = [
            (8, 32, 230.7),
            (8, 64, 457.3),
            (16, 32, 462.3),
            (16, 64, 918.3),
            (32, 32, 925.5),
            (32, 64, 1840.3),
        ];
        for (gb, mb, paper) in cases {
            let s = shape(gb, mb);
            // Restricted case: E « 1, conditioned on one exploitable PTE.
            let days = t.expected_days(&s, 1e-6);
            assert!(
                (days - paper).abs() / paper < 0.02,
                "{gb}GB/{mb}MB restricted: model={days:.1} paper={paper}"
            );
        }
    }

    #[test]
    fn table3_days_match_where_e_changes() {
        // Table 3's unrestricted attack times shrink because E grows.
        let t = AttackTiming::default();
        let stats = FlipStats::pessimistic();
        let cases: [(u64, u64, f64); 3] = [(8, 32, 5.42), (16, 32, 9.73), (32, 32, 17.46)];
        for (gb, mb, paper) in cases {
            let s = shape(gb, mb);
            let e = expected_exploitable_ptes(&s, &stats, Restriction::None);
            let days = t.expected_days(&s, e);
            assert!(
                (days - paper).abs() / paper < 0.03,
                "{gb}GB/{mb}MB: model={days:.2} paper={paper}"
            );
        }
    }

    #[test]
    fn anti_cell_baseline_attack_time_is_hours() {
        // Section 5: ~3354.7 exploitable ⇒ expected time ≈ 3.2 hours.
        let t = AttackTiming::default();
        let s = shape(8, 32);
        let days = t.expected_days(&s, 3354.7);
        let hours = days * 24.0;
        assert!((hours - 3.3).abs() < 0.4, "hours={hours:.2}");
    }

    #[test]
    fn speedup_vs_fastest_reported_attack() {
        // The paper: CTA slows the 20-second fastest attack by ~6 orders of
        // magnitude.
        let t = AttackTiming::default();
        let s = shape(8, 32);
        let stats = FlipStats::paper_default();
        let e = expected_exploitable_ptes(&s, &stats, Restriction::None);
        let seconds = t.expected_days(&s, e) * 86_400.0;
        let slowdown = seconds / 20.0;
        assert!(slowdown > 1e5, "slowdown {slowdown:.2e}");
    }
}
