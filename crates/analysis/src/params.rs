//! Model parameters: measured flip statistics and system shapes.

/// RowHammer-induced bit-flip statistics (section 5, citing Kim et al. and
/// Drammer measurements).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlipStats {
    /// Probability that a cell is vulnerable to RowHammer at all (`Pf`).
    pub pf: f64,
    /// Probability a vulnerable *true-cell* flips `0→1` (against leakage).
    pub p0_to_1: f64,
    /// Probability a vulnerable *true-cell* flips `1→0` (with leakage).
    pub p1_to_0: f64,
}

impl FlipStats {
    /// The measured statistics Tables 2 uses: `Pf = 1e-4`, `P0→1 = 0.2%`.
    pub fn paper_default() -> Self {
        FlipStats { pf: 1e-4, p0_to_1: 0.002, p1_to_0: 0.998 }
    }

    /// The pessimistic scaling scenario of Table 3: `Pf = 5e-4`,
    /// `P0→1 = 0.5%`.
    pub fn pessimistic() -> Self {
        FlipStats { pf: 5e-4, p0_to_1: 0.005, p1_to_0: 0.995 }
    }

    /// The same statistics as seen by a value stored in *anti-cells*, where
    /// the leakage direction is `0→1` (used for the anti-cell `ZONE_PTP`
    /// baseline).
    pub fn inverted(self) -> Self {
        FlipStats { pf: self.pf, p0_to_1: self.p1_to_0, p1_to_0: self.p0_to_1 }
    }
}

/// Physical shape of the evaluated system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemShape {
    /// Total physical memory in bytes (power of two).
    pub phys_bytes: u64,
    /// `ZONE_PTP` size in bytes (power of two).
    pub ptp_bytes: u64,
    /// DRAM row size in bytes (the paper uses 128 KiB).
    pub row_bytes: u64,
}

impl SystemShape {
    /// A paper-style shape with 128 KiB rows.
    ///
    /// # Panics
    ///
    /// Panics unless both sizes are powers of two and
    /// `ptp_bytes < phys_bytes`.
    pub fn new(phys_bytes: u64, ptp_bytes: u64) -> Self {
        assert!(phys_bytes.is_power_of_two() && ptp_bytes.is_power_of_two());
        assert!(ptp_bytes < phys_bytes);
        SystemShape { phys_bytes, ptp_bytes, row_bytes: 128 * 1024 }
    }

    /// PTP-indicator width: `n = log2(phys / ptp)`.
    pub fn indicator_bits(&self) -> u32 {
        (self.phys_bytes / self.ptp_bytes).trailing_zeros()
    }

    /// Number of 8-byte PTE slots in `ZONE_PTP`.
    pub fn total_ptes(&self) -> u64 {
        self.ptp_bytes / 8
    }

    /// DRAM rows spanned by `ZONE_PTP`.
    pub fn zone_rows(&self) -> u64 {
        self.ptp_bytes / self.row_bytes
    }

    /// PTE slots per row.
    pub fn ptes_per_row(&self) -> u64 {
        self.row_bytes / 8
    }

    /// 4 KiB target pages below the mark the brute-force attack iterates
    /// over (`phys/4096 − ptp/4096`).
    pub fn target_pages(&self) -> u64 {
        self.phys_bytes / 4096 - self.ptp_bytes / 4096
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let s = FlipStats::paper_default();
        assert_eq!(s.pf, 1e-4);
        assert_eq!(s.p0_to_1 + s.p1_to_0, 1.0);
        let p = FlipStats::pessimistic();
        assert_eq!(p.pf, 5e-4);
        assert_eq!(p.p0_to_1 + p.p1_to_0, 1.0);
    }

    #[test]
    fn inverted_swaps_directions() {
        let s = FlipStats::paper_default().inverted();
        assert_eq!(s.p0_to_1, 0.998);
        assert_eq!(s.p1_to_0, 0.002);
    }

    #[test]
    fn paper_shape_8gb_32mb() {
        let s = SystemShape::new(8 << 30, 32 << 20);
        assert_eq!(s.indicator_bits(), 8);
        assert_eq!(s.total_ptes(), 4_194_304);
        assert_eq!(s.zone_rows(), 256);
        assert_eq!(s.ptes_per_row(), 16_384);
        assert_eq!(s.target_pages(), (1 << 21) - 8192);
    }

    #[test]
    fn paper_shape_64mb_zone() {
        let s = SystemShape::new(8 << 30, 64 << 20);
        assert_eq!(s.indicator_bits(), 7);
        assert_eq!(s.zone_rows(), 512);
        assert_eq!(s.total_ptes(), 8_388_608);
    }
}
