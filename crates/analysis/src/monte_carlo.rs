//! Monte Carlo cross-validation of the exploitable-PTE model.
//!
//! Independent generative model: each of the `n` indicator bits of a PTE
//! location is vulnerable with probability `Pf`; a vulnerable bit is a
//! `0→1` flipper with probability `P0→1`, else a `1→0` flipper. The
//! location is exploitable iff the attacker can supply a legal pointer
//! whose corruption reaches all-ones:
//!
//! - every `1→0` flipper poisons the location (a supplied `1` decays, a
//!   supplied `0` never rises), so there must be none;
//! - at least [`Restriction::min_flips`] `0→1` flippers must exist (the
//!   attacker-supplied address must carry that many `0`s).
//!
//! This set-based model is derived independently of the paper's binomial
//! sum; agreement between the two (see tests) validates both.

use rand::RngCore;
use rand_chacha::ChaCha8Rng;

#[cfg(test)]
use rand::Rng;

#[cfg(test)]
use crate::exploit::p_exploitable;
use crate::exploit::Restriction;
use crate::params::FlipStats;

/// Result of a Monte Carlo estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloResult {
    /// Estimated probability a location is exploitable.
    pub p_hat: f64,
    /// Number of locations sampled.
    pub samples: u64,
    /// Number of exploitable locations observed.
    pub hits: u64,
}

impl MonteCarloResult {
    /// Approximate standard error of `p_hat`.
    pub fn std_error(&self) -> f64 {
        (self.p_hat * (1.0 - self.p_hat) / self.samples as f64).sqrt()
    }
}

/// Exact integer threshold for a unit-interval comparison: the number of
/// 53-bit mantissa values `m` whose image `m · 2⁻⁵³` (exactly how the
/// generator maps `next_u64() >> 11` to `f64`) compares `< p`. Found by
/// binary search with the genuine `f64` predicate, so by monotonicity
/// `(next_u64() >> 11) < unit_cutoff(p)` decides precisely the same
/// outcomes as `rng.gen::<f64>() < p` — the per-draw float conversion
/// and FP compare collapse to one integer compare without changing a
/// single verdict.
fn unit_cutoff(p: f64) -> u64 {
    const ONE: u64 = 1 << 53;
    let scale = 1.0 / ONE as f64;
    let (mut lo, mut hi) = (0u64, ONE);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if (mid as f64) * scale < p {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// One shard's worth of sampling: counts exploitable locations among
/// `samples` draws from the stream seeded by `seed`. This is the single
/// sampling loop shared by the serial and sharded entry points — both
/// produce their hits through exactly this code.
///
/// The two per-bit probabilities are hoisted into integer cutoffs (see
/// [`unit_cutoff`]); the draw sequence — one `next_u64` per bit plus one
/// per vulnerable bit — is identical to the float reference, so every
/// recorded `hits` value is preserved bit for bit (pinned by the
/// `integer_thresholds_match_float_reference` test).
fn count_hits(n: u32, stats: &FlipStats, restriction: Restriction, samples: u64, seed: u64) -> u64 {
    use rand::SeedableRng;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let pf_cutoff = unit_cutoff(stats.pf);
    let up_cutoff = unit_cutoff(stats.p0_to_1);
    let min_flips = restriction.min_flips();
    let mut hits = 0u64;
    for _ in 0..samples {
        let mut up_flippers = 0u32;
        let mut down_flippers = 0u32;
        for _ in 0..n {
            if rng.next_u64() >> 11 < pf_cutoff {
                if rng.next_u64() >> 11 < up_cutoff {
                    up_flippers += 1;
                } else {
                    down_flippers += 1;
                }
            }
        }
        if down_flippers == 0 && up_flippers >= min_flips {
            hits += 1;
        }
    }
    hits
}

/// The original float-comparison sampling loop, kept as the differential
/// reference for [`count_hits`].
#[cfg(test)]
fn count_hits_float_reference(
    n: u32,
    stats: &FlipStats,
    restriction: Restriction,
    samples: u64,
    seed: u64,
) -> u64 {
    use rand::SeedableRng;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut hits = 0u64;
    for _ in 0..samples {
        let mut up_flippers = 0u32;
        let mut down_flippers = 0u32;
        for _ in 0..n {
            if rng.gen::<f64>() < stats.pf {
                if rng.gen::<f64>() < stats.p0_to_1 {
                    up_flippers += 1;
                } else {
                    down_flippers += 1;
                }
            }
        }
        if down_flippers == 0 && up_flippers >= restriction.min_flips() {
            hits += 1;
        }
    }
    hits
}

/// Estimates the exploitable-location probability by sampling `samples`
/// locations with indicator width `n`.
pub fn monte_carlo_p_exploitable(
    n: u32,
    stats: &FlipStats,
    restriction: Restriction,
    samples: u64,
    seed: u64,
) -> MonteCarloResult {
    let hits = count_hits(n, stats, restriction, samples, seed);
    MonteCarloResult { p_hat: hits as f64 / samples as f64, samples, hits }
}

/// Sharded Monte Carlo estimation: splits `samples` across `shards`
/// independent streams and runs them on scoped worker threads.
///
/// Determinism contract (see `cta_parallel`):
///
/// - the result is a pure function of `(n, stats, restriction, samples,
///   seed, shards)` — thread scheduling never changes `hits` or `p_hat`,
///   because shard results merge in shard order;
/// - `shards == 1` reproduces [`monte_carlo_p_exploitable`] **bit for
///   bit**: shard 0's seed is the campaign seed itself and it samples the
///   whole budget through the same loop;
/// - shard `i > 0` draws [`cta_parallel::shard_sizes`]`[i]` samples from
///   the stream seeded with [`cta_parallel::shard_seed`]`(seed, i)`.
///
/// # Panics
///
/// Panics if `shards == 0`.
pub fn monte_carlo_p_exploitable_sharded(
    n: u32,
    stats: &FlipStats,
    restriction: Restriction,
    samples: u64,
    seed: u64,
    shards: u32,
) -> MonteCarloResult {
    assert!(shards > 0, "need at least one shard");
    let sizes = cta_parallel::shard_sizes(samples, shards);
    let shard_hits = cta_parallel::parallel_map(shards as usize, shards as usize, |i| {
        count_hits(n, stats, restriction, sizes[i], cta_parallel::shard_seed(seed, i as u32))
    });
    // Merge in shard order. Integer addition is order-independent, but the
    // fixed order is the contract every merged statistic must follow.
    let hits: u64 = shard_hits.iter().sum();
    MonteCarloResult { p_hat: hits as f64 / samples as f64, samples, hits }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agrees_with_closed_form_for_anti_cell_stats() {
        // Use inverted (anti-cell) statistics where P is large enough to
        // estimate cheaply: P ≈ 8e-4 at n=8.
        let stats = FlipStats::paper_default().inverted();
        let analytic = p_exploitable(8, &stats, Restriction::None);
        let mc = monte_carlo_p_exploitable(8, &stats, Restriction::None, 2_000_000, 42);
        let diff = (mc.p_hat - analytic).abs();
        assert!(
            diff < 4.0 * mc.std_error().max(1e-6),
            "mc={:.3e} analytic={analytic:.3e} se={:.1e}",
            mc.p_hat,
            mc.std_error()
        );
    }

    #[test]
    fn agrees_with_closed_form_for_scaled_true_cell_stats() {
        // Scale Pf up so the true-cell probability is measurable, keeping
        // the direction split: the agreement is structural, not accidental.
        let stats = FlipStats { pf: 0.05, p0_to_1: 0.2, p1_to_0: 0.8 };
        let analytic = p_exploitable(8, &stats, Restriction::None);
        let mc = monte_carlo_p_exploitable(8, &stats, Restriction::None, 500_000, 7);
        let rel = (mc.p_hat - analytic).abs() / analytic;
        assert!(rel < 0.1, "mc={:.4e} analytic={analytic:.4e}", mc.p_hat);
    }

    #[test]
    fn restriction_suppresses_hits() {
        let stats = FlipStats { pf: 0.05, p0_to_1: 0.5, p1_to_0: 0.5 };
        let none = monte_carlo_p_exploitable(8, &stats, Restriction::None, 200_000, 1);
        let two = monte_carlo_p_exploitable(8, &stats, Restriction::AtLeastTwoZeros, 200_000, 1);
        assert!(two.p_hat < none.p_hat);
    }

    #[test]
    fn integer_thresholds_match_float_reference() {
        // The batched integer loop must reproduce the float loop's hits
        // exactly — same draws, same verdicts — across seeds, restriction
        // modes, and probabilities including edge values 0.0 and 1.0.
        let cases = [
            FlipStats { pf: 0.05, p0_to_1: 0.2, p1_to_0: 0.8 },
            FlipStats::paper_default().inverted(),
            FlipStats { pf: 0.0, p0_to_1: 0.5, p1_to_0: 0.5 },
            FlipStats { pf: 1.0, p0_to_1: 1.0, p1_to_0: 0.0 },
        ];
        for stats in &cases {
            for seed in [0u64, 9, 0xC0FFEE] {
                for restriction in [Restriction::None, Restriction::AtLeastTwoZeros] {
                    assert_eq!(
                        count_hits(8, stats, restriction, 20_000, seed),
                        count_hits_float_reference(8, stats, restriction, 20_000, seed),
                        "stats={stats:?} seed={seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn unit_cutoff_is_bit_exact_around_the_boundary() {
        // For every mantissa value near the cutoff, the integer compare and
        // the genuine float compare must agree.
        let scale = 1.0 / (1u64 << 53) as f64;
        for p in [0.0, 1e-4, 0.002, 0.05, 0.5, 0.999, 1.0] {
            let c = unit_cutoff(p);
            for m in c.saturating_sub(2)..=(c + 2).min(1 << 53) {
                assert_eq!(m < c, (m as f64) * scale < p, "p={p} m={m}");
            }
        }
        assert_eq!(unit_cutoff(0.0), 0);
        assert_eq!(unit_cutoff(1.0), 1 << 53);
    }

    #[test]
    fn deterministic_per_seed() {
        let stats = FlipStats::paper_default().inverted();
        let a = monte_carlo_p_exploitable(8, &stats, Restriction::None, 10_000, 9);
        let b = monte_carlo_p_exploitable(8, &stats, Restriction::None, 10_000, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn one_shard_is_bit_identical_to_serial() {
        let stats = FlipStats { pf: 0.05, p0_to_1: 0.2, p1_to_0: 0.8 };
        for seed in [0u64, 9, 0xC0FFEE] {
            let serial = monte_carlo_p_exploitable(8, &stats, Restriction::None, 50_000, seed);
            let one =
                monte_carlo_p_exploitable_sharded(8, &stats, Restriction::None, 50_000, seed, 1);
            assert_eq!(serial, one, "seed {seed}");
        }
    }

    #[test]
    fn sharded_result_depends_only_on_shard_count() {
        // Same (seed, shards) twice: identical. The scheduling of the
        // scoped workers differs between runs; the merge order does not.
        let stats = FlipStats { pf: 0.05, p0_to_1: 0.3, p1_to_0: 0.7 };
        let a = monte_carlo_p_exploitable_sharded(8, &stats, Restriction::None, 100_000, 11, 4);
        let b = monte_carlo_p_exploitable_sharded(8, &stats, Restriction::None, 100_000, 11, 4);
        assert_eq!(a, b);
        assert_eq!(a.samples, 100_000);
    }

    #[test]
    fn sharded_estimate_agrees_statistically_with_serial() {
        // Different shard counts sample different streams, so hits differ —
        // but the estimates must agree within Monte Carlo error.
        let stats = FlipStats { pf: 0.05, p0_to_1: 0.2, p1_to_0: 0.8 };
        let serial = monte_carlo_p_exploitable(8, &stats, Restriction::None, 400_000, 5);
        let sharded =
            monte_carlo_p_exploitable_sharded(8, &stats, Restriction::None, 400_000, 5, 8);
        let tol = 5.0 * serial.std_error().max(sharded.std_error());
        assert!(
            (serial.p_hat - sharded.p_hat).abs() < tol,
            "serial={:.4e} sharded={:.4e} tol={tol:.1e}",
            serial.p_hat,
            sharded.p_hat
        );
    }

    #[test]
    fn std_error_shrinks_with_samples() {
        let stats = FlipStats::paper_default().inverted();
        let small = monte_carlo_p_exploitable(8, &stats, Restriction::None, 50_000, 3);
        let large = monte_carlo_p_exploitable(8, &stats, Restriction::None, 1_000_000, 3);
        if small.hits > 0 && large.hits > 0 {
            assert!(large.std_error() < small.std_error());
        }
    }
}
