//! Analytic security evaluation of CTA (paper section 5, Tables 2–3).
//!
//! The paper quantifies the residual attack surface of a CTA system with a
//! closed-form model over the measured RowHammer flip statistics:
//!
//! - [`FlipStats`]: `Pf` (fraction of vulnerable cells), `P0→1`/`P1→0`
//!   (direction split in true-cells);
//! - [`exploit`]: the probability that a PTE location in `ZONE_PTP` is
//!   *exploitable* — its PTP-indicator bits can be driven to all-ones —
//!   and the expected number of exploitable locations per system;
//! - [`attack_time`]: the expected duration of the Algorithm 1 brute-force
//!   attack built from the three measured step costs;
//! - [`tables`]: generators that reproduce every cell of Tables 2 and 3;
//! - [`monte_carlo`]: an independent sampling model cross-validating the
//!   closed form;
//! - [`capacity`]: the section 6.2 effective-memory-capacity loss model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack_time;
pub mod capacity;
pub mod exploit;
pub mod monte_carlo;
pub mod params;
pub mod tables;

pub use attack_time::AttackTiming;
pub use exploit::{expected_exploitable_ptes, p_exploitable, Restriction};
pub use monte_carlo::{
    monte_carlo_p_exploitable, monte_carlo_p_exploitable_sharded, MonteCarloResult,
};
pub use params::{FlipStats, SystemShape};
pub use tables::{table2, table3, EvalRow, TableSpec};
