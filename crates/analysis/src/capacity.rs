//! Effective-memory-capacity loss under CTA (section 6.2).
//!
//! Anti-cell rows interleaved into the address range claimed by `ZONE_PTP`
//! are left unused. With the common 512-row / 128 KiB-row geometry,
//! true/anti regions alternate every 64 MiB; in the worst case a full
//! 64 MiB anti region sits at the top of memory and is reserved — 0.78% of
//! an 8 GiB system — and each additional 64 MiB of `ZONE_PTP` adds another
//! such region.

/// The alternation region size in bytes for the common geometry
/// (512 rows × 128 KiB).
pub const REGION_BYTES: u64 = 64 << 20;

/// Worst-case bytes reserved (lost) for a `ZONE_PTP` of `ptp_bytes`:
/// one full anti region per started region of PTP capacity.
pub fn worst_case_loss_bytes(ptp_bytes: u64, region_bytes: u64) -> u64 {
    ptp_bytes.div_ceil(region_bytes) * region_bytes
}

/// Worst-case loss as a fraction of `total_bytes`.
pub fn worst_case_loss_fraction(total_bytes: u64, ptp_bytes: u64, region_bytes: u64) -> f64 {
    worst_case_loss_bytes(ptp_bytes, region_bytes) as f64 / total_bytes as f64
}

/// Best-case loss: a true-cell region tops the memory and the zone fits in
/// it — nothing is reserved.
pub fn best_case_loss_bytes() -> u64 {
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worst_case_is_0_78_percent() {
        let f = worst_case_loss_fraction(8 << 30, 32 << 20, REGION_BYTES);
        assert!((f - 0.0078125).abs() < 1e-9, "f={f}");
    }

    #[test]
    fn each_64mb_increment_adds_another_region() {
        let one = worst_case_loss_bytes(32 << 20, REGION_BYTES);
        let two = worst_case_loss_bytes(96 << 20, REGION_BYTES);
        assert_eq!(one, 64 << 20);
        assert_eq!(two, 128 << 20);
    }

    #[test]
    fn exact_multiple_loses_exactly_that_many_regions() {
        assert_eq!(worst_case_loss_bytes(64 << 20, REGION_BYTES), 64 << 20);
        assert_eq!(worst_case_loss_bytes(128 << 20, REGION_BYTES), 128 << 20);
    }

    #[test]
    fn best_case_is_zero() {
        assert_eq!(best_case_loss_bytes(), 0);
    }

    #[test]
    fn true_heavy_modules_lose_less() {
        // With 1000:1 modules the "region" is effectively tiny for anti
        // rows; model by a smaller region size.
        let sparse = worst_case_loss_fraction(8 << 30, 32 << 20, 128 * 1024);
        let common = worst_case_loss_fraction(8 << 30, 32 << 20, REGION_BYTES);
        assert!(sparse < common);
    }
}
