//! Generators for the paper's evaluation tables.

use std::fmt;

use crate::attack_time::AttackTiming;
use crate::exploit::{expected_exploitable_ptes, Restriction};
use crate::params::{FlipStats, SystemShape};

/// One cell pair of Table 2/3: the expected number of exploitable PTEs and
/// the expected attack time for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalRow {
    /// Physical memory in GiB.
    pub phys_gib: u64,
    /// `ZONE_PTP` size in MiB.
    pub ptp_mib: u64,
    /// Indicator restriction in force.
    pub restriction: Restriction,
    /// Expected exploitable PTE locations.
    pub exploitable: f64,
    /// Expected attack time in days.
    pub attack_days: f64,
}

/// Parameters for generating a table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableSpec {
    /// Flip statistics (Table 2 vs Table 3).
    pub stats: FlipStats,
    /// Step-cost model.
    pub timing: AttackTiming,
}

impl TableSpec {
    /// Generates all 12 cells (3 memory sizes × 2 zone sizes × 2
    /// restrictions) for this spec.
    pub fn generate(&self) -> Vec<EvalRow> {
        let mut rows = Vec::new();
        for phys_gib in [8u64, 16, 32] {
            for restriction in [Restriction::None, Restriction::AtLeastTwoZeros] {
                for ptp_mib in [32u64, 64] {
                    let shape = SystemShape::new(phys_gib << 30, ptp_mib << 20);
                    let exploitable = expected_exploitable_ptes(&shape, &self.stats, restriction);
                    let attack_days = self.timing.expected_days(&shape, exploitable);
                    rows.push(EvalRow { phys_gib, ptp_mib, restriction, exploitable, attack_days });
                }
            }
        }
        rows
    }

    /// Renders the table in the paper's layout.
    pub fn render(&self, title: &str) -> String {
        let rows = self.generate();
        let mut s = String::new();
        s.push_str(&format!(
            "{title} (Pf = {:.0e}, P0→1 = {:.1}%)\n",
            self.stats.pf,
            self.stats.p0_to_1 * 100.0
        ));
        s.push_str(
            "Physical Memory | Metric                  | No Restriction        | ≥ Two '0's in PTP Indicator\n",
        );
        s.push_str(
            "                |                         | 32MB PTP | 64MB PTP   | 32MB PTP | 64MB PTP\n",
        );
        for phys_gib in [8u64, 16, 32] {
            let cell = |r: Restriction, mb: u64| {
                rows.iter()
                    .find(|x| x.phys_gib == phys_gib && x.ptp_mib == mb && x.restriction == r)
                    .copied()
                    .expect("generated")
            };
            let (u32m, u64m) = (cell(Restriction::None, 32), cell(Restriction::None, 64));
            let (r32m, r64m) =
                (cell(Restriction::AtLeastTwoZeros, 32), cell(Restriction::AtLeastTwoZeros, 64));
            s.push_str(&format!(
                "{phys_gib:>4}GB          | # of Exploitable PTEs   | {:>8} | {:>10} | {:>8} | {:>8}\n",
                fmt_count(u32m.exploitable),
                fmt_count(u64m.exploitable),
                fmt_count(r32m.exploitable),
                fmt_count(r64m.exploitable),
            ));
            s.push_str(&format!(
                "                | Attack Time (Days)      | {:>8.1} | {:>10.1} | {:>8.1} | {:>8.1}\n",
                u32m.attack_days, u64m.attack_days, r32m.attack_days, r64m.attack_days,
            ));
        }
        s
    }
}

fn fmt_count(x: f64) -> String {
    if x >= 0.01 {
        format!("{x:.2}")
    } else {
        format!("{x:.2e}")
    }
}

/// Table 2: the measured flip statistics.
pub fn table2() -> TableSpec {
    TableSpec { stats: FlipStats::paper_default(), timing: AttackTiming::default() }
}

/// Table 3: the pessimistic technology-scaling scenario.
pub fn table3() -> TableSpec {
    TableSpec { stats: FlipStats::pessimistic(), timing: AttackTiming::default() }
}

impl fmt::Display for EvalRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}GB/{}MB {:?}: E={} days={:.1}",
            self.phys_gib,
            self.ptp_mib,
            self.restriction,
            fmt_count(self.exploitable),
            self.attack_days
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_twelve_cells() {
        assert_eq!(table2().generate().len(), 12);
        assert_eq!(table3().generate().len(), 12);
    }

    #[test]
    fn render_includes_every_memory_size() {
        let s = table2().render("Table 2");
        assert!(s.contains("8GB"));
        assert!(s.contains("16GB"));
        assert!(s.contains("32GB"));
        assert!(s.contains("Exploitable"));
    }

    #[test]
    fn table3_counts_exceed_table2() {
        let t2 = table2().generate();
        let t3 = table3().generate();
        for (a, b) in t2.iter().zip(t3.iter()) {
            assert!(b.exploitable > a.exploitable, "{a} vs {b}");
        }
    }

    #[test]
    fn restricted_attack_times_match_between_tables() {
        // The paper notes restricted-case times are identical in Tables 2
        // and 3 (conditioned on exactly one exploitable location).
        let t2 = table2().generate();
        let t3 = table3().generate();
        for (a, b) in t2.iter().zip(t3.iter()) {
            if a.restriction == Restriction::AtLeastTwoZeros {
                assert!((a.attack_days - b.attack_days).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn display_row() {
        let row = table2().generate()[0];
        assert!(row.to_string().contains("8GB/32MB"));
    }
}
