//! Property-based tests of the analytic security model.

use cta_analysis::{
    expected_exploitable_ptes, p_exploitable, AttackTiming, FlipStats, Restriction, SystemShape,
};
use proptest::prelude::*;

fn stats_strategy() -> impl Strategy<Value = FlipStats> {
    (1e-6f64..1e-2, 1e-4f64..0.5).prop_map(|(pf, p01)| FlipStats {
        pf,
        p0_to_1: p01,
        p1_to_0: 1.0 - p01,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// P is a probability.
    #[test]
    fn p_exploitable_is_a_probability(n in 1u32..24, stats in stats_strategy()) {
        for r in [Restriction::None, Restriction::AtLeastTwoZeros] {
            let p = p_exploitable(n, &stats, r);
            prop_assert!((0.0..=1.0).contains(&p), "p={p}");
        }
    }

    /// The restriction can only reduce exposure.
    #[test]
    fn restriction_monotone(n in 2u32..24, stats in stats_strategy()) {
        let none = p_exploitable(n, &stats, Restriction::None);
        let two = p_exploitable(n, &stats, Restriction::AtLeastTwoZeros);
        prop_assert!(two <= none);
    }

    /// P grows with Pf (more vulnerable cells) and with P0→1.
    #[test]
    fn p_monotone_in_parameters(n in 2u32..16, stats in stats_strategy()) {
        let base = p_exploitable(n, &stats, Restriction::None);
        let more_pf = FlipStats { pf: stats.pf * 2.0, ..stats };
        prop_assert!(p_exploitable(n, &more_pf, Restriction::None) >= base);
        let more_up = FlipStats {
            p0_to_1: (stats.p0_to_1 * 2.0).min(1.0),
            p1_to_0: 1.0 - (stats.p0_to_1 * 2.0).min(1.0),
            ..stats
        };
        prop_assert!(p_exploitable(n, &more_up, Restriction::None) >= base);
    }

    /// Anti-cells (inverted stats) are always at least as exploitable as
    /// true-cells — the defense's reason for existing.
    #[test]
    fn anti_cells_never_better(n in 1u32..16, stats in stats_strategy()) {
        let true_cells = p_exploitable(n, &stats, Restriction::None);
        let anti_cells = p_exploitable(n, &stats.inverted(), Restriction::None);
        // Inversion swaps p0_to_1 and p1_to_0; with p01 < 0.5 the inverted
        // (anti) direction has more upward mass.
        if stats.p0_to_1 < 0.5 {
            prop_assert!(anti_cells >= true_cells);
        }
    }

    /// Expected attack time decreases as the expected exploitable count
    /// rises, and never exceeds the worst case.
    #[test]
    fn attack_time_monotone_in_exposure(e1 in 1.0f64..100.0, delta in 1.0f64..100.0) {
        let shape = SystemShape::new(8 << 30, 32 << 20);
        let t = AttackTiming::default();
        let fast = t.expected_days(&shape, e1 + delta);
        let slow = t.expected_days(&shape, e1);
        prop_assert!(fast <= slow);
        prop_assert!(slow <= t.worst_case_days(&shape));
    }

    /// More physical memory ⇒ more target pages ⇒ longer worst case.
    #[test]
    fn worst_case_grows_with_memory(gb_exp in 3u32..8) {
        let t = AttackTiming::default();
        let small = SystemShape::new(1u64 << (30 + gb_exp), 32 << 20);
        let large = SystemShape::new(1u64 << (31 + gb_exp), 32 << 20);
        prop_assert!(t.worst_case_days(&large) > t.worst_case_days(&small));
    }

    /// Expected counts scale linearly with the PTE population for fixed n:
    /// doubling the zone (at fixed indicator width by doubling memory too)
    /// doubles the expectation.
    #[test]
    fn expectation_scales_with_zone(stats in stats_strategy()) {
        let a = SystemShape::new(8 << 30, 32 << 20);
        let b = SystemShape::new(16 << 30, 64 << 20); // same n, twice the PTEs
        prop_assert_eq!(a.indicator_bits(), b.indicator_bits());
        let ea = expected_exploitable_ptes(&a, &stats, Restriction::None);
        let eb = expected_exploitable_ptes(&b, &stats, Restriction::None);
        prop_assert!((eb / ea - 2.0).abs() < 1e-9);
    }
}
