//! Rendering and merging of `BENCH_baseline.json` sections.
//!
//! `bench-baseline` appends one single-line section per `--label` into a
//! JSON object at the repo root. The merge used to be line-based — any line
//! starting with `"` was taken for a label — so a pretty-printed section
//! (or any hand edit) corrupted the file with `{,` artifacts and dropped
//! closing braces. The merge now parses the existing file with the strict
//! parser from [`cta_telemetry::json`] and re-renders every preserved
//! section, so the output is valid if and only if the whole file is.
//!
//! The one-line-per-label shape is load-bearing: `scripts/check.sh` diffs
//! the previous `"check"` section against the fresh one with `grep`, so
//! each label must stay on a single line.

use std::fmt::Write as _;
use std::path::Path;

use cta_telemetry::json::{self, JsonError};

/// Serializes one label's section body (everything after `"label": `).
#[must_use]
pub fn render_section(quick: bool, metrics: &[(String, f64)]) -> String {
    let mut body = format!("{{\"quick\": {quick}, \"metrics\": {{");
    for (i, (key, value)) in metrics.iter().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        let _ = write!(body, "\"{key}\": {value:.3}");
    }
    body.push_str("}}");
    body
}

/// Merges `section` (a rendered section body) under `label` into the
/// baseline document `existing`, preserving every other label's section in
/// order. Re-running a label replaces its section in place; a new label
/// appends at the end.
///
/// # Errors
///
/// [`JsonError`] if `existing` is not a strict-JSON object, or if the
/// merged result fails to re-parse (e.g. a label or metric name that
/// breaks the JSON string syntax) — the file on disk is never half-valid.
pub fn merge(existing: Option<&str>, label: &str, section: &str) -> Result<String, JsonError> {
    let mut lines: Vec<(String, String)> = Vec::new();
    let mut replaced = false;
    if let Some(text) = existing.filter(|t| !t.trim().is_empty()) {
        let doc = json::parse(text)?;
        let members = doc.as_object().ok_or(JsonError {
            line: 1,
            column: 1,
            message: "baseline document must be a JSON object".into(),
        })?;
        for (key, value) in members {
            if key == label {
                lines.push((key.clone(), section.to_string()));
                replaced = true;
            } else {
                lines.push((key.clone(), value.to_compact_string()));
            }
        }
    }
    if !replaced {
        lines.push((label.to_string(), section.to_string()));
    }

    let mut out = String::from("{\n");
    for (i, (key, body)) in lines.iter().enumerate() {
        let _ = write!(out, "  \"{key}\": {body}");
        if i + 1 < lines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("}\n");

    // The file must never be written half-valid: prove the merged result
    // parses before handing it back.
    json::parse(&out)?;
    Ok(out)
}

/// Merges `section` under `label` into the baseline file at `path`.
///
/// # Panics
///
/// Panics (with the parse position) if the existing file is corrupt —
/// silently discarding recorded history would be worse — or on I/O errors.
pub fn merge_into_file(path: &Path, label: &str, section: &str) {
    let existing = std::fs::read_to_string(path).ok();
    let merged = merge(existing.as_deref(), label, section).unwrap_or_else(|e| {
        panic!("{} is not strict JSON ({e}); fix or remove it before re-running", path.display())
    });
    std::fs::write(path, merged).expect("write baseline file");
}

#[cfg(test)]
mod tests {
    use super::*;
    use cta_telemetry::json::JsonValue;

    fn metrics() -> Vec<(String, f64)> {
        vec![
            ("pte_walk_cold_stock_ns".into(), 141.9174),
            ("dram_read_u64_ops_per_sec".into(), 18_374_516.413),
            ("mc_serial_hits".into(), 936.0),
            ("table4_smoke_mean_sim_delta_pct".into(), 0.0),
        ]
    }

    #[test]
    fn emitter_output_round_trips_through_the_strict_parser() {
        let section = render_section(true, &metrics());
        let doc = merge(None, "check", &section).unwrap();
        let parsed = json::parse(&doc).expect("emitted baseline must be strict JSON");
        let check = parsed.get("check").unwrap();
        assert_eq!(check.get("quick"), Some(&JsonValue::Bool(true)));
        let m = check.get("metrics").unwrap();
        assert_eq!(m.get("pte_walk_cold_stock_ns").unwrap().as_f64(), Some(141.917));
        assert_eq!(m.get("mc_serial_hits").unwrap().as_f64(), Some(936.0));
        assert_eq!(m.as_object().unwrap().len(), 4);
    }

    #[test]
    fn merge_preserves_other_labels_and_replaces_in_place() {
        let a = merge(None, "before", &render_section(false, &metrics())).unwrap();
        let b = merge(Some(&a), "after", &render_section(false, &metrics())).unwrap();
        let c = merge(Some(&b), "check", &render_section(true, &metrics())).unwrap();
        // Re-running a label must replace its section, not duplicate it.
        let d = merge(Some(&c), "after", &render_section(true, &metrics())).unwrap();
        let parsed = json::parse(&d).unwrap();
        let keys: Vec<&str> = parsed.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["before", "after", "check"], "order preserved, no duplicates");
        assert_eq!(parsed.get("after").unwrap().get("quick"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn each_label_stays_on_one_line() {
        // scripts/check.sh extracts the `"check"` section with grep; the
        // format contract is one line per label.
        let a = merge(None, "before", &render_section(false, &metrics())).unwrap();
        let b = merge(Some(&a), "check", &render_section(true, &metrics())).unwrap();
        let check_lines: Vec<&str> =
            b.lines().filter(|l| l.trim_start().starts_with("\"check\"")).collect();
        assert_eq!(check_lines.len(), 1);
        assert!(check_lines[0].contains("\"pte_walk_cold_stock_ns\": 141.917"));
    }

    #[test]
    fn corrupt_existing_file_is_rejected_not_discarded() {
        // The exact corruption the line-based merge used to produce.
        let corrupt = "{\n  \"before\": {,\n    \"quick\": false,\n}\n";
        let err = merge(Some(corrupt), "check", &render_section(true, &metrics()));
        assert!(err.is_err(), "corrupt history must fail loudly, not vanish");
    }

    #[test]
    fn empty_or_missing_file_starts_fresh() {
        for existing in [None, Some(""), Some("  \n")] {
            let doc = merge(existing, "run", &render_section(false, &metrics())).unwrap();
            assert!(json::parse(&doc).is_ok());
        }
    }
}
