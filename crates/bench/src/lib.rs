//! Shared harness code for the experiment binaries and benchmarks.
//!
//! Every table and figure of the paper's evaluation has a runnable
//! regenerator under `src/bin/` (see `DESIGN.md` section 5 and
//! `EXPERIMENTS.md` for the index):
//!
//! | binary | regenerates |
//! |---|---|
//! | `exp-table1` | Table 1 (attack catalog) |
//! | `exp-table2` | Table 2 (exploitable PTEs + attack time) |
//! | `exp-table3` | Table 3 (pessimistic scaling) |
//! | `exp-table4` | Table 4 (workload overhead) |
//! | `exp-fig1` | Figure 1 (bank organization + victim rows) |
//! | `exp-fig2` | Figure 2 (cell-type identification) |
//! | `exp-fig3` | Figure 3 (end-to-end privilege escalation) |
//! | `exp-fig4` | Figure 4 (low-water-mark placement) |
//! | `exp-fig5` | Figure 5 (monotonic-pointer corruption directions) |
//! | `exp-fig6` | Figure 6 (zone layouts) |
//! | `exp-fig7` | Figure 7 (buddy allocator dispatch under CTA) |
//! | `exp-fig8` | Figure 8 (ZONE_TC sub-zone map) |
//! | `exp-anti-baseline` | §5 anti-cell ZONE_PTP baseline |
//! | `exp-capacity` | §6.2 capacity-loss model |
//! | `exp-multilevel` | §7 multi-level PTP zones |
//! | `exp-hypervisor` | §7 VM support (`ZONE_HYPERVISOR`) |
//! | `exp-ext` | §8 extensions (permvec / coldboot / popcount) |
//! | `exp-ecc` | §2.3 context: SECDED vs RowHammer |
//! | `exp-anvil` | §5 coupling: CTA + activity detection |
//! | `exp-catt` | §2.5 baseline: CATT and its two bypasses |
//! | `exp-matrix` | attacks × defenses × cell layouts cross-product |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;

use std::path::PathBuf;

use cta_core::{DefenseSpec, SystemBuilder};
use cta_dram::DisturbanceParams;
use cta_telemetry::Counters;
use cta_vm::Kernel;

/// Prints a section header in the experiment binaries' house style.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints a key/value line.
pub fn kv(key: &str, value: impl std::fmt::Display) {
    println!("  {key:<44} {value}");
}

/// The standard small machine used by end-to-end attack experiments:
/// 8 MiB DRAM, 4 KiB rows, alternation every 64 rows, elevated `pf` so
/// flips are observable at simulation scale.
pub fn standard_builder(seed: u64, protected: bool) -> SystemBuilder {
    SystemBuilder::new(8 << 20)
        .ptp_bytes(512 * 1024)
        .seed(seed)
        .protected(protected)
        .disturbance(DisturbanceParams { pf: 0.05, ..DisturbanceParams::default() })
}

/// Builds the standard machine.
///
/// # Panics
///
/// Panics if the machine cannot boot — experiment binaries treat that as
/// fatal configuration error.
pub fn standard_machine(seed: u64, protected: bool) -> Kernel {
    standard_builder(seed, protected).build().expect("machine boots")
}

/// The standard machine with a software defense attached — what the
/// defense-facing experiments (`exp-catt`, `exp-anvil`, `exp-matrix`)
/// share instead of hand-rolling kernel configs per binary.
pub fn defended_builder(seed: u64, protected: bool, defense: DefenseSpec) -> SystemBuilder {
    standard_builder(seed, protected).defense(defense)
}

/// Builds the standard defended machine.
///
/// # Panics
///
/// Panics if the machine cannot boot — experiment binaries treat that as
/// fatal configuration error.
pub fn defended_machine(seed: u64, protected: bool, defense: DefenseSpec) -> Kernel {
    defended_builder(seed, protected, defense).build().expect("defended machine boots")
}

/// Directory the experiment binaries write telemetry snapshots into:
/// `$CTA_TELEMETRY_DIR` when set, otherwise `telemetry/` at the repo root.
pub fn telemetry_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CTA_TELEMETRY_DIR") {
        return PathBuf::from(dir);
    }
    // CARGO_MANIFEST_DIR = <repo>/crates/bench, baked in at compile time.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("telemetry")
}

/// Directory holding the golden campaign recordings the replay gate
/// verifies: `$CTA_RECORDINGS_DIR` when set, otherwise
/// `fixtures/recordings/` at the repo root.
pub fn recordings_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CTA_RECORDINGS_DIR") {
        return PathBuf::from(dir);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("fixtures").join("recordings")
}

/// Writes `counters` to `<telemetry_dir>/<label>.telemetry.json` and prints
/// the path, so every experiment run leaves a machine-readable artifact
/// next to its human-readable output.
///
/// # Panics
///
/// Panics if the snapshot cannot be written — experiment binaries treat an
/// unwritable results directory as a fatal configuration error.
pub fn emit_telemetry(counters: &Counters) -> PathBuf {
    let path = telemetry_dir().join(format!("{}.telemetry.json", counters.label()));
    counters.write_to(&path).expect("telemetry snapshot is writable");
    let shown = path.canonicalize().unwrap_or_else(|_| path.clone());
    println!("\ntelemetry: {}", shown.display());
    path
}
