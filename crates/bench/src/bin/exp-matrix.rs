//! The defense cross-product: every attack × every defense in the
//! [`DefenseSpec`] catalog × three cell layouts, on the shared standard
//! machine.
//!
//! Each cell runs the attack over a fixed seed set and reports its
//! empirical exploit probability (successes / seeds); the footer adds
//! Table-4-style per-defense overhead rows measured on benign workloads.
//! The matrix is what the `Defense` trait buys: CATT (allocation seam),
//! ANVIL, SoftTRR, and BlockHammer (activation seam) all plug into the
//! same machines the attacks run against, with no per-defense wiring in
//! the attack code.
//!
//! Success criteria per attack: the three `cta-attack` drivers use their
//! own [`cta_attack::AttackOutcome::success`] (secret read via PTE
//! self-reference); the inline `hammer` attack counts the exploit
//! *precursor* — at least one disturbance flip inside the victim's
//! page-table rows.
//!
//! `--quick` shrinks the seed set (2 instead of 4) for the CI gate.

use std::collections::BTreeMap;

use cta_attack::{BruteForceCtaAttack, SprayAttack, TemplatingAttack};
use cta_bench::{defended_builder, emit_telemetry, header, kv};
use cta_core::DefenseSpec;
use cta_dram::CellType;
use cta_mem::PAGE_SIZE;
use cta_telemetry::Counters;
use cta_vm::{Kernel, Pid, VirtAddr, VmError};
use cta_workloads::{spec2006, Runner};

const TOTAL: u64 = 8 << 20;
const SEEDS_FULL: &[u64] = &[11, 12, 13, 14];
const SEEDS_QUICK: &[u64] = &[11, 12];

/// A cell layout the matrix runs under: alternation period and polarity
/// of row 0.
#[derive(Debug, Clone, Copy)]
struct Layout {
    name: &'static str,
    period_rows: u64,
    first: CellType,
}

const LAYOUTS: &[Layout] = &[
    Layout { name: "alt64", period_rows: 64, first: CellType::True },
    Layout { name: "alt16", period_rows: 16, first: CellType::True },
    // One giant run: every row true-cell (all flips 1→0).
    Layout { name: "true-only", period_rows: 1 << 40, first: CellType::True },
];

/// The attack axis.
#[derive(Debug, Clone, Copy)]
enum Attack {
    /// PTE-spray privilege escalation (small variant).
    Spray,
    /// Drammer-style templating (small variant).
    Templating,
    /// Budgeted Algorithm-1 brute force.
    Brute,
    /// Direct PT-row disturbance: spray page tables, hammer own rows,
    /// succeed if any flip lands in a page-table row.
    Hammer,
}

const ATTACKS: &[Attack] = &[Attack::Spray, Attack::Templating, Attack::Brute, Attack::Hammer];

impl Attack {
    fn name(self) -> &'static str {
        match self {
            Attack::Spray => "spray",
            Attack::Templating => "templating",
            Attack::Brute => "brute",
            Attack::Hammer => "hammer",
        }
    }

    /// Runs the attack against one machine; `true` means exploited.
    fn run(self, kernel: &mut Kernel) -> Result<bool, VmError> {
        match self {
            Attack::Spray => Ok(SprayAttack::default().run(kernel)?.success()),
            Attack::Templating => {
                let attack =
                    TemplatingAttack { arena_pages: 96, max_attempts: 4, flush_per_probe: false };
                Ok(attack.run(kernel)?.success())
            }
            Attack::Brute => {
                let attack = BruteForceCtaAttack {
                    fill_regions: 8,
                    walks_per_row: 64,
                    target_page_budget: 1,
                };
                let (outcome, _report) = attack.run(kernel)?;
                Ok(outcome.success())
            }
            Attack::Hammer => run_hammer_attack(kernel),
        }
    }
}

/// Disturbance flips that landed inside the process's page-table rows.
fn pt_row_flips(kernel: &Kernel, pid: Pid) -> u64 {
    let row_bytes = kernel.dram().geometry().row_bytes();
    let pt_rows: std::collections::BTreeSet<u64> = kernel
        .process(pid)
        .expect("proc")
        .pt_pages()
        .iter()
        .map(|(pfn, _)| pfn.addr().0 / row_bytes)
        .collect();
    kernel.dram().stats().flip_log.iter().filter(|f| pt_rows.contains(&f.row.0)).count() as u64
}

/// The inline hammer attack: fill page tables by spraying a file, then
/// hammer the rows backing the attacker's own pages at full threshold.
/// On a stock machine the attacker's frames interleave with page-table
/// frames, so PT rows take disturbance; a defense earns its column by
/// preventing exactly that.
fn run_hammer_attack(kernel: &mut Kernel) -> Result<bool, VmError> {
    let pid = kernel.create_process(false)?;
    let file = kernel.create_file(16 * PAGE_SIZE)?;
    let mut regions = Vec::new();
    for i in 0..12u64 {
        let va = VirtAddr(0x4000_0000 + i * (2 << 20));
        if kernel.mmap_file(pid, va, file, true).is_err() {
            break;
        }
        regions.push(va);
    }
    for region in regions.iter().take(3) {
        for page in 0..4u64 {
            let va = region.offset(page * PAGE_SIZE);
            let interval = kernel.dram().config().refresh_interval_ns;
            kernel.dram_mut().advance(interval);
            if let Ok(row) = kernel.row_of_virt(pid, va) {
                let threshold = kernel.dram().config().disturbance.hammer_threshold;
                let _ = kernel.dram_mut().hammer(row, threshold);
            }
            kernel.flush_tlb();
        }
    }
    Ok(pt_row_flips(kernel, pid) > 0)
}

/// One machine of the matrix: standard size/disturbance, unprotected (the
/// matrix measures the defense zoo, not CTA), with the cell layout and
/// defense of the cell.
fn machine(seed: u64, layout: Layout, defense: DefenseSpec) -> Kernel {
    defended_builder(seed, false, defense)
        .cell_period(layout.period_rows)
        .first_cell_type(layout.first)
        .build()
        .expect("matrix machine boots")
}

/// Folds a defended kernel's defense counters into the aggregate view.
fn harvest_defense_counters(kernel: &Kernel, agg: &mut BTreeMap<&'static str, u64>) {
    let stats = kernel.dram().defense_stats();
    *agg.entry("activations_denied").or_insert(0) += stats.activations_denied;
    *agg.entry("targeted_refreshes").or_insert(0) += stats.targeted_refreshes;
    if let Some(defense) = kernel.dram().defense() {
        for (key, value) in defense.counters() {
            *agg.entry(key).or_insert(0) += value;
        }
    }
}

/// Per-defense benign overhead: total simulated time of two SPEC-shaped
/// workloads on a defended machine vs the undefended one, as Δ%.
fn overhead_delta_percent(defense: DefenseSpec, baseline_ns: u64) -> f64 {
    let t = benign_sim_ns(defense);
    (t as f64 - baseline_ns as f64) / baseline_ns as f64 * 100.0
}

fn benign_sim_ns(defense: DefenseSpec) -> u64 {
    let mut kernel = machine(7, LAYOUTS[0], defense);
    let runner = Runner { repetitions: 1, seed: 9 };
    let start = kernel.now_ns();
    for spec in spec2006().iter().take(2) {
        runner.run(&mut kernel, spec).expect("benign workload runs");
    }
    kernel.now_ns() - start
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds: &[u64] = if quick { SEEDS_QUICK } else { SEEDS_FULL };
    let defenses = DefenseSpec::catalog(TOTAL);

    // successes[(attack, layout, defense)] over the seed set.
    let mut successes: BTreeMap<(&str, &str, &str), u64> = BTreeMap::new();
    let mut counters_agg: BTreeMap<&'static str, u64> = BTreeMap::new();

    for layout in LAYOUTS {
        header(&format!(
            "Exploit probability, layout {} ({} seeds): successes / seeds",
            layout.name,
            seeds.len()
        ));
        println!(
            "{:<12} {:>8} {:>8} {:>8} {:>8} {:>12}",
            "attack", "none", "catt", "anvil", "softtrr", "blockhammer"
        );
        for attack in ATTACKS {
            let mut row = format!("{:<12}", attack.name());
            for defense in &defenses {
                let mut wins = 0u64;
                for &seed in seeds {
                    let mut kernel = machine(seed, *layout, *defense);
                    if attack.run(&mut kernel).expect("attack runs") {
                        wins += 1;
                    }
                    harvest_defense_counters(&kernel, &mut counters_agg);
                }
                successes.insert((attack.name(), layout.name, defense.name()), wins);
                let width = if defense.name() == "blockhammer" { 12 } else { 8 };
                row.push_str(&format!("{:>width$}", format!("{wins}/{}", seeds.len())));
            }
            println!("{row}");
        }
    }

    // The refactor's earn-your-keep assertions: the two new defenses must
    // measurably reduce exploit probability somewhere in the matrix.
    for new_defense in ["softtrr", "blockhammer"] {
        let reduced = ATTACKS.iter().any(|attack| {
            LAYOUTS.iter().any(|layout| {
                let none = successes[&(attack.name(), layout.name, "none")];
                let defended = successes[&(attack.name(), layout.name, new_defense)];
                none > 0 && defended < none
            })
        });
        assert!(reduced, "{new_defense} must beat `none` in at least one matrix cell");
    }

    header("Benign overhead vs no defense (2 SPEC-shaped workloads, sim time)");
    let baseline_ns = benign_sim_ns(DefenseSpec::None);
    let mut overheads: BTreeMap<&'static str, f64> = BTreeMap::new();
    for defense in defenses.iter().filter(|d| !d.is_none()) {
        let delta = overhead_delta_percent(*defense, baseline_ns);
        overheads.insert(defense.name(), delta);
        kv(&format!("{} Δ sim-time", defense.name()), format!("{delta:+.3}%"));
    }

    let mut tel = Counters::new("exp-matrix");
    tel.set_u64("matrix", "attacks", ATTACKS.len() as u64);
    tel.set_u64("matrix", "defenses", defenses.len() as u64);
    tel.set_u64("matrix", "layouts", LAYOUTS.len() as u64);
    tel.set_u64("matrix", "cells", (ATTACKS.len() * defenses.len() * LAYOUTS.len()) as u64);
    tel.set_u64("matrix", "seeds_per_cell", seeds.len() as u64);
    tel.set_bool("matrix", "quick", quick);
    for key in ["softtrr_refreshes", "blockhammer_blacklisted", "anvil_alarms"] {
        tel.set_u64("defense", key, counters_agg.get(key).copied().unwrap_or(0));
    }
    tel.set_u64(
        "defense",
        "activations_denied",
        counters_agg.get("activations_denied").copied().unwrap_or(0),
    );
    for (name, delta) in &overheads {
        tel.set_f64("overhead", &format!("{name}_delta_percent"), *delta);
    }
    for ((attack, layout, defense), wins) in &successes {
        tel.set_u64(&format!("{attack}-{layout}"), defense, *wins);
    }
    emit_telemetry(&tel);

    println!("\nOK: SoftTRR and BlockHammer each suppress at least one attack the stock");
    println!("machine loses to; the whole zoo ran through one Defense trait, zero");
    println!("per-defense wiring in the attack drivers.");
}
