//! Regenerates Figure 6: the x86 (32-bit) and x86-64 physical memory zone
//! layouts, plus the CTA variant with ZONE_PTP at the top.

use cta_bench::{emit_telemetry, header, kv};
use cta_dram::{AddressMapping, CellLayout, CellTypeMap, DramGeometry};
use cta_mem::{MemoryMap, PtpLayout, PtpSpec};
use cta_telemetry::Counters;

fn print_map(map: &MemoryMap) {
    for (kind, specs) in map.zones() {
        for spec in specs {
            let start = spec.pfn_range.start * 4096;
            let end = spec.pfn_range.end * 4096;
            kv(
                &format!("{kind}{}", if spec.trusted_only { " [trusted stripe]" } else { "" }),
                format!("{:#012x} .. {:#012x} ({} MiB)", start, end, (end - start) >> 20),
            );
        }
    }
}

fn main() {
    header("Figure 6a: 32-bit x86 zones (2 GiB machine)");
    print_map(&MemoryMap::x86_32(2 << 30));

    header("Figure 6b: x86-64 zones (8 GiB machine)");
    print_map(&MemoryMap::x86_64(8 << 30));

    header("x86-64 zones with CTA (8 GiB, 32 MiB ZONE_PTP)");
    let geometry = DramGeometry::new(128 * 1024, 8192, 8, AddressMapping::RowLinear);
    let cells = CellTypeMap::from_layout(&geometry, CellLayout::alternating_512());
    let layout =
        PtpLayout::build(&cells, 8 << 30, &PtpSpec::paper_default()).expect("layout feasible");
    kv("low water mark", format!("{:#012x}", layout.low_water_mark()));
    kv(
        "capacity loss (anti rows reserved)",
        format!(
            "{} MiB ({:.2}%)",
            layout.capacity_loss_bytes() >> 20,
            layout.capacity_loss_fraction() * 100.0
        ),
    );

    let mut tel = Counters::new("exp-fig6");
    tel.set_u64("zones", "low_water_mark", layout.low_water_mark());
    tel.set_u64("zones", "capacity_loss_bytes", layout.capacity_loss_bytes());
    tel.set_f64("zones", "capacity_loss_fraction", layout.capacity_loss_fraction());
    let cta_map = MemoryMap::x86_64(8 << 30).with_cta(layout);
    tel.set_u64("zones", "cta_zone_count", cta_map.zones().len() as u64);
    print_map(&cta_map);
    emit_telemetry(&tel);
}
