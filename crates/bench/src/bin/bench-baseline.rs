//! `bench-baseline` — the machine-readable performance record.
//!
//! Runs the repo's headline hot paths — PTE-walk latency (cold, TLB-hit,
//! and PSC-warm), DRAM `read_u64` throughput, Monte Carlo samples/sec
//! (serial and sharded), batched translation sweeps, and a Table 4
//! harness smoke — plus allocator throughput, and merges
//! the results into `BENCH_baseline.json` at the repo root under a
//! `--label` key. Re-running with a different label preserves the other
//! labels' sections, so before/after trajectories accumulate in one file
//! (see EXPERIMENTS.md for the field reference).
//!
//! Usage:
//!
//! ```text
//! bench-baseline [--label <name>] [--quick] [--out <path>]
//! ```
//!
//! `--quick` shrinks every workload so the whole run finishes well under
//! 60 s — the smoke-test mode wired into `scripts/check.sh`.

use std::time::Instant;

use cta_analysis::{
    monte_carlo_p_exploitable, monte_carlo_p_exploitable_sharded, FlipStats, Restriction,
};
use cta_attack::{
    record_campaign, run_campaign, run_forked_campaign, CampaignExecutor, CampaignRequest,
    ExecutorConfig, RecordedAttack, RecordingSpec, ReplayTarget, SprayAttack, TenantLimits,
    TrialIsolation,
};
use cta_bench::{emit_telemetry, header, kv};
use cta_core::SystemBuilder;
use cta_dram::{DisturbanceParams, DramConfig, DramModule, StoreBackend};
use cta_mem::PAGE_SIZE;
use cta_telemetry::Counters;
use cta_vm::{Access, Kernel, VirtAddr};
use cta_workloads::{record_overhead_rows, spec2006, Runner};

const MC_SEED: u64 = 7;
const MC_N: u32 = 8;

struct Options {
    label: String,
    quick: bool,
    out: std::path::PathBuf,
}

fn parse_args() -> Options {
    let mut label = "run".to_string();
    let mut quick = false;
    let mut out = default_out_path();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--label" => label = args.next().expect("--label needs a value"),
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out needs a value").into(),
            "--help" | "-h" => {
                println!("usage: bench-baseline [--label <name>] [--quick] [--out <path>]");
                std::process::exit(0);
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    Options { label, quick, out }
}

/// `BENCH_baseline.json` lives at the repo root, two levels above this
/// crate's manifest.
fn default_out_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_baseline.json")
}

fn flip_free_machine(protected: bool) -> Kernel {
    // Flip-free module: the walk benchmark drives millions of walks and
    // must not RowHammer its own page tables (same rationale as
    // `benches/vm.rs`); timing paths are identical.
    SystemBuilder::new(16 << 20)
        .ptp_bytes(1 << 20)
        .seed(3)
        .protected(protected)
        .disturbance(DisturbanceParams { pf: 0.0, ..DisturbanceParams::default() })
        .build()
        .expect("machine boots")
}

/// Times `f` over `iters` calls and returns mean ns/call.
fn time_per_iter(iters: u64, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Like [`time_per_iter`], but runs `warmup` untimed calls first. The
/// nanosecond-scale walk benches (`pte_walk_*`, `translate_tlb_hit_*`)
/// need this: their first iterations pay one-off costs — lazy row
/// materialization, cache and branch-predictor fill, CPU frequency
/// ramp-up — large enough relative to a ~100 ns steady-state walk to
/// swing the recorded mean and trip the drift watch between otherwise
/// identical runs.
fn time_per_iter_warm(warmup: u64, iters: u64, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    time_per_iter(iters, f)
}

fn bench_walk_latency(quick: bool, metrics: &mut Vec<(String, f64)>) {
    let iters = if quick { 20_000 } else { 200_000 };
    for protected in [false, true] {
        let label = if protected { "cta" } else { "stock" };
        let mut k = flip_free_machine(protected);
        let pid = k.create_process(false).unwrap();
        let va = VirtAddr(0x4000_0000);
        k.mmap_anonymous(pid, va, 8 * PAGE_SIZE, true).unwrap();

        let cold = time_per_iter_warm(iters / 10, iters, || {
            k.flush_tlb();
            std::hint::black_box(k.translate(pid, va, Access::user_read()).unwrap());
        });
        metrics.push((format!("pte_walk_cold_{label}_ns"), cold));

        let hot = time_per_iter_warm(iters / 10, iters, || {
            std::hint::black_box(k.translate(pid, va, Access::user_read()).unwrap());
        });
        metrics.push((format!("translate_tlb_hit_{label}_ns"), hot));
    }
}

fn bench_dram_throughput(quick: bool, metrics: &mut Vec<(String, f64)>) {
    let iters = if quick { 200_000 } else { 2_000_000 };
    let mut m = DramModule::new(DramConfig::small_test());
    m.fill(0, 64 * 1024, 0xAB).unwrap();

    let mut addr = 0u64;
    let per_read = time_per_iter(iters, || {
        std::hint::black_box(m.read_u64(addr % 4000).unwrap());
        addr += 8;
    });
    metrics.push(("dram_read_u64_ops_per_sec".into(), 1e9 / per_read));

    let mut addr = 0u64;
    let per_write = time_per_iter(iters, || {
        m.write_u64(addr % 200_000, 0xDEAD_BEEF).unwrap();
        addr += 8;
    });
    metrics.push(("dram_write_u64_ops_per_sec".into(), 1e9 / per_write));

    let page_iters = iters / 50;
    let mut addr = 2048u64;
    let per_page = time_per_iter(page_iters, || {
        std::hint::black_box(m.read(addr % 60_000, 4096).unwrap());
        addr += 4096;
    });
    metrics.push(("dram_read_page_cross_row_mb_per_sec".into(), 4096.0 * 1e9 / per_page / 1e6));
}

fn bench_alloc_throughput(quick: bool, metrics: &mut Vec<(String, f64)>) {
    use cta_dram::{AddressMapping, CellLayout, CellType, CellTypeMap, DramGeometry};
    use cta_mem::{GfpFlags, MemoryMap, PtpLayout, PtpSpec, ZonedAllocator};
    let iters = if quick { 100_000 } else { 1_000_000 };
    let geometry = DramGeometry::new(64 * 1024, 1024, 1, AddressMapping::RowLinear);
    let cells = CellTypeMap::from_layout(
        &geometry,
        CellLayout::Alternating { period_rows: 64, first: CellType::True },
    );
    let layout =
        PtpLayout::build(&cells, 64 << 20, &PtpSpec::paper_default().with_size(4 << 20)).unwrap();
    let mut alloc = ZonedAllocator::new(MemoryMap::x86_64(64 << 20).with_cta(layout));
    let per_cycle = time_per_iter(iters, || {
        let p = alloc.alloc_pages(GfpFlags::PTP, 0).unwrap();
        alloc.free_pages(p, 0).unwrap();
    });
    metrics.push(("alloc_free_ptp_page_pairs_per_sec".into(), 1e9 / per_cycle));
}

fn bench_monte_carlo(quick: bool, metrics: &mut Vec<(String, f64)>) {
    let stats = FlipStats { pf: 1e-3, p0_to_1: 0.3, p1_to_0: 0.7 };
    let samples: u64 = if quick { 400_000 } else { 4_000_000 };

    let start = Instant::now();
    let serial = monte_carlo_p_exploitable(MC_N, &stats, Restriction::None, samples, MC_SEED);
    let serial_rate = samples as f64 / start.elapsed().as_secs_f64();
    metrics.push(("mc_serial_samples_per_sec".into(), serial_rate));
    metrics.push(("mc_serial_hits".into(), serial.hits as f64));

    // One shard reproduces the serial stream bit for bit — record the
    // identity so the baseline file itself witnesses the contract.
    let one =
        monte_carlo_p_exploitable_sharded(MC_N, &stats, Restriction::None, samples, MC_SEED, 1);
    assert_eq!(one.hits, serial.hits, "shards=1 must be bit-identical to serial");
    metrics.push(("mc_shards1_hits".into(), one.hits as f64));

    // Sharded across the host's cores (≥ 2 shards so the parallel path is
    // exercised even on a single-core runner).
    let shards = cta_parallel::worker_count(0).max(2) as u32;
    let start = Instant::now();
    let sharded = monte_carlo_p_exploitable_sharded(
        MC_N,
        &stats,
        Restriction::None,
        samples,
        MC_SEED,
        shards,
    );
    let sharded_rate = samples as f64 / start.elapsed().as_secs_f64();
    metrics.push(("mc_sharded_shards".into(), shards as f64));
    metrics.push(("mc_sharded_samples_per_sec".into(), sharded_rate));
    metrics.push(("mc_sharded_hits".into(), sharded.hits as f64));
}

fn bench_table4_smoke(quick: bool, metrics: &mut Vec<(String, f64)>, tel: &mut Counters) {
    let specs = spec2006();
    let smoke: Vec<_> = specs.iter().take(if quick { 2 } else { 4 }).collect();
    let runner = Runner { repetitions: 2, seed: 0x1234 };
    let machine = |protected: bool| {
        SystemBuilder::new(16 << 20)
            .ptp_bytes(1 << 20)
            .seed(0x7AB1E4)
            .protected(protected)
            .build()
            .expect("machine boots")
    };

    let start = Instant::now();
    let mut sim_delta_sum = 0.0;
    let mut serial_rows = Vec::new();
    for spec in &smoke {
        let row = runner.compare(machine, spec).expect("workload runs");
        sim_delta_sum += row.delta_percent();
        serial_rows.push(row);
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    metrics.push(("table4_smoke_serial_wall_ms".into(), wall_ms));
    metrics.push(("table4_smoke_mean_sim_delta_pct".into(), sim_delta_sum / smoke.len() as f64));

    // The same cells through the parallel harness (threads = cores, min 2
    // so the worker path runs even single-core); simulated results must be
    // bit-identical to the serial loop.
    let owned: Vec<_> = smoke.iter().map(|s| **s).collect();
    let threads = cta_parallel::worker_count(0).max(2);
    let start = Instant::now();
    let parallel_rows = runner.compare_many(machine, &owned, threads).expect("workloads run");
    let parallel_ms = start.elapsed().as_secs_f64() * 1e3;
    for (serial, parallel) in serial_rows.iter().zip(&parallel_rows) {
        assert_eq!(
            serial.baseline_sim_ns.to_bits(),
            parallel.baseline_sim_ns.to_bits(),
            "parallel Table 4 must be bit-identical to serial"
        );
        assert_eq!(serial.cta_sim_ns.to_bits(), parallel.cta_sim_ns.to_bits());
    }
    metrics.push(("table4_smoke_parallel_wall_ms".into(), parallel_ms));
    metrics.push(("table4_smoke_parallel_threads".into(), threads as f64));
    record_overhead_rows(tel, "table4_smoke", &serial_rows);
}

/// Per-backend hot paths: cold PTE-walk latency and the boot-once/
/// fork-per-trial campaign against reboot-per-trial, per
/// [`StoreBackend`]. Fork and reboot results are asserted identical
/// before their rates are recorded, so the speedup the baseline pins is a
/// speedup between provably equivalent computations.
fn bench_backends(quick: bool, metrics: &mut Vec<(String, f64)>) {
    let walk_iters = if quick { 20_000 } else { 100_000 };
    let trials = if quick { 8 } else { 32 };
    let attack = SprayAttack::default();
    for backend in StoreBackend::ALL {
        let name = backend.name();

        // Cold-walk latency, same shape as `bench_walk_latency` stock.
        let mut k = SystemBuilder::new(16 << 20)
            .ptp_bytes(1 << 20)
            .seed(3)
            .disturbance(DisturbanceParams { pf: 0.0, ..DisturbanceParams::default() })
            .backend(backend)
            .build()
            .expect("machine boots");
        let pid = k.create_process(false).unwrap();
        let va = VirtAddr(0x4000_0000);
        k.mmap_anonymous(pid, va, 8 * PAGE_SIZE, true).unwrap();
        let cold = time_per_iter_warm(walk_iters / 10, walk_iters, || {
            k.flush_tlb();
            std::hint::black_box(k.translate(pid, va, Access::user_read()).unwrap());
        });
        metrics.push((format!("pte_walk_cold_{name}_ns"), cold));

        // Campaign: reboot-per-trial vs boot-once/fork-per-trial on the
        // same module (constant seed), identical by determinism. Boot is
        // the realistic profiled-CTA boot — the profiler writes and decays
        // every row, which is exactly the cost forking amortizes away.
        let build = |seed: u64| {
            SystemBuilder::new(8 << 20)
                .ptp_bytes(512 * 1024)
                .seed(seed)
                .protected(true)
                .profile_cells(true)
                .disturbance(DisturbanceParams { pf: 0.05, ..DisturbanceParams::default() })
                .backend(backend)
                .build()
        };
        let seeds = vec![11u64; trials];
        let start = Instant::now();
        let rebooted = run_campaign(&seeds, 1, build, |k| attack.run(k)).expect("campaign runs");
        let reboot_rate = trials as f64 / start.elapsed().as_secs_f64();

        let parent = build(11).expect("parent boots");
        let start = Instant::now();
        let forked =
            run_forked_campaign(&parent, trials, |_, k| attack.run(k)).expect("campaign runs");
        let fork_rate = trials as f64 / start.elapsed().as_secs_f64();
        assert_eq!(forked, rebooted, "fork-per-trial must equal reboot-per-trial ({name})");

        metrics.push((format!("campaign_reboot_{name}_trials_per_sec"), reboot_rate));
        metrics.push((format!("campaign_fork_{name}_trials_per_sec"), fork_rate));
        metrics.push((format!("campaign_fork_speedup_{name}"), fork_rate / reboot_rate));
    }
}

/// The disturbance/decay inner loops, wordwise engine vs the scalar
/// reference, on a dense vulnerability map (`pf = 0.4`, ~13k vulnerable
/// bits per 4 KiB row — the shape where the per-bit scalar scan dominates
/// a hammering campaign). Three throughputs per engine:
///
/// * `disturb_ops_per_sec` — steady-state disturbs of saturated rows (the
///   spray-campaign hot loop: almost no bit fires, but the scalar engine
///   still visits every vulnerable bit while the wordwise engine visits
///   only the compiled mask words);
/// * `hammer_flips_per_sec` — flips delivered when victims are recharged
///   before every burst (the templating hot loop);
/// * `decay_sweep_mb_per_sec` — full-window retention decay across every
///   materialized row after a refresh outage.
///
/// The `_scalar` twins and `flip_engine_*_speedup` ratios make the
/// engine's advantage a recorded, regeneratable number. Both engines are
/// driven through identical deterministic workloads, so the flip counts
/// they produce are equal (the differential suites prove bit-identity);
/// only the wall clock differs.
fn bench_flip_engine(quick: bool, metrics: &mut Vec<(String, f64)>) {
    use cta_dram::{AddressMapping, CellLayout, CellType, DramGeometry, FlipEngine, RowId};
    let rows: u64 = 256;
    let config = |engine: FlipEngine| {
        DramConfig {
            geometry: DramGeometry::new(4096, rows, 1, AddressMapping::RowLinear),
            layout: CellLayout::Alternating { period_rows: 8, first: CellType::True },
            disturbance: DisturbanceParams { pf: 0.4, ..DisturbanceParams::default() },
            ..DramConfig::small_test()
        }
        .with_flip_engine(engine)
    };
    let disturb_iters = if quick { 1_500 } else { 15_000 };
    let decay_sweeps = if quick { 3 } else { 10 };
    let mut rates: Vec<(f64, f64, f64)> = Vec::new();

    for (suffix, engine) in [("", FlipEngine::Wordwise), ("_scalar", FlipEngine::Scalar)] {
        let mut m = DramModule::new(config(engine));
        let capacity = m.capacity_bytes();
        m.fill(0, capacity as usize, 0x5A).unwrap();
        let victim = |i: u64| RowId(1 + i % (rows - 2));

        // Warm-up pass saturates every row and compiles every bit map (and,
        // for the wordwise engine, every plane) before the clock starts.
        for i in 0..rows {
            m.hammer_to_threshold(victim(i)).unwrap();
        }

        let before = m.stats().disturbances;
        let start = Instant::now();
        for i in 0..disturb_iters {
            m.hammer_to_threshold(victim(i)).unwrap();
        }
        let disturb_rate = (m.stats().disturbances - before) as f64 / start.elapsed().as_secs_f64();
        metrics.push((format!("disturb_ops_per_sec{suffix}"), disturb_rate));

        // Recharge the victim band before each burst so flips keep firing.
        let row_bytes = m.geometry().row_bytes();
        let flips_before = m.stats().total_flips();
        let start = Instant::now();
        for i in 0..disturb_iters / 8 {
            let v = victim(i * 3);
            m.fill((v.0 - 1) * row_bytes, 3 * row_bytes as usize, 0x5A).unwrap();
            m.hammer_to_threshold(v).unwrap();
        }
        let flips_rate =
            (m.stats().total_flips() - flips_before) as f64 / start.elapsed().as_secs_f64();
        metrics.push((format!("hammer_flips_per_sec{suffix}"), flips_rate));

        // Full-window outages: every materialized row decays end to end.
        let outage = m.config().retention.max_ns + 1;
        let start = Instant::now();
        for _ in 0..decay_sweeps {
            m.disable_refresh();
            m.advance(outage);
            m.enable_refresh();
        }
        let decay_rate =
            decay_sweeps as f64 * capacity as f64 / start.elapsed().as_secs_f64() / 1e6;
        metrics.push((format!("decay_sweep_mb_per_sec{suffix}"), decay_rate));
        rates.push((disturb_rate, flips_rate, decay_rate));
    }

    let (wordwise, scalar) = (rates[0], rates[1]);
    metrics.push(("flip_engine_disturb_speedup".into(), wordwise.0 / scalar.0));
    metrics.push(("flip_engine_hammer_speedup".into(), wordwise.1 / scalar.1));
    metrics.push(("flip_engine_decay_speedup".into(), wordwise.2 / scalar.2));
}

/// The wordwise generation data plane (PR 6): chunked span fill, dense
/// counter-mode vulnerability-map compilation, dense-map boot, and
/// indexed partial-window decay — wordwise engine vs the scalar per-bit
/// reference, on `MapGen::Counter` maps at templating-stress density
/// (`pf = 0.4`, ~13k vulnerable bits per 4 KiB row):
///
/// * `dram_fill_mb_per_sec` — whole-capacity fills through the chunked
///   span path (engine-independent; `memset` per row span);
/// * `vuln_map_rows_per_sec` — first-build map compilation throughput
///   (the block generator's one-mix-per-cell batched Bernoulli against
///   the scalar three-mix `hash3` float compare);
/// * `boot_dense_ms` — a cold boot of the dense module: construct, fill
///   every row, compile every map, then take one partial-window refresh
///   outage (first-build decay masks through the sorted retention index);
/// * `partial_decay_mb_per_sec` — steady-state partial-window outages at
///   distinct elapsed buckets: every sweep rebuilds its masks, so the
///   scalar engine re-hashes every cell while the wordwise engine binary-
///   searches the per-row index it built once.
///
/// As in [`bench_flip_engine`], the `_scalar` twins and `datapath_*_speedup`
/// ratios make the advantage a recorded, regeneratable number, and the
/// differential suites prove the twins compute bit-identical results.
fn bench_datapath(quick: bool, metrics: &mut Vec<(String, f64)>) {
    use cta_dram::{AddressMapping, CellLayout, CellType, DramGeometry, FlipEngine, MapGen, RowId};
    // 128 rows × 256 KiB of index stays inside the 64 MiB index budget, so
    // the steady-state decay sweeps measure index reuse, not thrash.
    let rows: u64 = if quick { 64 } else { 128 };
    let config = |engine: FlipEngine| {
        DramConfig {
            geometry: DramGeometry::new(4096, rows, 1, AddressMapping::RowLinear),
            layout: CellLayout::Alternating { period_rows: 8, first: CellType::True },
            disturbance: DisturbanceParams { pf: 0.4, ..DisturbanceParams::default() },
            ..DramConfig::small_test()
        }
        .with_map_gen(MapGen::Counter)
        .with_flip_engine(engine)
    };

    // Chunked whole-capacity fills (span path, engine-independent).
    let mut m = DramModule::new(DramConfig::small_test());
    let cap = m.capacity_bytes() as usize;
    let fills = if quick { 400 } else { 4_000 };
    let start = Instant::now();
    for i in 0..fills {
        m.fill(0, cap, (i & 0xFF) as u8).unwrap();
    }
    let fill_rate = fills as f64 * cap as f64 / start.elapsed().as_secs_f64() / 1e6;
    metrics.push(("dram_fill_mb_per_sec".into(), fill_rate));

    let mut rates: Vec<(f64, f64, f64)> = Vec::new();
    for (suffix, engine) in [("", FlipEngine::Wordwise), ("_scalar", FlipEngine::Scalar)] {
        // First-build map compilation: fresh module per pass, so every
        // `vulnerable_bits` call derives its row from scratch.
        let passes = if quick { 2 } else { 8 };
        let start = Instant::now();
        for _ in 0..passes {
            let mut m = DramModule::new(config(engine));
            for row in 0..rows {
                std::hint::black_box(m.vulnerable_bits(RowId(row)).unwrap());
            }
        }
        let map_rate = (passes * rows) as f64 / start.elapsed().as_secs_f64();
        metrics.push((format!("vuln_map_rows_per_sec{suffix}"), map_rate));

        // Dense boot: construct, fill, compile every map, one partial-
        // window outage.
        let start = Instant::now();
        let mut m = DramModule::new(config(engine));
        let capacity = m.capacity_bytes();
        m.fill(0, capacity as usize, 0xFF).unwrap();
        for row in 0..rows {
            std::hint::black_box(m.vulnerable_bits(RowId(row)).unwrap());
        }
        let p = m.config().retention;
        m.disable_refresh();
        m.advance(p.min_ns + (p.max_ns - p.min_ns) / 2);
        m.enable_refresh();
        let boot_ms = start.elapsed().as_secs_f64() * 1e3;
        metrics.push((format!("boot_dense_ms{suffix}"), boot_ms));

        // Steady-state partial-window outages, each at a fresh elapsed
        // bucket so the expired-mask memo never hits.
        let sweeps = if quick { 4 } else { 16 };
        let start = Instant::now();
        for i in 0..sweeps {
            m.disable_refresh();
            m.advance(p.min_ns + (p.max_ns - p.min_ns) / 4 + i);
            m.enable_refresh();
        }
        let decay_rate = sweeps as f64 * capacity as f64 / start.elapsed().as_secs_f64() / 1e6;
        metrics.push((format!("partial_decay_mb_per_sec{suffix}"), decay_rate));
        rates.push((map_rate, boot_ms, decay_rate));
    }

    let (wordwise, scalar) = (rates[0], rates[1]);
    metrics.push(("datapath_vuln_map_speedup".into(), wordwise.0 / scalar.0));
    metrics.push(("datapath_boot_dense_speedup".into(), scalar.1 / wordwise.1));
    metrics.push(("datapath_partial_decay_speedup".into(), wordwise.2 / scalar.2));
}

/// The persistent campaign service under a saturating multi-tenant queue
/// (the `service_*` metrics the `service` baseline label records). Every
/// campaign is first recorded through the scoped boot-per-trial path —
/// that wall clock is the reboot baseline, and the recording is the
/// golden the executor's output is asserted byte-identical against
/// (trial transcripts and merged telemetry) before any rate is recorded.
/// Then all campaigns are submitted to a [`CampaignExecutor`] up front —
/// tenants interleaved, queue saturated from the first trial — and the
/// sustained rate, per-trial p50/p99 latency (submit → completion, so
/// queueing counts), and pool gauges are measured over the full drain.
///
/// Campaign specs are boot-heavy on purpose (CTA protection + boot-time
/// cell profiling on the CoW backend): that is the cost the parent pool
/// pays once per (tenant, machine, seed) and every fork amortizes, and it
/// is core-count independent — the recorded speedup holds on a single-
/// core runner.
fn bench_service(quick: bool, metrics: &mut Vec<(String, f64)>, tel: &mut Counters) {
    use cta_telemetry::json;

    let tenants: &[(&str, u64)] = if quick {
        &[("alpha", 11), ("bravo", 23)]
    } else {
        &[("alpha", 11), ("bravo", 23), ("charlie", 47)]
    };
    let campaigns_per_tenant = if quick { 2 } else { 3 };
    let trials_per_campaign = if quick { 4 } else { 12 };
    // The default spray attack, as in `bench_backends`: its trial cost is
    // well under the profiled boot it amortizes, so pool efficiency (not
    // attack choice) dominates the recorded speedup.
    let attack = SprayAttack::default();
    let target = ReplayTarget { backend: StoreBackend::Cow, ..ReplayTarget::default() };
    let spec_for = |seed: u64| {
        // Same machine, same seed for every trial of a tenant: the
        // executor boots one parent per (worker, tenant) and forks the
        // rest, while the reboot baseline pays the profiled boot per
        // trial.
        let mut spec =
            RecordingSpec::new(RecordedAttack::Spray(attack), vec![seed; trials_per_campaign]);
        // 16 MiB doubles the profiled-boot cost the pool amortizes while
        // the per-trial fork stays O(changed rows); the recorded speedup
        // then reflects pool efficiency rather than a borderline
        // boot-to-trial ratio.
        spec.memory_bytes = 16 << 20;
        spec.protected = true;
        spec.profile_cells = true;
        // The default spray attack lands more flips per trial than the
        // default ring capacity; transcripts must stay lossless.
        spec.flip_log_capacity = 1 << 16;
        spec
    };

    // Reboot baseline + goldens: the scoped path boots a machine per
    // trial. One recording per tenant suffices as golden (campaigns
    // within a tenant are identical); the baseline clock still pays for
    // every campaign.
    let total_trials = tenants.len() * campaigns_per_tenant * trials_per_campaign;
    let start = Instant::now();
    let mut goldens = Vec::new();
    for &(_, seed) in tenants {
        let mut recording = None;
        for _ in 0..campaigns_per_tenant {
            recording = Some(record_campaign(&spec_for(seed)).expect("campaign records"));
        }
        goldens.push(recording.expect("at least one campaign per tenant"));
    }
    let reboot_rate = total_trials as f64 / start.elapsed().as_secs_f64();

    // The service: 2 fixed workers (work stealing is exercised even on a
    // single-core host), campaigns from all tenants submitted before any
    // is waited on.
    let exec = CampaignExecutor::new(ExecutorConfig { workers: 2, parents_per_worker: 2 });
    exec.set_tenant_limits(
        tenants[0].0,
        TenantLimits { max_parents_per_worker: Some(2), model_cache_bytes: Some(64 << 20) },
    );
    let events_dir = cta_bench::telemetry_dir();
    std::fs::create_dir_all(&events_dir).expect("telemetry dir is creatable");
    let events_path = events_dir.join("executor-events.jsonl");
    exec.set_jsonl_sink(std::fs::File::create(&events_path).expect("events sink is writable"));

    let start = Instant::now();
    let mut tickets = Vec::new();
    for round in 0..campaigns_per_tenant {
        for &(tenant, seed) in tenants {
            let mut request = CampaignRequest::new(tenant, spec_for(seed));
            request.target = target;
            // The scoped path labels merged telemetry RECORDING_LABEL;
            // match it so the byte-compare below covers the label too.
            request.label = cta_attack::recording::RECORDING_LABEL.to_string();
            tickets.push((round, exec.submit(request).expect("campaign submits")));
        }
    }
    let mut latencies_ns: Vec<u64> = Vec::new();
    let mut outputs = Vec::new();
    for (_, ticket) in tickets {
        let output = ticket.wait().expect("campaign completes");
        latencies_ns.extend_from_slice(&output.trial_latencies_ns);
        outputs.push(output);
    }
    let service_rate = total_trials as f64 / start.elapsed().as_secs_f64();

    // Byte-identity with the scoped path is verified after the clock
    // stops: it gates the recorded rate but is not service work (and on a
    // single-core host it would steal cycles from the drain it times).
    for (i, output) in outputs.iter().enumerate() {
        let golden = &goldens[i % tenants.len()];
        assert_eq!(
            output.trials, golden.trials,
            "executor transcripts must be byte-identical to the scoped path"
        );
        let merged = json::parse(&output.counters.to_json()).expect("merged telemetry parses");
        assert_eq!(
            merged, golden.telemetry,
            "executor merged telemetry must be byte-identical to the scoped path"
        );
    }

    latencies_ns.sort_unstable();
    let pct = |p: usize| {
        let rank = (latencies_ns.len() * p).div_ceil(100).max(1);
        latencies_ns[rank.min(latencies_ns.len()) - 1] as f64 / 1e6
    };
    let stats = exec.stats();
    exec.record_counters(tel);

    metrics.push(("service_tenants".into(), tenants.len() as f64));
    metrics.push(("service_campaigns".into(), (tenants.len() * campaigns_per_tenant) as f64));
    metrics.push(("service_trials".into(), total_trials as f64));
    metrics.push(("service_workers".into(), stats.workers as f64));
    metrics.push(("service_reboot_trials_per_sec".into(), reboot_rate));
    metrics.push(("service_trials_per_sec".into(), service_rate));
    metrics.push(("service_speedup_vs_reboot".into(), service_rate / reboot_rate));
    metrics.push(("service_p50_trial_latency_ms".into(), pct(50)));
    metrics.push(("service_p99_trial_latency_ms".into(), pct(99)));
    metrics.push(("service_parent_boots".into(), stats.parent_boots as f64));
    metrics.push(("service_fork_hits".into(), stats.fork_hits as f64));
    metrics.push(("service_steals".into(), stats.steals as f64));
    kv("service events", events_path.display());
}

/// Journaled in-place rollback vs fork-per-trial (the `rollback` baseline
/// label's `rollback_*`/`fork_*` metrics). The same campaign queue is
/// drained twice by fresh persistent executors — once under
/// [`TrialIsolation::Fork`], once under [`TrialIsolation::Journal`] — and
/// every output pair is asserted byte-identical (trial transcripts and
/// merged telemetry) before either rate is recorded, so the speedup pins
/// a difference between provably equivalent computations.
///
/// The campaign shape is boot-heavy with a small per-trial working set,
/// deliberately: on the sparse backend, boot-time cell profiling
/// materializes every row, so each fork deep-copies the whole module —
/// O(materialized rows) per trial — while the narrow spray trial dirties
/// only a handful of rows that the journal captures lazily, making
/// rollback O(touched state). `rollback_speedup_vs_fork` records how much
/// of the fork tax the journal returns on that shape.
fn bench_rollback(quick: bool, metrics: &mut Vec<(String, f64)>) {
    let trials = if quick { 12 } else { 24 };
    let campaigns = if quick { 2 } else { 3 };
    let attack =
        SprayAttack { regions: 4, file_pages: 2, max_hammer_rows: 2, flush_per_probe: false };
    let spec = || {
        // Constant seed: the pool boots one parent per worker and serves
        // every trial from it, so the measured difference is pure
        // isolation cost (fork+drop vs journal+rollback), not boot.
        let mut spec = RecordingSpec::new(RecordedAttack::Spray(attack), vec![11; trials]);
        spec.memory_bytes = 16 << 20;
        // Narrow 256-byte rows: 64k materialized rows, so the per-row
        // allocation overhead the fork pays (one boxed row copy each) is
        // fully represented, while the journal's cost still tracks only
        // the rows a trial dirties.
        spec.row_bytes = 256;
        spec.protected = true;
        spec.profile_cells = true;
        spec.flip_log_capacity = 1 << 16;
        spec
    };
    let target = ReplayTarget { backend: StoreBackend::Sparse, ..ReplayTarget::default() };

    let run = |isolation: TrialIsolation| {
        // One worker: the isolation comparison wants a serial drain where
        // per-trial isolation cost is the only variable (bench_service
        // already pins the multi-worker schedule), and it keeps the two
        // modes' memory-bandwidth contention identical on small hosts.
        let exec = CampaignExecutor::new(ExecutorConfig { workers: 1, parents_per_worker: 2 });
        let start = Instant::now();
        let tickets: Vec<_> = (0..campaigns)
            .map(|_| {
                let mut request = CampaignRequest::new("bench", spec());
                request.target = target;
                request.isolation = isolation;
                exec.submit(request).expect("campaign submits")
            })
            .collect();
        let outputs: Vec<_> =
            tickets.into_iter().map(|t| t.wait().expect("campaign completes")).collect();
        let rate = (campaigns * trials) as f64 / start.elapsed().as_secs_f64();
        (rate, outputs, exec.stats())
    };
    let (fork_rate, forked, fork_stats) = run(TrialIsolation::Fork);
    let (journal_rate, journaled, journal_stats) = run(TrialIsolation::Journal);

    assert_eq!(journal_stats.journal_runs, journal_stats.trials_completed);
    assert_eq!(fork_stats.journal_runs, 0);
    for (j, f) in journaled.iter().zip(&forked) {
        assert_eq!(j.trials, f.trials, "journaled transcripts must equal forked");
        assert_eq!(
            j.counters.to_json(),
            f.counters.to_json(),
            "journaled merged telemetry must equal forked"
        );
    }

    let pct = |outputs: &[cta_attack::CampaignOutput], p: usize| {
        let mut ns: Vec<u64> =
            outputs.iter().flat_map(|o| o.trial_latencies_ns.iter().copied()).collect();
        ns.sort_unstable();
        let rank = (ns.len() * p).div_ceil(100).max(1);
        ns[rank.min(ns.len()) - 1] as f64 / 1e6
    };
    metrics.push(("rollback_trials".into(), (campaigns * trials) as f64));
    metrics.push(("fork_trials_per_sec".into(), fork_rate));
    metrics.push(("rollback_trials_per_sec".into(), journal_rate));
    metrics.push(("rollback_speedup_vs_fork".into(), journal_rate / fork_rate));
    metrics.push(("fork_p50_trial_latency_ms".into(), pct(&forked, 50)));
    metrics.push(("fork_p99_trial_latency_ms".into(), pct(&forked, 99)));
    metrics.push(("rollback_p50_trial_latency_ms".into(), pct(&journaled, 50)));
    metrics.push(("rollback_p99_trial_latency_ms".into(), pct(&journaled, 99)));
}

/// Warm-walk and batched-translation hot paths for the paging-structure
/// caches. A 128-page sweep inside one 2 MiB region overflows the 64-entry
/// TLB — every set cycles through 8 tags, so every translate misses — while
/// every walk shares one PDE, so a warm PSC resumes at the PT level: one
/// DRAM read per walk instead of four. `pte_walk_warm_psc_ns` vs
/// `pte_walk_warm_nopsc_ns` isolates that saving; the batch metrics compare
/// [`Kernel::translate_batch`] against a per-call loop over the same sweep.
fn bench_psc(quick: bool, metrics: &mut Vec<(String, f64)>, tel: &mut Counters) {
    let sweeps = if quick { 1_000 } else { 10_000 };
    let pages: u64 = 128;
    let machine = |entries: usize| {
        SystemBuilder::new(16 << 20)
            .ptp_bytes(1 << 20)
            .seed(3)
            .disturbance(DisturbanceParams { pf: 0.0, ..DisturbanceParams::default() })
            .psc_entries(entries)
            .build()
            .expect("machine boots")
    };
    for (name, entries) in [("psc", 16usize), ("nopsc", 0)] {
        let mut k = machine(entries);
        let pid = k.create_process(false).unwrap();
        let va = VirtAddr(0x4000_0000);
        k.mmap_anonymous(pid, va, pages * PAGE_SIZE, true).unwrap();
        let per_sweep = time_per_iter_warm(sweeps / 10, sweeps, || {
            for p in 0..pages {
                std::hint::black_box(
                    k.translate(pid, va.offset(p * PAGE_SIZE), Access::user_read()).unwrap(),
                );
            }
        });
        metrics.push((format!("pte_walk_warm_{name}_ns"), per_sweep / pages as f64));
        if entries > 0 {
            // Steady-state cache effectiveness of the sweep, as sanitized
            // gauges (see EXPERIMENTS.md: `tlb`/`psc` `hit_rate`).
            k.record_rate_gauges(tel);
        }
    }

    // Batched translation over the same sweep, on one machine in steady
    // state: the batch path hoists process lookup and CR3 out of the loop.
    let mut k = machine(16);
    let pid = k.create_process(false).unwrap();
    let va = VirtAddr(0x4000_0000);
    k.mmap_anonymous(pid, va, pages * PAGE_SIZE, true).unwrap();
    let vas: Vec<VirtAddr> = (0..pages).map(|p| va.offset(p * PAGE_SIZE)).collect();
    let mut phys = Vec::new();
    let per_batch = time_per_iter(sweeps, || {
        k.translate_batch(pid, &vas, Access::user_read(), &mut phys).unwrap();
        std::hint::black_box(&phys);
    }) / pages as f64;
    let per_loop = time_per_iter(sweeps, || {
        for &v in &vas {
            std::hint::black_box(k.translate(pid, v, Access::user_read()).unwrap());
        }
    }) / pages as f64;
    metrics.push(("translate_batch_ops_per_sec".into(), 1e9 / per_batch));
    metrics.push(("translate_loop_ops_per_sec".into(), 1e9 / per_loop));
    metrics.push(("translate_batch_speedup".into(), per_loop / per_batch));
}

fn main() {
    let opts = parse_args();
    header(&format!(
        "bench-baseline — label '{}'{}",
        opts.label,
        if opts.quick { " (quick)" } else { "" }
    ));

    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut tel = Counters::new(&format!("bench-baseline-{}", opts.label));
    tel.set_bool("bench", "quick", opts.quick);
    let overall = Instant::now();

    bench_walk_latency(opts.quick, &mut metrics);
    bench_dram_throughput(opts.quick, &mut metrics);
    bench_alloc_throughput(opts.quick, &mut metrics);
    bench_monte_carlo(opts.quick, &mut metrics);
    bench_table4_smoke(opts.quick, &mut metrics, &mut tel);
    bench_backends(opts.quick, &mut metrics);
    bench_service(opts.quick, &mut metrics, &mut tel);
    bench_rollback(opts.quick, &mut metrics);
    bench_psc(opts.quick, &mut metrics, &mut tel);
    bench_flip_engine(opts.quick, &mut metrics);
    bench_datapath(opts.quick, &mut metrics);

    metrics.push(("total_wall_s".into(), overall.elapsed().as_secs_f64()));
    for (key, value) in &metrics {
        tel.set_f64("bench", key, *value);
        kv(key, format!("{value:.3}"));
    }

    let section = cta_bench::baseline::render_section(opts.quick, &metrics);
    cta_bench::baseline::merge_into_file(&opts.out, &opts.label, &section);
    kv("written", opts.out.display());
    emit_telemetry(&tel);
}
