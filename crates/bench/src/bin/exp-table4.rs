//! Regenerates Table 4: per-benchmark overhead of CTA on two machine
//! shapes (the paper's 8 GiB and 128 GiB hosts, scaled to simulator size
//! while preserving the `ZONE_PTP`:memory ratio).
//!
//! Benchmark×repetition cells run through [`Runner::compare_many`], which
//! parallelizes across worker threads while keeping simulated results
//! bit-identical to the serial loop (`--threads 1` *is* the serial loop).
//! Wall-clock deltas are host measurements and remain noisy either way.

use cta_bench::{emit_telemetry, header, kv};
use cta_core::SystemBuilder;
use cta_telemetry::Counters;
use cta_vm::Kernel;
use cta_workloads::{phoronix, record_overhead_rows, spec2006, Runner, Suite, WorkloadSpec};

fn machine(total: u64, ptp: u64, protected: bool) -> Kernel {
    SystemBuilder::new(total)
        .ptp_bytes(ptp)
        .seed(0x7AB1E4)
        .protected(protected)
        .build()
        .expect("machine boots")
}

fn run_suite(title: &str, total: u64, ptp: u64, threads: usize, tel: &mut Counters, group: &str) {
    header(title);
    println!("{:<20} {:>14} {:>14}", "Benchmark", "sim-time Δ%", "wall-clock Δ%");
    let runner = Runner { repetitions: 2, seed: 0x1234 };
    let specs: Vec<WorkloadSpec> = spec2006().iter().chain(phoronix().iter()).cloned().collect();
    let rows = runner
        .compare_many(|protected| machine(total, ptp, protected), &specs, threads)
        .expect("workloads run");
    record_overhead_rows(tel, group, &rows);
    let mut sums: std::collections::HashMap<Suite, (f64, f64, u32)> =
        std::collections::HashMap::new();
    for (spec, row) in specs.iter().zip(&rows) {
        println!(
            "{:<20} {:>13.2}% {:>13.2}%",
            spec.name,
            row.delta_percent(),
            row.wall_delta_percent()
        );
        let e = sums.entry(spec.suite).or_insert((0.0, 0.0, 0));
        e.0 += row.delta_percent();
        e.1 += row.wall_delta_percent();
        e.2 += 1;
    }
    for (suite, (sim, wall, n)) in sums {
        kv(
            &format!("{suite} mean Δ (paper: ±0.1%)"),
            format!("sim {:+.3}% / wall {:+.3}%", sim / n as f64, wall / n as f64),
        );
    }
}

/// Runs one representative workload on a fresh stock small-host machine
/// and reports how effective the MMU caches were: the TLB and PSC hit
/// rates, emitted as sanitized f64 gauges (`tlb`/`psc` `hit_rate`) so the
/// overhead numbers above can be read next to the cache behavior that
/// produced them.
fn report_cache_rates(tel: &mut Counters) {
    header("MMU cache effectiveness (representative workload: first SPEC entry)");
    let mut k = machine(16 << 20, 1 << 20, false);
    let spec = &spec2006()[0];
    Runner { repetitions: 1, seed: 0x1234 }.run(&mut k, spec).expect("workload runs");
    k.record_rate_gauges(tel);
    kv("tlb hit rate", format!("{:.4}", k.tlb_stats().hit_rate()));
    kv("psc hit rate", format!("{:.4}", k.psc_stats().hit_rate()));
}

fn main() {
    // `--threads N` (default 0 = one worker per core; 1 = serial loop).
    let mut threads = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                threads =
                    args.next().and_then(|v| v.parse().ok()).expect("--threads needs a number");
            }
            other => panic!("unknown argument {other:?} (supported: --threads N)"),
        }
    }

    let mut tel = Counters::new("exp-table4");
    // "8 GB system": 16 MiB sim memory with a 1 MiB ZONE_PTP preserves the
    // paper's 1:256 zone ratio (n = 8 indicator bits, as on the real host).
    run_suite(
        "Table 4 — small host (8GB-analog: 16 MiB sim, 1 MiB ZONE_PTP)",
        16 << 20,
        1 << 20,
        threads,
        &mut tel,
        "overhead:small-host",
    );
    // "128 GB system": same ratio class, larger memory.
    run_suite(
        "Table 4 — large host (128GB-analog: 64 MiB sim, 4 MiB ZONE_PTP)",
        64 << 20,
        4 << 20,
        threads,
        &mut tel,
        "overhead:large-host",
    );

    report_cache_rates(&mut tel);

    header("Interpretation");
    kv("expected result", "every |Δ| within noise; suite means ≈ 0 (Table 4)");
    kv("paper totals", "SPEC mean -0.07%/+0.04%, Phoronix mean -0.08%/+0.25%");
    emit_telemetry(&tel);
}
