//! The section 5 defense-in-depth suggestion: couple CTA with an
//! ANVIL-style activity detector. CTA slows the attack to days, so a
//! low-rate sampler catches the sustained hammering long before it can
//! matter; and for unprotected data rows, preemptive mitigation stops
//! flips outright.

use cta_bench::{emit_telemetry, header, kv};
use cta_dram::{DisturbanceParams, DramConfig, DramModule, RowId};
use cta_ext::{AnvilConfig, AnvilDetector};
use cta_telemetry::Counters;
use cta_workloads::{spec2006, Runner};

fn module(seed: u64) -> DramModule {
    DramModule::new(
        DramConfig::small_test()
            .with_seed(seed)
            .with_disturbance(DisturbanceParams { pf: 0.05, ..DisturbanceParams::default() }),
    )
}

fn main() {
    header("ANVIL-style detection of a hammering campaign (20 modules)");
    let mut detected = 0;
    let mut prevented = 0;
    for seed in 0..20u64 {
        let mut m = module(seed);
        m.fill(2 * 4096, 4096, 0xFF).unwrap();
        let mut detector = AnvilDetector::new(AnvilConfig::default());
        let threshold = m.config().disturbance.hammer_threshold;
        // The attacker hammers in bursts; the detector samples periodically.
        for _ in 0..32 {
            m.hammer(RowId(1), threshold / 8).unwrap();
            m.hammer(RowId(3), threshold / 8).unwrap();
            detector.sample_and_mitigate(&mut m).unwrap();
        }
        if !detector.alarms().is_empty() {
            detected += 1;
        }
        if m.stats().total_flips() == 0 {
            prevented += 1;
        }
    }
    kv("campaigns detected", format!("{detected} / 20"));
    kv("campaigns fully preempted (0 flips)", format!("{prevented} / 20"));
    assert_eq!(detected, 20);
    assert_eq!(prevented, 20);

    header("False positives on benign workloads");
    let mut kernel =
        cta_core::SystemBuilder::new(16 << 20).ptp_bytes(1 << 20).protected(true).build().unwrap();
    let mut detector = AnvilDetector::new(AnvilConfig::default());
    let runner = Runner { repetitions: 1, seed: 9 };
    let mut false_positives = 0;
    for spec in spec2006().iter().take(6) {
        runner.run(&mut kernel, spec).unwrap();
        false_positives += detector.sample(kernel.dram()).len();
    }
    kv("alarms across 6 SPEC-shaped workloads", false_positives);
    assert_eq!(false_positives, 0, "benign work must not trip the detector");

    let mut tel = Counters::new("exp-anvil");
    tel.set_u64("anvil", "campaigns", 20);
    tel.set_u64("anvil", "campaigns_detected", detected);
    tel.set_u64("anvil", "campaigns_preempted", prevented);
    tel.set_u64("anvil", "benign_false_positives", false_positives as u64);
    kernel.record_counters(&mut tel);
    emit_telemetry(&tel);

    header("Why CTA makes sampling cheap (the paper's §5 argument)");
    kv("without CTA", "attack window ≈ 20 s — the sampler must run hot");
    kv("with CTA", "attack takes days–years; sampling every few seconds suffices");
    println!("\nOK: detector catches every campaign, flags nothing benign, and CTA buys it slack.");
}
