//! The section 5 defense-in-depth suggestion: couple CTA with an
//! ANVIL-style activity detector. CTA slows the attack to days, so a
//! low-rate sampler catches the sustained hammering long before it can
//! matter; and for unprotected data rows, preemptive mitigation stops
//! flips outright.
//!
//! The detector runs as the hook-native [`cta_dram::AnvilSamplerDefense`]
//! installed through the `Defense` trait (`DefenseSpec::Anvil`), so the
//! DRAM module itself consults it on every activation batch — no explicit
//! polling loop. The legacy polled API ([`cta_ext::AnvilDetector`]) keeps
//! its own tests in `cta-ext`.

use cta_bench::{defended_builder, emit_telemetry, header, kv};
use cta_core::DefenseSpec;
use cta_dram::{
    AnvilSamplerDefense, AnvilSamplerParams, DisturbanceParams, DramConfig, DramModule, RowId,
};
use cta_telemetry::Counters;
use cta_workloads::{spec2006, Runner};

fn module(seed: u64) -> DramModule {
    let mut m = DramModule::new(
        DramConfig::small_test()
            .with_seed(seed)
            .with_disturbance(DisturbanceParams { pf: 0.05, ..DisturbanceParams::default() }),
    );
    // Same activation hook the full system gets from DefenseSpec::Anvil,
    // installed directly on the bare module.
    m.install_defense(Box::new(AnvilSamplerDefense::new(AnvilSamplerParams::default())));
    m
}

/// ANVIL alarms raised so far, read from the installed hook's counters.
fn anvil_alarms(m: &DramModule) -> u64 {
    m.defense()
        .map(|d| {
            d.counters().iter().find(|(k, _)| *k == "anvil_alarms").map(|(_, v)| *v).unwrap_or(0)
        })
        .unwrap_or(0)
}

fn main() {
    header("ANVIL-style detection of a hammering campaign (20 modules)");
    let mut detected = 0;
    let mut prevented = 0;
    for seed in 0..20u64 {
        let mut m = module(seed);
        m.fill(2 * 4096, 4096, 0xFF).unwrap();
        let threshold = m.config().disturbance.hammer_threshold;
        // The attacker hammers in bursts; the in-module sampler flags the
        // sustained activation stream and refreshes the aggressors' rows
        // before the victims accumulate enough disturbance.
        for _ in 0..32 {
            m.hammer(RowId(1), threshold / 8).unwrap();
            m.hammer(RowId(3), threshold / 8).unwrap();
        }
        if anvil_alarms(&m) > 0 {
            detected += 1;
        }
        if m.stats().total_flips() == 0 {
            prevented += 1;
        }
    }
    kv("campaigns detected", format!("{detected} / 20"));
    kv("campaigns fully preempted (0 flips)", format!("{prevented} / 20"));
    assert_eq!(detected, 20);
    assert_eq!(prevented, 20);

    header("False positives on benign workloads");
    let mut kernel = defended_builder(9, true, DefenseSpec::Anvil(AnvilSamplerParams::default()))
        .build()
        .unwrap();
    let runner = Runner { repetitions: 1, seed: 9 };
    for spec in spec2006().iter().take(6) {
        runner.run(&mut kernel, spec).unwrap();
    }
    let false_positives = anvil_alarms(kernel.dram());
    kv("alarms across 6 SPEC-shaped workloads", false_positives);
    assert_eq!(false_positives, 0, "benign work must not trip the detector");

    let mut tel = Counters::new("exp-anvil");
    tel.set_u64("anvil", "campaigns", 20);
    tel.set_u64("anvil", "campaigns_detected", detected);
    tel.set_u64("anvil", "campaigns_preempted", prevented);
    tel.set_u64("anvil", "benign_false_positives", false_positives);
    kernel.record_counters(&mut tel);
    emit_telemetry(&tel);

    header("Why CTA makes sampling cheap (the paper's §5 argument)");
    kv("without CTA", "attack window ≈ 20 s — the sampler must run hot");
    kv("with CTA", "attack takes days–years; sampling every few seconds suffices");
    println!("\nOK: detector catches every campaign, flags nothing benign, and CTA buys it slack.");
}
