//! Regenerates Figure 7: the buddy allocator's dispatch under CTA — where
//! each GFP request class gets served, that `__GFP_PTP` never falls back,
//! and that nothing else ever touches ZONE_PTP.

use cta_bench::{emit_telemetry, header, kv, standard_machine};
use cta_mem::{GfpFlags, ZoneKind};
use cta_telemetry::Counters;
use cta_vm::VirtAddr;

fn main() {
    let mut kernel = standard_machine(11, true);
    header("Figure 7: New Linux Buddy Allocator with CTA (request dispatch)");

    // Drive the allocator through the kernel's public operations.
    let pid = kernel.create_process(false).expect("process");
    for i in 0..6u64 {
        kernel
            .mmap_anonymous(pid, VirtAddr(0x4000_0000 + i * (2 << 20)), 4096, true)
            .expect("mmap");
    }
    for zone in kernel.allocator().zones() {
        kv(
            &zone.kind().to_string(),
            format!(
                "span pfn {:?}, {}/{} pages free, stats: {}",
                zone.span(),
                zone.free_pages(),
                zone.total_pages(),
                zone.stats()
            ),
        );
    }
    kv("allocator totals", kernel.allocator().stats());

    header("Rule (1): __GFP_PTP never falls back");
    // Demonstrated on a raw allocator to exhaustion.
    let mut alloc = kernel.allocator().clone();
    let mut served = 0u64;
    while alloc.alloc_pages(GfpFlags::PTP, 0).is_ok() {
        served += 1;
    }
    kv("PTP pages served before exhaustion", served);
    kv("free pages remaining elsewhere", alloc.free_page_count());
    assert!(alloc.alloc_pages(GfpFlags::PTP, 0).is_err());
    assert!(alloc.free_page_count() > 0);

    header("Rule (2): nothing else is served from ZONE_PTP");
    let mut alloc2 = kernel.allocator().clone();
    let ptp_free = alloc2.zone(ZoneKind::Ptp).expect("zone").free_pages();
    let mut user_pages = 0u64;
    while alloc2.alloc_pages(GfpFlags::HIGHUSER, 0).is_ok() {
        user_pages += 1;
    }
    kv("user pages served until OOM", user_pages);
    kv("ZONE_PTP pages untouched", alloc2.zone(ZoneKind::Ptp).expect("zone").free_pages());
    assert_eq!(alloc2.zone(ZoneKind::Ptp).expect("zone").free_pages(), ptp_free);

    let mut tel = Counters::new("exp-fig7");
    kernel.record_counters(&mut tel);
    tel.set_u64("dispatch", "ptp_pages_until_exhaustion", served);
    tel.set_u64("dispatch", "user_pages_until_oom", user_pages);
    tel.set_u64("dispatch", "ptp_pages_untouched_by_user", ptp_free);
    emit_telemetry(&tel);
    println!("\nOK: both CTA allocator rules hold under exhaustion.");
}
