//! Regenerates the section 5 baseline: a low water mark *without* CTA —
//! `ZONE_PTP` mistakenly placed in anti-cell rows. Analytically the attack
//! drops from centuries to hours (3354.7 expected exploitable PTEs at
//! 8 GiB / 32 MiB); in simulation, Algorithm 1's walk-hammering starts
//! creating PTE self-references that a true-cell zone provably cannot.
//!
//! The misconfiguration is injected with `KernelConfig::cell_map_override`:
//! the kernel is handed an inverted cell map, so its "true-cell" sub-zones
//! land exactly on the anti-cell rows.
//!
//! Algorithm 1 brute-forces its file across every physical page; the
//! experiment fast-forwards to the profitable iteration — the file sitting
//! in the highest one-zero-indicator stripe, where a *single* upward flip
//! of one PTE frame bit crosses into `ZONE_PTP` — by pre-soaking lower
//! memory with an arena allocation. The per-step attacker capabilities are
//! unchanged.

use cta_attack::HammerDriver;
use cta_bench::{emit_telemetry, header, kv};
use cta_core::verify::verify_system;
use cta_core::SystemBuilder;
use cta_dram::{CellType, CellTypeMap, DisturbanceParams, DramModule, RowId};
use cta_mem::PAGE_SIZE;
use cta_telemetry::Counters;
use cta_vm::{Kernel, VirtAddr};

const FILE_PAGES: u64 = 16;
const REGIONS: u64 = 40;

fn builder(seed: u64) -> SystemBuilder {
    SystemBuilder::new(8 << 20).ptp_bytes(512 * 1024).seed(seed).protected(true).disturbance(
        DisturbanceParams { pf: 0.025, hammer_threshold: 256, ..DisturbanceParams::default() },
    )
}

/// Builds a kernel whose ZONE_PTP lands on anti-cell rows.
fn mis_zoned_machine(seed: u64) -> Kernel {
    let mut config = builder(seed).to_config();
    let module = DramModule::new(config.dram.clone());
    let truth = module.ground_truth_cell_map();
    let inverted: Vec<CellType> = (0..truth.rows())
        .map(|r| truth.cell_type(RowId(r)).expect("in range").opposite())
        .collect();
    config.cell_map_override = Some(CellTypeMap::from_rows(inverted, truth.row_bytes()));
    Kernel::new(config).expect("machine boots")
}

/// Algorithm 1 against one machine: fill the zone with PTEs pointing into
/// the top one-zero stripe, hammer every page-table row through walks,
/// count self-references.
fn algorithm1(kernel: &mut Kernel) -> (usize, usize, u64) {
    let pid = kernel.create_process(false).expect("process");
    let mark_pfn = kernel.ptp_layout().expect("zoned").low_water_mark() / PAGE_SIZE;
    // Donor stripe: user frames one single `0→1` frame-bit flip away from
    // the first page-table frames (which sit at the zone bottom = mark).
    // Pick the smallest k where mark_pfn − 2^k has bit k clear, so the flip
    // is an exact +2^k jump onto the PT frames.
    let k =
        (7..12).find(|k| (mark_pfn - (1u64 << k)) >> k & 1 == 0).expect("a donor stripe exists");
    let stripe_lo = mark_pfn - (1u64 << k);

    // Fast-forward of the brute-force sweep: soak memory below the stripe.
    // Benign kernel activity must not itself cross the (test-scaled) hammer
    // threshold, so spread it across refresh windows — in reality the
    // threshold is ~10⁵ activations and ordinary work never approaches it.
    let interval = kernel.dram().config().refresh_interval_ns;
    let arena = VirtAddr(0x1_0000_0000);
    let mut soaked = 0u64;
    loop {
        let va = arena.offset(soaked * PAGE_SIZE);
        kernel.mmap_anonymous(pid, va, PAGE_SIZE, true).expect("soak");
        let pfn =
            kernel.translate(pid, va, cta_vm::Access::user_read()).expect("translate") / PAGE_SIZE;
        soaked += 1;
        if soaked.is_multiple_of(32) {
            kernel.dram_mut().advance(interval);
        }
        if pfn + 1 >= stripe_lo {
            break;
        }
    }

    // Step (1): the file lands in the stripe; map it at many regions so
    // page tables fill ZONE_PTP.
    let file = kernel.create_file(FILE_PAGES * PAGE_SIZE).expect("file");
    let mut regions = Vec::new();
    for i in 0..REGIONS {
        let va = VirtAddr(0x7_0000_0000 + i * (2 << 20));
        kernel.dram_mut().advance(interval);
        kernel.mmap_file(pid, va, file, true).expect("spray");
        regions.push(va);
    }

    // Step (2): hammer the page-table rows. First a walk-driven pass (the
    // attacker's real mechanism — note it corrupts the shared upper-level
    // tables early and then defeats its own later walks, a dynamic the
    // paper's accounting does not model), then experimenter-driven
    // disturbance of every zone row so the *count* of exploitable PTE
    // locations is measured over the whole zone, as the analysis assumes.
    let driver = HammerDriver::new();
    let before = kernel.dram().stats().total_flips();
    for va in &regions {
        kernel.dram_mut().advance(interval);
        let _ = driver.hammer_by_walks(kernel, pid, *va, 320);
    }
    let mark_row =
        kernel.ptp_layout().expect("zoned").low_water_mark() / kernel.dram().geometry().row_bytes();
    let total_rows = kernel.dram().geometry().total_rows();
    for row in mark_row..total_rows {
        kernel.dram_mut().advance(interval);
        let _ = kernel.dram_mut().hammer_double_sided(cta_dram::RowId(row));
    }
    kernel.flush_tlb();
    let flips = kernel.dram().stats().total_flips() - before;

    // Step (3): count self-references (ground-truth verifier).
    let report = verify_system(kernel).expect("verifier");
    (report.self_references().count(), report.intermediate_redirects().count(), flips)
}

fn main() {
    header("Section 5 baseline: low water mark alone (ZONE_PTP in anti-cells)");
    kv("analytic expectation (8GB/32MB scale)", "3354.7 exploitable PTEs, 3.2 h attack");
    kv("sim scale", "8 MiB memory, 512 KiB zone, n = 4 indicator bits, pf = 2.5%");

    let seeds = 0..8u64;
    let mut anti_refs = 0usize;
    let mut anti_redirects = 0usize;
    let mut anti_flips = 0u64;
    for seed in seeds.clone() {
        let mut kernel = mis_zoned_machine(seed);
        let (refs, redirects, flips) = algorithm1(&mut kernel);
        anti_refs += refs;
        anti_redirects += redirects;
        anti_flips += flips;
    }
    kv("anti-cell zone: self-referencing PTEs (8 modules)", anti_refs);
    kv("anti-cell zone: corrupted intermediate entries", anti_redirects);
    kv("anti-cell zone: flips induced in the zone", anti_flips);

    let mut true_refs = 0usize;
    let mut true_redirects = 0usize;
    let mut true_flips = 0u64;
    for seed in seeds {
        let mut kernel = builder(seed).build().expect("boots");
        let (refs, redirects, flips) = algorithm1(&mut kernel);
        true_refs += refs;
        true_redirects += redirects;
        true_flips += flips;
    }
    kv("true-cell CTA: self-referencing PTEs (8 modules)", true_refs);
    kv("true-cell CTA: corrupted intermediate entries", true_redirects);
    kv("true-cell CTA: flips induced in the zone", true_flips);

    assert_eq!(true_refs, 0, "true-cell CTA must never self-reference");
    assert!(anti_refs > 0, "the anti-cell zone should produce self-references");
    assert!(true_flips > 0, "CTA does not stop flips; it makes them harmless");

    let mut tel = Counters::new("exp-anti-baseline");
    tel.set_u64("anti_zone", "self_references", anti_refs as u64);
    tel.set_u64("anti_zone", "intermediate_redirects", anti_redirects as u64);
    tel.set_u64("anti_zone", "flips_induced", anti_flips);
    tel.set_u64("true_zone", "self_references", true_refs as u64);
    tel.set_u64("true_zone", "intermediate_redirects", true_redirects as u64);
    tel.set_u64("true_zone", "flips_induced", true_flips);
    emit_telemetry(&tel);
    println!("\nOK: a low water mark without true-cells is not a defense — CTA is load-bearing.");
}
