//! Regenerates Table 3: the pessimistic technology-scaling scenario
//! (Pf ×5, P0→1 = 0.5%).

use cta_analysis::{table2, table3};
use cta_bench::{emit_telemetry, header, kv};
use cta_telemetry::Counters;

fn main() {
    header("Table 3: Expected Exploitable PTEs and Attack Time (Pf = 5e-4, P0→1 = 0.5%)");
    print!("{}", table3().render("Table 3"));

    header("Comparison against Table 2");
    let t2 = table2().generate();
    let t3 = table3().generate();
    for (a, b) in t2.iter().zip(t3.iter()).take(4) {
        kv(
            &format!("{}GB/{}MB {:?}", a.phys_gib, a.ptp_mib, a.restriction),
            format!(
                "exploitable {:.2e} → {:.2e}; days {:.1} → {:.1}",
                a.exploitable, b.exploitable, a.attack_days, b.attack_days
            ),
        );
    }
    header("Headline: even pessimistic scaling leaves attacks impractical");
    let fastest_reported_s = 20.0;
    let worst = t3.iter().map(|r| r.attack_days).fold(f64::INFINITY, f64::min);
    kv(
        "slowdown vs fastest reported attack (20 s)",
        format!("{:.1e}x", worst * 86_400.0 / fastest_reported_s),
    );
    let mut tel = Counters::new("exp-table3");
    tel.set_u64("table3", "rows", t3.len() as u64);
    tel.set_f64("table3", "fastest_attack_days", worst);
    tel.set_f64("table3", "slowdown_vs_20s_attack", worst * 86_400.0 / fastest_reported_s);
    emit_telemetry(&tel);
}
