//! Regenerates Figure 3: the PTE-based privilege-escalation attack flow,
//! end to end, on an unprotected kernel — then shows the same attack
//! failing on a CTA kernel.

use cta_attack::SprayAttack;
use cta_bench::{emit_telemetry, header, kv, standard_machine};
use cta_core::verify::verify_system;
use cta_telemetry::Counters;

fn main() {
    let attack = SprayAttack::default();
    let mut tel = Counters::new("exp-fig3");

    header("Figure 3: spray attack on a STOCK kernel (first succeeding module of 16)");
    let mut succeeded = false;
    for seed in 0..16u64 {
        let mut kernel = standard_machine(seed, false);
        let outcome = attack.run(&mut kernel).expect("attack infrastructure");
        kernel.record_counters(&mut tel);
        if outcome.success() {
            tel.add_u64("attack", "stock_successes", 1);
            kv("module seed", seed);
            print!("{outcome}");
            let report = verify_system(&kernel).expect("verifier runs");
            kv("verifier self-references found", report.self_references().count());
            let (pfn, _) = kernel.kernel_secret();
            let now = kernel.dram().peek(pfn.addr().0, 16).expect("oracle read");
            kv("kernel secret after attack", String::from_utf8_lossy(&now).into_owned());
            succeeded = true;
            break;
        }
    }
    assert!(succeeded, "the spray attack should succeed on some module");

    header("Same attack against CTA-protected kernels (all 16 modules)");
    let mut failures = 0;
    for seed in 0..16u64 {
        let mut kernel = standard_machine(seed, true);
        let outcome = attack.run(&mut kernel).expect("attack infrastructure");
        assert!(!outcome.success(), "CTA breached at seed {seed}");
        let report = verify_system(&kernel).expect("verifier runs");
        assert_eq!(report.self_references().count(), 0);
        kernel.record_counters(&mut tel);
        failures += 1;
    }
    kv("CTA kernels attacked", 16);
    kv("successful escalations", format!("0 / {failures}"));
    tel.set_u64("attack", "cta_kernels_attacked", failures);
    tel.set_u64("attack", "cta_successes", 0);
    emit_telemetry(&tel);
    println!("\nOK: the Figure 3 attack escalates on stock kernels and never under CTA.");
}
