//! Regenerates the section 8 broader-applicability experiments:
//! permission-vector protection, coldboot detection, and the
//! hamming-weight error-detection code.

use cta_bench::{emit_telemetry, header, kv};
use cta_dram::{CellLayout, DisturbanceParams, DramConfig, DramModule, RowId};
use cta_ext::{BootDecision, ColdbootGuard, Permission, PermissionStore, PopcountCode, Verdict};
use cta_telemetry::Counters;

fn module(layout: CellLayout, seed: u64) -> DramModule {
    DramModule::new(
        DramConfig::small_test()
            .with_seed(seed)
            .with_layout(layout)
            .with_disturbance(DisturbanceParams { pf: 0.03, ..DisturbanceParams::default() }),
    )
}

fn main() {
    let mut tel = Counters::new("exp-ext");
    // ---------------- permission vectors --------------------------------
    header("Section 8: permission vectors under RowHammer (20 modules each)");
    let perms: Vec<Permission> = (0..512).map(|i| Permission::from_bits((i % 8) as u8)).collect();
    for (name, layout) in [("true-cells", CellLayout::AllTrue), ("anti-cells", CellLayout::AllAnti)]
    {
        let mut escalations = 0usize;
        let mut denials = 0usize;
        for seed in 0..20u64 {
            let mut m = module(layout, seed);
            let store = PermissionStore::place(&mut m, RowId(2), &perms).expect("place");
            m.hammer_double_sided(RowId(2)).expect("hammer");
            let (e, d) = store.audit(&mut m, &perms).expect("audit");
            escalations += e;
            denials += d;
        }
        let group = format!("permissions:{name}");
        tel.set_u64(&group, "escalations", escalations as u64);
        tel.set_u64(&group, "denials", denials as u64);
        kv(
            &format!("{name}: escalations (denied→allowed)"),
            format!("{escalations} (denials: {denials})"),
        );
    }

    // ---------------- coldboot guard -------------------------------------
    header("Section 8: coldboot detection via retention canaries");
    let mut m = DramModule::new(DramConfig::small_test());
    let probe = m.config().retention.max_ns * 2;
    let guard = ColdbootGuard::install(&mut m, 0..32, probe).expect("canaries found");
    kv("canaries installed", guard.canaries().len());
    let scenarios: [(&str, u64, BootDecision); 3] = [
        ("attacker power-cycle (0.2 s)", 200_000_000, BootDecision::Halt { charged_canaries: 0 }),
        ("chilled coldboot (8 s)", 8_000_000_000, BootDecision::Halt { charged_canaries: 0 }),
        ("honest shutdown (3 min)", 180_000_000_000, BootDecision::Proceed),
    ];
    for (name, off_ns, expected_kind) in scenarios {
        let mut m2 = DramModule::new(DramConfig::small_test());
        let mut guard2 = ColdbootGuard::install(&mut m2, 0..32, probe).expect("canaries");
        guard2.arm(&mut m2).expect("arm");
        m2.write(40 * 4096, b"disk-encryption-key!").expect("secret planted");
        m2.power_off(off_ns);
        let decision = guard2.check(&mut m2).expect("check");
        let verdict = match (&decision, &expected_kind) {
            (BootDecision::Proceed, BootDecision::Proceed) => "proceed ✓",
            (BootDecision::Halt { .. }, BootDecision::Halt { .. }) => "halt ✓",
            _ => panic!("{name}: unexpected decision {decision:?}"),
        };
        let remanent = m2.read(40 * 4096, 20).expect("read") == b"disk-encryption-key!";
        kv(name, format!("{verdict} (secret remanent in DRAM: {remanent})"));
        if decision == BootDecision::Proceed {
            assert!(!remanent, "guard must never boot over remanent secrets");
        }
    }

    // ---------------- popcount code --------------------------------------
    header("Section 8: hamming-weight error detection (fault-injection sweep)");
    let mut corrupted = 0u32;
    let mut detected = 0u32;
    for seed in 0..40u64 {
        let mut m = module(
            CellLayout::Alternating { period_rows: 8, first: cta_dram::CellType::True },
            seed,
        );
        let data: Vec<u8> = (0..4096).map(|i| (i * 31 % 253) as u8).collect();
        let code = PopcountCode::encode(&mut m, RowId(2), RowId(10), &data).expect("encode");
        m.hammer_double_sided(RowId(2)).expect("hammer");
        if code.data(&mut m).expect("read") != data {
            corrupted += 1;
            if code.check(&mut m).expect("check") != Verdict::Clean {
                detected += 1;
            }
        }
    }
    kv("modules with corrupted data", corrupted);
    kv("corruptions detected by POPCNT check", detected);
    kv("detection rate", format!("{:.1}%", 100.0 * detected as f64 / corrupted.max(1) as f64));
    tel.set_u64("popcount", "modules_corrupted", u64::from(corrupted));
    tel.set_u64("popcount", "corruptions_detected", u64::from(detected));
    tel.set_f64("popcount", "detection_rate", f64::from(detected) / f64::from(corrupted.max(1)));
    emit_telemetry(&tel);
    println!("\nOK: monotonicity secures permissions, detects coldboots, and checks integrity.");
}
