//! The section 2.5 comparative baseline: CATT (Brasser et al.), the
//! software defense that physically partitions kernel and user memory.
//! CATT stops the vanilla spray attack — but the paper points out two
//! bypasses that CTA survives and CATT does not:
//!
//! 1. **DRAM row remapping**: a user-partition row whose *storage* the
//!    manufacturer placed adjacent to kernel rows gives the attacker an
//!    aggressor next to page tables despite the logical partition.
//! 2. **Double-owned pages**: a kernel page shared into user space (video
//!    buffer style) is an attacker-accessible aggressor physically inside
//!    kernel memory.
//!
//! In both cases CATT's *spatial* isolation breaks while CTA's
//! *directional* guarantee is untouched.
//!
//! Setup detail: the sprayed file spans 60 pages, so every page table is
//! dense with PTEs whose user-partition frames sit one `1→0` flip of
//! pfn-bit-10 above the kernel-partition PT frames — the flip pattern the
//! bypasses exploit.

use cta_bench::{defended_builder, emit_telemetry, header, kv};
use cta_core::verify::verify_system;
use cta_core::{CattPartition, DefenseSpec, SystemBuilder};
use cta_dram::{CellType, RowId};
use cta_mem::PAGE_SIZE;
use cta_telemetry::Counters;
use cta_vm::{Access, Kernel, Pid, VirtAddr};

const TOTAL: u64 = 8 << 20;
const FILE_PAGES: u64 = 60;
const REGIONS: u64 = 48;

fn base_builder(seed: u64, protected: bool) -> SystemBuilder {
    // The shared standard machine, with a finer polarity alternation
    // (16-row runs) so both cell types exist near any allocation site —
    // required for same-polarity manufacturer remaps between partitions.
    defended_builder(seed, protected, DefenseSpec::None).cell_period(16)
}

fn catt_machine(seed: u64) -> Kernel {
    // CATT is the allocation-seam member of the defense catalog: the spec
    // installs the partitioned memory map at boot, no DRAM hook.
    base_builder(seed, false)
        .defense(DefenseSpec::Catt(CattPartition::half_of(TOTAL)))
        .build()
        .expect("CATT machine boots")
}

/// Sprays the wide file across many regions, filling page tables.
fn spray(kernel: &mut Kernel) -> (Pid, Vec<VirtAddr>) {
    let pid = kernel.create_process(false).expect("process");
    let file = kernel.create_file(FILE_PAGES * PAGE_SIZE).expect("file");
    let mut regions = Vec::new();
    for i in 0..REGIONS {
        let va = VirtAddr(0x4000_0000 + i * (2 << 20));
        if kernel.mmap_file(pid, va, file, true).is_err() {
            break;
        }
        regions.push(va);
    }
    (pid, regions)
}

/// Hammers the row backing `va`, one full burst per refresh window.
fn hammer_va(kernel: &mut Kernel, pid: Pid, va: VirtAddr) {
    let interval = kernel.dram().config().refresh_interval_ns;
    kernel.dram_mut().advance(interval);
    if let Ok(row) = kernel.row_of_virt(pid, va) {
        let threshold = kernel.dram().config().disturbance.hammer_threshold;
        let _ = kernel.dram_mut().hammer(row, threshold);
    }
    kernel.flush_tlb();
}

fn self_refs(kernel: &Kernel) -> usize {
    verify_system(kernel).expect("verifier").self_references().count()
}

/// Disturbance flips that landed inside the process's page-table rows —
/// the exact corruption CATT promises can never happen (its integrity
/// guarantee), and which the paper's cited follow-up attacks (refs 10 and
/// 12) turn into full privilege escalation.
fn pt_row_flips(kernel: &Kernel, pid: Pid) -> u64 {
    let row_bytes = kernel.dram().geometry().row_bytes();
    let pt_rows: std::collections::BTreeSet<u64> = kernel
        .process(pid)
        .expect("proc")
        .pt_pages()
        .iter()
        .map(|(pfn, _)| pfn.addr().0 / row_bytes)
        .collect();
    kernel.dram().stats().flip_log.iter().filter(|f| pt_rows.contains(&f.row.0)).count() as u64
}

/// The attacker-ownable VA (a file-page mapping) whose frame's row has the
/// same cell polarity as `spare`, for a manufacturer remap.
fn matching_user_va(
    kernel: &mut Kernel,
    pid: Pid,
    regions: &[VirtAddr],
    spare_type: CellType,
) -> Option<(VirtAddr, RowId)> {
    for page in 0..FILE_PAGES {
        let va = regions[0].offset(page * PAGE_SIZE);
        let phys = kernel.translate(pid, va, Access::user_read()).ok()?;
        let row = kernel.dram().geometry().row_of_addr(phys).ok()?;
        if kernel.dram().cell_type_of_row(row).ok()? == spare_type {
            return Some((va, row));
        }
    }
    None
}

/// Finds a (user VA, user row, spare row) triple for the manufacturer
/// remap: the spare is a non-page-table row adjacent to at least one page
/// table, with the same cell polarity as one of the attacker's file rows.
fn remap_triple(
    kernel: &mut Kernel,
    pid: Pid,
    regions: &[VirtAddr],
) -> Option<(VirtAddr, RowId, RowId)> {
    let row_bytes = kernel.dram().geometry().row_bytes();
    let total_rows = kernel.dram().geometry().total_rows();
    let secret_row = kernel.kernel_secret().0.addr().0 / row_bytes;
    let pt_rows: std::collections::BTreeSet<u64> = kernel
        .process(pid)
        .ok()?
        .pt_pages()
        .iter()
        .map(|(pfn, _)| pfn.addr().0 / row_bytes)
        .collect();
    let mut candidates = Vec::new();
    for row in &pt_rows {
        for cand in [row.checked_sub(1)?, row + 1] {
            if cand < total_rows && !pt_rows.contains(&cand) && cand != secret_row {
                candidates.push(RowId(cand));
            }
        }
    }
    for spare in candidates {
        let spare_type = kernel.dram().cell_type_of_row(spare).ok()?;
        if let Some((va, user_row)) = matching_user_va(kernel, pid, regions, spare_type) {
            if user_row != spare {
                return Some((va, user_row, spare));
            }
        }
    }
    None
}

fn main() {
    let seeds = 0..12u64;

    // ------------------------------------------------------------------
    header("Scenario A: vanilla spray+hammer — CATT holds (as published)");
    let mut catt_vanilla_refs = 0usize;
    let mut catt_vanilla_pt_flips = 0u64;
    for seed in seeds.clone() {
        let mut kernel = catt_machine(seed);
        let (pid, regions) = spray(&mut kernel);
        for page in 0..4 {
            hammer_va(&mut kernel, pid, regions[0].offset(page * PAGE_SIZE));
        }
        catt_vanilla_refs += self_refs(&kernel);
        catt_vanilla_pt_flips += pt_row_flips(&kernel, pid);
    }
    kv("CATT: self-referencing PTEs (12 modules)", catt_vanilla_refs);
    kv("CATT: flips inside page-table rows", catt_vanilla_pt_flips);
    assert_eq!(catt_vanilla_refs, 0, "CATT does stop the naive attack");
    assert_eq!(catt_vanilla_pt_flips, 0, "the partition isolates page tables");

    // ------------------------------------------------------------------
    header("Scenario B: DRAM row remapping — CATT breaks, CTA holds");
    let mut catt_remap_pt_flips = 0u64;
    let mut catt_remap_refs = 0usize;
    let mut cta_remap_refs = 0usize;
    let mut cta_remap_pt_flips = 0u64;
    for seed in seeds.clone() {
        for protected in [false, true] {
            let mut kernel = if protected {
                base_builder(seed, true).build().expect("CTA boots")
            } else {
                catt_machine(seed)
            };
            let (pid, regions) = spray(&mut kernel);
            let Some((va, user_row, spare)) = remap_triple(&mut kernel, pid, &regions) else {
                continue;
            };
            kernel.dram_mut().remap_row(user_row, spare).expect("same-polarity remap");
            hammer_va(&mut kernel, pid, va);
            if protected {
                cta_remap_refs += self_refs(&kernel);
                cta_remap_pt_flips += pt_row_flips(&kernel, pid);
            } else {
                catt_remap_refs += self_refs(&kernel);
                catt_remap_pt_flips += pt_row_flips(&kernel, pid);
            }
        }
    }
    kv(
        "CATT + row remap: PT-row flips / self-refs",
        format!("{catt_remap_pt_flips} / {catt_remap_refs}"),
    );
    kv(
        "CTA  + row remap: PT-row flips / self-refs",
        format!("{cta_remap_pt_flips} / {cta_remap_refs}"),
    );
    assert!(catt_remap_pt_flips > 0, "remapping must breach CATT's kernel-integrity guarantee");
    assert_eq!(cta_remap_refs, 0, "CTA tolerates PT-row flips: they stay monotonic");

    // ------------------------------------------------------------------
    header("Scenario C: double-owned (shared kernel) page — CATT breaks, CTA holds");
    let mut catt_shared_pt_flips = 0u64;
    let mut catt_shared_refs = 0usize;
    let mut cta_shared_refs = 0usize;
    for seed in seeds {
        for protected in [false, true] {
            let mut kernel = if protected {
                base_builder(seed, true).build().expect("CTA boots")
            } else {
                catt_machine(seed)
            };
            let (pid, _) = spray(&mut kernel);
            // The kernel shares a buffer with the process; under CATT it
            // physically neighbors the freshly sprayed page tables.
            let shared = kernel.create_shared_kernel_page().expect("shared page");
            let share_va = VirtAddr(0x7000_0000);
            kernel.mmap_shared(pid, share_va, shared, true).expect("mmap_shared");
            hammer_va(&mut kernel, pid, share_va);
            if protected {
                cta_shared_refs += self_refs(&kernel);
            } else {
                catt_shared_pt_flips += pt_row_flips(&kernel, pid);
                catt_shared_refs += self_refs(&kernel);
            }
        }
    }
    kv(
        "CATT + shared page: PT-row flips / self-refs",
        format!("{catt_shared_pt_flips} / {catt_shared_refs}"),
    );
    kv("CTA  + shared page: self-referencing PTEs", cta_shared_refs);
    assert!(
        catt_shared_pt_flips > 0,
        "double-owned pages must breach CATT's kernel-integrity guarantee"
    );
    assert_eq!(cta_shared_refs, 0);

    let mut tel = Counters::new("exp-catt");
    tel.set_u64("catt", "vanilla_self_refs", catt_vanilla_refs as u64);
    tel.set_u64("catt", "vanilla_pt_row_flips", catt_vanilla_pt_flips);
    tel.set_u64("catt", "remap_self_refs", catt_remap_refs as u64);
    tel.set_u64("catt", "remap_pt_row_flips", catt_remap_pt_flips);
    tel.set_u64("catt", "shared_self_refs", catt_shared_refs as u64);
    tel.set_u64("catt", "shared_pt_row_flips", catt_shared_pt_flips);
    tel.set_u64("cta", "remap_self_refs", cta_remap_refs as u64);
    tel.set_u64("cta", "remap_pt_row_flips", cta_remap_pt_flips);
    tel.set_u64("cta", "shared_self_refs", cta_shared_refs as u64);
    emit_telemetry(&tel);

    println!("\nOK: CATT's spatial isolation breaks under remapping and sharing; CTA's");
    println!("directional guarantee does not depend on physical adjacency at all.");
}
