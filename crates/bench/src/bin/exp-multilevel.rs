//! Regenerates the section 7 extension: multi-level PTP zones — each
//! page-table level in its own true-cell sub-zone, higher levels at higher
//! physical addresses, so the No Self-Reference argument applies level by
//! level even with multiple page sizes.

use cta_bench::{emit_telemetry, header, kv, standard_builder};
use cta_mem::PtLevel;
use cta_telemetry::Counters;
use cta_vm::VirtAddr;

fn main() {
    let mut kernel = standard_builder(21, true).multi_level(true).build().expect("machine boots");
    header("Section 7: multi-level PTP zones");
    let layout = kernel.ptp_layout().expect("CTA on").clone();
    for (range, level) in layout.subzones() {
        kv(
            &format!("{} sub-zone", level.expect("multi-level tags all")),
            format!("{:#010x} .. {:#010x}", range.start, range.end),
        );
    }

    // Level ordering invariant: higher level ⇒ higher addresses.
    let mut last = 0u8;
    let mut last_end = 0u64;
    for (range, level) in layout.subzones() {
        let n = level.expect("tagged").number();
        assert!(n >= last && range.start >= last_end);
        last = n;
        last_end = range.end;
    }
    kv("level ordering (PT < PD < PDPT < PML4 by address)", "holds");

    // Allocate page tables through the kernel and check each landed in its
    // level's sub-zone.
    let pid = kernel.create_process(false).expect("process");
    for i in 0..4u64 {
        kernel
            .mmap_anonymous(pid, VirtAddr(0x4000_0000 + i * (2 << 20)), 4096, true)
            .expect("mmap");
    }
    let mut counts = std::collections::HashMap::new();
    for (pfn, level) in kernel.process(pid).expect("proc").pt_pages() {
        let addr = pfn.addr().0;
        let home = layout
            .subzones()
            .iter()
            .find(|(r, _)| r.contains(&addr))
            .and_then(|(_, l)| *l)
            .expect("every PT page must live in some tagged sub-zone");
        assert_eq!(home, *level, "a {level} page landed in the {home} sub-zone");
        *counts.entry(*level).or_insert(0u32) += 1;
    }
    let mut tel = Counters::new("exp-multilevel");
    tel.set_u64("multilevel", "subzones", layout.subzones().len() as u64);
    for level in PtLevel::ALL {
        let placed = counts.get(&level).copied().unwrap_or(0);
        tel.set_u64("multilevel", &format!("{level}_pages_placed"), u64::from(placed));
        kv(&format!("{level} pages placed correctly"), placed);
    }

    // The per-level No Self-Reference argument: every entry at level L+1
    // points into the level-L sub-zone (strictly lower addresses), every
    // leaf points below the mark.
    let mark = layout.low_water_mark();
    for record in kernel.iter_pt_entries(pid).expect("introspection") {
        let target = record.pte.pfn().addr().0;
        if record.level == PtLevel::Pt {
            assert!(target < mark);
        } else {
            assert!(target < record.entry_addr, "child tables live strictly below their parents");
        }
    }
    kv("per-level monotone pointer invariant", "holds");
    kernel.record_counters(&mut tel);
    emit_telemetry(&tel);
    println!("\nOK: multi-level zones preserve No Self-Reference at every level.");
}
