//! Regenerates Figure 4: the effect of the low water mark on physical
//! placement — page tables above the mark, data below it, versus the
//! interleaved free-for-all of a stock kernel.

use cta_bench::{emit_telemetry, header, kv, standard_machine};
use cta_mem::{PtLevel, PAGE_SIZE};
use cta_telemetry::Counters;
use cta_vm::VirtAddr;

fn main() {
    let mut tel = Counters::new("exp-fig4");
    for protected in [false, true] {
        let mut kernel = standard_machine(3, protected);
        let pid = kernel.create_process(false).expect("process");
        // Build a realistic mix: data pages and several page tables.
        for i in 0..8u64 {
            kernel
                .mmap_anonymous(pid, VirtAddr(0x4000_0000 + i * (2 << 20)), 4 * PAGE_SIZE, true)
                .expect("mmap");
        }
        header(&format!(
            "Figure 4{}: PTEs {} the Low Water Mark",
            if protected { "a" } else { "b" },
            if protected { "with" } else { "without" }
        ));
        match kernel.ptp_layout() {
            Some(layout) => kv("low water mark", format!("{:#x}", layout.low_water_mark())),
            None => kv("low water mark", "none (stock kernel)"),
        }
        let mark = kernel.ptp_layout().map(|l| l.low_water_mark());
        let mut pt_above = 0;
        let mut pt_below = 0;
        for (pfn, level) in kernel.process(pid).expect("proc").pt_pages() {
            let addr = pfn.addr().0;
            let side = match mark {
                Some(m) if addr >= m => {
                    pt_above += 1;
                    "above mark"
                }
                Some(_) => {
                    pt_below += 1;
                    "BELOW MARK (violation!)"
                }
                None => {
                    pt_below += 1;
                    "mixed with data"
                }
            };
            kv(&format!("{level} page at {addr:#x}"), side);
        }
        let mut leaf_above = 0;
        let mut leaf_below = 0;
        for record in kernel.iter_pt_entries(pid).expect("introspection") {
            if record.level == PtLevel::Pt {
                match mark {
                    Some(m) if record.pte.pfn().addr().0 >= m => leaf_above += 1,
                    _ => leaf_below += 1,
                }
            }
        }
        kv("page tables above/below mark", format!("{pt_above}/{pt_below}"));
        kv("leaf PTE targets above/below mark", format!("{leaf_above}/{leaf_below}"));
        if protected {
            assert_eq!(pt_below, 0);
            assert_eq!(leaf_above, 0);
        }
        let group = if protected { "placement:cta" } else { "placement:stock" };
        tel.set_u64(group, "pt_above_mark", pt_above);
        tel.set_u64(group, "pt_below_mark", pt_below);
        tel.set_u64(group, "leaf_targets_above_mark", leaf_above);
        tel.set_u64(group, "leaf_targets_below_mark", leaf_below);
        kernel.record_counters(&mut tel);
    }
    emit_telemetry(&tel);
    println!("\nOK: the mark separates page tables from everything they point at.");
}
