//! Regenerates Table 1: the catalog of published RowHammer attacks.

use cta_attack::catalog;
use cta_bench::{emit_telemetry, header};
use cta_telemetry::Counters;

fn main() {
    header("Table 1: Existing RowHammer Attacks");
    println!(
        "{:<36} {:<10} {:<44} {:<9} CTA mitigates",
        "Techniques", "Victim", "Attacks", "Platform"
    );
    let mut tel = Counters::new("exp-table1");
    for row in catalog() {
        println!(
            "{:<36} {:<10} {:<44} {:<9} {}",
            row.reference,
            row.victim.to_string(),
            row.effect,
            row.platform.to_string(),
            if row.mitigated_by_cta { "yes" } else { "out of scope" }
        );
        tel.add_u64("catalog", "attacks", 1);
        tel.add_u64(
            "catalog",
            if row.mitigated_by_cta { "mitigated_by_cta" } else { "out_of_scope" },
            1,
        );
    }
    emit_telemetry(&tel);
}
