//! Regenerates Table 1: the catalog of published RowHammer attacks.

use cta_attack::catalog;
use cta_bench::header;

fn main() {
    header("Table 1: Existing RowHammer Attacks");
    println!("{:<36} {:<10} {:<44} {:<9} CTA mitigates", "Techniques", "Victim", "Attacks", "Platform");
    for row in catalog() {
        println!(
            "{:<36} {:<10} {:<44} {:<9} {}",
            row.reference,
            row.victim.to_string(),
            row.effect,
            row.platform.to_string(),
            if row.mitigated_by_cta { "yes" } else { "out of scope" }
        );
    }
}
