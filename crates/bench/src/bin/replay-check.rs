//! `replay-check` — golden-recording replay gate.
//!
//! Loads every `*.recording.json` under the recordings directory
//! (`fixtures/recordings/` by default, `$CTA_RECORDINGS_DIR` override) and
//! replays each across the full store-backend × flip-engine grid,
//! asserting byte-identical flip transcripts, DRAM contents hashes,
//! simulated clocks, attack outcomes, and telemetry snapshots. Any
//! simulation regression — in the DRAM model, the flip engines, the
//! backends, the kernel, or the attacks — fails this gate with the first
//! diverging observable instead of silently changing every experiment.
//!
//! Usage:
//!
//! ```text
//! replay-check                     # replay all fixtures across all targets
//! replay-check --executor         # replay through the campaign executor too
//! replay-check --isolation MODE   # restrict executor replays to fork|journal
//! replay-check --record           # regenerate the fixtures from the specs
//! replay-check FILE ...           # replay specific recording files
//! ```
//!
//! `--executor` additionally replays every fixture *through the
//! persistent [`CampaignExecutor`]* at 1 and 3 workers **and under both
//! trial-isolation modes** (fork-per-trial and journaled in-place
//! rollback): same goldens, same byte-for-byte comparison, but served
//! boot-once over work-stealing deques. A pass proves the executor's
//! scheduling (worker count, steal interleaving, pool reuse) *and* its
//! isolation mechanism are invisible in the output, exactly as the scoped
//! serial path promises. `--isolation fork|journal` narrows the executor
//! grid to one mode (it implies `--executor`).
//!
//! `--record` exists for intentional simulation changes: regenerate,
//! eyeball the diff, and commit the new goldens alongside the change that
//! explains them.

use std::path::PathBuf;
use std::process::ExitCode;

use cta_attack::{
    record_campaign, replay_recording, CampaignExecutor, ExecutorConfig, RecordedAttack, Recording,
    RecordingSpec, ReplayTarget, SprayAttack, TemplatingAttack, TrialIsolation,
};

/// The golden campaign set: deliberately tiny machines and narrow attacks
/// so the full 6-target replay grid stays a fast tier-1 gate, while still
/// exercising both attack families, both trial outcomes (spray induces
/// flips and escalates on some seeds; templating gives up on others), and
/// a multi-trial merged telemetry snapshot.
fn golden_specs() -> Vec<(&'static str, RecordingSpec)> {
    let spray =
        SprayAttack { regions: 8, file_pages: 2, max_hammer_rows: 4, flush_per_probe: false };
    let templating = TemplatingAttack { arena_pages: 96, max_attempts: 4, flush_per_probe: false };
    vec![
        ("spray-small", RecordingSpec::new(RecordedAttack::Spray(spray), vec![0, 1])),
        ("templating-small", RecordingSpec::new(RecordedAttack::Templating(templating), vec![3])),
    ]
}

fn fixture_path(name: &str) -> PathBuf {
    cta_bench::recordings_dir().join(format!("{name}.recording.json"))
}

/// Regenerates every golden fixture from its spec.
fn record_goldens() -> ExitCode {
    let dir = cta_bench::recordings_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("replay-check: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    for (name, spec) in golden_specs() {
        let recording = match record_campaign(&spec) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("replay-check: FAIL recording {name}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let json = match recording.to_json_string() {
            Ok(j) => j,
            Err(e) => {
                eprintln!("replay-check: FAIL serializing {name}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let path = fixture_path(name);
        if let Err(e) = std::fs::write(&path, json + "\n") {
            eprintln!("replay-check: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        let flips: u64 = recording.trials.iter().map(|t| t.flips.len() as u64).sum();
        println!(
            "replay-check: recorded {} ({} trials, {flips} flips)",
            path.display(),
            recording.trials.len()
        );
    }
    ExitCode::SUCCESS
}

/// Every `*.recording.json` under the recordings directory, sorted.
fn default_fixtures() -> Vec<PathBuf> {
    let mut fixtures: Vec<PathBuf> = std::fs::read_dir(cta_bench::recordings_dir())
        .into_iter()
        .flatten()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.to_str().is_some_and(|s| s.ends_with(".recording.json")))
        .collect();
    fixtures.sort();
    fixtures
}

/// Worker counts the `--executor` mode replays under: the degenerate
/// single-worker queue and an oversubscribed pool (more workers than this
/// gate has campaigns per queue), so both "no stealing possible" and
/// "stealing likely" schedules are pinned to the same bytes.
const EXECUTOR_WORKERS: [usize; 2] = [1, 3];

/// Isolation modes the executor grid covers unless `--isolation` narrows
/// it: the fork path and the journaled in-place rollback path must both
/// reproduce the goldens byte-for-byte.
const EXECUTOR_ISOLATIONS: [TrialIsolation; 2] = [TrialIsolation::Fork, TrialIsolation::Journal];

fn replay_fixtures(
    files: &[PathBuf],
    executor: bool,
    isolation: Option<TrialIsolation>,
) -> ExitCode {
    if files.is_empty() {
        eprintln!(
            "replay-check: no recordings under {} (run `replay-check --record` to create them)",
            cta_bench::recordings_dir().display()
        );
        return ExitCode::FAILURE;
    }
    let mut failures = 0u32;
    for path in files {
        let recording = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| Recording::from_json_str(&text).map_err(|e| e.to_string()))
        {
            Ok(r) => r,
            Err(e) => {
                eprintln!("replay-check: FAIL {}: {e}", path.display());
                failures += 1;
                continue;
            }
        };
        for target in ReplayTarget::all() {
            match replay_recording(&recording, target) {
                Ok(report) => {
                    println!(
                        "replay-check: ok   {} [{target}] {} trials, {} flips",
                        path.display(),
                        report.trials,
                        report.flips_verified
                    );
                }
                Err(e) => {
                    eprintln!("replay-check: FAIL {} [{target}]: {e}", path.display());
                    failures += 1;
                }
            }
            if !executor {
                continue;
            }
            for workers in EXECUTOR_WORKERS {
                for mode in EXECUTOR_ISOLATIONS {
                    if isolation.is_some_and(|only| only != mode) {
                        continue;
                    }
                    let exec =
                        CampaignExecutor::new(ExecutorConfig { workers, parents_per_worker: 2 });
                    match exec.replay_isolated(&recording, target, mode) {
                        Ok(report) => {
                            println!(
                                "replay-check: ok   {} [{target}] executor w={workers} iso={}, {} trials, {} flips",
                                path.display(),
                                mode.name(),
                                report.trials,
                                report.flips_verified
                            );
                        }
                        Err(e) => {
                            eprintln!(
                                "replay-check: FAIL {} [{target}] executor w={workers} iso={}: {e}",
                                path.display(),
                                mode.name()
                            );
                            failures += 1;
                        }
                    }
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("replay-check: {failures} replay failures");
        return ExitCode::FAILURE;
    }
    let how =
        if executor { "on all targets, scoped and through the executor" } else { "on all targets" };
    println!("replay-check: {} recordings replayed {how}", files.len());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut record = false;
    let mut executor = false;
    let mut isolation: Option<TrialIsolation> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--record" => record = true,
            "--executor" => executor = true,
            "--isolation" => {
                let Some(mode) = args.next() else {
                    eprintln!("replay-check: --isolation requires fork or journal");
                    return ExitCode::FAILURE;
                };
                match mode.parse() {
                    Ok(mode) => {
                        isolation = Some(mode);
                        executor = true; // isolation is an executor dimension
                    }
                    Err(e) => {
                        eprintln!("replay-check: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            _ => files.push(PathBuf::from(arg)),
        }
    }
    if record {
        return record_goldens();
    }
    let files = if files.is_empty() { default_fixtures() } else { files };
    replay_fixtures(&files, executor, isolation)
}
