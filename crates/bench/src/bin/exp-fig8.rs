//! Regenerates Figure 8: the memory-zone map with CTA — ZONE_PTP
//! decomposed into true-cell sub-zones (ZONE_TC) with anti-cell rows
//! skipped, for both the common alternating layout and a true-heavy module.

use cta_bench::{emit_telemetry, header, kv};
use cta_dram::{AddressMapping, CellLayout, CellType, CellTypeMap, DramGeometry};
use cta_mem::{PtpLayout, PtpSpec};
use cta_telemetry::Counters;

fn show(tel: &mut Counters, name: &str, layout_kind: CellLayout, ptp_mib: u64) {
    // 512 MiB module, 128 KiB rows.
    let geometry = DramGeometry::new(128 * 1024, 4096, 1, AddressMapping::RowLinear);
    let cells = CellTypeMap::from_layout(&geometry, layout_kind);
    let layout =
        PtpLayout::build(&cells, 512 << 20, &PtpSpec::paper_default().with_size(ptp_mib << 20))
            .expect("feasible");
    header(&format!("Figure 8 ({name}, {ptp_mib} MiB ZONE_PTP)"));
    kv("low water mark", format!("{:#010x}", layout.low_water_mark()));
    for (range, _) in layout.subzones() {
        kv(
            "ZONE_TC",
            format!(
                "{:#010x} .. {:#010x} ({} KiB true-cells)",
                range.start,
                range.end,
                (range.end - range.start) >> 10
            ),
        );
    }
    for range in layout.reserved_anti_ranges() {
        kv(
            "reserved anti-cell hole",
            format!(
                "{:#010x} .. {:#010x} ({} KiB unused)",
                range.start,
                range.end,
                (range.end - range.start) >> 10
            ),
        );
    }
    kv(
        "capacity loss",
        format!(
            "{} KiB ({:.3}%)",
            layout.capacity_loss_bytes() >> 10,
            layout.capacity_loss_fraction() * 100.0
        ),
    );
    let group = format!("subzones:{name}");
    tel.set_u64(&group, "tc_subzones", layout.subzones().len() as u64);
    tel.set_u64(&group, "reserved_anti_holes", layout.reserved_anti_ranges().len() as u64);
    tel.set_u64(&group, "capacity_loss_bytes", layout.capacity_loss_bytes());
    tel.set_f64(&group, "capacity_loss_fraction", layout.capacity_loss_fraction());
}

fn main() {
    let mut tel = Counters::new("exp-fig8");
    // Alternation every 64 rows of 128 KiB = 8 MiB runs.
    show(
        &mut tel,
        "alternating module",
        CellLayout::Alternating { period_rows: 64, first: CellType::True },
        16,
    );
    // True-heavy module: almost no loss.
    show(&mut tel, "true-heavy 1000:1 module", CellLayout::TrueHeavy { anti_every: 1001 }, 16);
    // All-true module: zero loss, zone is one contiguous ZONE_TC.
    show(&mut tel, "all-true module", CellLayout::AllTrue, 16);
    emit_telemetry(&tel);
}
