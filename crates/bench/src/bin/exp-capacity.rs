//! Regenerates the section 6.2 effective-memory-capacity analysis: the
//! worst-case 0.78% loss per 64 MiB of ZONE_PTP, and measured losses on
//! concrete simulated layouts.

use cta_analysis::capacity::{worst_case_loss_bytes, worst_case_loss_fraction, REGION_BYTES};
use cta_bench::{emit_telemetry, header, kv};
use cta_dram::{AddressMapping, CellLayout, CellType, CellTypeMap, DramGeometry};
use cta_mem::{PtpLayout, PtpSpec};
use cta_telemetry::Counters;

fn main() {
    let mut tel = Counters::new("exp-capacity");
    header("Section 6.2 model: worst-case capacity loss (8 GiB system)");
    for ptp_mib in [32u64, 64, 96, 128] {
        let loss = worst_case_loss_bytes(ptp_mib << 20, REGION_BYTES);
        let frac = worst_case_loss_fraction(8 << 30, ptp_mib << 20, REGION_BYTES);
        tel.set_u64("capacity_model", &format!("loss_bytes_{ptp_mib}mib"), loss);
        tel.set_f64("capacity_model", &format!("loss_fraction_{ptp_mib}mib"), frac);
        kv(
            &format!("{ptp_mib} MiB ZONE_PTP"),
            format!("{} MiB reserved worst-case = {:.2}%", loss >> 20, frac * 100.0),
        );
    }
    kv("paper's headline", "0.78% per 64 MiB region at 8 GiB");

    header("Measured losses on simulated modules (512 MiB, 128 KiB rows)");
    let geometry = DramGeometry::new(128 * 1024, 4096, 1, AddressMapping::RowLinear);
    let cases: [(&str, CellLayout); 4] = [
        (
            "anti region on top (worst case)",
            CellLayout::Alternating { period_rows: 64, first: CellType::True },
        ),
        (
            "true region on top (best case)",
            CellLayout::Alternating { period_rows: 64, first: CellType::Anti },
        ),
        ("true-heavy 1000:1", CellLayout::TrueHeavy { anti_every: 1001 }),
        ("all-true module", CellLayout::AllTrue),
    ];
    for (i, (name, layout_kind)) in cases.into_iter().enumerate() {
        let cells = CellTypeMap::from_layout(&geometry, layout_kind);
        let layout =
            PtpLayout::build(&cells, 512 << 20, &PtpSpec::paper_default().with_size(8 << 20))
                .expect("feasible");
        tel.set_u64(
            "capacity_measured",
            &format!("case{i}_loss_bytes"),
            layout.capacity_loss_bytes(),
        );
        tel.set_f64(
            "capacity_measured",
            &format!("case{i}_loss_fraction"),
            layout.capacity_loss_fraction(),
        );
        kv(
            name,
            format!(
                "loss {} KiB ({:.3}%), mark {:#x}",
                layout.capacity_loss_bytes() >> 10,
                layout.capacity_loss_fraction() * 100.0,
                layout.low_water_mark()
            ),
        );
    }
    emit_telemetry(&tel);
    println!("\nOK: measured losses bracket the model between best and worst case.");
}
