//! The section 2.3 context experiment: why ECC does not stop RowHammer
//! (Aichinger's observation), measured on a real (72,64) SECDED code over
//! the simulated module — and why CTA is orthogonal to it.

use cta_bench::{emit_telemetry, header, kv};
use cta_dram::{CellLayout, DisturbanceParams, DramConfig, DramModule, EccRegion, RowId};
use cta_telemetry::Counters;

fn run_sweep(pf: f64, modules: u64) -> (u64, u64, u64, u64) {
    let mut corrected = 0;
    let mut detected = 0;
    let mut silent = 0;
    let mut total_flips = 0;
    for seed in 0..modules {
        let cfg = DramConfig::small_test()
            .with_seed(seed)
            .with_layout(CellLayout::AllTrue)
            .with_disturbance(DisturbanceParams { pf, ..DisturbanceParams::default() });
        let mut m = DramModule::new(cfg);
        // 512 protected words fill victim row 2; checks live in row 12
        // (same module — ECC chips are DRAM too). Hammer both.
        let mut region = EccRegion::new(&mut m, 2 * 4096, 12 * 4096, 512).unwrap();
        for i in 0..512u64 {
            region.write_word(&mut m, i, 0xFFFF_FFFF_FFFF_FFFF).unwrap();
        }
        m.hammer_double_sided(RowId(2)).unwrap();
        let interval = m.config().refresh_interval_ns;
        m.advance(interval);
        m.hammer_double_sided(RowId(12)).unwrap();
        let stats = region.scrub(&mut m).unwrap();
        corrected += stats.corrected;
        detected += stats.detected_double + stats.detected_multi;
        silent += stats.silent_corruptions;
        total_flips += m.stats().total_flips();
    }
    (corrected, detected, silent, total_flips)
}

fn main() {
    let mut tel = Counters::new("exp-ecc");
    header("SECDED ECC vs RowHammer (512 words/module, data + check rows hammered)");
    println!(
        "{:<12} {:>10} {:>12} {:>18} {:>10}",
        "cell Pf", "corrected", "detected", "silent corruptions", "flips"
    );
    for pf in [0.0002f64, 0.001, 0.005, 0.02] {
        let (corrected, detected, silent, flips) = run_sweep(pf, 40);
        let group = format!("ecc:pf{pf}");
        tel.set_u64(&group, "corrected", corrected);
        tel.set_u64(&group, "detected_uncorrectable", detected);
        tel.set_u64(&group, "silent_corruptions", silent);
        tel.set_u64(&group, "total_flips", flips);
        println!("{pf:<12} {corrected:>10} {detected:>12} {silent:>18} {flips:>10}");
    }

    header("Interpretation");
    kv("single flips", "corrected — ECC works as designed");
    kv("double flips", "detected-uncorrectable: machine check = denial of service");
    kv("triple+ flips", "may alias to a valid syndrome: silent corruption");
    kv("CTA's position", "orthogonal — it needs no detection at all, only flip *direction*");

    // The qualitative claims, asserted.
    let (_, detected_low, _, _) = run_sweep(0.0002, 40);
    let (corrected_hi, detected_hi, _, _) = run_sweep(0.02, 40);
    assert!(corrected_hi > 0);
    assert!(detected_hi > detected_low, "heavier hammering must defeat correction more often");
    emit_telemetry(&tel);
    println!(
        "\nOK: ECC degrades from 'corrects' to 'crashes' (and occasionally lies) as flips densify."
    );
}
