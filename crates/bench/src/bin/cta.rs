//! `cta` — the front-end CLI for the monotonic-CTA simulator.
//!
//! Three subcommands, from inspection to sustained service:
//!
//! * `cta profile` — boot one machine with the boot-time cell profiler
//!   and report what it found (cell-type split, model cache footprint,
//!   boot wall time);
//! * `cta attack` — run one attack trial end to end and report the
//!   outcome phase by phase;
//! * `cta evaluate` — drive the persistent campaign executor: a
//!   multi-tenant queue of campaigns served boot-once/fork-per-trial,
//!   with per-campaign JSON-lines telemetry and sustained-rate stats.
//!
//! ```text
//! cta profile  [--seed N] [--memory-mb N] [--stock]
//! cta attack   [--seed N] [--attack spray|templating] [--stock]
//! cta evaluate [--tenants N] [--campaigns N] [--trials N] [--workers N]
//!              [--seed N] [--attack spray|templating] [--stock]
//!              [--jsonl PATH]
//! ```
//!
//! Machines default to the paper's protected (CTA) configuration with
//! boot-time cell profiling on the copy-on-write backend; `--stock`
//! drops protection. `cta evaluate --jsonl` streams one strict-JSON
//! line per completed campaign (the `json-check --schema` gate validates
//! the stream's shape). `--isolation fork|journal` (attack and evaluate)
//! picks how trials are isolated from the pooled parent kernel:
//! fork-per-trial (the default) or journaled in-place rollback — the
//! output is byte-identical either way.

use std::process::ExitCode;
use std::time::Instant;

use cta_attack::{
    CampaignExecutor, CampaignRequest, ExecutorConfig, RecordedAttack, RecordingSpec, ReplayTarget,
    SprayAttack, TemplatingAttack, TenantLimits, TrialIsolation,
};
use cta_bench::{emit_telemetry, header, kv};
use cta_dram::StoreBackend;
use cta_telemetry::Counters;

const USAGE: &str = "usage: cta <profile|evaluate|attack> [options]
  profile   [--seed N] [--memory-mb N] [--stock]
  attack    [--seed N] [--attack spray|templating] [--stock]
            [--isolation fork|journal]
  evaluate  [--tenants N] [--campaigns N] [--trials N] [--workers N]
            [--seed N] [--attack spray|templating] [--stock] [--jsonl PATH]
            [--isolation fork|journal]";

struct Options {
    seed: u64,
    memory_mb: u64,
    protected: bool,
    attack: String,
    tenants: usize,
    campaigns: usize,
    trials: usize,
    workers: usize,
    jsonl: Option<std::path::PathBuf>,
    isolation: TrialIsolation,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            seed: 11,
            memory_mb: 8,
            protected: true,
            attack: "spray".to_string(),
            tenants: 2,
            campaigns: 2,
            trials: 4,
            workers: 2,
            jsonl: None,
            isolation: TrialIsolation::Fork,
        }
    }
}

fn parse_options(args: &mut std::env::Args) -> Result<Options, String> {
    let mut opts = Options::default();
    let need = |args: &mut std::env::Args, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => opts.seed = parse_num(&need(args, "--seed")?)?,
            "--memory-mb" => opts.memory_mb = parse_num(&need(args, "--memory-mb")?)?,
            "--stock" => opts.protected = false,
            "--attack" => opts.attack = need(args, "--attack")?,
            "--tenants" => opts.tenants = parse_num(&need(args, "--tenants")?)? as usize,
            "--campaigns" => opts.campaigns = parse_num(&need(args, "--campaigns")?)? as usize,
            "--trials" => opts.trials = parse_num(&need(args, "--trials")?)? as usize,
            "--workers" => opts.workers = parse_num(&need(args, "--workers")?)? as usize,
            "--jsonl" => opts.jsonl = Some(need(args, "--jsonl")?.into()),
            "--isolation" => opts.isolation = need(args, "--isolation")?.parse()?,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.attack != "spray" && opts.attack != "templating" {
        return Err(format!("unknown attack {:?} (spray|templating)", opts.attack));
    }
    Ok(opts)
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("not a number: {s:?}"))
}

/// The spec every subcommand shares: the standard small experiment
/// machine, profiled at boot, attack trials under the CoW backend (forks
/// are O(changed rows), which is what `evaluate` amortizes).
fn spec(opts: &Options) -> RecordingSpec {
    let attack = if opts.attack == "spray" {
        RecordedAttack::Spray(SprayAttack {
            regions: 8,
            file_pages: 2,
            max_hammer_rows: 4,
            flush_per_probe: false,
        })
    } else {
        RecordedAttack::Templating(TemplatingAttack {
            arena_pages: 96,
            max_attempts: 4,
            flush_per_probe: false,
        })
    };
    let mut spec = RecordingSpec::new(attack, Vec::new());
    spec.memory_bytes = opts.memory_mb << 20;
    spec.protected = opts.protected;
    spec.profile_cells = true;
    // Templating trials can land ~100k flips; transcripts must stay
    // lossless or the campaign is rejected.
    spec.flip_log_capacity = 1 << 17;
    spec
}

fn target() -> ReplayTarget {
    ReplayTarget { backend: StoreBackend::Cow, ..ReplayTarget::default() }
}

fn cmd_profile(opts: &Options) -> ExitCode {
    header(&format!(
        "cta profile — seed {} / {} MiB / {}",
        opts.seed,
        opts.memory_mb,
        if opts.protected { "cta" } else { "stock" }
    ));
    let start = Instant::now();
    let kernel = match spec(opts).builder(opts.seed, target()).build() {
        Ok(k) => k,
        Err(e) => {
            eprintln!("cta profile: boot failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let boot_ms = start.elapsed().as_secs_f64() * 1e3;
    let mut tel = Counters::new("cta-profile");
    kernel.record_counters(&mut tel);
    kv("boot_ms", format!("{boot_ms:.1}"));
    kv("rows", kernel.dram().geometry().total_rows());
    kv("row_bytes", kernel.dram().geometry().row_bytes());
    kv("rows_materialized", kernel.dram().rows_materialized());
    kv("model_cache_bytes", kernel.dram().model_cache_bytes());
    if let Some(g) = tel.group("dram") {
        for (key, value) in g.iter() {
            let rendered = match value {
                cta_telemetry::Value::UInt(v) => v.to_string(),
                cta_telemetry::Value::Float(v) => format!("{v:.3}"),
                cta_telemetry::Value::Bool(v) => v.to_string(),
                cta_telemetry::Value::Text(v) => v.clone(),
            };
            kv(&format!("dram.{key}"), rendered);
        }
    }
    emit_telemetry(&tel);
    ExitCode::SUCCESS
}

fn cmd_attack(opts: &Options) -> ExitCode {
    header(&format!(
        "cta attack — {} / seed {} / {}",
        opts.attack,
        opts.seed,
        if opts.protected { "cta" } else { "stock" }
    ));
    let mut spec = spec(opts);
    spec.seeds = vec![opts.seed];
    let exec = CampaignExecutor::new(ExecutorConfig { workers: 1, parents_per_worker: 1 });
    let mut request = CampaignRequest::new("cli", spec);
    request.isolation = opts.isolation;
    let output = match exec.run(request) {
        Ok(output) => output,
        Err(e) => {
            eprintln!("cta attack: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trial = &output.trials[0];
    kv("succeeded", trial.outcome.success());
    kv("flips", trial.flips.len());
    kv("contents_hash", format!("{:016x}", trial.contents_hash));
    kv("sim_time_ns", trial.end_ns);
    for phase in &trial.outcome.log {
        kv("phase", phase);
    }
    let mut tel = Counters::new("cta-attack");
    tel.merge(&output.counters);
    emit_telemetry(&tel);
    ExitCode::SUCCESS
}

fn cmd_evaluate(opts: &Options) -> ExitCode {
    header(&format!(
        "cta evaluate — {} tenants x {} campaigns x {} trials, {} workers, {} isolation",
        opts.tenants,
        opts.campaigns,
        opts.trials,
        opts.workers,
        opts.isolation.name()
    ));
    let exec =
        CampaignExecutor::new(ExecutorConfig { workers: opts.workers, parents_per_worker: 2 });
    if let Some(path) = &opts.jsonl {
        match std::fs::File::create(path) {
            Ok(sink) => exec.set_jsonl_sink(sink),
            Err(e) => {
                eprintln!("cta evaluate: cannot create {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    // The full queue up front: every tenant's campaigns interleaved, so
    // the pool serves a saturating multi-tenant mix rather than one
    // tenant draining at a time.
    let start = Instant::now();
    let mut tickets = Vec::new();
    for round in 0..opts.campaigns {
        for tenant_idx in 0..opts.tenants {
            let tenant = format!("tenant{tenant_idx}");
            exec.set_tenant_limits(&tenant, TenantLimits::default());
            let mut spec = spec(opts);
            spec.seeds = vec![opts.seed + tenant_idx as u64; opts.trials];
            let mut request = CampaignRequest::new(tenant, spec);
            request.target = target();
            request.isolation = opts.isolation;
            match exec.submit(request) {
                Ok(ticket) => tickets.push((round, tenant_idx, ticket)),
                Err(e) => {
                    eprintln!("cta evaluate: submit failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    let mut latencies_ns = Vec::new();
    for (round, tenant_idx, ticket) in tickets {
        match ticket.wait() {
            Ok(output) => {
                latencies_ns.extend_from_slice(&output.trial_latencies_ns);
                println!(
                    "  campaign {:>3}  tenant{tenant_idx} round {round}: {}/{} trials succeeded, {} flips",
                    output.campaign,
                    output.summary.successes,
                    output.summary.trials,
                    output.summary.total_flips
                );
            }
            Err(e) => {
                eprintln!("cta evaluate: campaign failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    latencies_ns.sort_unstable();
    let pct = |p: usize| {
        let rank = (latencies_ns.len() * p).div_ceil(100).max(1);
        latencies_ns[rank.min(latencies_ns.len()) - 1] as f64 / 1e6
    };
    let stats = exec.stats();
    kv("trials", stats.trials_completed);
    kv("trials_per_sec", format!("{:.1}", stats.trials_completed as f64 / wall_s));
    kv("p50_trial_latency_ms", format!("{:.1}", pct(50)));
    kv("p99_trial_latency_ms", format!("{:.1}", pct(99)));
    kv("parent_boots", stats.parent_boots);
    kv("fork_hits", stats.fork_hits);
    kv("journal_runs", stats.journal_runs);
    kv("steals", stats.steals);
    kv("pool_parents", stats.pool_parents);
    kv("pool_model_cache_bytes", stats.pool_model_cache_bytes);
    if let Some(path) = &opts.jsonl {
        kv("events", path.display());
    }
    let mut tel = Counters::new("cta-evaluate");
    exec.record_counters(&mut tel);
    emit_telemetry(&tel);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let _ = args.next();
    let Some(command) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_options(&mut args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("cta: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match command.as_str() {
        "profile" => cmd_profile(&opts),
        "attack" => cmd_attack(&opts),
        "evaluate" => cmd_evaluate(&opts),
        other => {
            eprintln!("cta: unknown subcommand {other:?}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
