//! `json-check` — strict-JSON gate over the workspace's emitted artifacts.
//!
//! Parses every file named on the command line — or, with no arguments,
//! `BENCH_baseline.json` plus every `*.json` under the telemetry directory
//! — with the strict parser from `cta_telemetry::json`, and fails with the
//! offending position if any of them is not standards-valid JSON. Wired
//! into `scripts/check.sh` so a regressed emitter (the `{,` corruption
//! that `BENCH_baseline.json` once accumulated) fails CI instead of
//! silently rotting the machine-readable record.
//!
//! Usage:
//!
//! ```text
//! json-check [FILE ...]
//! ```

use std::path::PathBuf;

use cta_telemetry::json;

/// The default audit set: the baseline record plus every telemetry
/// snapshot. A missing baseline file is fine (fresh checkout); a missing
/// explicitly-named file is an error.
fn default_files() -> Vec<PathBuf> {
    let mut files = Vec::new();
    let baseline =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_baseline.json");
    if baseline.exists() {
        files.push(baseline);
    }
    if let Ok(entries) = std::fs::read_dir(cta_bench::telemetry_dir()) {
        let mut snapshots: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        snapshots.sort();
        files.extend(snapshots);
    }
    files
}

fn main() {
    let args: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    let explicit = !args.is_empty();
    let files = if explicit { args } else { default_files() };
    if files.is_empty() {
        println!("json-check: no files to validate");
        return;
    }

    let mut failures = 0u32;
    for path in &files {
        match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("json-check: FAIL {}: {e}", path.display());
                failures += 1;
            }
            Ok(text) => match json::parse(&text) {
                Ok(_) => println!("json-check: ok   {}", path.display()),
                Err(e) => {
                    eprintln!("json-check: FAIL {}: {e}", path.display());
                    failures += 1;
                }
            },
        }
    }
    if failures > 0 {
        eprintln!("json-check: {failures} of {} files are not strict JSON", files.len());
        std::process::exit(1);
    }
    println!("json-check: {} files valid", files.len());
}
