//! `json-check` — strict-JSON and schema gate over the workspace's emitted
//! artifacts.
//!
//! Parses every file named on the command line — or, with no arguments,
//! `BENCH_baseline.json` plus every `*.json` under the telemetry directory
//! — with the strict parser from `cta_telemetry::json`, and fails with the
//! offending position if any of them is not standards-valid JSON. Wired
//! into `scripts/check.sh` so a regressed emitter (the `{,` corruption
//! that `BENCH_baseline.json` once accumulated) fails CI instead of
//! silently rotting the machine-readable record.
//!
//! With `--schema`, each file must additionally have the right *shape*
//! (`cta_telemetry::schema`), chosen by filename:
//!
//! * `BENCH_baseline.json` — labeled sections of exactly `quick` (bool)
//!   and `metrics` (flat object of finite numbers);
//! * `*.recording.json` — a campaign recording whose embedded `telemetry`
//!   member must be a schema-valid snapshot;
//! * `*.jsonl` — a JSON Lines stream (strict JSON per line) of campaign
//!   executor events, each with the declared scheduling fields and an
//!   embedded schema-valid snapshot;
//! * anything else — a telemetry snapshot: exactly `label`/`flags`/
//!   `groups` at top level, flat scalar groups, plus any per-binary
//!   required groups/keys/kinds declared for the snapshot's label.
//!
//! Usage:
//!
//! ```text
//! json-check [--schema] [FILE ...]
//! ```

use std::path::{Path, PathBuf};

use cta_telemetry::json::{self, JsonValue};
use cta_telemetry::schema;

/// The default audit set: the baseline record plus every telemetry
/// snapshot. A missing baseline file is fine (fresh checkout); a missing
/// explicitly-named file is an error.
fn default_files() -> Vec<PathBuf> {
    let mut files = Vec::new();
    let baseline =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_baseline.json");
    if baseline.exists() {
        files.push(baseline);
    }
    if let Ok(entries) = std::fs::read_dir(cta_bench::telemetry_dir()) {
        let mut snapshots: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "json" || ext == "jsonl"))
            .collect();
        snapshots.sort();
        files.extend(snapshots);
    }
    files
}

/// Validates a JSON Lines stream: every line strict JSON, and (with
/// `--schema`) every line a well-shaped executor event. Returns rendered
/// failure messages (empty ⇒ valid).
fn jsonl_errors(text: &str, check_schema: bool) -> Vec<String> {
    let docs = match cta_telemetry::jsonl::parse_lines(text) {
        Ok(docs) => docs,
        Err(e) => return vec![e.to_string()],
    };
    if !check_schema {
        return Vec::new();
    }
    let mut failures = Vec::new();
    for (index, doc) in docs.iter().enumerate() {
        for e in schema::validate_executor_event(doc) {
            failures.push(format!("line {}: {e}", index + 1));
        }
    }
    failures
}

/// Shape-checks `doc` according to what the filename says it is,
/// returning every violation.
fn schema_errors(path: &Path, doc: &JsonValue) -> Vec<schema::SchemaError> {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    if name == "BENCH_baseline.json" {
        return schema::validate_baseline(doc);
    }
    if name.ends_with(".recording.json") {
        // Full recording validation (spec, trials, transcript) is
        // replay-check's job; here the embedded snapshot must be shaped
        // like one.
        return match doc.get("telemetry") {
            Some(telemetry) => schema::validate_snapshot(telemetry)
                .into_iter()
                .map(|e| schema::SchemaError {
                    path: format!("telemetry.{}", e.path),
                    message: e.message,
                })
                .collect(),
            None => vec![schema::SchemaError {
                path: "telemetry".into(),
                message: "recording is missing its telemetry snapshot".into(),
            }],
        };
    }
    schema::validate_snapshot(doc)
}

fn main() {
    let mut check_schema = false;
    let mut args: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--schema" {
            check_schema = true;
        } else {
            args.push(PathBuf::from(arg));
        }
    }
    let files = if args.is_empty() { default_files() } else { args };
    if files.is_empty() {
        println!("json-check: no files to validate");
        return;
    }

    let mode = if check_schema { "strict JSON + schema" } else { "strict JSON" };
    let mut failures = 0u32;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("json-check: FAIL {}: {e}", path.display());
                failures += 1;
                continue;
            }
        };
        if path.extension().is_some_and(|ext| ext == "jsonl") {
            let errors = jsonl_errors(&text, check_schema);
            if errors.is_empty() {
                println!("json-check: ok   {}", path.display());
            } else {
                for e in &errors {
                    eprintln!("json-check: FAIL {}: {e}", path.display());
                }
                failures += 1;
            }
            continue;
        }
        let doc = match json::parse(&text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("json-check: FAIL {}: {e}", path.display());
                failures += 1;
                continue;
            }
        };
        if check_schema {
            let errors = schema_errors(path, &doc);
            if !errors.is_empty() {
                for e in &errors {
                    eprintln!("json-check: FAIL {}: {e}", path.display());
                }
                failures += 1;
                continue;
            }
        }
        println!("json-check: ok   {}", path.display());
    }
    if failures > 0 {
        eprintln!("json-check: {failures} of {} files failed the {mode} gate", files.len());
        std::process::exit(1);
    }
    println!("json-check: {} files valid ({mode})", files.len());
}
