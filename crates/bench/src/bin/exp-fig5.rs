//! Regenerates Figure 5: where corrupted PTE pointers can end up — with
//! monotonic pointers (true-cells) they only ever point *lower*; without
//! (anti-cells) they climb into forbidden territory.
//!
//! Reproduces the paper's worked example: a PTE holding 0x01100000 in
//! true-cells can only become 0x00100000, 0x01000000, or 0x00000000.

use cta_bench::{emit_telemetry, header, kv};
use cta_core::MonotonicValue;
use cta_dram::{CellLayout, CellType, DisturbanceParams, DramConfig, DramModule, RowId};
use cta_telemetry::Counters;

fn corrupted_values(
    layout: CellLayout,
    seeds: std::ops::Range<u64>,
    original: u64,
    reverse_rate: f64,
) -> Vec<u64> {
    let mut observed = Vec::new();
    for seed in seeds {
        let cfg = DramConfig::small_test().with_seed(seed).with_layout(layout).with_disturbance(
            DisturbanceParams { pf: 0.10, reverse_rate, ..DisturbanceParams::default() },
        );
        let mut m = DramModule::new(cfg);
        let addr = m.geometry().row_bytes(); // row 1
        m.write_u64(addr, original).expect("write");
        m.hammer_double_sided(RowId(1)).expect("hammer");
        let after = m.read_u64(addr).expect("read");
        if after != original {
            observed.push(after);
        }
    }
    observed.sort_unstable();
    observed.dedup();
    observed
}

fn main() {
    let original = 0x0110_0000u64;

    header("Figure 5a: victim PTE with monotonic pointers (true-cells)");
    kv("original pointer", format!("{original:#010x}"));
    let mono = MonotonicValue::new(original, CellType::True);
    kv("paper's reachable set", "0x00100000, 0x01000000, 0x00000000");
    let observed = corrupted_values(CellLayout::AllTrue, 0..400, original, 0.0);
    for v in &observed {
        kv(
            &format!("observed corruption {v:#010x}"),
            if *v <= original { "≤ original ✓" } else { "VIOLATION" },
        );
        assert!(mono.may_become(*v), "corruption outside the monotone set");
        assert!(*v < original);
    }
    kv("distinct corruptions observed", observed.len());

    header("Reverse-rate reality check (P0→1 = 0.2% in true-cells, section 5 footnote)");
    let mut corrupted_modules = 0u32;
    let mut upward_modules = 0u32;
    for seed in 0..2000u64 {
        let cfg = DramConfig::small_test()
            .with_seed(seed)
            .with_layout(CellLayout::AllTrue)
            .with_disturbance(DisturbanceParams {
                pf: 0.10,
                reverse_rate: 0.002,
                ..DisturbanceParams::default()
            });
        let mut m = DramModule::new(cfg);
        let addr = m.geometry().row_bytes();
        m.write_u64(addr, original).expect("write");
        m.hammer_double_sided(RowId(1)).expect("hammer");
        let after = m.read_u64(addr).expect("read");
        if after != original {
            corrupted_modules += 1;
            if after & !original != 0 {
                upward_modules += 1;
            }
        }
    }
    kv("modules whose PTE word corrupted", corrupted_modules);
    kv("of those, any upward (0→1) bit", upward_modules);
    kv("interpretation", "rare enough that the analytic model prices it, not the proof");

    header("Figure 5b: victim PTE without monotonic pointers (anti-cells)");
    let observed_anti = corrupted_values(CellLayout::AllAnti, 0..400, original, 0.0);
    let above = observed_anti.iter().filter(|v| **v > original).count();
    kv("distinct corruptions observed", observed_anti.len());
    kv("corruptions pointing higher than original", above);
    if let Some(max) = observed_anti.iter().max() {
        kv("highest observed pointer", format!("{max:#018x}"));
    }
    assert!(above > 0, "anti-cells must produce upward corruptions");

    let mut tel = Counters::new("exp-fig5");
    tel.set_u64("monotonic", "true_cell_corruptions", observed.len() as u64);
    tel.set_u64("monotonic", "true_cell_upward_corruptions", 0);
    tel.set_u64("monotonic", "anti_cell_corruptions", observed_anti.len() as u64);
    tel.set_u64("monotonic", "anti_cell_upward_corruptions", above as u64);
    tel.set_u64("monotonic", "reverse_rate_corrupted_modules", u64::from(corrupted_modules));
    tel.set_u64("monotonic", "reverse_rate_upward_modules", u64::from(upward_modules));
    emit_telemetry(&tel);
    println!("\nOK: true-cells only decrease pointers; anti-cells reach arbitrary high addresses.");
}
