//! Regenerates the section 7 virtual-machine scenario: a hypervisor
//! reserves `ZONE_HYPERVISOR` at the top of host true-cell memory and
//! hands each guest a disjoint slice as its `ZONE_PTP`. Guests boot on
//! their assigned slices; an attack inside one guest cannot self-reference
//! its own page tables nor reach any other guest's.

use cta_attack::SprayAttack;
use cta_bench::{emit_telemetry, header, kv};
use cta_core::verify::verify_system;
use cta_core::SystemBuilder;
use cta_dram::DisturbanceParams;
use cta_mem::{GuestSpec, HypervisorPlan, MemoryMap};
use cta_telemetry::Counters;
use cta_vm::Kernel;

fn main() {
    // Host: the standard 8 MiB machine shape.
    let base = SystemBuilder::new(8 << 20)
        .seed(31)
        .disturbance(DisturbanceParams { pf: 0.05, ..DisturbanceParams::default() });
    let host_config = base.to_config();
    let host_module = cta_dram::DramModule::new(host_config.dram.clone());
    let host_map = host_module.ground_truth_cell_map();

    header("Section 7: hypervisor partition of ZONE_HYPERVISOR");
    let guests = vec![
        GuestSpec::new("guest-a", 256 * 1024),
        GuestSpec::new("guest-b", 512 * 1024),
        GuestSpec::new("guest-c", 256 * 1024),
    ];
    let plan = HypervisorPlan::build(&host_map, 8 << 20, &guests).expect("plan feasible");
    print!("{plan}");
    let problems = plan.check(&host_map);
    kv("structural invariant violations", problems.len());
    assert!(problems.is_empty(), "{problems:?}");

    let mut tel = Counters::new("exp-hypervisor");
    tel.set_u64("hypervisor", "guests", plan.guests().len() as u64);
    tel.set_u64("hypervisor", "invariant_violations", problems.len() as u64);

    header("Guests boot on their slices and survive the spray attack");
    for guest in plan.guests() {
        let mut config = base.clone().to_config();
        config.memory_map_override =
            Some(MemoryMap::x86_64(8 << 20).with_cta(guest.layout.clone()));
        let mut kernel = Kernel::new(config).expect("guest boots");
        let slice_ranges: Vec<_> = guest.layout.subzones().to_vec();
        let outcome = SprayAttack::default().run(&mut kernel).expect("attack runs");
        let report = verify_system(&kernel).expect("verifier");
        kv(
            &guest.name,
            format!(
                "escalated={} self-refs={} flips={}",
                outcome.success(),
                report.self_references().count(),
                outcome.flips_induced
            ),
        );
        assert!(!outcome.success());
        assert_eq!(report.self_references().count(), 0);
        let group = format!("guest:{}", guest.name);
        tel.set_u64(&group, "escalated", u64::from(outcome.success()));
        tel.set_u64(&group, "self_references", report.self_references().count() as u64);
        tel.set_u64(&group, "flips_induced", outcome.flips_induced);
        kernel.record_counters(&mut tel);
        // Every page table the guest built lives inside its assigned slice.
        for pid in kernel.pids() {
            for (pfn, _) in kernel.process(pid).expect("proc").pt_pages() {
                let addr = pfn.addr().0;
                assert!(
                    slice_ranges.iter().any(|(r, _)| r.contains(&addr)),
                    "{}: PT page {addr:#x} escaped its slice",
                    guest.name
                );
            }
        }
    }
    emit_telemetry(&tel);
    println!("\nOK: per-guest CTA holds, slices stay disjoint, no VM can reach another's tables.");
}
