//! Regenerates Figure 1: DRAM bank organization — rows, the row buffer
//! abstraction, and which victim rows an aggressor disturbs.

use cta_bench::{emit_telemetry, header, kv};
use cta_dram::{DramConfig, DramModule, RowId};
use cta_telemetry::Counters;

fn main() {
    let module = DramModule::new(DramConfig::paper_scale(1 << 30, 7));
    let g = module.geometry();
    header("Figure 1: DRAM Bank Organization (1 GiB paper-scale module)");
    kv("banks", g.banks());
    kv("rows per bank", g.rows_per_bank());
    kv("row size", format!("{} KiB", g.row_bytes() / 1024));
    kv("cells per row", g.bits_per_row());
    kv("capacity", format!("{} MiB", g.capacity_bytes() >> 20));

    header("Aggressor/victim geometry");
    for aggressor in [RowId(0), RowId(100), RowId(g.rows_per_bank() - 1)] {
        let victims = g.adjacent_rows(aggressor).expect("row in range");
        let coord = g.bank_coord(aggressor).expect("row in range");
        kv(
            &format!(
                "aggressor {aggressor} (bank {}, in-bank row {})",
                coord.bank, coord.row_in_bank
            ),
            format!(
                "victims: {}",
                victims.iter().map(|r| r.to_string()).collect::<Vec<_>>().join(", ")
            ),
        );
    }

    header("Bank-boundary isolation");
    let last_of_bank0 = RowId(g.rows_per_bank() - 1);
    let first_of_bank1 = RowId(g.rows_per_bank());
    kv(
        &format!("{last_of_bank0} and {first_of_bank1}"),
        "consecutive indices but different banks: not neighbors",
    );
    assert!(!g.adjacent_rows(last_of_bank0).expect("in range").contains(&first_of_bank1));

    let mut tel = Counters::new("exp-fig1");
    tel.set_u64("geometry", "banks", g.banks() as u64);
    tel.set_u64("geometry", "rows_per_bank", g.rows_per_bank());
    tel.set_u64("geometry", "row_bytes", g.row_bytes());
    tel.set_u64("geometry", "capacity_bytes", g.capacity_bytes());
    tel.record(module.stats());
    emit_telemetry(&tel);
    println!("\nOK: adjacency respects bank boundaries.");
}
