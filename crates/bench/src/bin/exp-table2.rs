//! Regenerates Table 2 (expected exploitable PTEs and attack times) plus
//! the §5 anti-cell baseline row, and cross-validates the closed form with
//! Monte Carlo sampling.

use cta_analysis::{
    expected_exploitable_ptes, monte_carlo_p_exploitable, p_exploitable, table2, FlipStats,
    Restriction, SystemShape,
};
use cta_bench::{emit_telemetry, header, kv};
use cta_telemetry::Counters;

fn main() {
    let mut tel = Counters::new("exp-table2");
    header("Table 2: Expected Exploitable PTEs and Attack Time (Pf = 1e-4, P0→1 = 0.2%)");
    print!("{}", table2().render("Table 2"));

    header("Section 5 baseline: ZONE_PTP mistakenly in anti-cells (8GB/32MB)");
    let shape = SystemShape::new(8 << 30, 32 << 20);
    let stats = FlipStats::paper_default();
    let anti = cta_analysis::exploit::expected_exploitable_ptes_anti_cells(&shape, &stats);
    kv("expected exploitable PTEs (paper: 3354.7)", format!("{anti:.1}"));
    let timing = cta_analysis::AttackTiming::default();
    kv(
        "expected attack time (paper: 3.2 hours)",
        format!("{:.2} hours", timing.expected_days(&shape, anti) * 24.0),
    );
    let good = expected_exploitable_ptes(&shape, &stats, Restriction::None);
    kv("true-cell CTA expected exploitable", format!("{good:.2}"));
    kv("anti/true ratio", format!("{:.1e}", anti / good));
    tel.set_f64("table2", "anti_cell_exploitable_ptes", anti);
    tel.set_f64("table2", "true_cell_exploitable_ptes", good);
    tel.set_f64("table2", "anti_true_ratio", anti / good);

    header("Monte Carlo cross-validation of the closed form");
    // True-cell statistics scaled so sampling is affordable; the agreement
    // is structural.
    let mc_stats = FlipStats { pf: 0.02, p0_to_1: 0.05, p1_to_0: 0.95 };
    for restriction in [Restriction::None, Restriction::AtLeastTwoZeros] {
        let analytic = p_exploitable(8, &mc_stats, restriction);
        let mc = monte_carlo_p_exploitable(8, &mc_stats, restriction, 1_000_000, 0xC0DE);
        kv(
            &format!("{restriction:?}: closed form vs Monte Carlo"),
            format!("{analytic:.4e} vs {:.4e} (±{:.1e})", mc.p_hat, mc.std_error()),
        );
        let key = format!("{restriction:?}").to_lowercase();
        tel.set_f64("monte_carlo", &format!("{key}_analytic"), analytic);
        tel.set_f64("monte_carlo", &format!("{key}_p_hat"), mc.p_hat);
    }

    header("One-in-how-many-systems is even vulnerable (restricted, 8GB/32MB)");
    let restricted = expected_exploitable_ptes(&shape, &stats, Restriction::AtLeastTwoZeros);
    kv("systems per vulnerable system (paper: 2.04e5)", format!("{:.2e}", 1.0 / restricted));
    tel.set_f64("table2", "systems_per_vulnerable_system", 1.0 / restricted);
    emit_telemetry(&tel);
}
