//! Regenerates Figure 2 / section 2.2: system-level identification of
//! true-cell and anti-cell regions by the write-1s / disable-refresh /
//! read-back procedure.

use cta_bench::{emit_telemetry, header, kv};
use cta_dram::{profile_cell_types, CellLayout, CellType, DramConfig, DramModule, ProfilerConfig};
use cta_telemetry::Counters;

fn main() {
    let mut tel = Counters::new("exp-fig2");
    for (name, layout) in [
        (
            "alternating every 8 rows",
            CellLayout::Alternating { period_rows: 8, first: CellType::True },
        ),
        ("true-heavy 15:1", CellLayout::TrueHeavy { anti_every: 16 }),
        ("all true-cells", CellLayout::AllTrue),
    ] {
        let mut module = DramModule::new(DramConfig::small_test().with_layout(layout));
        let truth = module.ground_truth_cell_map();
        let profile =
            profile_cell_types(&mut module, &ProfilerConfig::default()).expect("profiling runs");
        header(&format!("Figure 2 experiment: {name}"));
        kv("rows profiled", profile.map.rows());
        kv("recovered regions", profile.map.regions().len());
        for region in profile.map.regions().iter().take(6) {
            kv(&format!("rows {}..{}", region.start_row.0, region.end_row.0), region.cell_type);
        }
        kv("max dissenting bits in any row", profile.max_dissent());
        kv("matches ground truth", profile.map == truth);
        assert_eq!(profile.map, truth, "profiler must recover the layout");
        tel.add_u64("profiler", "layouts_profiled", 1);
        tel.add_u64("profiler", "rows_profiled", profile.map.rows());
        tel.add_u64("profiler", "max_dissent", profile.max_dissent());
        tel.record(module.stats());
    }
    emit_telemetry(&tel);
    println!("\nOK: the profiler recovers every layout exactly.");
}
