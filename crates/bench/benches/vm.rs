//! Benchmarks of the virtual-memory substrate: page-table walks, TLB-hit
//! translation, and mapping churn — the operations whose Table 4 parity
//! between stock and CTA kernels the workload harness aggregates.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cta_core::SystemBuilder;
use cta_mem::PAGE_SIZE;
use cta_vm::{Access, Kernel, VirtAddr};
use std::hint::black_box;

fn machine(protected: bool) -> Kernel {
    SystemBuilder::new(16 << 20)
        .ptp_bytes(1 << 20)
        .seed(3)
        .protected(protected)
        // Timing benches drive millions of walks through one machine; with
        // a nonzero pf the benchmark itself RowHammers its page tables
        // (cleared present bits abort the walk). Measure on a flip-free
        // module — the timing paths are identical.
        .disturbance(cta_dram::DisturbanceParams {
            pf: 0.0,
            ..cta_dram::DisturbanceParams::default()
        })
        .build()
        .unwrap()
}

fn bench_translate(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm");
    for protected in [false, true] {
        let label = if protected { "cta" } else { "stock" };
        group.bench_function(format!("walk_cold_{label}"), |b| {
            let mut k = machine(protected);
            let pid = k.create_process(false).unwrap();
            let va = VirtAddr(0x4000_0000);
            k.mmap_anonymous(pid, va, 8 * PAGE_SIZE, true).unwrap();
            b.iter(|| {
                k.flush_tlb();
                k.translate(black_box(pid), black_box(va), Access::user_read()).unwrap()
            })
        });
        group.bench_function(format!("translate_tlb_hit_{label}"), |b| {
            let mut k = machine(protected);
            let pid = k.create_process(false).unwrap();
            let va = VirtAddr(0x4000_0000);
            k.mmap_anonymous(pid, va, PAGE_SIZE, true).unwrap();
            k.translate(pid, va, Access::user_read()).unwrap();
            b.iter(|| k.translate(black_box(pid), black_box(va), Access::user_read()).unwrap())
        });
    }
    group.finish();
}

fn bench_mapping_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm");
    for protected in [false, true] {
        let label = if protected { "cta" } else { "stock" };
        group.bench_function(format!("mmap_munmap_16_pages_{label}"), |b| {
            b.iter_batched(
                || {
                    let mut k = machine(protected);
                    let pid = k.create_process(false).unwrap();
                    (k, pid)
                },
                |(mut k, pid)| {
                    let va = VirtAddr(0x4000_0000);
                    k.mmap_anonymous(pid, va, 16 * PAGE_SIZE, true).unwrap();
                    k.munmap(pid, va, 16 * PAGE_SIZE).unwrap();
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_virt_io(c: &mut Criterion) {
    c.bench_function("vm/write_read_4k_through_tables", |b| {
        let mut k = machine(true);
        let pid = k.create_process(false).unwrap();
        let va = VirtAddr(0x4000_0000);
        k.mmap_anonymous(pid, va, 4 * PAGE_SIZE, true).unwrap();
        let data = vec![0xC3u8; 4096];
        let mut buf = vec![0u8; 4096];
        b.iter(|| {
            k.write_virt(pid, va, black_box(&data), Access::user_write()).unwrap();
            k.read_virt(pid, va, &mut buf, Access::user_read()).unwrap();
        })
    });
}

criterion_group!(benches, bench_translate, bench_mapping_churn, bench_virt_io);
criterion_main!(benches);
