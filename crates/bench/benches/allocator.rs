//! Benchmarks of the zoned buddy allocator — in particular the code path
//! Table 4 cares about: `pte_alloc` with CTA (a `__GFP_PTP` request into
//! the true-cell sub-zones) versus a stock `GFP_KERNEL` request. The
//! paper's claim is that this dispatch adds no measurable cost; here it is
//! measured directly.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cta_dram::{AddressMapping, CellLayout, CellType, CellTypeMap, DramGeometry};
use cta_mem::{GfpFlags, MemoryMap, Pfn, PtpLayout, PtpSpec, ZonedAllocator};
use std::hint::black_box;

const MIB: u64 = 1 << 20;

fn stock_allocator() -> ZonedAllocator {
    ZonedAllocator::new(MemoryMap::x86_64(64 * MIB))
}

fn cta_allocator() -> ZonedAllocator {
    let geometry = DramGeometry::new(64 * 1024, 1024, 1, AddressMapping::RowLinear);
    let cells = CellTypeMap::from_layout(
        &geometry,
        CellLayout::Alternating { period_rows: 64, first: CellType::True },
    );
    let layout =
        PtpLayout::build(&cells, 64 * MIB, &PtpSpec::paper_default().with_size(4 * MIB)).unwrap();
    ZonedAllocator::new(MemoryMap::x86_64(64 * MIB).with_cta(layout))
}

fn bench_alloc_free(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocator");
    group.bench_function("alloc_free_kernel_page_stock", |b| {
        let mut alloc = stock_allocator();
        b.iter(|| {
            let p = alloc.alloc_pages(GfpFlags::KERNEL, 0).unwrap();
            alloc.free_pages(black_box(p), 0).unwrap();
        })
    });
    group.bench_function("alloc_free_kernel_page_cta", |b| {
        let mut alloc = cta_allocator();
        b.iter(|| {
            let p = alloc.alloc_pages(GfpFlags::KERNEL, 0).unwrap();
            alloc.free_pages(black_box(p), 0).unwrap();
        })
    });
    // The patched path: page-table page allocation.
    group.bench_function("pte_alloc_stock_gfp_kernel", |b| {
        let mut alloc = stock_allocator();
        b.iter(|| {
            let p = alloc.alloc_pages(GfpFlags::KERNEL.zeroed(), 0).unwrap();
            alloc.free_pages(black_box(p), 0).unwrap();
        })
    });
    group.bench_function("pte_alloc_cta_gfp_ptp", |b| {
        let mut alloc = cta_allocator();
        b.iter(|| {
            let p = alloc.alloc_pages(GfpFlags::PTP, 0).unwrap();
            alloc.free_pages(black_box(p), 0).unwrap();
        })
    });
    group.finish();
}

fn bench_fragmentation(c: &mut Criterion) {
    c.bench_function("allocator/mixed_order_churn", |b| {
        b.iter_batched(
            stock_allocator,
            |mut alloc| {
                let mut live: Vec<(Pfn, u8)> = Vec::new();
                for i in 0..256u32 {
                    let order = (i % 4) as u8;
                    if i % 3 == 0 && !live.is_empty() {
                        let (p, o) = live.swap_remove((i as usize * 7) % live.len());
                        alloc.free_pages(p, o).unwrap();
                    } else if let Ok(p) = alloc.alloc_pages(GfpFlags::HIGHUSER, order) {
                        live.push((p, order));
                    }
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_zone_construction(c: &mut Criterion) {
    c.bench_function("allocator/build_cta_layout_64mb", |b| {
        let geometry = DramGeometry::new(64 * 1024, 1024, 1, AddressMapping::RowLinear);
        let cells = CellTypeMap::from_layout(
            &geometry,
            CellLayout::Alternating { period_rows: 64, first: CellType::True },
        );
        b.iter(|| {
            PtpLayout::build(
                black_box(&cells),
                64 * MIB,
                &PtpSpec::paper_default().with_size(4 * MIB),
            )
            .unwrap()
        })
    });
}

criterion_group!(benches, bench_alloc_free, bench_fragmentation, bench_zone_construction);
criterion_main!(benches);
