//! Benchmarks of the attack machinery — spray-phase cost, hammer driver,
//! and the verifier that scores outcomes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cta_attack::{HammerDriver, SprayAttack};
use cta_core::verify::verify_system;
use cta_core::SystemBuilder;
use cta_dram::DisturbanceParams;
use cta_mem::PAGE_SIZE;
use cta_vm::{Kernel, VirtAddr};

fn machine(protected: bool) -> Kernel {
    SystemBuilder::new(8 << 20)
        .ptp_bytes(512 * 1024)
        .seed(5)
        .protected(protected)
        .disturbance(DisturbanceParams { pf: 0.05, ..DisturbanceParams::default() })
        .build()
        .unwrap()
}

fn bench_spray_attack(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack");
    group.sample_size(10);
    for protected in [false, true] {
        let label = if protected { "cta" } else { "stock" };
        group.bench_function(format!("spray_full_run_{label}"), |b| {
            b.iter_batched(
                || machine(protected),
                |mut k| SprayAttack::default().run(&mut k).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_hammer_driver(c: &mut Criterion) {
    c.bench_function("attack/hammer_row_of", |b| {
        b.iter_batched(
            || {
                let mut k = machine(false);
                let pid = k.create_process(false).unwrap();
                k.mmap_anonymous(pid, VirtAddr(0x4000_0000), PAGE_SIZE, true).unwrap();
                (k, pid)
            },
            |(mut k, pid)| {
                HammerDriver::new().hammer_row_of(&mut k, pid, VirtAddr(0x4000_0000)).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_verifier(c: &mut Criterion) {
    c.bench_function("attack/verify_system_after_attack", |b| {
        let mut k = machine(true);
        let _ = SprayAttack::default().run(&mut k).unwrap();
        b.iter(|| verify_system(&k).unwrap())
    });
}

criterion_group!(benches, bench_spray_attack, bench_hammer_driver, bench_verifier);
criterion_main!(benches);
