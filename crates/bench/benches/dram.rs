//! Benchmarks of the DRAM substrate: access paths, hammer bursts, and the
//! boot-time profiler.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cta_dram::{
    profile_cell_types, DisturbanceParams, DramConfig, DramModule, ProfilerConfig, RowId,
};
use std::hint::black_box;

fn module() -> DramModule {
    DramModule::new(DramConfig::small_test())
}

fn bench_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram");
    group.bench_function("write_u64", |b| {
        let mut m = module();
        let mut addr = 0u64;
        b.iter(|| {
            m.write_u64(black_box(addr % 200_000), 0xDEAD_BEEF).unwrap();
            addr += 8;
        })
    });
    group.bench_function("read_u64", |b| {
        let mut m = module();
        m.fill(0, 4096, 0xAB).unwrap();
        let mut addr = 0u64;
        b.iter(|| {
            let v = m.read_u64(black_box(addr % 4000)).unwrap();
            addr += 8;
            v
        })
    });
    group.bench_function("read_page_cross_row", |b| {
        let mut m = module();
        m.fill(0, 64 * 1024, 0x5A).unwrap();
        let mut addr = 2048u64;
        b.iter(|| {
            let v = m.read(black_box(addr % 60_000), 4096).unwrap();
            addr += 4096;
            v
        })
    });
    group.finish();
}

fn bench_hammer(c: &mut Criterion) {
    c.bench_function("dram/hammer_burst_to_threshold", |b| {
        b.iter_batched(
            || {
                let mut m =
                    DramModule::new(DramConfig::small_test().with_disturbance(DisturbanceParams {
                        pf: 0.02,
                        ..DisturbanceParams::default()
                    }));
                m.fill(0, 16 * 4096, 0xFF).unwrap();
                m
            },
            |mut m| m.hammer_double_sided(RowId(2)).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_profiler(c: &mut Criterion) {
    c.bench_function("dram/profile_16_rows", |b| {
        b.iter_batched(
            module,
            |mut m| {
                profile_cell_types(&mut m, &ProfilerConfig::default().with_rows(0..16)).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_access, bench_hammer, bench_profiler);
criterion_main!(benches);
