//! Benchmarks of the analytic evaluation pipeline (Tables 2–3): how cheap
//! the closed-form security model is, and the cost of its Monte Carlo
//! validation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cta_analysis::{
    monte_carlo_p_exploitable, p_exploitable, table2, table3, FlipStats, Restriction,
};
use std::hint::black_box;

fn bench_closed_form(c: &mut Criterion) {
    let stats = FlipStats::paper_default();
    c.bench_function("analysis/p_exploitable_n8", |b| {
        b.iter(|| p_exploitable(black_box(8), black_box(&stats), Restriction::None))
    });
    c.bench_function("analysis/p_exploitable_restricted_n10", |b| {
        b.iter(|| p_exploitable(black_box(10), black_box(&stats), Restriction::AtLeastTwoZeros))
    });
}

fn bench_table_generation(c: &mut Criterion) {
    c.bench_function("analysis/generate_table2", |b| b.iter(|| black_box(table2()).generate()));
    c.bench_function("analysis/generate_table3", |b| b.iter(|| black_box(table3()).generate()));
    c.bench_function("analysis/render_table2", |b| {
        b.iter_batched(table2, |t| t.render("Table 2"), BatchSize::SmallInput)
    });
}

fn bench_monte_carlo(c: &mut Criterion) {
    let stats = FlipStats::paper_default().inverted();
    c.bench_function("analysis/monte_carlo_100k_samples", |b| {
        b.iter(|| {
            monte_carlo_p_exploitable(
                black_box(8),
                black_box(&stats),
                Restriction::None,
                100_000,
                7,
            )
        })
    });
}

criterion_group!(benches, bench_closed_form, bench_table_generation, bench_monte_carlo);
criterion_main!(benches);
