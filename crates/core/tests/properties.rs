//! Property-based tests of the monotonicity calculus and the theorem.

use cta_core::lwm::PtpIndicator;
use cta_core::mono::{can_reach, MonotonicValue};
use cta_core::verify::check_theorem_exhaustive;
use cta_dram::{CellType, FlipDirection};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Reachability is reflexive and antisymmetric-by-direction: if both
    /// directions can reach, the values are equal.
    #[test]
    fn reachability_order_properties(a in any::<u64>(), b in any::<u64>()) {
        prop_assert!(can_reach(a, a, FlipDirection::OneToZero));
        prop_assert!(can_reach(a, a, FlipDirection::ZeroToOne));
        if can_reach(a, b, FlipDirection::OneToZero) && can_reach(b, a, FlipDirection::OneToZero) {
            prop_assert_eq!(a, b);
        }
    }

    /// Reachability is transitive.
    #[test]
    fn reachability_is_transitive(a in any::<u64>(), mask1 in any::<u64>(), mask2 in any::<u64>()) {
        let b = a & !mask1; // reachable from a via 1→0
        let c = b & !mask2; // reachable from b
        prop_assert!(can_reach(a, b, FlipDirection::OneToZero));
        prop_assert!(can_reach(b, c, FlipDirection::OneToZero));
        prop_assert!(can_reach(a, c, FlipDirection::OneToZero));
    }

    /// The two directions are duals under complement.
    #[test]
    fn directions_are_duals(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(
            can_reach(a, b, FlipDirection::OneToZero),
            can_reach(!a, !b, FlipDirection::ZeroToOne)
        );
    }

    /// γ(p) ≤ p for true-cells and γ(p) ≥ p for anti-cells, for arbitrary
    /// corruptions sampled as submask/supermask.
    #[test]
    fn corruption_bounds(p in any::<u64>(), mask in any::<u64>()) {
        let true_cell = MonotonicValue::new(p, CellType::True);
        let down = p & !mask;
        prop_assert!(true_cell.may_become(down));
        prop_assert!(down <= true_cell.max_reachable());
        let anti_cell = MonotonicValue::new(p, CellType::Anti);
        let up = p | mask;
        prop_assert!(anti_cell.may_become(up));
        prop_assert!(up >= anti_cell.min_reachable());
    }

    /// The indicator's zero count falls by exactly one per upward flip of a
    /// zero indicator bit — the quantity the section 5 model counts.
    #[test]
    fn indicator_zero_count_decrements(addr in 0u64..(1 << 30), bit in 0u32..8) {
        let ind = PtpIndicator::new(1 << 30, 1 << 22); // n = 8
        let mask = 1u64 << (22 + bit);
        if addr & mask == 0 {
            let flipped = addr | mask;
            prop_assert_eq!(ind.zeros(flipped) + 1, ind.zeros(addr));
        }
    }

    /// All-ones is reached exactly when every indicator zero has flipped.
    #[test]
    fn all_ones_requires_all_zeros_flipped(addr in 0u64..(1 << 30)) {
        let ind = PtpIndicator::new(1 << 30, 1 << 22);
        prop_assert_eq!(ind.is_all_ones(addr), ind.zeros(addr) == 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The No Self-Reference Theorem holds for random marks on a 10-bit
    /// exhaustive model.
    #[test]
    fn theorem_holds_for_random_marks(mark in 1u64..1024) {
        check_theorem_exhaustive(10, mark);
    }
}
