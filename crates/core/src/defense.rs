//! The system-level `Defense` trait and the [`DefenseSpec`] catalog.
//!
//! A software RowHammer defense crosses up to two seams of the simulated
//! machine, and [`Defense`] has one hook per seam:
//!
//! - **allocation** ([`Defense::configure`]): rewrite the
//!   [`KernelConfig`] before boot — CATT installs its partitioned
//!   [`cta_mem::MemoryMap`] here;
//! - **activation/refresh** ([`Defense::row_hook`]): supply a
//!   [`cta_dram::RowDefense`] that the DRAM module consults on every
//!   activation batch and through which it issues targeted refreshes —
//!   ANVIL, SoftTRR, and BlockHammer live here.
//!
//! [`DefenseSpec`] is the `Copy` value-level catalog of the workspace's
//! defenses, what builders, replay targets, and experiment matrices carry;
//! [`DefenseSpec::instantiate`] turns a spec into the trait object.
//! [`SystemBuilder::defense`](crate::SystemBuilder::defense) applies both
//! hooks in the right order (configure before boot, row hook after, with
//! protection replayed for boot-time page tables).

use cta_dram::{
    AnvilSamplerDefense, AnvilSamplerParams, BlockHammerDefense, BlockHammerParams,
    ObserverDefense, RowDefense, SoftTrrDefense, SoftTrrParams,
};
use cta_mem::MemoryMap;
use cta_vm::KernelConfig;

/// A software RowHammer defense, hooked into the machine at the
/// allocation seam (boot configuration) and/or the activation seam (the
/// DRAM module's per-batch hook). Implementations must be deterministic.
pub trait Defense {
    /// Short stable identifier, e.g. `"catt"`.
    fn name(&self) -> &'static str;

    /// Allocation-seam hook: adjusts the kernel configuration before
    /// boot. The default does nothing.
    fn configure(&self, _config: &mut KernelConfig) {}

    /// Activation/refresh-seam hook: the row defense to install on the
    /// DRAM module, if this defense watches the activation stream.
    fn row_hook(&self) -> Option<Box<dyn RowDefense>> {
        None
    }
}

/// The absence of a defense: both hooks are no-ops. A machine built with
/// `NoDefense` is byte-identical to one built with no defense at all.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoDefense;

impl Defense for NoDefense {
    fn name(&self) -> &'static str {
        "none"
    }
}

/// A pure observer at the activation seam (see
/// [`cta_dram::ObserverDefense`]): watches, never intervenes.
#[derive(Debug, Default, Clone, Copy)]
pub struct ObserverSpec;

impl Defense for ObserverSpec {
    fn name(&self) -> &'static str {
        "observer"
    }

    fn row_hook(&self) -> Option<Box<dyn RowDefense>> {
        Some(Box::new(ObserverDefense::new()))
    }
}

/// CATT (Brasser et al., USENIX Security 2017) as an allocation-seam
/// defense: a strict physical partition between kernel and user memory
/// with a guard stripe in between, installed as the boot memory map.
/// No activation hook — CATT never watches the DRAM command stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CattPartition {
    /// Bytes of the top-of-memory user partition.
    pub user_bytes: u64,
    /// Bytes of the guard stripe between the partitions.
    pub guard_bytes: u64,
}

impl CattPartition {
    /// The conventional split: half of `total_bytes` for user memory with
    /// a one-page guard stripe.
    pub fn half_of(total_bytes: u64) -> Self {
        CattPartition { user_bytes: total_bytes / 2, guard_bytes: 4096 }
    }
}

impl Defense for CattPartition {
    fn name(&self) -> &'static str {
        "catt"
    }

    fn configure(&self, config: &mut KernelConfig) {
        let total = config.dram.geometry.capacity_bytes();
        config.memory_map_override =
            Some(MemoryMap::x86_64_with_catt(total, self.user_bytes, self.guard_bytes));
    }
}

/// Wraps an activation-seam row defense constructor as a [`Defense`].
macro_rules! row_only_defense {
    ($(#[$doc:meta])* $wrapper:ident, $params:ty, $imp:ident, $name:literal) => {
        $(#[$doc])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
        pub struct $wrapper(pub $params);

        impl Defense for $wrapper {
            fn name(&self) -> &'static str {
                $name
            }

            fn row_hook(&self) -> Option<Box<dyn RowDefense>> {
                Some(Box::new($imp::new(self.0)))
            }
        }
    };
}

row_only_defense!(
    /// ANVIL-style activation sampling with targeted refresh (see
    /// [`cta_dram::AnvilSamplerDefense`]).
    AnvilSampling,
    AnvilSamplerParams,
    AnvilSamplerDefense,
    "anvil"
);

row_only_defense!(
    /// SoftTRR: targeted refresh of rows adjacent to page-table rows (see
    /// [`cta_dram::SoftTrrDefense`]). The kernel registers every
    /// page-table frame with the hook as it allocates.
    SoftTrr,
    SoftTrrParams,
    SoftTrrDefense,
    "softtrr"
);

row_only_defense!(
    /// BlockHammer-style per-row activation-rate blacklisting (see
    /// [`cta_dram::BlockHammerDefense`]).
    BlockHammer,
    BlockHammerParams,
    BlockHammerDefense,
    "blockhammer"
);

/// Value-level catalog of the workspace's software defenses — what
/// builders, experiment matrices, and replay targets carry. `Copy` so
/// specs embed freely in campaign and recording metadata.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum DefenseSpec {
    /// No defense installed (the stock machine).
    #[default]
    None,
    /// Pure observer: proves the hook is side-effect free.
    Observer,
    /// CATT physical kernel/user partition.
    Catt(CattPartition),
    /// ANVIL activation sampling + targeted refresh.
    Anvil(AnvilSamplerParams),
    /// SoftTRR targeted refresh of page-table neighborhoods.
    SoftTrr(SoftTrrParams),
    /// BlockHammer activation-rate blacklisting.
    BlockHammer(BlockHammerParams),
}

impl DefenseSpec {
    /// Every defense in the catalog with default parameters, `None`
    /// first — the defense axis of `exp-matrix`.
    pub fn catalog(total_bytes: u64) -> Vec<DefenseSpec> {
        vec![
            DefenseSpec::None,
            DefenseSpec::Catt(CattPartition::half_of(total_bytes)),
            DefenseSpec::Anvil(AnvilSamplerParams::default()),
            DefenseSpec::SoftTrr(SoftTrrParams::default()),
            DefenseSpec::BlockHammer(BlockHammerParams::default()),
        ]
    }

    /// Whether this is [`DefenseSpec::None`].
    pub fn is_none(&self) -> bool {
        matches!(self, DefenseSpec::None)
    }

    /// The spec's stable identifier (matches [`Defense::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            DefenseSpec::None => "none",
            DefenseSpec::Observer => "observer",
            DefenseSpec::Catt(_) => "catt",
            DefenseSpec::Anvil(_) => "anvil",
            DefenseSpec::SoftTrr(_) => "softtrr",
            DefenseSpec::BlockHammer(_) => "blockhammer",
        }
    }

    /// Instantiates the defense behind the spec.
    pub fn instantiate(&self) -> Box<dyn Defense> {
        match *self {
            DefenseSpec::None => Box::new(NoDefense),
            DefenseSpec::Observer => Box::new(ObserverSpec),
            DefenseSpec::Catt(partition) => Box::new(partition),
            DefenseSpec::Anvil(params) => Box::new(AnvilSampling(params)),
            DefenseSpec::SoftTrr(params) => Box::new(SoftTrr(params)),
            DefenseSpec::BlockHammer(params) => Box::new(BlockHammer(params)),
        }
    }
}

impl std::fmt::Display for DefenseSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemBuilder;
    use cta_vm::VirtAddr;

    #[test]
    fn catalog_covers_every_defense_once() {
        let catalog = DefenseSpec::catalog(8 << 20);
        let names: Vec<&str> = catalog.iter().map(|d| d.name()).collect();
        assert_eq!(names, ["none", "catt", "anvil", "softtrr", "blockhammer"]);
    }

    #[test]
    fn catt_spec_installs_the_partitioned_map() {
        let spec = DefenseSpec::Catt(CattPartition::half_of(8 << 20));
        let builder = SystemBuilder::small_test().defense(spec);
        let config = builder.to_config();
        assert!(config.memory_map_override.is_some(), "CATT overrides the memory map");
        // CATT is allocation-only: no row hook on the DRAM module, and the
        // booted allocator enforces the strict user partition.
        let kernel = builder.build().unwrap();
        assert!(kernel.dram().defense().is_none());
        assert!(kernel.allocator().strict_user(), "CATT partitions are strict");
    }

    #[test]
    fn row_defenses_install_on_the_module() {
        for spec in [
            DefenseSpec::Observer,
            DefenseSpec::Anvil(AnvilSamplerParams::default()),
            DefenseSpec::SoftTrr(SoftTrrParams::default()),
            DefenseSpec::BlockHammer(BlockHammerParams::default()),
        ] {
            let kernel = SystemBuilder::small_test().defense(spec).build().unwrap();
            assert_eq!(kernel.dram().defense().map(|d| d.name()), Some(spec.name()));
        }
    }

    #[test]
    fn softtrr_build_protects_boot_and_later_page_tables() {
        let mut kernel = SystemBuilder::small_test()
            .defense(DefenseSpec::SoftTrr(SoftTrrParams::default()))
            .build()
            .unwrap();
        let pid = kernel.create_process(false).unwrap();
        kernel.mmap_anonymous(pid, VirtAddr(0x40_0000), 0x4000, true).unwrap();
        let protected: u64 = kernel
            .dram()
            .defense()
            .expect("softtrr installed")
            .counters()
            .iter()
            .find(|(k, _)| *k == "softtrr_protected_rows")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(protected > 0, "page-table allocations must register protected rows");
        assert_eq!(protected, kernel.stats().pt_pages_allocated.min(protected), "sanity");
    }

    #[test]
    fn none_spec_build_is_byte_identical_to_default_build() {
        let mut stock = SystemBuilder::small_test().protected(true).build().unwrap();
        let mut defended =
            SystemBuilder::small_test().protected(true).defense(DefenseSpec::None).build().unwrap();
        for k in [&mut stock, &mut defended] {
            let pid = k.create_process(false).unwrap();
            k.mmap_anonymous(pid, VirtAddr(0x40_0000), 0x8000, true).unwrap();
            let ops: Vec<(VirtAddr, bool)> =
                (0..8).map(|i| (VirtAddr(0x40_0000 + i * 0x1000), i % 2 == 0)).collect();
            let mut buf = [0xA5u8; 16];
            k.access_batch(pid, &ops, &mut buf).unwrap();
        }
        assert_eq!(
            stock.dram().peek(0, stock.dram().capacity_bytes() as usize).unwrap(),
            defended.dram().peek(0, defended.dram().capacity_bytes() as usize).unwrap()
        );
        assert_eq!(stock.counters("diff").to_json(), defended.counters("diff").to_json());
        assert_eq!(stock.dram().now_ns(), defended.dram().now_ns());
    }
}
