//! One-stop construction of simulated machines, protected or not.

use cta_dram::{
    CellLayout, CellType, DisturbanceParams, DramConfig, FlipEngine, MapGen, StoreBackend,
};
use cta_mem::PtpSpec;
use cta_vm::{Kernel, KernelConfig, VmError};

use crate::defense::DefenseSpec;

/// Builder for a complete simulated system: DRAM module + kernel, with or
/// without CTA.
///
/// ```
/// use cta_core::builder::SystemBuilder;
///
/// # fn main() -> Result<(), cta_vm::VmError> {
/// let kernel = SystemBuilder::new(64 << 20)   // 64 MiB machine
///     .seed(42)
///     .protected(true)                        // enable CTA
///     .ptp_bytes(1 << 20)                     // 1 MiB ZONE_PTP
///     .build()?;
/// assert!(kernel.cta_enabled());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    memory_bytes: u64,
    row_bytes: u64,
    cell_period_rows: u64,
    first_cell_type: CellType,
    disturbance: DisturbanceParams,
    seed: u64,
    protected: bool,
    ptp_bytes: u64,
    multi_level: bool,
    restrict_two_zeros: bool,
    profile_cells: bool,
    screen_ps_bit: bool,
    backend: StoreBackend,
    psc_entries: usize,
    flip_engine: FlipEngine,
    map_gen: MapGen,
    defense: DefenseSpec,
}

impl SystemBuilder {
    /// Starts a builder for a machine with `memory_bytes` of DRAM
    /// (power of two), defaulting to 4 KiB rows alternating cell type every
    /// 64 rows, a paper-default disturbance model with `pf` raised to 2%
    /// (so small-scale attack experiments actually observe flips), CTA off.
    pub fn new(memory_bytes: u64) -> Self {
        SystemBuilder {
            memory_bytes,
            row_bytes: 4096,
            cell_period_rows: 64,
            first_cell_type: CellType::True,
            disturbance: DisturbanceParams { pf: 0.02, ..DisturbanceParams::default() },
            seed: 0xCA11_AB1E,
            protected: false,
            ptp_bytes: (memory_bytes / 64).max(256 * 1024),
            multi_level: false,
            restrict_two_zeros: false,
            profile_cells: false,
            screen_ps_bit: false,
            backend: StoreBackend::default(),
            psc_entries: 16,
            flip_engine: FlipEngine::default(),
            map_gen: MapGen::default(),
            defense: DefenseSpec::None,
        }
    }

    /// An 8 MiB machine matching [`KernelConfig::small_test`] defaults.
    pub fn small_test() -> Self {
        SystemBuilder::new(8 << 20).ptp_bytes(256 * 1024)
    }

    /// DRAM row size in bytes (power of two).
    pub fn row_bytes(mut self, row_bytes: u64) -> Self {
        self.row_bytes = row_bytes;
        self
    }

    /// Cell-type alternation period in rows.
    pub fn cell_period(mut self, rows: u64) -> Self {
        self.cell_period_rows = rows;
        self
    }

    /// Polarity of row 0.
    pub fn first_cell_type(mut self, cell_type: CellType) -> Self {
        self.first_cell_type = cell_type;
        self
    }

    /// Disturbance (RowHammer) model parameters.
    pub fn disturbance(mut self, params: DisturbanceParams) -> Self {
        self.disturbance = params;
        self
    }

    /// Module seed (fixes the vulnerability map).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables CTA.
    pub fn protected(mut self, protected: bool) -> Self {
        self.protected = protected;
        self
    }

    /// `ZONE_PTP` size in bytes (power of two).
    pub fn ptp_bytes(mut self, bytes: u64) -> Self {
        self.ptp_bytes = bytes;
        self
    }

    /// Per-level PTP sub-zones (section 7 extension).
    pub fn multi_level(mut self, enabled: bool) -> Self {
        self.multi_level = enabled;
        self
    }

    /// The two-zeros indicator restriction (section 5 enhancement).
    pub fn restrict_two_zeros(mut self, enabled: bool) -> Self {
        self.restrict_two_zeros = enabled;
        self
    }

    /// Identify cell types with the boot-time profiler rather than ground
    /// truth.
    pub fn profile_cells(mut self, enabled: bool) -> Self {
        self.profile_cells = enabled;
        self
    }

    /// Apply the section 7 page-size-bit screen at boot.
    pub fn screen_ps_bit(mut self, enabled: bool) -> Self {
        self.screen_ps_bit = enabled;
        self
    }

    /// DRAM row-storage backend (performance/fork-cost knob; simulated
    /// behavior is backend-invariant).
    pub fn backend(mut self, backend: StoreBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Per-level paging-structure-cache capacity in entries; 0 disables the
    /// PSC so every TLB miss walks from CR3 (the pre-PSC translation path).
    pub fn psc_entries(mut self, entries: usize) -> Self {
        self.psc_entries = entries;
        self
    }

    /// Disturbance/decay inner-loop implementation (performance knob;
    /// simulated behavior is engine-invariant).
    pub fn flip_engine(mut self, engine: FlipEngine) -> Self {
        self.flip_engine = engine;
        self
    }

    /// Vulnerability-map derivation version (selects which deterministic
    /// maps the seed fixes; see [`MapGen`]).
    pub fn map_gen(mut self, map_gen: MapGen) -> Self {
        self.map_gen = map_gen;
        self
    }

    /// Software RowHammer defense to install on the machine (see
    /// [`crate::defense`]): the spec's allocation hook rewrites the boot
    /// configuration, its activation hook lands on the DRAM module after
    /// boot. [`DefenseSpec::None`] (the default) builds the stock machine,
    /// byte for byte.
    pub fn defense(mut self, defense: DefenseSpec) -> Self {
        self.defense = defense;
        self
    }

    /// The kernel configuration this builder describes.
    pub fn to_config(&self) -> KernelConfig {
        use cta_dram::{AddressMapping, DramGeometry, RetentionParams};
        let rows = self.memory_bytes / self.row_bytes;
        let geometry = DramGeometry::new(self.row_bytes, rows, 1, AddressMapping::RowLinear);
        let dram = DramConfig {
            geometry,
            layout: CellLayout::Alternating {
                period_rows: self.cell_period_rows,
                first: self.first_cell_type,
            },
            disturbance: self.disturbance,
            retention: RetentionParams::default(),
            refresh_interval_ns: 64_000_000,
            seed: self.seed,
            backend: self.backend,
            flip_engine: self.flip_engine,
            map_gen: self.map_gen,
        };
        let cta = self.protected.then(|| {
            PtpSpec::paper_default()
                .with_size(self.ptp_bytes)
                .with_multi_level(self.multi_level)
                .with_two_zeros_restriction(self.restrict_two_zeros)
        });
        let mut config = KernelConfig {
            dram,
            cta,
            profile_cells: self.profile_cells,
            tlb_entries: 64,
            psc_entries: self.psc_entries,
            cell_map_override: None,
            screen_ps_bit: self.screen_ps_bit,
            memory_map_override: None,
        };
        // Allocation-seam hook: the defense may rewrite the boot
        // configuration (CATT's partitioned memory map).
        self.defense.instantiate().configure(&mut config);
        config
    }

    /// Boots the machine, installing the configured defense's activation
    /// hook (if any) on the DRAM module.
    ///
    /// # Errors
    ///
    /// Propagates kernel boot failures (e.g. an infeasible `ZONE_PTP`).
    pub fn build(&self) -> Result<Kernel, VmError> {
        let mut kernel = Kernel::new(self.to_config())?;
        if let Some(hook) = self.defense.instantiate().row_hook() {
            kernel.install_row_defense(hook);
        }
        Ok(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unprotected_build() {
        let k = SystemBuilder::small_test().build().unwrap();
        assert!(!k.cta_enabled());
        assert_eq!(k.dram().capacity_bytes(), 8 << 20);
    }

    #[test]
    fn protected_build_has_ptp_zone_at_top() {
        let k = SystemBuilder::small_test().protected(true).build().unwrap();
        assert!(k.cta_enabled());
        let layout = k.ptp_layout().unwrap();
        assert!(layout.low_water_mark() > 0);
        assert_eq!(layout.ptp_bytes(), 256 * 1024);
    }

    #[test]
    fn profiled_build_matches_ground_truth_build() {
        let a = SystemBuilder::small_test().protected(true).build().unwrap();
        let b = SystemBuilder::small_test().protected(true).profile_cells(true).build().unwrap();
        assert_eq!(
            a.ptp_layout().unwrap().low_water_mark(),
            b.ptp_layout().unwrap().low_water_mark(),
            "profiler and ground truth must agree on the zone layout"
        );
    }

    #[test]
    fn multi_level_and_restriction_flags_propagate() {
        let k = SystemBuilder::small_test()
            .protected(true)
            .multi_level(true)
            .restrict_two_zeros(true)
            .build()
            .unwrap();
        let layout = k.ptp_layout().unwrap();
        assert!(layout.subzones().iter().all(|(_, l)| l.is_some()));
        assert!(!layout.trusted_ranges().is_empty());
    }

    #[test]
    fn all_anti_module_cannot_be_protected() {
        // Force every row anti by alternating with anti first and a period
        // covering the whole module.
        let b = SystemBuilder::small_test()
            .protected(true)
            .first_cell_type(CellType::Anti)
            .cell_period(1 << 40);
        assert!(b.build().is_err());
    }
}
