//! The monotonicity property of values stored in single-polarity DRAM cells.
//!
//! A data object placed entirely in true-cells can only lose `1` bits under
//! charge-leak-induced corruption (RowHammer or retention failure); in
//! anti-cells it can only gain them. This module provides the value-level
//! reasoning the paper's proof rests on.

use cta_dram::{CellType, FlipDirection};

/// Whether `to` is reachable from `from` using only flips in `direction`.
///
/// For `1→0` flips: every set bit of `to` must already be set in `from`
/// (`to ⊆ from`). For `0→1`: `from ⊆ to`.
pub fn can_reach(from: u64, to: u64, direction: FlipDirection) -> bool {
    match direction {
        FlipDirection::OneToZero => to & !from == 0,
        FlipDirection::ZeroToOne => from & !to == 0,
    }
}

/// The extreme value corruption can drive `value` to in `direction`
/// (all flippable bits fired): 0 for true-cells, all-ones (within `width`
/// bits) for anti-cells.
pub fn corruption_limit(value: u64, direction: FlipDirection, width: u32) -> u64 {
    match direction {
        FlipDirection::OneToZero => 0,
        FlipDirection::ZeroToOne => {
            if width >= 64 {
                u64::MAX
            } else {
                value | ((1u64 << width) - 1)
            }
        }
    }
}

/// A value with a proof obligation attached: it is stored in cells of one
/// polarity, so its set of reachable corruptions is known.
///
/// `MonotonicValue` is the paper's "monotonic pointer" abstraction: CTA
/// guarantees PTE pointers behave like
/// `MonotonicValue::new(p, CellType::True)`, whose
/// [`max_reachable`](Self::max_reachable) equals `p` itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MonotonicValue {
    value: u64,
    cell_type: CellType,
}

impl MonotonicValue {
    /// Wraps `value` as stored in cells of `cell_type`.
    pub fn new(value: u64, cell_type: CellType) -> Self {
        MonotonicValue { value, cell_type }
    }

    /// The stored value.
    pub fn value(self) -> u64 {
        self.value
    }

    /// The cell polarity holding the value.
    pub fn cell_type(self) -> CellType {
        self.cell_type
    }

    /// The direction corruption moves this value.
    pub fn direction(self) -> FlipDirection {
        FlipDirection::primary_for(self.cell_type)
    }

    /// Whether `corrupted` is a possible post-attack observation of this
    /// value (ignoring the sub-percent reverse-rate, as the proof does).
    pub fn may_become(self, corrupted: u64) -> bool {
        can_reach(self.value, corrupted, self.direction())
    }

    /// The largest value any reachable corruption can have.
    ///
    /// For true-cells this is the value itself — the theorem's
    /// `γ(p) ≤ p` step.
    pub fn max_reachable(self) -> u64 {
        match self.direction() {
            FlipDirection::OneToZero => self.value,
            FlipDirection::ZeroToOne => u64::MAX,
        }
    }

    /// The smallest value any reachable corruption can have.
    pub fn min_reachable(self) -> u64 {
        match self.direction() {
            FlipDirection::OneToZero => 0,
            FlipDirection::ZeroToOne => self.value,
        }
    }

    /// Number of distinct reachable corruptions (including the value
    /// itself): `2^popcount` for true-cells, `2^zerocount` for anti-cells.
    ///
    /// Saturates at `u64::MAX` for wide values.
    pub fn reachable_count(self) -> u64 {
        let bits = match self.direction() {
            FlipDirection::OneToZero => self.value.count_ones(),
            FlipDirection::ZeroToOne => self.value.count_zeros(),
        };
        1u64.checked_shl(bits).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachability_one_to_zero() {
        assert!(can_reach(0b1011, 0b1010, FlipDirection::OneToZero));
        assert!(can_reach(0b1011, 0b0000, FlipDirection::OneToZero));
        assert!(can_reach(0b1011, 0b1011, FlipDirection::OneToZero));
        assert!(!can_reach(0b1011, 0b1100, FlipDirection::OneToZero));
        assert!(!can_reach(0b1011, 0b1111, FlipDirection::OneToZero));
    }

    #[test]
    fn reachability_zero_to_one() {
        assert!(can_reach(0b1000, 0b1010, FlipDirection::ZeroToOne));
        assert!(can_reach(0b1000, u64::MAX, FlipDirection::ZeroToOne));
        assert!(!can_reach(0b1000, 0b0111, FlipDirection::ZeroToOne));
    }

    #[test]
    fn true_cell_corruption_never_increases() {
        let m = MonotonicValue::new(0x0110_0000, CellType::True);
        assert_eq!(m.max_reachable(), 0x0110_0000);
        assert_eq!(m.min_reachable(), 0);
        // The paper's example: 0x01100000 can only become these.
        for target in [0x0010_0000u64, 0x0100_0000, 0x0000_0000, 0x0110_0000] {
            assert!(m.may_become(target));
        }
        assert!(!m.may_become(0x0200_0000));
        assert!(!m.may_become(0x0110_0001));
    }

    #[test]
    fn anti_cell_corruption_never_decreases() {
        let m = MonotonicValue::new(0x0110_0000, CellType::Anti);
        assert_eq!(m.min_reachable(), 0x0110_0000);
        assert_eq!(m.max_reachable(), u64::MAX);
        assert!(m.may_become(0xFFFF_FFFF));
        assert!(!m.may_become(0x0100_0000));
    }

    #[test]
    fn reachable_count_is_powerset_of_flippable_bits() {
        assert_eq!(MonotonicValue::new(0b1011, CellType::True).reachable_count(), 8);
        assert_eq!(MonotonicValue::new(0, CellType::True).reachable_count(), 1);
        assert_eq!(MonotonicValue::new(u64::MAX, CellType::Anti).reachable_count(), 1);
    }

    #[test]
    fn corruption_limits() {
        assert_eq!(corruption_limit(0xABCD, FlipDirection::OneToZero, 16), 0);
        assert_eq!(corruption_limit(0x8000, FlipDirection::ZeroToOne, 16), 0xFFFF);
        assert_eq!(corruption_limit(1, FlipDirection::ZeroToOne, 64), u64::MAX);
    }

    #[test]
    fn theorem_step_gamma_p_le_p() {
        // ∀p, ∀γ(p) reachable in true-cells: γ(p) ≤ p. Spot-check densely
        // over a small domain (the exhaustive version lives in verify.rs).
        for p in 0u64..512 {
            let m = MonotonicValue::new(p, CellType::True);
            for g in 0u64..512 {
                if m.may_become(g) {
                    assert!(g <= p);
                }
            }
        }
    }
}
