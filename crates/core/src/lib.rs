//! Cell-Type-Aware (CTA) memory allocation — the paper's contribution.
//!
//! This crate is the policy layer on top of the substrates:
//!
//! - [`mono`]: the **monotonicity property** — value evolution under
//!   direction-restricted bit flips, and the machinery to reason about it
//!   ([`mono::MonotonicValue`], [`mono::can_reach`]);
//! - [`lwm`]: **low-water-mark calculus** — PTP-indicator extraction and
//!   zero counting (the section 5 security parameters);
//! - [`verify`]: the **No Self-Reference verifier** — walks a live
//!   [`Kernel`](cta_vm::Kernel)'s page tables and checks both CTA system
//!   invariants plus the absence of PTE self-references, and an exhaustive
//!   small-model check of the No Self-Reference Theorem itself;
//! - [`builder`]: [`SystemBuilder`], a one-stop constructor for protected
//!   (or deliberately unprotected) simulated machines.
//!
//! # The defense in one paragraph
//!
//! A PTE-based privilege-escalation attack needs a corrupted PTE to point at
//! a page-table page of the same process (*PTE self-reference*). CTA places
//! all page tables above a physical low water mark `P`, in DRAM true-cells
//! only, and all data below `P`. True-cell bit flips are (within measured
//! tolerances) `1→0`, so a corrupted pointer value can only *decrease*:
//! γ(p) ≤ p < P, while every PTE lives at addresses ≥ P. No reachable
//! corruption produces a self-reference — see
//! [`verify::check_theorem_exhaustive`] for the machine-checked small-model
//! version of the paper's proof.
//!
//! # Example
//!
//! ```
//! use cta_core::builder::SystemBuilder;
//! use cta_core::verify::verify_system;
//!
//! # fn main() -> Result<(), cta_vm::VmError> {
//! let mut kernel = SystemBuilder::small_test().protected(true).build()?;
//! let pid = kernel.create_process(false)?;
//! kernel.mmap_anonymous(pid, cta_vm::VirtAddr(0x40_0000), 0x4000, true)?;
//! let report = verify_system(&kernel)?;
//! assert!(report.is_clean());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod defense;
pub mod lwm;
pub mod mono;
pub mod screening;
pub mod verify;

pub use builder::SystemBuilder;
pub use defense::{
    AnvilSampling, BlockHammer, CattPartition, Defense, DefenseSpec, NoDefense, SoftTrr,
};
pub use lwm::PtpIndicator;
pub use mono::{can_reach, MonotonicValue};
pub use screening::screen_page_size_bit;
pub use verify::{verify_system, VerifyReport, Violation};
