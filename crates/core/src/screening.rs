//! Page-size-bit screening (paper section 7).
//!
//! With multiple page sizes, PD/PDPT entries carry the **PS bit** (bit 7):
//! `0` = pointer to a lower table, `1` = huge data page. A `1→0` flip is
//! *valid in true-cells*, so CTA's direction argument does not forbid it —
//! but the dangerous direction for an installed *table pointer* is `0→1`:
//! it would convert a kernel-only table pointer into a user-accessible
//! huge mapping covering page-table memory. Conversely a huge-page PDE's
//! `1→0` PS flip turns attacker data into a "table".
//!
//! The paper's fix: a one-time system-level test finds the frames whose
//! PS-bit cell positions are vulnerable at all, and the allocator never
//! uses those frames for high-level page tables. This module implements
//! that screen against the module's vulnerability map (the simulator's
//! stand-in for the physical test — same observable: "does this cell flip
//! when this frame's row is hammered").

pub use cta_mem::screen_page_size_bit;

#[cfg(test)]
use cta_dram::{DramModule, RowId};
#[cfg(test)]
use cta_mem::{PtpLayout, PAGE_SIZE};

#[cfg(test)]
mod tests {
    use super::*;
    use cta_dram::{CellLayout, DisturbanceParams, DramConfig};
    use cta_mem::PtpSpec;

    fn setup(pf: f64) -> (DramModule, PtpLayout) {
        let cfg = DramConfig::small_test()
            .with_layout(CellLayout::AllTrue)
            .with_disturbance(DisturbanceParams { pf, ..DisturbanceParams::default() });
        let module = DramModule::new(cfg);
        let map = module.ground_truth_cell_map();
        let layout = PtpLayout::build(
            &map,
            module.capacity_bytes(),
            &PtpSpec::paper_default().with_size(64 * 1024).with_multi_level(true),
        )
        .unwrap();
        (module, layout)
    }

    #[test]
    fn screen_finds_ps_vulnerable_frames_at_high_pf() {
        let (mut module, layout) = setup(0.10);
        let screened = screen_page_size_bit(&mut module, &layout).unwrap();
        // pf=10%: each frame has 512 PS-bit cells, P(none vulnerable) is
        // (0.9)^512 ≈ 0 — effectively every PD/PDPT frame screens out.
        assert!(!screened.is_empty());
        for page in &screened {
            assert_eq!(page % PAGE_SIZE, 0);
        }
    }

    #[test]
    fn screen_is_empty_at_zero_pf() {
        let (mut module, layout) = setup(0.0);
        assert!(screen_page_size_bit(&mut module, &layout).unwrap().is_empty());
    }

    #[test]
    fn screened_frames_really_have_ps_flippers() {
        let (mut module, layout) = setup(0.05);
        let screened = screen_page_size_bit(&mut module, &layout).unwrap();
        let row_bytes = module.geometry().row_bytes();
        for page in screened {
            let row = RowId(page / row_bytes);
            let base = (page % row_bytes) * 8;
            let hit =
                module.vulnerable_bits(row).unwrap().iter().any(|vb| {
                    vb.bit >= base && vb.bit < base + 4096 * 8 && (vb.bit - base) % 64 == 7
                });
            assert!(hit);
        }
    }

    #[test]
    fn screening_composes_with_layout_exclusion() {
        let (mut module, layout) = setup(0.03);
        let screened = screen_page_size_bit(&mut module, &layout).unwrap();
        let before: u64 = layout.subzones().iter().map(|(r, _)| r.end - r.start).sum();
        let cleaned = layout.with_screened_pages(&screened);
        let after: u64 = cleaned.subzones().iter().map(|(r, _)| r.end - r.start).sum();
        assert_eq!(before - after, screened.len() as u64 * PAGE_SIZE);
        // And a rescan of the cleaned layout finds nothing.
        let rescan = screen_page_size_bit(&mut module, &cleaned).unwrap();
        assert!(rescan.is_empty(), "{rescan:?}");
    }
}
