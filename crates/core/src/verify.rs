//! The No Self-Reference verifier.
//!
//! Two complementary checks:
//!
//! 1. [`verify_system`] inspects a **live kernel**: every page-table page
//!    must sit above the low water mark in a true-cell row (system
//!    invariants 1–2 of section 4), every leaf PTE must point below the
//!    mark, and no PTE — corrupted or not — may point at a page-table page
//!    of the same process (the PTE self-reference property the attacks
//!    need).
//! 2. [`check_theorem_exhaustive`] machine-checks the No Self-Reference
//!    Theorem on a small model: for every pointer value below the mark and
//!    every subset of `1→0` flips, the corrupted pointer stays below the
//!    mark.

use cta_dram::CellType;
use cta_mem::PtLevel;
#[cfg(test)]
use cta_mem::PAGE_SIZE;
use cta_vm::{FrameOwner, Kernel, Pid, PteRecord, VmError};

fn level_child(level: PtLevel) -> Option<PtLevel> {
    match level {
        PtLevel::Pml4 => Some(PtLevel::Pdpt),
        PtLevel::Pdpt => Some(PtLevel::Pd),
        PtLevel::Pd => Some(PtLevel::Pt),
        PtLevel::Pt => None,
    }
}

use crate::mono::MonotonicValue;

/// A single invariant violation found in a live system.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Violation {
    /// A page-table page lives below the low water mark (invariant 1).
    PtBelowMark {
        /// Owning process.
        pid: Pid,
        /// The offending frame's byte address.
        addr: u64,
        /// Level of the table.
        level: PtLevel,
    },
    /// A page-table page sits in an anti-cell row (invariant 2).
    PtInAntiCells {
        /// Owning process.
        pid: Pid,
        /// The offending frame's byte address.
        addr: u64,
    },
    /// A leaf PTE points above the mark (data must live below it).
    LeafAboveMark {
        /// Owning process.
        pid: Pid,
        /// Physical address of the PTE.
        entry_addr: u64,
        /// Where it points.
        target_addr: u64,
    },
    /// A PTE (any level) points at a page-table page of the same process —
    /// the self-reference property: an attack has succeeded or is armed.
    SelfReference {
        /// Owning process.
        pid: Pid,
        /// Physical address of the PTE.
        entry_addr: u64,
        /// The page-table frame it (illegally) references.
        target_addr: u64,
        /// Level of the referencing entry.
        level: PtLevel,
    },
    /// A non-leaf entry no longer points at its child-level table: the
    /// pointer was corrupted. The paper's footnote 2 argues these are not
    /// *directly* exploitable under CTA (a monotone-corrupted intermediate
    /// pointer stays in kernel-only territory for targets above the mark),
    /// but we flag and count them — targets below the mark would expose a
    /// fake-hierarchy hazard.
    IntermediateRedirect {
        /// Owning process.
        pid: Pid,
        /// Physical address of the corrupted entry.
        entry_addr: u64,
        /// Where it points now.
        target_addr: u64,
        /// Level of the entry.
        level: PtLevel,
        /// The redirected target is below the low water mark (user-reachable
        /// memory — the dangerous case).
        target_below_mark: bool,
    },
}

/// Outcome of verifying a live system.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// All violations found, across processes.
    pub violations: Vec<Violation>,
    /// Number of PTEs inspected.
    pub entries_checked: u64,
    /// Number of page-table pages inspected.
    pub pt_pages_checked: u64,
}

impl VerifyReport {
    /// No violations found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The self-reference violations only (attack successes).
    pub fn self_references(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| matches!(v, Violation::SelfReference { .. }))
    }

    /// The corrupted-intermediate-entry observations.
    pub fn intermediate_redirects(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| matches!(v, Violation::IntermediateRedirect { .. }))
    }

    /// Whether the report is clean apart from intermediate redirects (which
    /// are expected telemetry on hammered systems, not invariant breaches).
    pub fn is_clean_modulo_redirects(&self) -> bool {
        self.violations.iter().all(|v| matches!(v, Violation::IntermediateRedirect { .. }))
    }
}

/// Verifies the CTA invariants and the absence of PTE self-references on a
/// live kernel.
///
/// On a stock (unprotected) kernel the placement invariants are skipped —
/// there is no mark — but self-reference detection still runs, which is how
/// attack experiments score success.
///
/// # Errors
///
/// Propagates kernel introspection errors.
pub fn verify_system(kernel: &Kernel) -> Result<VerifyReport, VmError> {
    let mut report = VerifyReport::default();
    let layout = kernel.ptp_layout().cloned();
    for pid in kernel.pids() {
        let proc = kernel.process(pid)?;
        // Invariants 1–2: placement of the PT pages themselves.
        for (pfn, level) in proc.pt_pages() {
            report.pt_pages_checked += 1;
            let addr = pfn.addr().0;
            if let Some(layout) = &layout {
                if addr < layout.low_water_mark() {
                    report.violations.push(Violation::PtBelowMark { pid, addr, level: *level });
                }
                let row = kernel.dram().geometry().row_of_addr(addr)?;
                if kernel.dram().cell_type_of_row(row)? != CellType::True {
                    report.violations.push(Violation::PtInAntiCells { pid, addr });
                }
            }
        }
        // Entry-level checks.
        let pt_frames: std::collections::HashSet<u64> =
            proc.pt_pages().iter().map(|(pfn, _)| pfn.0).collect();
        for PteRecord { level, entry_addr, pte, .. } in kernel.iter_pt_entries_exhaustive(pid)? {
            report.entries_checked += 1;
            let target_addr = pte.pfn().addr().0;
            let is_leaf = level == PtLevel::Pt || pte.huge();
            if is_leaf {
                if let Some(layout) = &layout {
                    if target_addr >= layout.low_water_mark() {
                        report.violations.push(Violation::LeafAboveMark {
                            pid,
                            entry_addr,
                            target_addr,
                        });
                    }
                }
            } else {
                // Intermediate entry: must point at this process's
                // child-level table; anything else is a corrupted redirect.
                let expected_child = level_child(level);
                let ok = matches!(
                    kernel.frame_owner(pte.pfn()),
                    Some(FrameOwner::PageTable { pid: p, level: l })
                        if p == pid && Some(l) == expected_child
                );
                if !ok {
                    let target_below_mark =
                        layout.as_ref().map(|l| target_addr < l.low_water_mark()).unwrap_or(false);
                    report.violations.push(Violation::IntermediateRedirect {
                        pid,
                        entry_addr,
                        target_addr,
                        level,
                        target_below_mark,
                    });
                }
            }
            // Self-reference: a *user-reachable* entry pointing at one of
            // the process's own PT frames. Intermediate entries legally
            // point at PT frames — that is the hierarchy — so only leaf
            // entries count.
            if is_leaf && pt_frames.contains(&pte.pfn().0) {
                report.violations.push(Violation::SelfReference {
                    pid,
                    entry_addr,
                    target_addr,
                    level,
                });
            }
        }
    }
    Ok(report)
}

/// Whether an attacker that has corrupted leaf PTEs can now *write* a
/// page-table page: the operational privilege-escalation test used by the
/// attack crate after hammering.
///
/// Scans `pid`'s leaf PTEs for writable user entries pointing at any
/// page-table frame of any process.
///
/// # Errors
///
/// Propagates kernel introspection errors.
pub fn escalation_armed(kernel: &Kernel, pid: Pid) -> Result<bool, VmError> {
    for record in kernel.iter_pt_entries(pid)? {
        let is_leaf = record.level == PtLevel::Pt || record.pte.huge();
        if !is_leaf || !record.pte.user() || !record.pte.writable() {
            continue;
        }
        if matches!(kernel.frame_owner(record.pte.pfn()), Some(FrameOwner::PageTable { .. })) {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Exhaustively machine-checks the No Self-Reference Theorem on a small
/// model: an address space of `2^addr_bits` bytes with the mark at
/// `mark`. For **every** pointer `p < mark` and **every** subset of `1→0`
/// flips (all `2^popcount(p)` of them), the corrupted value stays `< mark`.
///
/// Returns the number of (pointer, corruption) pairs checked.
///
/// # Panics
///
/// Panics if `addr_bits > 16` (the check is exponential; the theorem is
/// bit-width-independent, so a small model suffices).
pub fn check_theorem_exhaustive(addr_bits: u32, mark: u64) -> u64 {
    assert!(addr_bits <= 16, "exhaustive model limited to 16 bits");
    let space = 1u64 << addr_bits;
    assert!(mark <= space);
    let mut checked = 0u64;
    for p in 0..mark {
        // Enumerate all submasks of p: every reachable 1→0 corruption.
        let mut sub = p;
        loop {
            debug_assert!(MonotonicValue::new(p, CellType::True).may_become(sub));
            assert!(sub < mark, "theorem violated: {p:#x} corrupted to {sub:#x} >= {mark:#x}");
            checked += 1;
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & p;
        }
    }
    checked
}

/// The anti-cell counterexample: with `0→1` flips the theorem is *false* —
/// returns a witness `(p, corrupted)` with `p < mark ≤ corrupted` if one
/// exists, demonstrating why `ZONE_PTP` must be true-cells (section 5's
/// anti-cell baseline).
pub fn anti_cell_counterexample(addr_bits: u32, mark: u64) -> Option<(u64, u64)> {
    let space = 1u64 << addr_bits;
    (0..mark).find_map(|p| {
        let corrupted = p | (space - 1) & !(mark - 1); // set high bits
        let m = MonotonicValue::new(p, CellType::Anti);
        let candidate = corrupted | p;
        if m.may_become(candidate) && candidate >= mark {
            Some((p, candidate))
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SystemBuilder;
    use cta_vm::VirtAddr;

    #[test]
    fn clean_cta_system_verifies() {
        let mut k = SystemBuilder::small_test().protected(true).build().unwrap();
        let pid = k.create_process(false).unwrap();
        k.mmap_anonymous(pid, VirtAddr(0x40_0000), 8 * PAGE_SIZE, true).unwrap();
        let report = verify_system(&k).unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
        assert!(report.entries_checked > 0);
        assert!(report.pt_pages_checked >= 4);
    }

    #[test]
    fn stock_system_verifies_clean_before_attack() {
        let mut k = SystemBuilder::small_test().protected(false).build().unwrap();
        let pid = k.create_process(false).unwrap();
        k.mmap_anonymous(pid, VirtAddr(0x40_0000), 4 * PAGE_SIZE, true).unwrap();
        let report = verify_system(&k).unwrap();
        assert!(report.is_clean());
    }

    #[test]
    fn planted_self_reference_is_detected() {
        let mut k = SystemBuilder::small_test().protected(false).build().unwrap();
        let pid = k.create_process(false).unwrap();
        let va = VirtAddr(0x40_0000);
        k.mmap_anonymous(pid, va, PAGE_SIZE, true).unwrap();
        // Corrupt the leaf PTE to point at the process's own PT page —
        // exactly what a successful RowHammer attack achieves.
        let pt_frame =
            k.process(pid).unwrap().pt_pages().iter().find(|(_, l)| *l == PtLevel::Pt).unwrap().0;
        let records = k.iter_pt_entries(pid).unwrap();
        let leaf = records.iter().find(|r| r.level == PtLevel::Pt).unwrap();
        let corrupted = leaf.pte.with_pfn(pt_frame);
        k.dram_mut().write_u64(leaf.entry_addr, corrupted.0).unwrap();
        let report = verify_system(&k).unwrap();
        assert_eq!(report.self_references().count(), 1);
        assert!(escalation_armed(&k, pid).unwrap());
    }

    #[test]
    fn escalation_not_armed_on_clean_system() {
        let mut k = SystemBuilder::small_test().protected(true).build().unwrap();
        let pid = k.create_process(false).unwrap();
        k.mmap_anonymous(pid, VirtAddr(0x40_0000), 2 * PAGE_SIZE, true).unwrap();
        assert!(!escalation_armed(&k, pid).unwrap());
    }

    #[test]
    fn theorem_holds_exhaustively() {
        // 12-bit model, mark at 0xC00: every (p, corruption) pair checked.
        let checked = check_theorem_exhaustive(12, 0xC00);
        assert!(checked > 100_000, "checked {checked}");
    }

    #[test]
    fn theorem_holds_for_various_marks() {
        for mark in [1u64, 2, 0x10, 0x7F, 0x80, 0xFF, 0x100] {
            check_theorem_exhaustive(8, mark);
        }
    }

    #[test]
    fn anti_cells_break_the_theorem() {
        let witness = anti_cell_counterexample(12, 0xC00);
        let (p, corrupted) = witness.expect("anti-cells must admit a counterexample");
        assert!(p < 0xC00);
        assert!(corrupted >= 0xC00);
    }
}
