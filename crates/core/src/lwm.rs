//! Low-water-mark calculus: the PTP indicator and its zero count.
//!
//! Section 5 defines the *PTP indicator* as the high physical-address bits
//! that must all be `1` for an address to lie in `ZONE_PTP` (when the zone
//! is the top `2^k`-aligned slice of a `2^m`-byte memory, the indicator is
//! bits `k..m`, `n = m − k` bits wide). An attacker's PTE must see its
//! indicator driven to all-ones by `0→1` flips to achieve self-reference —
//! the probability the analytic model (Tables 2–3) quantifies.

use cta_mem::PtpLayout;

/// The PTP-indicator view of a physical address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PtpIndicator {
    total_bytes: u64,
    ptp_bytes: u64,
}

impl PtpIndicator {
    /// Builds the indicator for a memory of `total_bytes` with a nominal
    /// `ZONE_PTP` of `ptp_bytes`.
    ///
    /// # Panics
    ///
    /// Panics unless both sizes are powers of two with
    /// `ptp_bytes < total_bytes` — configuration errors.
    pub fn new(total_bytes: u64, ptp_bytes: u64) -> Self {
        assert!(total_bytes.is_power_of_two() && ptp_bytes.is_power_of_two());
        assert!(ptp_bytes < total_bytes);
        PtpIndicator { total_bytes, ptp_bytes }
    }

    /// The indicator of a live layout.
    pub fn of_layout(layout: &PtpLayout) -> Self {
        PtpIndicator::new(layout.total_bytes(), layout.ptp_bytes())
    }

    /// Width of the indicator in bits (`n` in the paper).
    pub fn bits(self) -> u32 {
        (self.total_bytes / self.ptp_bytes).trailing_zeros()
    }

    /// Bit position where the indicator starts (log2 of the PTP size).
    pub fn shift(self) -> u32 {
        self.ptp_bytes.trailing_zeros()
    }

    /// The indicator field of `addr`.
    pub fn extract(self, addr: u64) -> u64 {
        (addr >> self.shift()) & ((1u64 << self.bits()) - 1)
    }

    /// Number of `0` bits in `addr`'s indicator. A PTE whose frame address
    /// has `z` zeros needs `z` distinct `0→1` flips to reach `ZONE_PTP`.
    pub fn zeros(self, addr: u64) -> u32 {
        self.bits() - self.extract(addr).count_ones()
    }

    /// Whether `addr`'s indicator is all-ones (the address lies in the
    /// nominal top-`ptp_bytes` slice).
    pub fn is_all_ones(self, addr: u64) -> bool {
        self.zeros(addr) == 0
    }

    /// The lowest address whose indicator is all-ones.
    pub fn all_ones_base(self) -> u64 {
        self.total_bytes - self.ptp_bytes
    }

    /// Fraction of the address space whose indicator has fewer than two
    /// zeros (the stripes the two-zeros restriction reserves):
    /// `(1 + n) / 2^n`.
    pub fn under_two_zeros_fraction(self) -> f64 {
        let n = self.bits();
        (1.0 + n as f64) / 2f64.powi(n as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_has_eight_bits() {
        // 8 GiB memory, 32 MiB PTP ⇒ n = 8.
        let ind = PtpIndicator::new(8 << 30, 32 << 20);
        assert_eq!(ind.bits(), 8);
        assert_eq!(ind.shift(), 25);
    }

    #[test]
    fn extract_and_zeros() {
        let ind = PtpIndicator::new(1 << 10, 1 << 6); // n = 4, shift = 6
        assert_eq!(ind.extract(0b1111 << 6), 0b1111);
        assert_eq!(ind.zeros(0b1111 << 6), 0);
        assert!(ind.is_all_ones(0b1111 << 6));
        assert_eq!(ind.zeros(0b1010 << 6), 2);
        assert_eq!(ind.zeros(0), 4);
    }

    #[test]
    fn all_ones_base_is_top_slice() {
        let ind = PtpIndicator::new(1 << 10, 1 << 6);
        assert_eq!(ind.all_ones_base(), (1 << 10) - (1 << 6));
        assert!(ind.is_all_ones(ind.all_ones_base()));
        assert!(!ind.is_all_ones(ind.all_ones_base() - 1));
    }

    #[test]
    fn under_two_zero_fraction_matches_paper() {
        // (1 + 8)/2^8 ≈ 3.5%; the paper quotes the one-zero portion
        // (8/256 = 3.12%) plus the all-ones block.
        let ind = PtpIndicator::new(8 << 30, 32 << 20);
        let f = ind.under_two_zeros_fraction();
        assert!((f - 9.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn indicator_monotone_under_zero_to_one_flips() {
        // Flipping any 0→1 in the address can only reduce the zero count —
        // the attack needs exactly `zeros` of them to hit all-ones.
        let ind = PtpIndicator::new(1 << 10, 1 << 6);
        let addr = 0b0101u64 << 6;
        let z = ind.zeros(addr);
        for bit in 6..10 {
            let flipped = addr | (1 << bit);
            assert!(ind.zeros(flipped) <= z);
        }
    }
}
