//! Workload harness for the Table 4 performance study.
//!
//! The paper runs SPEC CPU2006 and the Phoronix test suite on two physical
//! hosts and reports per-benchmark run-time deltas with CTA enabled —
//! all within noise (|Δ| < 1.5%, means ≈ 0). We cannot run SPEC binaries on
//! a simulator; instead each benchmark is represented by a **synthetic
//! workload** with the memory-system behavior that could plausibly interact
//! with CTA: resident working-set size, allocation churn, the number of
//! distinct mapped regions (page-table pressure), access count and
//! locality. The workloads run against the full simulated kernel and the
//! harness reports the *simulated-time* delta between a stock and a CTA
//! machine — a deterministic measurement of exactly the code paths the
//! patch touches (allocation zone dispatch + page-table walks).
//!
//! Why this substitution preserves the claim: CTA changes *where* page
//! tables live, not how many are built or how they are walked, so any
//! overhead must appear in the allocation/walk path that this harness
//! exercises heavily and measurably.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod runner;
mod specs;

pub use runner::{record_overhead_rows, OverheadRow, RegionLayout, RunMeasurement, Runner};
pub use specs::{phoronix, spec2006, Suite, WorkloadSpec};
