use std::fmt;
use std::time::Instant;

use cta_mem::PAGE_SIZE;
use cta_vm::{Kernel, VirtAddr, VmError};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::specs::WorkloadSpec;

const VA_BASE: u64 = 0x1_0000_0000;
const REGION_STRIDE: u64 = 4 << 20; // 4 MiB keeps regions in distinct PTs
const ACCESS_BATCH: usize = 64; // accesses per [`Kernel::access_batch`] issue

/// Measurements from one workload execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMeasurement {
    /// Simulated time consumed (deterministic).
    pub sim_ns: u64,
    /// Host wall-clock time (noisy; informational).
    pub wall_ns: u128,
    /// Page-table walks performed.
    pub walks: u64,
    /// TLB hit rate over the run.
    pub tlb_hit_rate: f64,
    /// Page-table pages the workload caused to exist.
    pub pt_pages: u64,
}

/// The CTA-vs-stock comparison for one benchmark: a Table 4 row.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadRow {
    /// Benchmark name.
    pub name: String,
    /// Mean simulated time on the stock kernel.
    pub baseline_sim_ns: f64,
    /// Mean simulated time with CTA.
    pub cta_sim_ns: f64,
    /// Mean host wall-clock time on the stock kernel.
    pub baseline_wall_ns: f64,
    /// Mean host wall-clock time with CTA.
    pub cta_wall_ns: f64,
    /// Repetitions averaged.
    pub repetitions: u32,
}

/// Baselines below this many (mean) nanoseconds cannot support a
/// meaningful relative delta; they indicate a degenerate spec or a
/// measurement that never ran.
const MIN_BASELINE_NS: f64 = 1e-6;

impl OverheadRow {
    /// Relative overhead of CTA in percent (positive = CTA slower), the
    /// quantity Table 4 reports — measured in deterministic simulated time.
    ///
    /// A zero/near-zero (or non-finite) baseline yields `0.0` instead of
    /// NaN/inf, so one degenerate spec cannot poison a Table 4 mean; the
    /// condition is reported by [`OverheadRow::degenerate_baseline`] and
    /// flagged in telemetry by [`record_overhead_rows`].
    pub fn delta_percent(&self) -> f64 {
        relative_percent(self.baseline_sim_ns, self.cta_sim_ns)
    }

    /// Wall-clock delta in percent: the noisy host-side measurement,
    /// comparable to the paper's real-machine numbers (which fluctuate
    /// within ±1.5%). Guarded against degenerate baselines like
    /// [`OverheadRow::delta_percent`].
    pub fn wall_delta_percent(&self) -> f64 {
        relative_percent(self.baseline_wall_ns, self.cta_wall_ns)
    }

    /// True when either baseline mean is too small (or non-finite) for the
    /// relative deltas to be meaningful.
    pub fn degenerate_baseline(&self) -> bool {
        !baseline_is_usable(self.baseline_sim_ns) || !baseline_is_usable(self.baseline_wall_ns)
    }
}

fn baseline_is_usable(baseline: f64) -> bool {
    baseline.is_finite() && baseline >= MIN_BASELINE_NS
}

fn relative_percent(baseline: f64, measured: f64) -> f64 {
    if !baseline_is_usable(baseline) || !measured.is_finite() {
        return 0.0;
    }
    (measured - baseline) / baseline * 100.0
}

/// Records a set of Table 4 rows into the `group` telemetry group:
/// per-benchmark deltas, the aggregate mean deltas the paper reports, and
/// a `degenerate_baseline:<name>` flag for every row whose deltas were
/// forced to zero by the baseline guard.
pub fn record_overhead_rows(c: &mut cta_telemetry::Counters, group: &str, rows: &[OverheadRow]) {
    let mut delta_sum = 0.0;
    let mut wall_sum = 0.0;
    for row in rows {
        c.set_f64(group, &format!("{}_delta_percent", row.name), row.delta_percent());
        if row.degenerate_baseline() {
            c.flag(&format!("degenerate_baseline:{}", row.name));
        }
        delta_sum += row.delta_percent();
        wall_sum += row.wall_delta_percent();
    }
    c.set_u64(group, "rows", rows.len() as u64);
    if !rows.is_empty() {
        let n = rows.len() as f64;
        c.set_f64(group, "mean_delta_percent", delta_sum / n);
        c.set_f64(group, "mean_wall_delta_percent", wall_sum / n);
    }
}

/// How [`Runner::run`] distributes a working set across mapped regions:
/// every page of the spec is honored exactly, with the remainder of
/// `working_set_pages / regions` spread one page each over the first
/// `working_set_pages % regions` regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionLayout {
    regions: u64,
    base: u64,
    extra: u64,
}

impl RegionLayout {
    /// Computes the layout for a spec-shaped `(working_set_pages, regions)`
    /// pair. At least one page per region is always mapped, so the total
    /// is `working_set_pages.max(regions)`.
    ///
    /// # Panics
    ///
    /// Panics if `regions` is zero.
    pub fn new(working_set_pages: u64, regions: u64) -> Self {
        assert!(regions > 0, "need at least one region");
        let total = working_set_pages.max(regions);
        RegionLayout { regions, base: total / regions, extra: total % regions }
    }

    /// Total pages mapped across all regions.
    pub fn total_pages(&self) -> u64 {
        self.base * self.regions + self.extra
    }

    /// Pages mapped in region `r`.
    pub fn pages_in_region(&self, r: u64) -> u64 {
        self.base + u64::from(r < self.extra)
    }

    /// Maps a flat page index in `0..total_pages()` to its
    /// `(region, page offset within region)` pair, counting pages
    /// region-by-region.
    pub fn locate(&self, page: u64) -> (u64, u64) {
        let fat = self.extra * (self.base + 1);
        if page < fat {
            (page / (self.base + 1), page % (self.base + 1))
        } else {
            let rest = page - fat;
            (self.extra + rest / self.base, rest % self.base)
        }
    }
}

impl fmt::Display for OverheadRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<18} {:+.2}%", self.name, self.delta_percent())
    }
}

/// Executes workload specs against simulated kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runner {
    /// Repetitions per measurement (the paper uses 10 for SPEC, 100 for
    /// Phoronix; simulated time is deterministic so fewer suffice).
    pub repetitions: u32,
    /// Seed stream for access patterns.
    pub seed: u64,
}

impl Default for Runner {
    fn default() -> Self {
        Runner { repetitions: 3, seed: 0x57AB1E }
    }
}

impl Runner {
    /// Runs one workload on `kernel` (fresh process; torn down afterwards).
    ///
    /// # Errors
    ///
    /// Kernel errors (out of memory for oversized specs).
    pub fn run(&self, kernel: &mut Kernel, spec: &WorkloadSpec) -> Result<RunMeasurement, VmError> {
        let wall_start = Instant::now();
        let sim_start = kernel.now_ns();
        let walks_start = kernel.stats().walks;
        let pt_start = kernel.stats().pt_pages_allocated;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ hash_name(spec.name));

        let pid = kernel.create_process(false)?;
        // Lay out the working set across the regions, distributing the
        // remainder so the spec's page count is honored exactly (plain
        // division used to silently shrink e.g. 160 pages / 6 regions to
        // 156 mapped pages).
        let layout = RegionLayout::new(spec.working_set_pages, spec.regions);
        let mut regions = Vec::with_capacity(spec.regions as usize);
        for r in 0..spec.regions {
            let va = VirtAddr(VA_BASE + r * REGION_STRIDE);
            kernel.mmap_anonymous(pid, va, layout.pages_in_region(r) * PAGE_SIZE, true)?;
            regions.push(va);
        }

        // Access phase with interleaved churn. Accesses are issued through
        // [`Kernel::access_batch`] in batches of up to `ACCESS_BATCH` so
        // region sweeps amortize per-access dispatch (process lookup, CR3
        // fetch) over many operations. Batches share one rolling 64-byte
        // buffer — reads fill it, writes store its current contents — and
        // break at churn boundaries, so both the rng draw order and the
        // DRAM operation order are identical to a per-access loop and the
        // simulated-time fields stay bit-for-bit reproducible.
        let churn_every =
            spec.access_ops.checked_div(spec.churn_cycles).map_or(u64::MAX, |per| per.max(1));
        let mut hot_page = 0u64;
        let mut buf = [0u8; 64];
        let mut batch: Vec<(VirtAddr, bool)> = Vec::with_capacity(ACCESS_BATCH);
        for op in 0..spec.access_ops {
            // Pick a page: stay hot with probability `locality`.
            let page = if rng.gen::<f64>() < spec.locality {
                hot_page
            } else {
                let p = rng.gen_range(0..layout.total_pages());
                hot_page = p;
                p
            };
            let (region_idx, page_off) = layout.locate(page);
            let region = &regions[region_idx as usize];
            let va = region.offset(page_off * PAGE_SIZE + (page % 63) * 64);
            batch.push((va, rng.gen::<f64>() < spec.write_fraction));
            let churn_now = op % churn_every == churn_every - 1;
            if batch.len() == ACCESS_BATCH || churn_now || op + 1 == spec.access_ops {
                kernel.access_batch(pid, &batch, &mut buf)?;
                batch.clear();
            }
            // Churn: unmap and remap one region (fresh frames + PTEs). The
            // batch is always drained first, so churn never reorders DRAM
            // traffic relative to the accesses that precede it.
            if churn_now {
                let idx = rng.gen_range(0..regions.len());
                let bytes = layout.pages_in_region(idx as u64) * PAGE_SIZE;
                kernel.munmap(pid, regions[idx], bytes)?;
                kernel.mmap_anonymous(pid, regions[idx], bytes, true)?;
            }
        }

        let tlb = kernel.tlb_stats();
        let measurement = RunMeasurement {
            sim_ns: kernel.now_ns() - sim_start,
            wall_ns: wall_start.elapsed().as_nanos(),
            walks: kernel.stats().walks - walks_start,
            tlb_hit_rate: tlb.hit_rate(),
            pt_pages: kernel.stats().pt_pages_allocated - pt_start,
        };
        kernel.destroy_process(pid)?;
        Ok(measurement)
    }

    /// Runs a benchmark on both machines and produces its Table 4 row.
    ///
    /// `build` receives `true` for the CTA machine and `false` for stock.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors from either machine.
    pub fn compare<F>(&self, mut build: F, spec: &WorkloadSpec) -> Result<OverheadRow, VmError>
    where
        F: FnMut(bool) -> Kernel,
    {
        let mut baseline = 0f64;
        let mut cta = 0f64;
        let mut baseline_wall = 0f64;
        let mut cta_wall = 0f64;
        for _ in 0..self.repetitions {
            let mut stock_kernel = build(false);
            let m = self.run(&mut stock_kernel, spec)?;
            baseline += m.sim_ns as f64;
            baseline_wall += m.wall_ns as f64;
            let mut cta_kernel = build(true);
            let m = self.run(&mut cta_kernel, spec)?;
            cta += m.sim_ns as f64;
            cta_wall += m.wall_ns as f64;
        }
        let n = self.repetitions as f64;
        Ok(OverheadRow {
            name: spec.name.to_string(),
            baseline_sim_ns: baseline / n,
            cta_sim_ns: cta / n,
            baseline_wall_ns: baseline_wall / n,
            cta_wall_ns: cta_wall / n,
            repetitions: self.repetitions,
        })
    }

    /// Boot-once/fork-per-repetition variant of [`Runner::compare`]: each
    /// repetition runs against a fresh [`Kernel::fork`] of the two
    /// pre-booted parents instead of a fresh boot.
    ///
    /// Boot is deterministic, so the simulated-time fields are
    /// bit-identical to [`Runner::compare`] with a `build` that boots the
    /// parents' configurations — minus the per-repetition boot cost
    /// (cheapest with the [`cta_dram::StoreBackend::Cow`] backend, where a
    /// fork is O(materialized rows)).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors from either machine.
    pub fn compare_forked(
        &self,
        stock_parent: &Kernel,
        cta_parent: &Kernel,
        spec: &WorkloadSpec,
    ) -> Result<OverheadRow, VmError> {
        let mut baseline = 0f64;
        let mut cta = 0f64;
        let mut baseline_wall = 0f64;
        let mut cta_wall = 0f64;
        for _ in 0..self.repetitions {
            let mut stock_kernel = stock_parent.fork();
            let m = self.run(&mut stock_kernel, spec)?;
            baseline += m.sim_ns as f64;
            baseline_wall += m.wall_ns as f64;
            let mut cta_kernel = cta_parent.fork();
            let m = self.run(&mut cta_kernel, spec)?;
            cta += m.sim_ns as f64;
            cta_wall += m.wall_ns as f64;
        }
        let n = self.repetitions as f64;
        Ok(OverheadRow {
            name: spec.name.to_string(),
            baseline_sim_ns: baseline / n,
            cta_sim_ns: cta / n,
            baseline_wall_ns: baseline_wall / n,
            cta_wall_ns: cta_wall / n,
            repetitions: self.repetitions,
        })
    }

    /// Runs the whole Table 4 harness — every benchmark × repetition ×
    /// {stock, CTA} cell — across up to `threads` worker threads
    /// (`0` = one per core), returning one [`OverheadRow`] per spec in
    /// input order.
    ///
    /// Each cell builds its **own** kernels inside its worker (simulated
    /// machines are single-threaded and never cross threads), and the
    /// per-spec reduction accumulates repetitions in repetition order on
    /// the calling thread — so every *simulated-time* field is
    /// bit-identical to running [`Runner::compare`] serially over `specs`.
    /// Wall-clock fields measure the host and are inherently noisy in
    /// either mode. `threads <= 1` runs the exact serial path.
    ///
    /// # Errors
    ///
    /// The lowest-indexed cell's kernel error, if any cell failed.
    pub fn compare_many<F>(
        &self,
        build: F,
        specs: &[WorkloadSpec],
        threads: usize,
    ) -> Result<Vec<OverheadRow>, VmError>
    where
        F: Fn(bool) -> Kernel + Sync,
    {
        let reps = self.repetitions as usize;
        let jobs = specs.len() * reps;
        // One job per benchmark×repetition: run the stock and CTA kernels
        // back-to-back like the serial loop does.
        let cells = cta_parallel::try_parallel_map(jobs, threads, |job| {
            let spec = &specs[job / reps];
            let mut stock_kernel = build(false);
            let stock = self.run(&mut stock_kernel, spec)?;
            let mut cta_kernel = build(true);
            let cta = self.run(&mut cta_kernel, spec)?;
            Ok::<_, VmError>((stock, cta))
        })?;

        let n = self.repetitions as f64;
        Ok(specs
            .iter()
            .enumerate()
            .map(|(s, spec)| {
                let mut baseline = 0f64;
                let mut cta = 0f64;
                let mut baseline_wall = 0f64;
                let mut cta_wall = 0f64;
                // Repetition order, exactly like `compare`.
                for (stock_m, cta_m) in &cells[s * reps..(s + 1) * reps] {
                    baseline += stock_m.sim_ns as f64;
                    baseline_wall += stock_m.wall_ns as f64;
                    cta += cta_m.sim_ns as f64;
                    cta_wall += cta_m.wall_ns as f64;
                }
                OverheadRow {
                    name: spec.name.to_string(),
                    baseline_sim_ns: baseline / n,
                    cta_sim_ns: cta / n,
                    baseline_wall_ns: baseline_wall / n,
                    cta_wall_ns: cta_wall / n,
                    repetitions: self.repetitions,
                }
            })
            .collect())
    }
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100000001b3))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::{phoronix, spec2006};
    use cta_core::SystemBuilder;

    fn machine(protected: bool) -> Kernel {
        SystemBuilder::new(16 << 20)
            .ptp_bytes(1 << 20)
            .seed(77)
            .protected(protected)
            .build()
            .unwrap()
    }

    #[test]
    fn compare_many_is_bit_identical_to_serial_compare() {
        let specs = spec2006();
        let smoke = &specs[..3];
        let runner = Runner { repetitions: 2, seed: 0x1234 };
        let serial: Vec<_> = smoke.iter().map(|s| runner.compare(machine, s).unwrap()).collect();
        for threads in [1, 4] {
            let parallel = runner.compare_many(machine, smoke, threads).unwrap();
            assert_eq!(parallel.len(), serial.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.name, b.name);
                // Simulated-time fields are the deterministic contract:
                // compare at the bit level, not within an epsilon.
                assert_eq!(a.baseline_sim_ns.to_bits(), b.baseline_sim_ns.to_bits());
                assert_eq!(a.cta_sim_ns.to_bits(), b.cta_sim_ns.to_bits());
                assert_eq!(a.repetitions, b.repetitions);
            }
        }
    }

    #[test]
    fn compare_forked_is_bit_identical_to_compare() {
        use cta_dram::StoreBackend;
        let spec = &spec2006()[1];
        let runner = Runner { repetitions: 2, seed: 0xF0F0 };
        let rebooted = runner.compare(machine, spec).unwrap();
        for backend in StoreBackend::ALL {
            let parent = |protected: bool| {
                SystemBuilder::new(16 << 20)
                    .ptp_bytes(1 << 20)
                    .seed(77)
                    .protected(protected)
                    .backend(backend)
                    .build()
                    .unwrap()
            };
            let forked = runner.compare_forked(&parent(false), &parent(true), spec).unwrap();
            assert_eq!(forked.name, rebooted.name, "backend={backend}");
            assert_eq!(
                forked.baseline_sim_ns.to_bits(),
                rebooted.baseline_sim_ns.to_bits(),
                "backend={backend}"
            );
            assert_eq!(
                forked.cta_sim_ns.to_bits(),
                rebooted.cta_sim_ns.to_bits(),
                "backend={backend}"
            );
            assert_eq!(forked.repetitions, rebooted.repetitions);
        }
    }

    #[test]
    fn run_produces_activity() {
        let mut k = machine(false);
        let spec = &spec2006()[0];
        let m = Runner::default().run(&mut k, spec).unwrap();
        assert!(m.sim_ns > 0);
        assert!(m.walks > 0);
        assert!(m.pt_pages >= spec.regions);
        assert!(m.tlb_hit_rate > 0.0);
    }

    #[test]
    fn run_is_deterministic_in_sim_time() {
        let spec = &spec2006()[3]; // mcf
        let runner = Runner::default();
        let a = runner.run(&mut machine(false), spec).unwrap();
        let b = runner.run(&mut machine(false), spec).unwrap();
        assert_eq!(a.sim_ns, b.sim_ns);
        assert_eq!(a.walks, b.walks);
    }

    #[test]
    fn cta_overhead_is_negligible_like_table4() {
        // The headline claim: per-benchmark |Δ| stays within the paper's
        // observed band (max |Δ| in Table 4 is 1.4%).
        let runner = Runner { repetitions: 1, seed: 5 };
        for spec in spec2006().iter().take(3).chain(phoronix().iter().take(3)) {
            let row = runner.compare(machine, spec).unwrap();
            assert!(
                row.delta_percent().abs() < 2.0,
                "{}: Δ = {:.3}%",
                spec.name,
                row.delta_percent()
            );
        }
    }

    #[test]
    fn workload_teardown_releases_memory() {
        let mut k = machine(true);
        let free0 = k.allocator().free_page_count();
        Runner::default().run(&mut k, &spec2006()[1]).unwrap();
        assert_eq!(k.allocator().free_page_count(), free0);
    }

    #[test]
    fn region_layout_honors_every_page() {
        for (ws, regions) in [(160, 6), (220, 3), (90, 4), (64, 64), (1, 5), (7, 7), (100, 1)] {
            let layout = RegionLayout::new(ws, regions);
            let per_region: Vec<u64> = (0..regions).map(|r| layout.pages_in_region(r)).collect();
            assert_eq!(
                per_region.iter().sum::<u64>(),
                ws.max(regions),
                "ws={ws} regions={regions}"
            );
            assert_eq!(layout.total_pages(), ws.max(regions));
            let max = *per_region.iter().max().unwrap();
            let min = *per_region.iter().min().unwrap();
            assert!(max - min <= 1, "uneven split for ws={ws} regions={regions}: {per_region:?}");
            // locate() agrees with counting pages region by region.
            let mut page = 0u64;
            for (r, count) in per_region.iter().enumerate() {
                for off in 0..*count {
                    assert_eq!(layout.locate(page), (r as u64, off));
                    page += 1;
                }
            }
            assert_eq!(page, layout.total_pages());
        }
    }

    #[test]
    fn run_maps_the_exact_working_set() {
        // perlbench: 160 pages over 6 regions — indivisible, the case the
        // old truncating layout silently shrank to 156 pages.
        let spec = &spec2006()[0];
        assert!(
            !spec.working_set_pages.is_multiple_of(spec.regions),
            "spec no longer exercises remainder"
        );
        let no_churn = WorkloadSpec { churn_cycles: 0, access_ops: 50, ..*spec };
        let mut k = machine(false);
        let before = k.stats().user_pages_allocated;
        Runner::default().run(&mut k, &no_churn).unwrap();
        assert_eq!(
            k.stats().user_pages_allocated - before,
            spec.working_set_pages,
            "mapped pages must equal the spec's working set exactly"
        );
    }

    #[test]
    fn degenerate_baseline_yields_zero_not_nan() {
        let row = OverheadRow {
            name: "empty".into(),
            baseline_sim_ns: 0.0,
            cta_sim_ns: 10.0,
            baseline_wall_ns: f64::NAN,
            cta_wall_ns: 5.0,
            repetitions: 1,
        };
        assert!(row.degenerate_baseline());
        assert_eq!(row.delta_percent(), 0.0);
        assert_eq!(row.wall_delta_percent(), 0.0);

        let mut c = cta_telemetry::Counters::new("t");
        record_overhead_rows(&mut c, "overhead", &[row]);
        assert!(c.has_flag("degenerate_baseline:empty"));
        assert!(!c.has_non_finite());
    }

    #[test]
    fn record_overhead_rows_reports_means() {
        let mk = |name: &str, cta: f64| OverheadRow {
            name: name.into(),
            baseline_sim_ns: 100.0,
            cta_sim_ns: cta,
            baseline_wall_ns: 100.0,
            cta_wall_ns: cta,
            repetitions: 1,
        };
        let mut c = cta_telemetry::Counters::new("t");
        record_overhead_rows(&mut c, "overhead", &[mk("a", 101.0), mk("b", 99.0)]);
        let g = c.group("overhead").unwrap();
        assert_eq!(g.get_u64("rows"), Some(2));
        assert!((g.get_f64("mean_delta_percent").unwrap()).abs() < 1e-12);
        assert_eq!(g.get_f64("a_delta_percent"), Some(1.0));
        assert!(c.flags().next().is_none());
    }

    #[test]
    fn overhead_row_display() {
        let row = OverheadRow {
            name: "bzip2".into(),
            baseline_sim_ns: 100.0,
            cta_sim_ns: 100.34,
            baseline_wall_ns: 200.0,
            cta_wall_ns: 199.0,
            repetitions: 1,
        };
        assert!((row.delta_percent() - 0.34).abs() < 1e-9);
        assert!((row.wall_delta_percent() + 0.5).abs() < 1e-9);
        assert!(row.to_string().contains("bzip2"));
    }
}
