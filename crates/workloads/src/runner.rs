use std::fmt;
use std::time::Instant;

use cta_mem::PAGE_SIZE;
use cta_vm::{Access, Kernel, VirtAddr, VmError};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::specs::WorkloadSpec;

const VA_BASE: u64 = 0x1_0000_0000;
const REGION_STRIDE: u64 = 4 << 20; // 4 MiB keeps regions in distinct PTs

/// Measurements from one workload execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMeasurement {
    /// Simulated time consumed (deterministic).
    pub sim_ns: u64,
    /// Host wall-clock time (noisy; informational).
    pub wall_ns: u128,
    /// Page-table walks performed.
    pub walks: u64,
    /// TLB hit rate over the run.
    pub tlb_hit_rate: f64,
    /// Page-table pages the workload caused to exist.
    pub pt_pages: u64,
}

/// The CTA-vs-stock comparison for one benchmark: a Table 4 row.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadRow {
    /// Benchmark name.
    pub name: String,
    /// Mean simulated time on the stock kernel.
    pub baseline_sim_ns: f64,
    /// Mean simulated time with CTA.
    pub cta_sim_ns: f64,
    /// Mean host wall-clock time on the stock kernel.
    pub baseline_wall_ns: f64,
    /// Mean host wall-clock time with CTA.
    pub cta_wall_ns: f64,
    /// Repetitions averaged.
    pub repetitions: u32,
}

impl OverheadRow {
    /// Relative overhead of CTA in percent (positive = CTA slower), the
    /// quantity Table 4 reports — measured in deterministic simulated time.
    pub fn delta_percent(&self) -> f64 {
        (self.cta_sim_ns - self.baseline_sim_ns) / self.baseline_sim_ns * 100.0
    }

    /// Wall-clock delta in percent: the noisy host-side measurement,
    /// comparable to the paper's real-machine numbers (which fluctuate
    /// within ±1.5%).
    pub fn wall_delta_percent(&self) -> f64 {
        (self.cta_wall_ns - self.baseline_wall_ns) / self.baseline_wall_ns * 100.0
    }
}

impl fmt::Display for OverheadRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<18} {:+.2}%", self.name, self.delta_percent())
    }
}

/// Executes workload specs against simulated kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runner {
    /// Repetitions per measurement (the paper uses 10 for SPEC, 100 for
    /// Phoronix; simulated time is deterministic so fewer suffice).
    pub repetitions: u32,
    /// Seed stream for access patterns.
    pub seed: u64,
}

impl Default for Runner {
    fn default() -> Self {
        Runner { repetitions: 3, seed: 0x57AB1E }
    }
}

impl Runner {
    /// Runs one workload on `kernel` (fresh process; torn down afterwards).
    ///
    /// # Errors
    ///
    /// Kernel errors (out of memory for oversized specs).
    pub fn run(&self, kernel: &mut Kernel, spec: &WorkloadSpec) -> Result<RunMeasurement, VmError> {
        let wall_start = Instant::now();
        let sim_start = kernel.now_ns();
        let walks_start = kernel.stats().walks;
        let pt_start = kernel.stats().pt_pages_allocated;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ hash_name(spec.name));

        let pid = kernel.create_process(false)?;
        // Lay out the working set across the regions.
        let pages_per_region = (spec.working_set_pages / spec.regions).max(1);
        let mut regions = Vec::with_capacity(spec.regions as usize);
        for r in 0..spec.regions {
            let va = VirtAddr(VA_BASE + r * REGION_STRIDE);
            kernel.mmap_anonymous(pid, va, pages_per_region * PAGE_SIZE, true)?;
            regions.push(va);
        }

        // Access phase with interleaved churn.
        let churn_every = spec
            .access_ops
            .checked_div(spec.churn_cycles)
            .map_or(u64::MAX, |per| per.max(1));
        let mut hot_page = 0u64;
        let mut buf = [0u8; 64];
        for op in 0..spec.access_ops {
            // Pick a page: stay hot with probability `locality`.
            let page = if rng.gen::<f64>() < spec.locality {
                hot_page
            } else {
                let p = rng.gen_range(0..spec.regions * pages_per_region);
                hot_page = p;
                p
            };
            let region = &regions[(page / pages_per_region) as usize];
            let va = region.offset((page % pages_per_region) * PAGE_SIZE + (page % 63) * 64);
            if rng.gen::<f64>() < spec.write_fraction {
                kernel.write_virt(pid, va, &buf, Access::user_write())?;
            } else {
                kernel.read_virt(pid, va, &mut buf, Access::user_read())?;
            }
            // Churn: unmap and remap one region (fresh frames + PTEs).
            if op % churn_every == churn_every - 1 {
                let idx = rng.gen_range(0..regions.len());
                kernel.munmap(pid, regions[idx], pages_per_region * PAGE_SIZE)?;
                kernel.mmap_anonymous(pid, regions[idx], pages_per_region * PAGE_SIZE, true)?;
            }
        }

        let tlb = kernel.tlb_stats();
        let measurement = RunMeasurement {
            sim_ns: kernel.now_ns() - sim_start,
            wall_ns: wall_start.elapsed().as_nanos(),
            walks: kernel.stats().walks - walks_start,
            tlb_hit_rate: tlb.hit_rate(),
            pt_pages: kernel.stats().pt_pages_allocated - pt_start,
        };
        kernel.destroy_process(pid)?;
        Ok(measurement)
    }

    /// Runs a benchmark on both machines and produces its Table 4 row.
    ///
    /// `build` receives `true` for the CTA machine and `false` for stock.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors from either machine.
    pub fn compare<F>(&self, mut build: F, spec: &WorkloadSpec) -> Result<OverheadRow, VmError>
    where
        F: FnMut(bool) -> Kernel,
    {
        let mut baseline = 0f64;
        let mut cta = 0f64;
        let mut baseline_wall = 0f64;
        let mut cta_wall = 0f64;
        for _ in 0..self.repetitions {
            let mut stock_kernel = build(false);
            let m = self.run(&mut stock_kernel, spec)?;
            baseline += m.sim_ns as f64;
            baseline_wall += m.wall_ns as f64;
            let mut cta_kernel = build(true);
            let m = self.run(&mut cta_kernel, spec)?;
            cta += m.sim_ns as f64;
            cta_wall += m.wall_ns as f64;
        }
        let n = self.repetitions as f64;
        Ok(OverheadRow {
            name: spec.name.to_string(),
            baseline_sim_ns: baseline / n,
            cta_sim_ns: cta / n,
            baseline_wall_ns: baseline_wall / n,
            cta_wall_ns: cta_wall / n,
            repetitions: self.repetitions,
        })
    }

    /// Runs the whole Table 4 harness — every benchmark × repetition ×
    /// {stock, CTA} cell — across up to `threads` worker threads
    /// (`0` = one per core), returning one [`OverheadRow`] per spec in
    /// input order.
    ///
    /// Each cell builds its **own** kernels inside its worker (simulated
    /// machines are single-threaded and never cross threads), and the
    /// per-spec reduction accumulates repetitions in repetition order on
    /// the calling thread — so every *simulated-time* field is
    /// bit-identical to running [`Runner::compare`] serially over `specs`.
    /// Wall-clock fields measure the host and are inherently noisy in
    /// either mode. `threads <= 1` runs the exact serial path.
    ///
    /// # Errors
    ///
    /// The lowest-indexed cell's kernel error, if any cell failed.
    pub fn compare_many<F>(
        &self,
        build: F,
        specs: &[WorkloadSpec],
        threads: usize,
    ) -> Result<Vec<OverheadRow>, VmError>
    where
        F: Fn(bool) -> Kernel + Sync,
    {
        let reps = self.repetitions as usize;
        let jobs = specs.len() * reps;
        // One job per benchmark×repetition: run the stock and CTA kernels
        // back-to-back like the serial loop does.
        let cells = cta_parallel::try_parallel_map(jobs, threads, |job| {
            let spec = &specs[job / reps];
            let mut stock_kernel = build(false);
            let stock = self.run(&mut stock_kernel, spec)?;
            let mut cta_kernel = build(true);
            let cta = self.run(&mut cta_kernel, spec)?;
            Ok::<_, VmError>((stock, cta))
        })?;

        let n = self.repetitions as f64;
        Ok(specs
            .iter()
            .enumerate()
            .map(|(s, spec)| {
                let mut baseline = 0f64;
                let mut cta = 0f64;
                let mut baseline_wall = 0f64;
                let mut cta_wall = 0f64;
                // Repetition order, exactly like `compare`.
                for (stock_m, cta_m) in &cells[s * reps..(s + 1) * reps] {
                    baseline += stock_m.sim_ns as f64;
                    baseline_wall += stock_m.wall_ns as f64;
                    cta += cta_m.sim_ns as f64;
                    cta_wall += cta_m.wall_ns as f64;
                }
                OverheadRow {
                    name: spec.name.to_string(),
                    baseline_sim_ns: baseline / n,
                    cta_sim_ns: cta / n,
                    baseline_wall_ns: baseline_wall / n,
                    cta_wall_ns: cta_wall / n,
                    repetitions: self.repetitions,
                }
            })
            .collect())
    }
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100000001b3))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::{phoronix, spec2006};
    use cta_core::SystemBuilder;

    fn machine(protected: bool) -> Kernel {
        SystemBuilder::new(16 << 20)
            .ptp_bytes(1 << 20)
            .seed(77)
            .protected(protected)
            .build()
            .unwrap()
    }

    #[test]
    fn compare_many_is_bit_identical_to_serial_compare() {
        let specs = spec2006();
        let smoke = &specs[..3];
        let runner = Runner { repetitions: 2, seed: 0x1234 };
        let serial: Vec<_> =
            smoke.iter().map(|s| runner.compare(machine, s).unwrap()).collect();
        for threads in [1, 4] {
            let parallel = runner.compare_many(machine, smoke, threads).unwrap();
            assert_eq!(parallel.len(), serial.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.name, b.name);
                // Simulated-time fields are the deterministic contract:
                // compare at the bit level, not within an epsilon.
                assert_eq!(a.baseline_sim_ns.to_bits(), b.baseline_sim_ns.to_bits());
                assert_eq!(a.cta_sim_ns.to_bits(), b.cta_sim_ns.to_bits());
                assert_eq!(a.repetitions, b.repetitions);
            }
        }
    }

    #[test]
    fn run_produces_activity() {
        let mut k = machine(false);
        let spec = &spec2006()[0];
        let m = Runner::default().run(&mut k, spec).unwrap();
        assert!(m.sim_ns > 0);
        assert!(m.walks > 0);
        assert!(m.pt_pages >= spec.regions);
        assert!(m.tlb_hit_rate > 0.0);
    }

    #[test]
    fn run_is_deterministic_in_sim_time() {
        let spec = &spec2006()[3]; // mcf
        let runner = Runner::default();
        let a = runner.run(&mut machine(false), spec).unwrap();
        let b = runner.run(&mut machine(false), spec).unwrap();
        assert_eq!(a.sim_ns, b.sim_ns);
        assert_eq!(a.walks, b.walks);
    }

    #[test]
    fn cta_overhead_is_negligible_like_table4() {
        // The headline claim: per-benchmark |Δ| stays within the paper's
        // observed band (max |Δ| in Table 4 is 1.4%).
        let runner = Runner { repetitions: 1, seed: 5 };
        for spec in spec2006().iter().take(3).chain(phoronix().iter().take(3)) {
            let row = runner.compare(machine, spec).unwrap();
            assert!(
                row.delta_percent().abs() < 2.0,
                "{}: Δ = {:.3}%",
                spec.name,
                row.delta_percent()
            );
        }
    }

    #[test]
    fn workload_teardown_releases_memory() {
        let mut k = machine(true);
        let free0 = k.allocator().free_page_count();
        Runner::default().run(&mut k, &spec2006()[1]).unwrap();
        assert_eq!(k.allocator().free_page_count(), free0);
    }

    #[test]
    fn overhead_row_display() {
        let row = OverheadRow {
            name: "bzip2".into(),
            baseline_sim_ns: 100.0,
            cta_sim_ns: 100.34,
            baseline_wall_ns: 200.0,
            cta_wall_ns: 199.0,
            repetitions: 1,
        };
        assert!((row.delta_percent() - 0.34).abs() < 1e-9);
        assert!((row.wall_delta_percent() + 0.5).abs() < 1e-9);
        assert!(row.to_string().contains("bzip2"));
    }
}
