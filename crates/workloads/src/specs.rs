use std::fmt;

/// Which benchmark suite a workload models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2006.
    Spec2006,
    /// Phoronix Test Suite.
    Phoronix,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Suite::Spec2006 => f.write_str("SPEC2006"),
            Suite::Phoronix => f.write_str("Phoronix"),
        }
    }
}

/// The memory-system profile of one benchmark.
///
/// Footprints are scaled from published SPEC CPU2006 memory-footprint data
/// (Henning, CAN 2007) and Phoronix workload shapes down to the simulated
/// machine; what matters for the CTA comparison is the *relative* mix of
/// page-table pressure, churn, and access locality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name as reported in Table 4.
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// Resident working set in pages.
    pub working_set_pages: u64,
    /// Distinct mapped regions (drives the number of page tables).
    pub regions: u64,
    /// map/unmap churn cycles interleaved with the access phase.
    pub churn_cycles: u64,
    /// Memory operations performed.
    pub access_ops: u64,
    /// Fraction of operations that are writes.
    pub write_fraction: f64,
    /// Access locality in [0, 1]: probability the next access stays on the
    /// recent hot set (drives TLB behavior).
    pub locality: f64,
}

/// The 12 SPEC CPU2006 rows of Table 4.
pub fn spec2006() -> Vec<WorkloadSpec> {
    let w =
        |name, working_set_pages, regions, churn_cycles, access_ops, write_fraction, locality| {
            WorkloadSpec {
                name,
                suite: Suite::Spec2006,
                working_set_pages,
                regions,
                churn_cycles,
                access_ops,
                write_fraction,
                locality,
            }
        };
    vec![
        w("perlbench", 160, 6, 24, 4000, 0.45, 0.80),
        w("bzip2", 220, 3, 6, 5000, 0.50, 0.90),
        w("gcc", 280, 10, 40, 4500, 0.40, 0.70),
        w("mcf", 420, 4, 4, 6000, 0.35, 0.35),
        w("gobmk", 90, 4, 12, 3500, 0.40, 0.85),
        w("hmmer", 70, 3, 6, 4000, 0.30, 0.92),
        w("sjeng", 110, 3, 4, 3500, 0.35, 0.88),
        w("libquantum", 190, 2, 2, 5000, 0.55, 0.60),
        w("h264ref", 130, 5, 10, 4500, 0.45, 0.82),
        w("omnetpp", 260, 8, 30, 4000, 0.40, 0.55),
        w("astar", 180, 4, 8, 3800, 0.35, 0.65),
        w("xalancbmk", 300, 12, 36, 4200, 0.40, 0.60),
    ]
}

/// The 15 Phoronix rows of Table 4.
pub fn phoronix() -> Vec<WorkloadSpec> {
    let w =
        |name, working_set_pages, regions, churn_cycles, access_ops, write_fraction, locality| {
            WorkloadSpec {
                name,
                suite: Suite::Phoronix,
                working_set_pages,
                regions,
                churn_cycles,
                access_ops,
                write_fraction,
                locality,
            }
        };
    vec![
        w("unpack-linux", 200, 16, 60, 3500, 0.60, 0.50),
        w("postmark", 150, 10, 80, 3800, 0.55, 0.45),
        w("ramspeed:INT", 380, 2, 2, 6000, 0.50, 0.30),
        w("ramspeed:FP", 380, 2, 2, 6000, 0.50, 0.30),
        w("stream:Copy", 340, 2, 2, 5500, 0.50, 0.25),
        w("stream:Scale", 340, 2, 2, 5500, 0.50, 0.25),
        w("stream:Triad", 360, 3, 2, 5500, 0.45, 0.25),
        w("stream:Add", 360, 3, 2, 5500, 0.45, 0.25),
        w("cachebench:Read", 60, 2, 2, 5000, 0.05, 0.95),
        w("cachebench:Write", 60, 2, 2, 5000, 0.95, 0.95),
        w("cachebench:Modify", 60, 2, 2, 5000, 0.50, 0.95),
        w("compress-7zip", 240, 6, 16, 5200, 0.50, 0.70),
        w("openssl", 40, 2, 4, 4500, 0.20, 0.97),
        w("pybench", 120, 8, 40, 3600, 0.40, 0.75),
        w("phpbench", 110, 8, 44, 3600, 0.40, 0.75),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_table4() {
        assert_eq!(spec2006().len(), 12);
        assert_eq!(phoronix().len(), 15);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> =
            spec2006().iter().chain(phoronix().iter()).map(|w| w.name).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn parameters_are_sane() {
        for w in spec2006().into_iter().chain(phoronix()) {
            assert!(w.working_set_pages >= w.regions, "{}", w.name);
            assert!((0.0..=1.0).contains(&w.write_fraction), "{}", w.name);
            assert!((0.0..=1.0).contains(&w.locality), "{}", w.name);
            assert!(w.access_ops > 0);
        }
    }

    #[test]
    fn mcf_is_the_memory_hog() {
        let specs = spec2006();
        let mcf = specs.iter().find(|w| w.name == "mcf").unwrap();
        assert!(specs.iter().all(|w| w.working_set_pages <= mcf.working_set_pages));
        assert!(specs.iter().all(|w| w.locality >= mcf.locality));
    }
}
