//! Capacity-bounded memoization for the per-row model caches.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// A bounded memoization cache with FIFO eviction.
///
/// The per-row caches in [`crate::VulnerabilityModel`] and the retention
/// model used to be unbounded `HashMap`s, so a templating sweep over a large
/// module grew memory linearly with every row ever touched — the same
/// failure mode the flip log had before it became a `RingLog`. This cache
/// holds at most `capacity` entries and evicts in insertion order.
///
/// Eviction is FIFO rather than LRU on purpose: lookups never reorder
/// entries, so which rows get recomputed is a deterministic function of the
/// insertion history alone, independent of read patterns. Entries are cheap
/// to rebuild (one seeded RNG stream per row), so the simpler policy wins.
#[derive(Debug, Clone)]
pub(crate) struct BoundedCache<K: Hash + Eq + Clone, V> {
    capacity: usize,
    map: HashMap<K, V>,
    order: VecDeque<K>,
    evictions: u64,
}

impl<K: Hash + Eq + Clone, V> BoundedCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero; a cache that can hold nothing would
    /// silently disable memoization.
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        BoundedCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1024)),
            order: VecDeque::with_capacity(capacity.min(1024)),
            evictions: 0,
        }
    }

    /// Looks up `key` without affecting the eviction order.
    pub(crate) fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key)
    }

    /// Inserts `key → value`, evicting the oldest entry at capacity.
    /// Re-inserting an existing key replaces the value in place.
    pub(crate) fn insert(&mut self, key: K, value: V) {
        if self.map.insert(key.clone(), value).is_some() {
            return;
        }
        if self.order.len() == self.capacity {
            let oldest = self.order.pop_front().expect("capacity > 0");
            self.map.remove(&oldest);
            self.evictions += 1;
        }
        self.order.push_back(key);
    }

    /// Number of entries currently retained.
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Total entries evicted since creation.
    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Changes the capacity, evicting oldest entries if shrinking.
    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        assert!(capacity > 0, "cache capacity must be positive");
        self.capacity = capacity;
        while self.order.len() > capacity {
            let oldest = self.order.pop_front().expect("len > capacity >= 1");
            self.map.remove(&oldest);
            self.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_at_capacity_with_fifo_eviction() {
        let mut c = BoundedCache::new(3);
        for k in 0u64..10 {
            c.insert(k, k * 2);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.evictions(), 7);
        // Oldest evicted first: 7, 8, 9 survive.
        assert_eq!(c.get(&6), None);
        assert_eq!(c.get(&7), Some(&14));
        assert_eq!(c.get(&9), Some(&18));
    }

    #[test]
    fn lookups_do_not_reorder() {
        let mut c = BoundedCache::new(2);
        c.insert(1u64, "a");
        c.insert(2, "b");
        assert_eq!(c.get(&1), Some(&"a")); // would save 1 under LRU
        c.insert(3, "c");
        assert_eq!(c.get(&1), None, "FIFO evicts by insertion order only");
        assert_eq!(c.get(&2), Some(&"b"));
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let mut c = BoundedCache::new(2);
        c.insert(1u64, "a");
        c.insert(2, "b");
        c.insert(1, "a2");
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get(&1), Some(&"a2"));
    }

    #[test]
    fn shrinking_evicts_oldest() {
        let mut c = BoundedCache::new(4);
        for k in 0u64..4 {
            c.insert(k, k);
        }
        c.set_capacity(2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 2);
        assert_eq!(c.get(&0), None);
        assert_eq!(c.get(&3), Some(&3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = BoundedCache::<u64, ()>::new(0);
    }
}
