//! Capacity-bounded memoization for the per-row model caches.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// A bounded memoization cache with FIFO eviction.
///
/// The per-row caches in [`crate::VulnerabilityModel`] and the retention
/// model used to be unbounded `HashMap`s, so a templating sweep over a large
/// module grew memory linearly with every row ever touched — the same
/// failure mode the flip log had before it became a `RingLog`. This cache
/// holds at most `capacity` entries and evicts in insertion order.
///
/// Eviction is FIFO rather than LRU on purpose: lookups never reorder
/// entries, so which rows get recomputed is a deterministic function of the
/// insertion history alone, independent of read patterns. Entries are cheap
/// to rebuild (one seeded RNG stream per row), so the simpler policy wins.
///
/// Entries carry a caller-declared payload weight in bytes
/// ([`Self::insert_weighted`]); the running total feeds the `*_cache_bytes`
/// telemetry gauges, and an optional **byte budget**
/// ([`Self::set_byte_budget`]) evicts oldest-first until the total fits.
/// With no budget set the byte accounting is purely observational and the
/// entry-count bound behaves exactly as before.
#[derive(Debug, Clone)]
pub(crate) struct BoundedCache<K: Hash + Eq + Clone, V> {
    capacity: usize,
    map: HashMap<K, (V, usize)>,
    order: VecDeque<K>,
    evictions: u64,
    /// Sum of the payload weights of retained entries.
    bytes: usize,
    /// Optional payload-byte budget; `None` bounds by entry count alone.
    byte_budget: Option<usize>,
}

impl<K: Hash + Eq + Clone, V> BoundedCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero; a cache that can hold nothing would
    /// silently disable memoization.
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        BoundedCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1024)),
            order: VecDeque::with_capacity(capacity.min(1024)),
            evictions: 0,
            bytes: 0,
            byte_budget: None,
        }
    }

    /// Looks up `key` without affecting the eviction order.
    pub(crate) fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|(v, _)| v)
    }

    /// Inserts `key → value` with zero payload weight (see
    /// [`Self::insert_weighted`]), evicting the oldest entry at capacity.
    /// Re-inserting an existing key replaces the value in place.
    #[cfg(test)]
    pub(crate) fn insert(&mut self, key: K, value: V) {
        self.insert_weighted(key, value, 0);
    }

    /// Inserts `key → value` whose payload weighs `weight` bytes, evicting
    /// the oldest entry at the entry-count capacity and then oldest-first
    /// while over the byte budget (if one is set). Re-inserting an existing
    /// key replaces the value (and weight) in place without touching its
    /// FIFO position.
    pub(crate) fn insert_weighted(&mut self, key: K, value: V, weight: usize) {
        if let Some((_, old)) = self.map.insert(key.clone(), (value, weight)) {
            self.bytes = self.bytes - old + weight;
        } else {
            if self.order.len() == self.capacity {
                self.evict_oldest();
            }
            self.order.push_back(key);
            self.bytes += weight;
        }
        if let Some(budget) = self.byte_budget {
            while self.bytes > budget && self.order.len() > 1 {
                self.evict_oldest();
            }
        }
    }

    fn evict_oldest(&mut self) {
        let oldest = self.order.pop_front().expect("cache not empty");
        if let Some((_, w)) = self.map.remove(&oldest) {
            self.bytes -= w;
        }
        self.evictions += 1;
    }

    /// Number of entries currently retained.
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Total entries evicted since creation.
    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Sum of the payload weights (bytes) of retained entries.
    pub(crate) fn bytes(&self) -> usize {
        self.bytes
    }

    /// Changes the capacity, evicting oldest entries if shrinking.
    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        assert!(capacity > 0, "cache capacity must be positive");
        self.capacity = capacity;
        while self.order.len() > capacity {
            self.evict_oldest();
        }
    }

    /// Sets or clears the payload-byte budget, evicting oldest-first until
    /// the retained total fits. A single over-budget entry is allowed to
    /// remain (evicting it would only force an immediate rebuild).
    pub(crate) fn set_byte_budget(&mut self, budget: Option<usize>) {
        self.byte_budget = budget;
        if let Some(budget) = budget {
            while self.bytes > budget && self.order.len() > 1 {
                self.evict_oldest();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_at_capacity_with_fifo_eviction() {
        let mut c = BoundedCache::new(3);
        for k in 0u64..10 {
            c.insert(k, k * 2);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.evictions(), 7);
        // Oldest evicted first: 7, 8, 9 survive.
        assert_eq!(c.get(&6), None);
        assert_eq!(c.get(&7), Some(&14));
        assert_eq!(c.get(&9), Some(&18));
    }

    #[test]
    fn lookups_do_not_reorder() {
        let mut c = BoundedCache::new(2);
        c.insert(1u64, "a");
        c.insert(2, "b");
        assert_eq!(c.get(&1), Some(&"a")); // would save 1 under LRU
        c.insert(3, "c");
        assert_eq!(c.get(&1), None, "FIFO evicts by insertion order only");
        assert_eq!(c.get(&2), Some(&"b"));
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let mut c = BoundedCache::new(2);
        c.insert(1u64, "a");
        c.insert(2, "b");
        c.insert(1, "a2");
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get(&1), Some(&"a2"));
    }

    #[test]
    fn shrinking_evicts_oldest() {
        let mut c = BoundedCache::new(4);
        for k in 0u64..4 {
            c.insert(k, k);
        }
        c.set_capacity(2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 2);
        assert_eq!(c.get(&0), None);
        assert_eq!(c.get(&3), Some(&3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = BoundedCache::<u64, ()>::new(0);
    }
}
