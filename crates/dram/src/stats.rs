use std::fmt;

use cta_telemetry::{Group, RingLog, StatSource};

use crate::geometry::RowId;
use crate::vuln::FlipDirection;

/// A single disturbance-induced bit flip, as recorded by the module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlipEvent {
    /// Victim row.
    pub row: RowId,
    /// Bit index within the row.
    pub bit: u64,
    /// Direction the value changed.
    pub direction: FlipDirection,
    /// Simulated time of the flip in nanoseconds.
    pub time_ns: u64,
}

/// A drained flip log: the retained events plus the exact number of older
/// events the bounded ring evicted before the drain.
///
/// Returned by [`DramModule::take_flip_log`](crate::DramModule::take_flip_log)
/// so callers cannot mistake a truncated transcript for a complete one:
/// `events` is the full history **iff** `dropped == 0`. Record/replay code
/// must check [`FlipLog::is_complete`] and fail loudly on a lossy log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlipLog {
    /// Retained flip events, oldest first.
    pub events: Vec<FlipEvent>,
    /// Events evicted by the bounded ring before this drain (0 ⇒ `events`
    /// is the complete history since the last reset).
    pub dropped: u64,
}

impl FlipLog {
    /// True when no events were evicted: `events` is the full transcript.
    pub fn is_complete(&self) -> bool {
        self.dropped == 0
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever recorded: retained plus dropped.
    pub fn total_recorded(&self) -> u64 {
        self.dropped + self.events.len() as u64
    }

    /// Iterates over retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &FlipEvent> {
        self.events.iter()
    }
}

impl<'a> IntoIterator for &'a FlipLog {
    type Item = &'a FlipEvent;
    type IntoIter = std::slice::Iter<'a, FlipEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

/// Running counters and the flip log of a [`DramModule`](crate::DramModule).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DramStats {
    /// Row activations performed (row-buffer misses).
    pub activations: u64,
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Refresh windows completed while refresh was enabled.
    pub refresh_windows: u64,
    /// Disturbance episodes applied to victim rows.
    pub disturbances: u64,
    /// Bits flipped `1→0` by disturbance.
    pub flips_one_to_zero: u64,
    /// Bits flipped `0→1` by disturbance.
    pub flips_zero_to_one: u64,
    /// Bits whose logic value changed through retention decay.
    pub decay_flips: u64,
    /// Evictions from the bounded vulnerability-model caches (bit maps and
    /// compiled bitplanes). Non-zero means a sweep touched more rows than
    /// the cache capacity and some maps were regenerated from seed.
    pub vuln_cache_evictions: u64,
    /// Evictions from the bounded retention-model caches (long-cell lists
    /// and expired-cell masks).
    pub retention_cache_evictions: u64,
    /// Payload bytes retained in the vulnerability bit-map cache. Counts
    /// the maps themselves, not the engine-local compiled planes, so the
    /// gauge is identical across flip engines (the differential suites
    /// assert full telemetry identity).
    pub vuln_cache_bytes: u64,
    /// Payload bytes retained in the retention model's long-cell cache
    /// (expired masks and the sorted retention index are engine-local and
    /// excluded for the same reason).
    pub retention_cache_bytes: u64,
    /// Bounded log of the most recent disturbance flips, in order of
    /// occurrence. Older events beyond the capacity are evicted but counted
    /// (`flip_log.dropped()`), so `total_flips()` always equals
    /// `flip_log.total_recorded()` between log resets.
    pub flip_log: RingLog<FlipEvent>,
}

impl DramStats {
    /// Total disturbance flips in both directions.
    pub fn total_flips(&self) -> u64 {
        self.flips_one_to_zero + self.flips_zero_to_one
    }

    /// Records a flip in the counters and the log.
    pub(crate) fn record_flip(&mut self, event: FlipEvent) {
        match event.direction {
            FlipDirection::OneToZero => self.flips_one_to_zero += 1,
            FlipDirection::ZeroToOne => self.flips_zero_to_one += 1,
        }
        self.flip_log.push(event);
    }

    /// Clears the flip log, including its drop counter (the aggregate flip
    /// counters are retained).
    pub fn clear_flip_log(&mut self) {
        self.flip_log.clear();
    }
}

impl StatSource for DramStats {
    fn group(&self) -> &'static str {
        "dram"
    }

    fn record(&self, g: &mut Group) {
        g.add_u64("activations", self.activations);
        g.add_u64("reads", self.reads);
        g.add_u64("writes", self.writes);
        g.add_u64("refresh_windows", self.refresh_windows);
        g.add_u64("disturbances", self.disturbances);
        g.add_u64("flips_one_to_zero", self.flips_one_to_zero);
        g.add_u64("flips_zero_to_one", self.flips_zero_to_one);
        g.add_u64("decay_flips", self.decay_flips);
        g.add_u64("vuln_cache_evictions", self.vuln_cache_evictions);
        g.add_u64("retention_cache_evictions", self.retention_cache_evictions);
        g.add_u64("vuln_cache_bytes", self.vuln_cache_bytes);
        g.add_u64("retention_cache_bytes", self.retention_cache_bytes);
        g.add_u64("flip_log_retained", self.flip_log.len() as u64);
        g.add_u64("flip_log_dropped", self.flip_log.dropped());
    }
}

impl fmt::Display for DramStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "activations={} reads={} writes={} refreshes={} disturbances={} flips(1→0)={} flips(0→1)={} decay={}",
            self.activations,
            self.reads,
            self.writes,
            self.refresh_windows,
            self.disturbances,
            self.flips_one_to_zero,
            self.flips_zero_to_one,
            self.decay_flips,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_flip_updates_both_counters_and_log() {
        let mut s = DramStats::default();
        s.record_flip(FlipEvent {
            row: RowId(1),
            bit: 2,
            direction: FlipDirection::OneToZero,
            time_ns: 5,
        });
        s.record_flip(FlipEvent {
            row: RowId(1),
            bit: 3,
            direction: FlipDirection::ZeroToOne,
            time_ns: 6,
        });
        assert_eq!(s.flips_one_to_zero, 1);
        assert_eq!(s.flips_zero_to_one, 1);
        assert_eq!(s.total_flips(), 2);
        assert_eq!(s.flip_log.len(), 2);
        s.clear_flip_log();
        assert!(s.flip_log.is_empty());
        assert_eq!(s.total_flips(), 2);
    }

    #[test]
    fn flip_log_is_bounded_with_exact_totals() {
        let mut s = DramStats::default();
        s.flip_log.set_capacity(4);
        for i in 0..100 {
            s.record_flip(FlipEvent {
                row: RowId(i % 7),
                bit: i,
                direction: if i % 2 == 0 {
                    FlipDirection::OneToZero
                } else {
                    FlipDirection::ZeroToOne
                },
                time_ns: i,
            });
        }
        assert_eq!(s.flip_log.len(), 4);
        assert_eq!(s.flip_log.dropped(), 96);
        assert_eq!(s.total_flips(), s.flip_log.total_recorded());
        // The retained window is the most recent events.
        assert_eq!(s.flip_log.iter().map(|e| e.bit).collect::<Vec<_>>(), vec![96, 97, 98, 99]);
    }

    #[test]
    fn stat_source_snapshot_matches_counters() {
        let mut s = DramStats { activations: 3, reads: 2, ..DramStats::default() };
        s.record_flip(FlipEvent {
            row: RowId(0),
            bit: 0,
            direction: FlipDirection::OneToZero,
            time_ns: 1,
        });
        let mut c = cta_telemetry::Counters::new("t");
        c.record(&s);
        let g = c.group("dram").unwrap();
        assert_eq!(g.get_u64("activations"), Some(3));
        assert_eq!(g.get_u64("flips_one_to_zero"), Some(1));
        assert_eq!(g.get_u64("flip_log_retained"), Some(1));
        assert_eq!(g.get_u64("flip_log_dropped"), Some(0));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!DramStats::default().to_string().is_empty());
    }
}
