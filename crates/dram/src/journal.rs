//! Write-ahead undo journal for [`crate::DramModule`].
//!
//! A journaled trial runs **in place** on a pooled parent module and rolls
//! back in O(touched state) instead of paying a full fork per trial. The
//! journal has two planes:
//!
//! - **Row pre-images** (the lazily-journaled plane): the first time a
//!   trial dirties a backing row — a write, a charge touch, decay, or a
//!   disturbance — the row's full pre-image (cell bytes + charge
//!   timestamp) is captured, or a `None` marker if the row had never been
//!   materialized. Rollback restores captured rows byte-for-byte and
//!   [`crate::RowStore::unmaterialize`]s the `None`-marked ones. This is
//!   the plane that makes journaling cheap: a trial that touches a few
//!   dozen rows of a multi-megabyte machine journals a few dozen rows.
//! - **Snapshots** (the eagerly-journaled plane): everything else the
//!   module mutates — model caches, remap table, clock/window state,
//!   activation counters, open-row registers, statistics (including the
//!   bounded flip log, so `take_flip_log` drains and capacity changes roll
//!   back exactly), and the installed defense — is cloned wholesale at
//!   `journal_begin`. These clones are cheap by construction: the model
//!   caches hold `Rc` values (a clone is O(cached entries) refcount
//!   bumps, never a regeneration), and the remaining state is O(total
//!   rows) words of metadata, orders of magnitude smaller than the row
//!   contents a fork would copy.
//!
//! The rollback invariant — pinned by the differential suites — is that a
//! module after `journal_begin → trial → journal_rollback` is
//! byte-identical (contents, charge plane, caches, stats, clock) to the
//! module before `journal_begin`.

use std::collections::HashMap;

use crate::defense::{DefenseStats, RowDefense};
use crate::remap::RemapTable;
use crate::retention::RetentionModel;
use crate::stats::DramStats;
use crate::store::RowStore;
use crate::vuln::VulnerabilityModel;

/// Pre-image of one backing row at `journal_begin` time: `Some((bytes,
/// last_charge_ns))` if the row was materialized, `None` if it was not.
pub(crate) type RowPreImage = Option<(Box<[u8]>, u64)>;

/// The undo journal of one in-place trial. Constructed by
/// `DramModule::journal_begin`, consumed by `DramModule::journal_rollback`.
pub(crate) struct DramJournal {
    /// Lazily-captured row pre-images, keyed by backing-row id.
    pub(crate) rows: HashMap<u64, RowPreImage>,
    pub(crate) vuln: VulnerabilityModel,
    pub(crate) retention: RetentionModel,
    pub(crate) remap: RemapTable,
    pub(crate) row_cache: (u64, u64),
    pub(crate) clock_ns: u64,
    pub(crate) window_end_ns: u64,
    pub(crate) refresh_disabled_at: Option<u64>,
    pub(crate) generation: u64,
    pub(crate) activations: Vec<(u64, u64, u64)>,
    pub(crate) open_rows: Vec<u64>,
    pub(crate) stats: DramStats,
    pub(crate) defense: Option<Box<dyn RowDefense>>,
    pub(crate) defense_stats: DefenseStats,
}

impl DramJournal {
    /// Captures `row`'s pre-image on first touch; later touches of the
    /// same row are O(1) no-ops. Must be called *before* the mutation.
    #[inline]
    pub(crate) fn capture_row(&mut self, row: u64, store: &impl RowStore) {
        self.rows.entry(row).or_insert_with(|| {
            // A row with a charge timestamp is materialized on every
            // backend (a Dense store answers `bytes` even for untouched
            // rows, so the charge plane is the materialization oracle).
            store.last_charge_ns(row).map(|charge| {
                (store.bytes(row).expect("materialized row has bytes").into(), charge)
            })
        });
    }

    /// Number of distinct rows captured so far (dirty-row footprint).
    pub(crate) fn dirty_rows(&self) -> usize {
        self.rows.len()
    }
}
