//! Deterministic hashing/sampling primitives.
//!
//! The simulator needs *reproducible* randomness keyed on structural
//! coordinates (module seed, row, bit) so that a module's vulnerability map
//! and retention map are fixed properties of the module — exactly like real
//! hardware, where "memory templating" attacks rely on flippable-bit
//! locations being stable across runs.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// SplitMix64 finalizer: a fast, well-distributed 64-bit mix.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a tuple of coordinates into a u64.
pub(crate) fn hash3(seed: u64, a: u64, b: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(seed) ^ a) ^ b)
}

/// Maps a u64 to the unit interval `[0, 1)`.
pub(crate) fn to_unit(x: u64) -> f64 {
    // 53 significant bits, like rand's standard float conversion.
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Counter-mode block generator over one row's cells.
///
/// `hash3(seed, row, bit)` nests three SplitMix finalizers, but the first
/// two depend only on `(seed, row)`. Factoring that *row prefix* out once
/// leaves a single finalizer per cell:
///
/// ```text
/// hash3(seed, row, bit) == splitmix64(prefix ^ bit)
///   where prefix = splitmix64(splitmix64(seed) ^ row)
/// ```
///
/// so the generator derives whole 64-hash blocks — one per engine word of
/// the row — at a third of the scalar mixing cost, while staying *equal*
/// to the per-bit [`hash3`] reference hash for hash. The wordwise map and
/// mask builders in `vuln.rs`/`retention.rs` consume these blocks; the
/// scalar paths keep calling [`hash3`] directly, which is what the
/// differential suites pin the block consumers against.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RowBlocks {
    prefix: u64,
}

impl RowBlocks {
    /// Positions the generator on `(seed, row)`.
    pub(crate) fn new(seed: u64, row: u64) -> Self {
        RowBlocks { prefix: splitmix64(splitmix64(seed) ^ row) }
    }

    /// The per-cell hash of `bit`: equals `hash3(seed, row, bit)`.
    #[inline]
    pub(crate) fn cell(&self, bit: u64) -> u64 {
        splitmix64(self.prefix ^ bit)
    }

    /// One 64-bit Bernoulli block: bit `b` of the result is set iff cell
    /// `64·word_idx + b` passes the integer threshold test
    /// `(cell_hash >> 11) < cutoff` (see [`unit_cutoff`]). Bits at or past
    /// `nbits` stay clear, so tail words never set padding bits.
    #[inline]
    pub(crate) fn bernoulli_word(&self, word_idx: u64, cutoff: u64, nbits: u64) -> u64 {
        let base = 64 * word_idx;
        let top = 64.min(nbits - base);
        let mut mask = 0u64;
        for b in 0..top {
            mask |= u64::from(self.cell(base + b) >> 11 < cutoff) << b;
        }
        mask
    }
}

/// The exact integer cutoff of a unit-interval threshold test: the unique
/// `c` such that `to_unit(h) < p  ⟺  (h >> 11) < c` for every `h`.
///
/// `to_unit` is weakly monotone in the 53-bit mantissa `x = h >> 11`
/// (int→float conversion, multiplication by a positive constant, and
/// comparison all preserve order), so `to_unit < p` holds exactly on a
/// prefix of `0..2^53`. Binary search with the genuine f64 predicate finds
/// the prefix length, making the integer test bit-exact against the float
/// reference by construction — no rounding analysis required.
pub(crate) fn unit_cutoff(p: f64) -> u64 {
    mantissa_cutoff(|x| to_unit(x << 11) < p)
}

/// Length of the true prefix of a downward-closed predicate over the
/// 53-bit mantissa domain `0..2^53`.
pub(crate) fn mantissa_cutoff(pred: impl Fn(u64) -> bool) -> u64 {
    let (mut lo, mut hi) = (0u64, 1u64 << 53);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// A ChaCha stream deterministically derived from `(seed, stream_id)`.
///
/// Used where we need many draws for one coordinate (e.g. sampling the
/// vulnerable-bit positions of a row) rather than a single hash.
pub(crate) fn stream_rng(seed: u64, stream_id: u64) -> ChaCha8Rng {
    let mut key = [0u8; 32];
    key[..8].copy_from_slice(&seed.to_le_bytes());
    key[8..16].copy_from_slice(&stream_id.to_le_bytes());
    key[16..24].copy_from_slice(&splitmix64(seed ^ stream_id).to_le_bytes());
    key[24..32]
        .copy_from_slice(&splitmix64(stream_id.wrapping_mul(31).wrapping_add(seed)).to_le_bytes());
    ChaCha8Rng::from_seed(key)
}

/// Draws a Poisson-distributed sample with mean `lambda` (Knuth for small
/// lambda, normal approximation above 64 to stay O(1)).
pub(crate) fn poisson(rng: &mut ChaCha8Rng, lambda: f64) -> u64 {
    use rand::Rng;
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 64.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        // Normal approximation with continuity correction.
        let u: f64 = rng.gen::<f64>().max(1e-12);
        let v: f64 = rng.gen::<f64>();
        let z = (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos();
        let x = lambda + lambda.sqrt() * z + 0.5;
        if x < 0.0 {
            0
        } else {
            x as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_spread() {
        assert_eq!(hash3(1, 2, 3), hash3(1, 2, 3));
        assert_ne!(hash3(1, 2, 3), hash3(1, 2, 4));
        assert_ne!(hash3(1, 2, 3), hash3(1, 3, 3));
        assert_ne!(hash3(1, 2, 3), hash3(2, 2, 3));
    }

    #[test]
    fn unit_interval_bounds() {
        for x in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            let u = to_unit(x);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn stream_rng_deterministic() {
        use rand::Rng;
        let a: u64 = stream_rng(7, 9).gen();
        let b: u64 = stream_rng(7, 9).gen();
        let c: u64 = stream_rng(7, 10).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_mean_roughly_correct() {
        let mut rng = stream_rng(42, 0);
        for lambda in [0.5f64, 5.0, 200.0] {
            let n = 4000;
            let total: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!((mean - lambda).abs() < lambda.max(1.0) * 0.15, "lambda={lambda} mean={mean}");
        }
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = stream_rng(1, 1);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn row_blocks_equal_hash3_per_cell() {
        for (seed, row) in [(0u64, 0u64), (0xC0FFEE, 3), (u64::MAX, 12345)] {
            let blocks = RowBlocks::new(seed, row);
            for bit in (0..130).chain([u64::from(u32::MAX), 1 << 20]) {
                assert_eq!(blocks.cell(bit), hash3(seed, row, bit), "seed={seed} bit={bit}");
            }
        }
    }

    #[test]
    fn unit_cutoff_is_bit_exact_around_the_boundary() {
        for p in [0.0, 1e-9, 1e-4, 0.002, 0.05, 0.4, 0.999, 1.0, 1.5] {
            let cutoff = unit_cutoff(p);
            // The float predicate and the integer predicate agree on hashes
            // straddling the cutoff (and on extremes).
            for x in [0u64, cutoff.saturating_sub(2), cutoff.saturating_sub(1), cutoff]
                .into_iter()
                .chain([cutoff + 1, (1 << 53) - 1].into_iter().filter(|x| *x < (1 << 53)))
            {
                let h = x << 11;
                assert_eq!(to_unit(h) < p, h >> 11 < cutoff, "p={p} x={x}");
            }
        }
        assert_eq!(unit_cutoff(0.0), 0);
        assert_eq!(unit_cutoff(1.0), 1 << 53);
    }

    #[test]
    fn bernoulli_word_matches_per_cell_threshold_and_respects_tails() {
        let blocks = RowBlocks::new(7, 9);
        let cutoff = unit_cutoff(0.3);
        let nbits = 100u64; // word 1 is a 36-bit tail word
        for w in 0..2u64 {
            let mask = blocks.bernoulli_word(w, cutoff, nbits);
            for b in 0..64u64 {
                let bit = 64 * w + b;
                let expect = bit < nbits && to_unit(hash3(7, 9, bit)) < 0.3;
                assert_eq!(mask >> b & 1 == 1, expect, "bit {bit}");
            }
        }
        assert_eq!(blocks.bernoulli_word(1, cutoff, nbits) >> 36, 0, "padding bits must stay 0");
    }
}
