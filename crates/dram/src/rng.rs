//! Deterministic hashing/sampling primitives.
//!
//! The simulator needs *reproducible* randomness keyed on structural
//! coordinates (module seed, row, bit) so that a module's vulnerability map
//! and retention map are fixed properties of the module — exactly like real
//! hardware, where "memory templating" attacks rely on flippable-bit
//! locations being stable across runs.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// SplitMix64 finalizer: a fast, well-distributed 64-bit mix.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a tuple of coordinates into a u64.
pub(crate) fn hash3(seed: u64, a: u64, b: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(seed) ^ a) ^ b)
}

/// Maps a u64 to the unit interval `[0, 1)`.
pub(crate) fn to_unit(x: u64) -> f64 {
    // 53 significant bits, like rand's standard float conversion.
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A ChaCha stream deterministically derived from `(seed, stream_id)`.
///
/// Used where we need many draws for one coordinate (e.g. sampling the
/// vulnerable-bit positions of a row) rather than a single hash.
pub(crate) fn stream_rng(seed: u64, stream_id: u64) -> ChaCha8Rng {
    let mut key = [0u8; 32];
    key[..8].copy_from_slice(&seed.to_le_bytes());
    key[8..16].copy_from_slice(&stream_id.to_le_bytes());
    key[16..24].copy_from_slice(&splitmix64(seed ^ stream_id).to_le_bytes());
    key[24..32]
        .copy_from_slice(&splitmix64(stream_id.wrapping_mul(31).wrapping_add(seed)).to_le_bytes());
    ChaCha8Rng::from_seed(key)
}

/// Draws a Poisson-distributed sample with mean `lambda` (Knuth for small
/// lambda, normal approximation above 64 to stay O(1)).
pub(crate) fn poisson(rng: &mut ChaCha8Rng, lambda: f64) -> u64 {
    use rand::Rng;
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 64.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        // Normal approximation with continuity correction.
        let u: f64 = rng.gen::<f64>().max(1e-12);
        let v: f64 = rng.gen::<f64>();
        let z = (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos();
        let x = lambda + lambda.sqrt() * z + 0.5;
        if x < 0.0 {
            0
        } else {
            x as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_spread() {
        assert_eq!(hash3(1, 2, 3), hash3(1, 2, 3));
        assert_ne!(hash3(1, 2, 3), hash3(1, 2, 4));
        assert_ne!(hash3(1, 2, 3), hash3(1, 3, 3));
        assert_ne!(hash3(1, 2, 3), hash3(2, 2, 3));
    }

    #[test]
    fn unit_interval_bounds() {
        for x in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            let u = to_unit(x);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn stream_rng_deterministic() {
        use rand::Rng;
        let a: u64 = stream_rng(7, 9).gen();
        let b: u64 = stream_rng(7, 9).gen();
        let c: u64 = stream_rng(7, 10).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_mean_roughly_correct() {
        let mut rng = stream_rng(42, 0);
        for lambda in [0.5f64, 5.0, 200.0] {
            let n = 4000;
            let total: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!((mean - lambda).abs() < lambda.max(1.0) * 0.15, "lambda={lambda} mean={mean}");
        }
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = stream_rng(1, 1);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }
}
