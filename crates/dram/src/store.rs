//! Pluggable row-storage backends for [`crate::DramModule`].
//!
//! The module's data plane — which rows exist, their cell contents, and the
//! per-row charge timestamps the retention model decays from — is abstracted
//! behind the [`RowStore`] trait so experiments can trade memory for speed
//! (or for fork-ability) without touching the hammer/refresh/remap logic:
//!
//! - [`SparseStore`] materializes rows on first write (the historical
//!   behavior and the default): ideal for paper-scale geometries where only
//!   a sliver of the gigabytes ever holds data.
//! - [`DenseStore`] pre-allocates every row in one flat buffer, making the
//!   read/write hot path branch-free: ideal for the small end-to-end
//!   geometries the kernel tests boot.
//! - [`CowStore`] wraps each materialized row in an [`Arc`] with
//!   copy-on-write mutation, so cloning the store — the substrate of
//!   `Kernel::fork()` — is O(rows) pointer bumps and each fork pays only
//!   for the rows it subsequently changes.
//!
//! All three backends are observationally identical: a never-written row
//! reads as all-zeros, carries no charge timestamp (so it never decays),
//! and does not count as materialized. The differential tests in
//! `tests/backend_differential.rs` pin this equivalence bit-for-bit.

use std::sync::Arc;

/// Selects the [`RowStore`] implementation a [`crate::DramModule`] uses.
///
/// Part of [`crate::DramConfig`]; the choice changes performance (and fork
/// cost) but never simulated behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StoreBackend {
    /// Rows materialize on first write ([`SparseStore`], the default).
    #[default]
    Sparse,
    /// All rows pre-allocated in one flat buffer ([`DenseStore`]).
    Dense,
    /// Arc-per-row copy-on-write storage ([`CowStore`]).
    Cow,
}

impl StoreBackend {
    /// All backends, in canonical order (useful for differential tests and
    /// per-backend benchmarks).
    pub const ALL: [StoreBackend; 3] =
        [StoreBackend::Sparse, StoreBackend::Dense, StoreBackend::Cow];

    /// Stable lowercase name (used in bench labels and telemetry text).
    pub fn name(self) -> &'static str {
        match self {
            StoreBackend::Sparse => "sparse",
            StoreBackend::Dense => "dense",
            StoreBackend::Cow => "cow",
        }
    }
}

impl std::fmt::Display for StoreBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Mutable view of one materialized row: its cell bytes plus the charge
/// timestamp the retention model decays from.
pub struct RowMut<'a> {
    /// The row's cell contents, `row_bytes` long.
    pub bytes: &'a mut [u8],
    /// Simulated time the row's charge was last restored.
    pub last_charge_ns: &'a mut u64,
}

/// Storage of row contents and charge timestamps, indexed by *backing* row
/// id (remap resolution happens above this layer, in `DramModule`).
///
/// Implementations must preserve the sparse observational contract:
///
/// - [`bytes`](Self::bytes) returning `None` and returning `Some` slice of
///   zeros are indistinguishable to readers;
/// - a row without a charge timestamp ([`last_charge_ns`](Self::last_charge_ns)
///   `== None`) holds no charge to decay and is skipped by refresh/power
///   machinery;
/// - [`materialized_rows`](Self::materialized_rows) yields exactly the rows
///   with a charge timestamp, in ascending order (decay application order
///   is part of the determinism contract).
pub trait RowStore {
    /// Read-only view of a row's contents, `None` if never materialized
    /// (all cells at logic `0`).
    fn bytes(&self, row: u64) -> Option<&[u8]>;

    /// Mutable view of a row, materializing it at all-zeros with charge
    /// timestamp `now_ns` on first use.
    fn materialize(&mut self, row: u64, now_ns: u64) -> RowMut<'_>;

    /// The row's charge timestamp, `None` if never materialized.
    fn last_charge_ns(&self, row: u64) -> Option<u64>;

    /// Restores the row's charge to `now_ns` if (and only if) it is
    /// materialized — an ordinary access or targeted refresh.
    fn touch(&mut self, row: u64, now_ns: u64);

    /// Restores every materialized row's charge to `now_ns` (refresh
    /// resuming after power-up).
    fn recharge_all(&mut self, now_ns: u64);

    /// Backing ids of all materialized rows, ascending.
    fn materialized_rows(&self) -> Vec<u64>;

    /// Number of materialized rows.
    fn materialized_count(&self) -> usize;

    /// Returns the row to the never-materialized state: contents read as
    /// all-zeros, no charge timestamp, not counted as materialized. The
    /// undo journal uses this to roll back rows a trial materialized.
    fn unmaterialize(&mut self, row: u64);
}

/// One materialized row: contents plus charge timestamp.
#[derive(Debug, Clone)]
struct RowBuf {
    bytes: Box<[u8]>,
    last_charge_ns: u64,
}

impl RowBuf {
    fn zeroed(row_bytes: usize, now_ns: u64) -> Self {
        RowBuf { bytes: vec![0u8; row_bytes].into_boxed_slice(), last_charge_ns: now_ns }
    }
}

/// The default backend: rows materialize on first write.
///
/// Memory scales with the number of *touched* rows, so paper-scale modules
/// (gigabytes of address space, kilobytes of live data) stay cheap.
#[derive(Debug, Clone)]
pub struct SparseStore {
    rows: Vec<Option<RowBuf>>,
    row_bytes: usize,
}

impl SparseStore {
    /// Creates a store of `total_rows` rows of `row_bytes` each, all
    /// unmaterialized.
    pub fn new(total_rows: usize, row_bytes: usize) -> Self {
        SparseStore { rows: (0..total_rows).map(|_| None).collect(), row_bytes }
    }
}

impl RowStore for SparseStore {
    fn bytes(&self, row: u64) -> Option<&[u8]> {
        self.rows[row as usize].as_ref().map(|r| &r.bytes[..])
    }

    fn materialize(&mut self, row: u64, now_ns: u64) -> RowMut<'_> {
        let row_bytes = self.row_bytes;
        let buf = self.rows[row as usize].get_or_insert_with(|| RowBuf::zeroed(row_bytes, now_ns));
        RowMut { bytes: &mut buf.bytes, last_charge_ns: &mut buf.last_charge_ns }
    }

    fn last_charge_ns(&self, row: u64) -> Option<u64> {
        self.rows[row as usize].as_ref().map(|r| r.last_charge_ns)
    }

    fn touch(&mut self, row: u64, now_ns: u64) {
        if let Some(buf) = &mut self.rows[row as usize] {
            buf.last_charge_ns = now_ns;
        }
    }

    fn recharge_all(&mut self, now_ns: u64) {
        for buf in self.rows.iter_mut().flatten() {
            buf.last_charge_ns = now_ns;
        }
    }

    fn materialized_rows(&self) -> Vec<u64> {
        self.rows.iter().enumerate().filter_map(|(i, r)| r.as_ref().map(|_| i as u64)).collect()
    }

    fn materialized_count(&self) -> usize {
        self.rows.iter().filter(|r| r.is_some()).count()
    }

    fn unmaterialize(&mut self, row: u64) {
        self.rows[row as usize] = None;
    }
}

/// Pre-materialized backend: one flat buffer holds every row, so the data
/// hot path is branch-free slice arithmetic.
///
/// A `touched` bitmap preserves sparse semantics for the *charge* plane:
/// never-written rows carry no charge and therefore never decay (in a
/// sparse store an untouched anti-cell row stays all-zeros through a
/// refresh outage; a naively pre-charged dense row would decay to all-ones
/// and diverge).
#[derive(Debug, Clone)]
pub struct DenseStore {
    data: Vec<u8>,
    last_charge: Vec<u64>,
    touched: Vec<bool>,
    touched_count: usize,
    row_bytes: usize,
}

impl DenseStore {
    /// Creates a store of `total_rows` rows of `row_bytes` each, all zeroed
    /// and untouched.
    pub fn new(total_rows: usize, row_bytes: usize) -> Self {
        DenseStore {
            data: vec![0u8; total_rows * row_bytes],
            last_charge: vec![0u64; total_rows],
            touched: vec![false; total_rows],
            touched_count: 0,
            row_bytes,
        }
    }
}

impl RowStore for DenseStore {
    fn bytes(&self, row: u64) -> Option<&[u8]> {
        // Untouched rows are all-zeros, identical to the sparse `None` →
        // zero-fill path, so always answering is both correct and
        // branch-free.
        let lo = row as usize * self.row_bytes;
        Some(&self.data[lo..lo + self.row_bytes])
    }

    fn materialize(&mut self, row: u64, now_ns: u64) -> RowMut<'_> {
        let i = row as usize;
        if !self.touched[i] {
            self.touched[i] = true;
            self.touched_count += 1;
            self.last_charge[i] = now_ns;
        }
        let lo = i * self.row_bytes;
        RowMut {
            bytes: &mut self.data[lo..lo + self.row_bytes],
            last_charge_ns: &mut self.last_charge[i],
        }
    }

    fn last_charge_ns(&self, row: u64) -> Option<u64> {
        self.touched[row as usize].then(|| self.last_charge[row as usize])
    }

    fn touch(&mut self, row: u64, now_ns: u64) {
        let i = row as usize;
        if self.touched[i] {
            self.last_charge[i] = now_ns;
        }
    }

    fn recharge_all(&mut self, now_ns: u64) {
        for (i, charge) in self.last_charge.iter_mut().enumerate() {
            if self.touched[i] {
                *charge = now_ns;
            }
        }
    }

    fn materialized_rows(&self) -> Vec<u64> {
        self.touched.iter().enumerate().filter_map(|(i, t)| t.then_some(i as u64)).collect()
    }

    fn materialized_count(&self) -> usize {
        self.touched_count
    }

    fn unmaterialize(&mut self, row: u64) {
        // Untouched dense rows must read as all-zeros with no charge, so
        // restore both planes, not just the bitmap.
        let i = row as usize;
        if self.touched[i] {
            self.touched[i] = false;
            self.touched_count -= 1;
        }
        let lo = i * self.row_bytes;
        self.data[lo..lo + self.row_bytes].fill(0);
        self.last_charge[i] = 0;
    }
}

/// Copy-on-write backend: each materialized row lives behind an [`Arc`],
/// so cloning the whole store (what [`crate::DramModule::fork`] does) costs
/// one reference-count bump per materialized row and each clone pays full
/// row-copy cost only for the rows it subsequently mutates.
#[derive(Debug, Clone)]
pub struct CowStore {
    rows: Vec<Option<Arc<RowBuf>>>,
    row_bytes: usize,
}

impl CowStore {
    /// Creates a store of `total_rows` rows of `row_bytes` each, all
    /// unmaterialized.
    pub fn new(total_rows: usize, row_bytes: usize) -> Self {
        CowStore { rows: (0..total_rows).map(|_| None).collect(), row_bytes }
    }

    /// Number of materialized rows whose buffer is currently shared with at
    /// least one other store clone (a fork that has not yet diverged on
    /// that row). Observability hook for the O(changed rows) fork claim.
    pub fn shared_rows(&self) -> usize {
        self.rows.iter().flatten().filter(|arc| Arc::strong_count(arc) > 1).count()
    }
}

impl RowStore for CowStore {
    fn bytes(&self, row: u64) -> Option<&[u8]> {
        self.rows[row as usize].as_ref().map(|r| &r.bytes[..])
    }

    fn materialize(&mut self, row: u64, now_ns: u64) -> RowMut<'_> {
        let row_bytes = self.row_bytes;
        let arc = self.rows[row as usize]
            .get_or_insert_with(|| Arc::new(RowBuf::zeroed(row_bytes, now_ns)));
        let buf = Arc::make_mut(arc);
        RowMut { bytes: &mut buf.bytes, last_charge_ns: &mut buf.last_charge_ns }
    }

    fn last_charge_ns(&self, row: u64) -> Option<u64> {
        self.rows[row as usize].as_ref().map(|r| r.last_charge_ns)
    }

    fn touch(&mut self, row: u64, now_ns: u64) {
        // Skip the no-op case before `make_mut`: recharging to the value
        // already stored must not break sharing with forks.
        if let Some(arc) = &mut self.rows[row as usize] {
            if arc.last_charge_ns != now_ns {
                Arc::make_mut(arc).last_charge_ns = now_ns;
            }
        }
    }

    fn recharge_all(&mut self, now_ns: u64) {
        for arc in self.rows.iter_mut().flatten() {
            if arc.last_charge_ns != now_ns {
                Arc::make_mut(arc).last_charge_ns = now_ns;
            }
        }
    }

    fn materialized_rows(&self) -> Vec<u64> {
        self.rows.iter().enumerate().filter_map(|(i, r)| r.as_ref().map(|_| i as u64)).collect()
    }

    fn materialized_count(&self) -> usize {
        self.rows.iter().filter(|r| r.is_some()).count()
    }

    fn unmaterialize(&mut self, row: u64) {
        self.rows[row as usize] = None;
    }
}

/// Enum dispatch over the three backends.
///
/// Runtime selection (the backend is a [`crate::DramConfig`] field so
/// differential tests and campaigns can loop over backends) with
/// match-based static dispatch on every call — no vtable on the data hot
/// path.
#[derive(Debug, Clone)]
pub enum AnyRowStore {
    /// A [`SparseStore`].
    Sparse(SparseStore),
    /// A [`DenseStore`].
    Dense(DenseStore),
    /// A [`CowStore`].
    Cow(CowStore),
}

impl AnyRowStore {
    /// Creates the store `backend` selects, sized `total_rows` ×
    /// `row_bytes`.
    pub fn new(backend: StoreBackend, total_rows: usize, row_bytes: usize) -> Self {
        match backend {
            StoreBackend::Sparse => AnyRowStore::Sparse(SparseStore::new(total_rows, row_bytes)),
            StoreBackend::Dense => AnyRowStore::Dense(DenseStore::new(total_rows, row_bytes)),
            StoreBackend::Cow => AnyRowStore::Cow(CowStore::new(total_rows, row_bytes)),
        }
    }

    /// Which backend this store is.
    pub fn backend(&self) -> StoreBackend {
        match self {
            AnyRowStore::Sparse(_) => StoreBackend::Sparse,
            AnyRowStore::Dense(_) => StoreBackend::Dense,
            AnyRowStore::Cow(_) => StoreBackend::Cow,
        }
    }

    /// [`CowStore::shared_rows`] if this is a Cow store, else `0`.
    pub fn shared_rows(&self) -> usize {
        match self {
            AnyRowStore::Cow(s) => s.shared_rows(),
            _ => 0,
        }
    }
}

macro_rules! dispatch {
    ($self:expr, $s:ident => $body:expr) => {
        match $self {
            AnyRowStore::Sparse($s) => $body,
            AnyRowStore::Dense($s) => $body,
            AnyRowStore::Cow($s) => $body,
        }
    };
}

impl RowStore for AnyRowStore {
    fn bytes(&self, row: u64) -> Option<&[u8]> {
        dispatch!(self, s => s.bytes(row))
    }

    fn materialize(&mut self, row: u64, now_ns: u64) -> RowMut<'_> {
        dispatch!(self, s => s.materialize(row, now_ns))
    }

    fn last_charge_ns(&self, row: u64) -> Option<u64> {
        dispatch!(self, s => s.last_charge_ns(row))
    }

    fn touch(&mut self, row: u64, now_ns: u64) {
        dispatch!(self, s => s.touch(row, now_ns))
    }

    fn recharge_all(&mut self, now_ns: u64) {
        dispatch!(self, s => s.recharge_all(now_ns))
    }

    fn materialized_rows(&self) -> Vec<u64> {
        dispatch!(self, s => s.materialized_rows())
    }

    fn materialized_count(&self) -> usize {
        dispatch!(self, s => s.materialized_count())
    }

    fn unmaterialize(&mut self, row: u64) {
        dispatch!(self, s => s.unmaterialize(row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stores() -> Vec<AnyRowStore> {
        StoreBackend::ALL.iter().map(|b| AnyRowStore::new(*b, 8, 64)).collect()
    }

    #[test]
    fn fresh_rows_read_as_unmaterialized_or_zero() {
        for store in stores() {
            let b = store.backend();
            if let Some(bytes) = store.bytes(3) {
                assert!(bytes.iter().all(|x| *x == 0), "{b}");
            }
            assert_eq!(store.last_charge_ns(3), None, "{b}");
            assert_eq!(store.materialized_count(), 0, "{b}");
            assert!(store.materialized_rows().is_empty(), "{b}");
        }
    }

    #[test]
    fn materialize_then_read_back() {
        for mut store in stores() {
            let b = store.backend();
            {
                let row = store.materialize(2, 100);
                row.bytes[5] = 0xAB;
            }
            assert_eq!(store.bytes(2).unwrap()[5], 0xAB, "{b}");
            assert_eq!(store.last_charge_ns(2), Some(100), "{b}");
            assert_eq!(store.materialized_rows(), vec![2], "{b}");
            assert_eq!(store.materialized_count(), 1, "{b}");
        }
    }

    #[test]
    fn touch_only_affects_materialized_rows() {
        for mut store in stores() {
            let b = store.backend();
            store.touch(1, 500);
            assert_eq!(store.last_charge_ns(1), None, "{b}");
            store.materialize(1, 100);
            store.touch(1, 500);
            assert_eq!(store.last_charge_ns(1), Some(500), "{b}");
        }
    }

    #[test]
    fn recharge_all_updates_every_materialized_row() {
        for mut store in stores() {
            let b = store.backend();
            store.materialize(0, 10);
            store.materialize(4, 20);
            store.recharge_all(999);
            assert_eq!(store.last_charge_ns(0), Some(999), "{b}");
            assert_eq!(store.last_charge_ns(4), Some(999), "{b}");
            assert_eq!(store.last_charge_ns(1), None, "{b}");
        }
    }

    #[test]
    fn materialized_rows_ascending() {
        for mut store in stores() {
            let b = store.backend();
            for row in [5u64, 1, 3] {
                store.materialize(row, 0);
            }
            assert_eq!(store.materialized_rows(), vec![1, 3, 5], "{b}");
        }
    }

    #[test]
    fn unmaterialize_restores_the_fresh_row_state() {
        for mut store in stores() {
            let b = store.backend();
            store.materialize(2, 100).bytes[5] = 0xAB;
            store.materialize(4, 200).bytes[0] = 0xCD;
            store.unmaterialize(2);
            if let Some(bytes) = store.bytes(2) {
                assert!(bytes.iter().all(|x| *x == 0), "{b}");
            }
            assert_eq!(store.last_charge_ns(2), None, "{b}");
            assert_eq!(store.materialized_rows(), vec![4], "{b}");
            assert_eq!(store.materialized_count(), 1, "{b}");
            // Unmaterializing a never-touched row is a no-op.
            store.unmaterialize(7);
            assert_eq!(store.materialized_count(), 1, "{b}");
        }
    }

    #[test]
    fn cow_clone_shares_until_write() {
        let mut parent = CowStore::new(8, 64);
        parent.materialize(1, 0).bytes[0] = 0x11;
        parent.materialize(2, 0).bytes[0] = 0x22;
        let mut child = parent.clone();
        assert_eq!(parent.shared_rows(), 2);
        assert_eq!(child.shared_rows(), 2);

        // Child write breaks sharing for that row only; parent is isolated.
        child.materialize(1, 5).bytes[0] = 0x99;
        assert_eq!(parent.shared_rows(), 1);
        assert_eq!(parent.bytes(1).unwrap()[0], 0x11);
        assert_eq!(child.bytes(1).unwrap()[0], 0x99);
        assert_eq!(parent.bytes(2).unwrap()[0], 0x22);
    }

    #[test]
    fn cow_touch_with_same_timestamp_keeps_sharing() {
        let mut parent = CowStore::new(8, 64);
        parent.materialize(1, 42);
        let mut child = parent.clone();
        child.touch(1, 42); // no-op recharge must not copy the row
        assert_eq!(parent.shared_rows(), 1);
        child.touch(1, 43);
        assert_eq!(parent.shared_rows(), 0);
        assert_eq!(parent.last_charge_ns(1), Some(42));
        assert_eq!(child.last_charge_ns(1), Some(43));
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(StoreBackend::Sparse.name(), "sparse");
        assert_eq!(StoreBackend::Dense.name(), "dense");
        assert_eq!(StoreBackend::Cow.name(), "cow");
        assert_eq!(StoreBackend::default(), StoreBackend::Sparse);
        assert_eq!(format!("{}", StoreBackend::Cow), "cow");
    }
}
