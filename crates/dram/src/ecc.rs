//! SECDED ECC over simulated DRAM words (paper section 2.3 context).
//!
//! The paper cites Aichinger's observation that RowHammer defeats ECC
//! DIMMs: SECDED corrects one flip per 72-bit word and *detects* two, but
//! multi-flip words — which heavy hammering produces — either crash the
//! machine (detected-uncorrectable, a DoS) or, worse, alias to a valid
//! single-bit syndrome and get silently *mis-corrected*. This module
//! implements a real (72,64) SECDED code so that claim can be measured,
//! and so CTA's orthogonality to ECC (it needs neither detection nor
//! correction, only direction) can be demonstrated.
//!
//! Construction: the parity-check matrix uses 72 distinct odd-weight
//! 8-bit columns (the 8 weight-1 columns serve the check bits themselves).
//! Odd-weight columns give the classic SECDED property: single errors have
//! odd-weight syndromes (correctable), double errors even-weight nonzero
//! syndromes (detectable), and ≥3 errors may alias.

use std::collections::HashMap;

use crate::error::DramError;
use crate::module::DramModule;

/// Outcome of decoding one protected word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EccResult {
    /// Syndrome zero: word accepted as stored.
    Clean,
    /// A single-bit error was corrected (bit index 0–63 in data, 64–71 in
    /// check bits).
    Corrected {
        /// The corrected codeword bit.
        bit: u8,
    },
    /// An even-weight syndrome: double error detected, uncorrectable — a
    /// real machine raises a machine-check (DoS).
    DetectedUncorrectable,
    /// An odd-weight syndrome matching no column: ≥3 errors detected.
    DetectedMultiError,
}

/// The (72,64) SECDED code.
#[derive(Debug, Clone)]
pub struct Secded {
    /// Column of the parity-check matrix for each of the 64 data bits.
    data_columns: [u8; 64],
}

impl Default for Secded {
    fn default() -> Self {
        Self::new()
    }
}

impl Secded {
    /// Builds the code with a canonical odd-weight column assignment.
    pub fn new() -> Self {
        let mut columns = Vec::with_capacity(64);
        // Weight-3 bytes first (there are 56), then weight-5 to fill 64.
        for weight in [3u32, 5] {
            for candidate in 1u16..=255 {
                let c = candidate as u8;
                if c.count_ones() == weight {
                    columns.push(c);
                    if columns.len() == 64 {
                        break;
                    }
                }
            }
            if columns.len() == 64 {
                break;
            }
        }
        let mut data_columns = [0u8; 64];
        data_columns.copy_from_slice(&columns);
        Secded { data_columns }
    }

    /// Computes the 8 check bits for `data`.
    pub fn encode(&self, data: u64) -> u8 {
        let mut check = 0u8;
        for (i, col) in self.data_columns.iter().enumerate() {
            if data >> i & 1 == 1 {
                check ^= col;
            }
        }
        check
    }

    /// Decodes a possibly corrupted `(data, check)` pair, returning the
    /// (possibly corrected) data and the classification.
    pub fn decode(&self, data: u64, check: u8) -> (u64, EccResult) {
        let syndrome = self.encode(data) ^ check;
        if syndrome == 0 {
            return (data, EccResult::Clean);
        }
        // Single check-bit error: syndrome is a weight-1 column.
        if syndrome.count_ones() == 1 {
            let bit = 64 + syndrome.trailing_zeros() as u8;
            return (data, EccResult::Corrected { bit });
        }
        if syndrome.count_ones() % 2 == 1 {
            // Odd weight: either a data-bit single error, or ≥3 aliasing.
            if let Some(i) = self.data_columns.iter().position(|c| *c == syndrome) {
                return (data ^ (1u64 << i), EccResult::Corrected { bit: i as u8 });
            }
            return (data, EccResult::DetectedMultiError);
        }
        (data, EccResult::DetectedUncorrectable)
    }
}

/// Accumulated scrub statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EccScrubStats {
    /// Words that decoded clean.
    pub clean: u64,
    /// Words with a corrected single-bit error.
    pub corrected: u64,
    /// Words with a detected-uncorrectable (double) error.
    pub detected_double: u64,
    /// Words with a detected multi-bit error.
    pub detected_multi: u64,
    /// Words whose *returned data* differs from what was written — silent
    /// corruption the scrubber cannot see but the experiment's oracle can
    /// (mis-corrections and undetected aliasing).
    pub silent_corruptions: u64,
}

/// An ECC-protected region of a DRAM module.
///
/// Data words live in the module's addressable rows; the 8 check bits per
/// word live in a *check region* of the same module (real ECC DIMMs carry
/// an extra chip — also DRAM, also hammerable). Both regions are therefore
/// subject to the same disturbance model.
#[derive(Debug)]
pub struct EccRegion {
    code: Secded,
    data_base: u64,
    check_base: u64,
    words: u64,
    /// Written ground truth, for the experiment's silent-corruption oracle.
    truth: HashMap<u64, u64>,
}

impl EccRegion {
    /// Creates a region of `words` 64-bit words with data at `data_base`
    /// and check bytes at `check_base`.
    ///
    /// # Errors
    ///
    /// [`DramError::OutOfBounds`] if either range exceeds the module.
    pub fn new(
        module: &mut DramModule,
        data_base: u64,
        check_base: u64,
        words: u64,
    ) -> Result<Self, DramError> {
        // Validate bounds eagerly.
        module.read(data_base, (words * 8) as usize)?;
        module.read(check_base, words as usize)?;
        Ok(EccRegion { code: Secded::new(), data_base, check_base, words, truth: HashMap::new() })
    }

    /// Number of words protected.
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Writes a word with its check bits.
    ///
    /// # Errors
    ///
    /// [`DramError::OutOfBounds`] for `index >= words`.
    pub fn write_word(
        &mut self,
        module: &mut DramModule,
        index: u64,
        data: u64,
    ) -> Result<(), DramError> {
        self.check_index(module, index)?;
        module.write_u64(self.data_base + index * 8, data)?;
        module.write(self.check_base + index, &[self.code.encode(data)])?;
        self.truth.insert(index, data);
        Ok(())
    }

    /// Reads and decodes a word (correcting in place like a scrubber).
    ///
    /// # Errors
    ///
    /// [`DramError::OutOfBounds`] for `index >= words`.
    pub fn read_word(
        &self,
        module: &mut DramModule,
        index: u64,
    ) -> Result<(u64, EccResult), DramError> {
        self.check_index(module, index)?;
        let data = module.read_u64(self.data_base + index * 8)?;
        let check = module.read(self.check_base + index, 1)?[0];
        Ok(self.code.decode(data, check))
    }

    /// Scrubs the whole region, classifying every word and checking the
    /// returned data against the written ground truth.
    ///
    /// # Errors
    ///
    /// DRAM errors.
    pub fn scrub(&self, module: &mut DramModule) -> Result<EccScrubStats, DramError> {
        let mut stats = EccScrubStats::default();
        for index in 0..self.words {
            let (data, result) = self.read_word(module, index)?;
            match result {
                EccResult::Clean => stats.clean += 1,
                EccResult::Corrected { .. } => stats.corrected += 1,
                EccResult::DetectedUncorrectable => stats.detected_double += 1,
                EccResult::DetectedMultiError => stats.detected_multi += 1,
            }
            if let Some(truth) = self.truth.get(&index) {
                let accepted = !matches!(
                    result,
                    EccResult::DetectedUncorrectable | EccResult::DetectedMultiError
                );
                if accepted && data != *truth {
                    stats.silent_corruptions += 1;
                }
            }
        }
        Ok(stats)
    }

    fn check_index(&self, module: &DramModule, index: u64) -> Result<(), DramError> {
        if index >= self.words {
            return Err(DramError::OutOfBounds {
                addr: self.data_base + index * 8,
                len: 8,
                capacity: module.capacity_bytes(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    #[test]
    fn columns_are_distinct_and_odd() {
        let code = Secded::new();
        let mut seen = std::collections::HashSet::new();
        for c in code.data_columns {
            assert_eq!(c.count_ones() % 2, 1);
            assert!(c.count_ones() >= 3, "data columns must not collide with check columns");
            assert!(seen.insert(c), "duplicate column {c:#x}");
        }
    }

    #[test]
    fn clean_round_trip() {
        let code = Secded::new();
        for data in [0u64, u64::MAX, 0xDEAD_BEEF_0BAD_F00D, 1, 1 << 63] {
            let check = code.encode(data);
            assert_eq!(code.decode(data, check), (data, EccResult::Clean));
        }
    }

    #[test]
    fn every_single_data_bit_error_is_corrected() {
        let code = Secded::new();
        let data = 0xA5A5_5A5A_0123_4567u64;
        let check = code.encode(data);
        for bit in 0..64u8 {
            let corrupted = data ^ (1u64 << bit);
            let (fixed, result) = code.decode(corrupted, check);
            assert_eq!(fixed, data, "bit {bit}");
            assert_eq!(result, EccResult::Corrected { bit });
        }
    }

    #[test]
    fn every_single_check_bit_error_is_corrected() {
        let code = Secded::new();
        let data = 0x0F0F_F0F0_1234_5678u64;
        let check = code.encode(data);
        for bit in 0..8u8 {
            let (fixed, result) = code.decode(data, check ^ (1 << bit));
            assert_eq!(fixed, data);
            assert_eq!(result, EccResult::Corrected { bit: 64 + bit });
        }
    }

    #[test]
    fn every_double_error_is_detected_not_miscorrected() {
        let code = Secded::new();
        let data = 0x1122_3344_5566_7788u64;
        let check = code.encode(data);
        // All data-data pairs (spot a dense subset) and data-check pairs.
        for i in 0..64u8 {
            for j in (i + 1)..64 {
                let corrupted = data ^ (1u64 << i) ^ (1u64 << j);
                let (_, result) = code.decode(corrupted, check);
                assert_eq!(result, EccResult::DetectedUncorrectable, "bits {i},{j}");
            }
            let (_, result) = code.decode(data ^ (1u64 << i), check ^ 1);
            assert_eq!(result, EccResult::DetectedUncorrectable, "data {i} + check 0");
        }
    }

    #[test]
    fn triple_errors_can_alias_to_miscorrection() {
        // The SECDED weakness RowHammer exploits: some 3-bit patterns decode
        // as a "corrected" single bit, silently corrupting data.
        let code = Secded::new();
        let data = 0u64;
        let check = code.encode(data);
        let mut miscorrected = 0;
        let mut detected = 0;
        for i in 0..64u8 {
            for j in (i + 1)..64 {
                for k in (j + 1)..64 {
                    let corrupted = data ^ (1u64 << i) ^ (1u64 << j) ^ (1u64 << k);
                    let (fixed, result) = code.decode(corrupted, check);
                    match result {
                        EccResult::Corrected { .. } if fixed != data => miscorrected += 1,
                        EccResult::DetectedMultiError | EccResult::DetectedUncorrectable => {
                            detected += 1
                        }
                        _ => {}
                    }
                }
            }
        }
        assert!(miscorrected > 0, "triple errors must sometimes alias");
        assert!(detected > 0, "and sometimes be caught");
    }

    #[test]
    fn region_round_trip_and_scrub() {
        let mut m = DramModule::new(DramConfig::small_test());
        let mut region = EccRegion::new(&mut m, 0, 3 * 4096, 256).unwrap();
        for i in 0..256u64 {
            region.write_word(&mut m, i, i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).unwrap();
        }
        let stats = region.scrub(&mut m).unwrap();
        assert_eq!(stats.clean, 256);
        assert_eq!(stats.silent_corruptions, 0);
        let (v, r) = region.read_word(&mut m, 7).unwrap();
        assert_eq!(v, 7u64.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        assert_eq!(r, EccResult::Clean);
    }

    #[test]
    fn region_rejects_out_of_range() {
        let mut m = DramModule::new(DramConfig::small_test());
        let mut region = EccRegion::new(&mut m, 0, 3 * 4096, 16).unwrap();
        assert!(region.write_word(&mut m, 16, 1).is_err());
        assert!(region.read_word(&mut m, 16).is_err());
    }

    #[test]
    fn hammering_produces_corrections_and_detections() {
        use crate::config::DisturbanceParams;
        let cfg = DramConfig::small_test().with_disturbance(DisturbanceParams {
            pf: 0.05,
            reverse_rate: 0.0,
            ..DisturbanceParams::default()
        });
        let mut m = DramModule::new(cfg);
        // Data fills row 2 (4 KiB = 512 words); checks in row 12.
        let mut region = EccRegion::new(&mut m, 2 * 4096, 12 * 4096, 512).unwrap();
        for i in 0..512u64 {
            region.write_word(&mut m, i, 0xFFFF_FFFF_FFFF_FFFF).unwrap();
        }
        m.hammer_double_sided(crate::RowId(2)).unwrap();
        let stats = region.scrub(&mut m).unwrap();
        // pf = 5% over 32768 bits ⇒ ~1600 flips spread over 512 words:
        // plenty of multi-bit words.
        assert!(stats.corrected > 0, "{stats:?}");
        assert!(stats.detected_double + stats.detected_multi > 0, "{stats:?}");
    }
}
