use std::collections::{BTreeMap, BTreeSet};

use crate::cells::CellLayout;
use crate::error::DramError;
use crate::geometry::RowId;

/// DRAM-manufacturer row remapping (paper section 7).
///
/// Manufacturers replace faulty rows with spares to improve yield. The spare
/// must have the *same cell polarity* as the faulty row for the shared sense
/// amplifiers to work, which is why remapping is transparent to CTA: a PTP
/// row remapped to a spare is still a true-cell row.
///
/// The table redirects row indices at the lowest level of the module, below
/// the cell-type layout — software (including the profiler) only ever sees
/// the post-remap rows. Redirection is a *swap*: the faulty row's address
/// resolves to the spare's storage and vice versa, keeping the
/// address-to-storage mapping bijective (no two addresses may alias one
/// physical row).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RemapTable {
    map: BTreeMap<u64, u64>,
    spares_in_use: BTreeSet<u64>,
}

impl RemapTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of remapped rows.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no rows are remapped.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Adds a remap of `faulty` onto `spare` (a storage swap), checking
    /// polarity.
    ///
    /// # Errors
    ///
    /// - [`DramError::RemapTypeMismatch`] if the rows have different cell
    ///   types under `layout`;
    /// - [`DramError::SpareInUse`] if either row already participates in a
    ///   remap.
    pub fn remap(
        &mut self,
        faulty: RowId,
        spare: RowId,
        layout: CellLayout,
    ) -> Result<(), DramError> {
        let faulty_type = layout.cell_type(faulty);
        let spare_type = layout.cell_type(spare);
        if faulty_type != spare_type {
            return Err(DramError::RemapTypeMismatch { faulty, faulty_type, spare, spare_type });
        }
        if self.spares_in_use.contains(&spare.0) || self.map.contains_key(&spare.0) {
            return Err(DramError::SpareInUse { spare });
        }
        if self.spares_in_use.contains(&faulty.0) {
            return Err(DramError::SpareInUse { spare: faulty });
        }
        if let Some(old) = self.map.insert(faulty.0, spare.0) {
            self.spares_in_use.remove(&old);
        }
        self.spares_in_use.insert(spare.0);
        Ok(())
    }

    /// The physical row actually backing `row` (swap semantics: the spare
    /// resolves back to the faulty row's storage).
    #[inline]
    pub fn resolve(&self, row: RowId) -> RowId {
        // Almost every module has no repairs at all; make that case free
        // (it sits under every data access the simulator performs).
        if self.map.is_empty() {
            return row;
        }
        if let Some(spare) = self.map.get(&row.0) {
            return RowId(*spare);
        }
        // Reverse direction of a swap.
        if self.spares_in_use.contains(&row.0) {
            if let Some((faulty, _)) = self.map.iter().find(|(_, s)| **s == row.0) {
                return RowId(*faulty);
            }
        }
        row
    }

    /// Iterates `(faulty, spare)` pairs in ascending faulty-row order.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, RowId)> + '_ {
        self.map.iter().map(|(f, s)| (RowId(*f), RowId(*s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellType;

    #[test]
    fn resolve_identity_when_unmapped() {
        let t = RemapTable::new();
        assert_eq!(t.resolve(RowId(5)), RowId(5));
        assert!(t.is_empty());
    }

    #[test]
    fn remap_same_type_succeeds() {
        let mut t = RemapTable::new();
        let layout = CellLayout::Alternating { period_rows: 4, first: CellType::True };
        t.remap(RowId(0), RowId(2), layout).unwrap();
        assert_eq!(t.resolve(RowId(0)), RowId(2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remap_cross_type_rejected() {
        let mut t = RemapTable::new();
        let layout = CellLayout::Alternating { period_rows: 4, first: CellType::True };
        let err = t.remap(RowId(0), RowId(4), layout).unwrap_err();
        assert!(matches!(err, DramError::RemapTypeMismatch { .. }));
    }

    #[test]
    fn spare_reuse_rejected() {
        let mut t = RemapTable::new();
        let layout = CellLayout::AllTrue;
        t.remap(RowId(0), RowId(9), layout).unwrap();
        let err = t.remap(RowId(1), RowId(9), layout).unwrap_err();
        assert!(matches!(err, DramError::SpareInUse { spare: RowId(9) }));
    }

    #[test]
    fn re_remapping_frees_old_spare() {
        let mut t = RemapTable::new();
        let layout = CellLayout::AllTrue;
        t.remap(RowId(0), RowId(9), layout).unwrap();
        t.remap(RowId(0), RowId(10), layout).unwrap();
        // Row 9 is free again.
        t.remap(RowId(1), RowId(9), layout).unwrap();
        assert_eq!(t.resolve(RowId(0)), RowId(10));
        assert_eq!(t.resolve(RowId(1)), RowId(9));
    }

    #[test]
    fn iter_in_order() {
        let mut t = RemapTable::new();
        let layout = CellLayout::AllTrue;
        t.remap(RowId(3), RowId(30), layout).unwrap();
        t.remap(RowId(1), RowId(10), layout).unwrap();
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs, vec![(RowId(1), RowId(10)), (RowId(3), RowId(30))]);
    }
}
