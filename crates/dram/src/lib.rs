//! Bit-accurate DRAM module simulator for studying RowHammer defenses.
//!
//! This crate is the hardware substrate of the `monotonic-cta` workspace. It
//! models a DRAM module at the level of detail needed to reproduce the ASPLOS
//! 2019 paper *Protecting Page Tables from RowHammer Attacks using Monotonic
//! Pointers in DRAM True-Cells*:
//!
//! - a bank/row/column **geometry** with physical-address mapping
//!   ([`DramGeometry`], [`AddressMapping`]);
//! - **true-cell / anti-cell layouts** ([`CellLayout`], [`CellType`]) —
//!   true-cells leak `1 → 0`, anti-cells leak `0 → 1`;
//! - a seeded, deterministic **RowHammer disturbance model**
//!   ([`DisturbanceParams`], [`FlipDirection`]) parameterized by the flip
//!   statistics measured by Kim et al. (ISCA 2014): a fraction `Pf` of cells
//!   is vulnerable, and of those a small `reverse_rate` flip against the
//!   leakage direction;
//! - **refresh** (64 ms default interval), **retention decay**, and a
//!   power-off remanence model for coldboot experiments;
//! - DRAM-manufacturer style **row remapping** that preserves cell type;
//! - a system-level **cell-type profiler** that identifies true/anti regions
//!   exactly the way the paper describes (write `1`s, disable refresh, wait
//!   past retention, read back).
//!
//! # Example
//!
//! ```
//! use cta_dram::{CellType, DramConfig, DramModule, RowId};
//!
//! # fn main() -> Result<(), cta_dram::DramError> {
//! let mut dram = DramModule::new(DramConfig::small_test());
//! // Store a pointer-like value in row 0 (a true-cell row by default).
//! dram.write_u64(0x40, 0x0110_0000)?;
//! assert_eq!(dram.read_u64(0x40)?, 0x0110_0000);
//! assert_eq!(dram.cell_type_of_addr(0x40)?, CellType::True);
//!
//! // Double-sided hammering of row 1 disturbs rows 0 and 2; any flips in
//! // row 0 can only clear bits, never set them.
//! dram.hammer_double_sided(RowId(1))?;
//! let after = dram.read_u64(0x40)?;
//! assert_eq!(after & !0x0110_0000, 0, "true-cell flips are monotonic");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitplane;
mod bounded;
mod cells;
mod config;
pub mod defense;
mod ecc;
mod error;
mod geometry;
mod journal;
mod module;
mod profiler;
mod remap;
mod retention;
mod rng;
mod stats;
mod store;
mod vuln;

pub use cells::{CellLayout, CellRegion, CellType, CellTypeMap};
pub use config::{DisturbanceParams, DramConfig, FlipEngine, MapGen, RetentionParams};
pub use defense::{
    ActivationCtx, AnvilSamplerDefense, AnvilSamplerParams, BlockHammerDefense, BlockHammerParams,
    DefenseSnapshot, DefenseStats, ObserverDefense, RowDefense, SoftTrrDefense, SoftTrrParams,
    Verdict,
};
pub use ecc::{EccRegion, EccResult, EccScrubStats, Secded};
pub use error::DramError;
pub use geometry::{AddressMapping, BankCoord, DramGeometry, RowId};
pub use module::DramModule;
pub use profiler::{
    profile_cell_types, profile_retention, CellTypeProfile, ProfilerConfig, RetentionCanary,
    RetentionProfile,
};
pub use remap::RemapTable;
pub use stats::{DramStats, FlipEvent, FlipLog};
pub use store::{AnyRowStore, CowStore, DenseStore, RowMut, RowStore, SparseStore, StoreBackend};
pub use vuln::{FlipDirection, VulnerabilityModel, VulnerableBit};

/// Number of bits in a DRAM byte; used pervasively when converting between
/// byte offsets and cell (bit) indices.
pub const BITS_PER_BYTE: usize = 8;
