use std::cell::Cell;

use crate::bitplane::{load_word, store_word};
use crate::cells::{CellLayout, CellType, CellTypeMap};
use crate::config::{DramConfig, FlipEngine};
use crate::defense::{ActivationCtx, DefenseSnapshot, DefenseStats, RowDefense, Verdict};
use crate::error::DramError;
use crate::geometry::{DramGeometry, RowId};
use crate::journal::DramJournal;
use crate::remap::RemapTable;
use crate::retention::{get_bit, set_bit, RetentionModel};
use crate::stats::{DramStats, FlipEvent, FlipLog};
use crate::store::{AnyRowStore, RowStore, StoreBackend};
use crate::vuln::{VulnerabilityModel, VulnerableBit};

/// Column-access latency charged per read/write operation, nanoseconds.
const COL_ACCESS_NS: u64 = 10;

/// Sentinel row index: no row (valid row indices are `< total_rows`, and a
/// module with `u64::MAX` rows cannot exist — its capacity would overflow).
const ROW_NONE: u64 = u64::MAX;

/// Sentinel activation-counter entry: never matches a real window key
/// (generations count up from zero).
const NO_ACTIVATIONS: (u64, u64, u64) = (u64::MAX, u64::MAX, 0);

/// One row-aligned span of a physical byte range: `take` bytes at column
/// `col` of `row`, covering `[off, off + take)` of the caller's buffer.
#[derive(Debug, Clone, Copy)]
struct Span {
    row: RowId,
    col: usize,
    off: usize,
    take: usize,
}

/// Iterator over the row-aligned spans of `[addr, addr + len)` — the one
/// row-walking loop shared by `read_into`, `write`, `peek_into`, and
/// `fill`. Rows occupy contiguous address ranges under every
/// [`crate::geometry::AddressMapping`] (interleaving permutes *bank*
/// coordinates, not addresses), so this is pure arithmetic over a
/// pre-checked range and cannot fail.
struct Spans {
    row_bytes: u64,
    addr: u64,
    len: usize,
    off: usize,
}

impl Spans {
    fn new(row_bytes: u64, addr: u64, len: usize) -> Self {
        Spans { row_bytes, addr, len, off: 0 }
    }
}

impl Iterator for Spans {
    type Item = Span;

    fn next(&mut self) -> Option<Span> {
        if self.off >= self.len {
            return None;
        }
        let a = self.addr + self.off as u64;
        let col = (a % self.row_bytes) as usize;
        let take = (self.row_bytes as usize - col).min(self.len - self.off);
        let span = Span { row: RowId(a / self.row_bytes), col, off: self.off, take };
        self.off += take;
        Some(span)
    }
}

/// A simulated DRAM module.
///
/// The module owns its cell contents (sparsely materialized by row), its
/// fixed vulnerability and retention maps, its refresh machinery, and a
/// simulated clock. All timing-relevant operations advance the clock:
/// activations cost `tRC`, column accesses a fixed latency.
///
/// # RowHammer model
///
/// [`activate_row`](Self::activate_row) models a *forced* activation (the
/// attacker defeats the row buffer with cache flushes or row conflicts).
/// When an aggressor row accumulates `hammer_threshold` activations within
/// one refresh window, its bank-adjacent neighbor rows are disturbed: every
/// vulnerable cell whose stored value matches its flip direction's source
/// value flips. True-cell rows flip almost exclusively `1→0`, anti-cell rows
/// `0→1` (see [`VulnerabilityModel`]).
///
/// # Refresh and retention
///
/// While auto-refresh runs (64 ms windows), cells never decay — retention
/// times are orders of magnitude longer than the refresh interval. Disabling
/// refresh (as the cell-type profiler does) lets cells decay toward their
/// polarity's discharged value on their individual retention schedules.
/// Ordinary accesses recharge the accessed row.
pub struct DramModule {
    config: DramConfig,
    /// Row storage ([`StoreBackend`]-selected), indexed by backing-row id;
    /// unmaterialized rows have never been written (all cells at logic `0`).
    store: AnyRowStore,
    vuln: VulnerabilityModel,
    retention: RetentionModel,
    remap: RemapTable,
    /// One-entry cache of the last remap resolution `(logical, backing)`,
    /// invalidated whenever the remap table changes. `Cell` because the
    /// read-only oracles (`peek`) warm it too.
    row_cache: Cell<(u64, u64)>,
    clock_ns: u64,
    /// End of the current refresh window (`u64::MAX` while refresh is off):
    /// the first instant at which `set_clock` must account completed
    /// windows. Caching it keeps the per-access clock bump division-free —
    /// two `u64` divisions per read/write otherwise dominate the chunked
    /// data path.
    window_end_ns: u64,
    /// Some(t) when auto-refresh was disabled at time t.
    refresh_disabled_at: Option<u64>,
    /// Incremented on every refresh enable/disable toggle and power cycle so
    /// stale activation windows can be detected lazily.
    generation: u64,
    /// Activation counts per backing row: `(generation, window_id, count)`,
    /// [`NO_ACTIVATIONS`] when the row was never activated.
    activations: Vec<(u64, u64, u64)>,
    /// Open row per bank ([`ROW_NONE`] = closed) for row-buffer-hit modeling
    /// of ordinary accesses.
    open_rows: Vec<u64>,
    stats: DramStats,
    /// Installed software defense consulted on every activation batch;
    /// `None` takes the exact pre-hook code path.
    defense: Option<Box<dyn RowDefense>>,
    /// Intervention accounting for the installed defense, separate from
    /// [`DramStats`] so undefended telemetry is unchanged.
    defense_stats: DefenseStats,
    /// Active undo journal, if a trial is running in place on this module
    /// (see [`crate::journal`]). `None` on the hot path costs one branch.
    journal: Option<Box<DramJournal>>,
}

impl std::fmt::Debug for DramModule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DramModule")
            .field("capacity", &self.config.geometry.capacity_bytes())
            .field("backend", &self.store.backend())
            .field("clock_ns", &self.clock_ns)
            .field("materialized_rows", &self.store.materialized_count())
            .field("refresh_enabled", &self.refresh_disabled_at.is_none())
            .field("defense", &self.defense.as_ref().map(|d| d.name()))
            .field("stats", &format_args!("{}", self.stats))
            .finish()
    }
}

impl DramModule {
    /// Creates a module from its configuration. All cells start at logic `0`.
    pub fn new(config: DramConfig) -> Self {
        let vuln = VulnerabilityModel::with_modes(
            &config.geometry,
            config.layout,
            config.disturbance,
            config.seed,
            config.map_gen,
            config.flip_engine,
        );
        let retention =
            RetentionModel::new(config.retention, config.geometry.bits_per_row(), config.seed);
        let total_rows = config.geometry.total_rows() as usize;
        let banks = config.geometry.banks() as usize;
        let row_bytes = config.geometry.row_bytes() as usize;
        DramModule {
            vuln,
            retention,
            store: AnyRowStore::new(config.backend, total_rows, row_bytes),
            remap: RemapTable::new(),
            row_cache: Cell::new((ROW_NONE, ROW_NONE)),
            clock_ns: 0,
            window_end_ns: config.refresh_interval_ns,
            refresh_disabled_at: None,
            generation: 0,
            activations: vec![NO_ACTIVATIONS; total_rows],
            open_rows: vec![ROW_NONE; banks],
            stats: DramStats::default(),
            defense: None,
            defense_stats: DefenseStats::default(),
            journal: None,
            config,
        }
    }

    /// Forks the module: an independent copy sharing no observable state
    /// with the original. With [`StoreBackend::Cow`] the row contents are
    /// shared copy-on-write, so the fork costs O(materialized rows)
    /// reference bumps and each side later pays only for rows it changes;
    /// the other backends deep-copy. Behavior after the fork is identical
    /// for all backends.
    pub fn fork(&self) -> DramModule {
        assert!(self.journal.is_none(), "cannot fork a module with an active journal");
        DramModule {
            config: self.config.clone(),
            store: self.store.clone(),
            vuln: self.vuln.clone(),
            retention: self.retention.clone(),
            remap: self.remap.clone(),
            row_cache: self.row_cache.clone(),
            clock_ns: self.clock_ns,
            window_end_ns: self.window_end_ns,
            refresh_disabled_at: self.refresh_disabled_at,
            generation: self.generation,
            activations: self.activations.clone(),
            open_rows: self.open_rows.clone(),
            stats: self.stats.clone(),
            defense: self.defense.clone(),
            defense_stats: self.defense_stats.clone(),
            journal: None,
        }
    }

    // ------------------------------------------------------------------
    // Undo journal
    // ------------------------------------------------------------------

    /// Starts an undo journal: snapshots the module's metadata planes
    /// (model caches, remap, clock/window state, activation counters,
    /// stats including the flip log, defense) and begins capturing row
    /// pre-images on first touch. Until [`Self::journal_rollback`], the
    /// module may be mutated freely in place; rollback restores it
    /// byte-identically. See the `journal` module for the cost model.
    ///
    /// # Panics
    ///
    /// Panics if a journal is already active (journals do not nest).
    pub fn journal_begin(&mut self) {
        assert!(self.journal.is_none(), "DRAM journal already active");
        self.journal = Some(Box::new(DramJournal {
            rows: std::collections::HashMap::new(),
            vuln: self.vuln.clone(),
            retention: self.retention.clone(),
            remap: self.remap.clone(),
            row_cache: self.row_cache.get(),
            clock_ns: self.clock_ns,
            window_end_ns: self.window_end_ns,
            refresh_disabled_at: self.refresh_disabled_at,
            generation: self.generation,
            activations: self.activations.clone(),
            open_rows: self.open_rows.clone(),
            stats: self.stats.clone(),
            defense: self.defense.clone(),
            defense_stats: self.defense_stats.clone(),
        }));
    }

    /// Rolls the module back to its [`Self::journal_begin`] state: every
    /// captured row pre-image is restored (rows that were unmaterialized
    /// are unmaterialized again), and all snapshotted metadata planes are
    /// reinstated. O(touched rows) plus the metadata restore.
    ///
    /// # Panics
    ///
    /// Panics if no journal is active.
    pub fn journal_rollback(&mut self) {
        let j = *self.journal.take().expect("journal_rollback without journal_begin");
        for (row, pre) in j.rows {
            match pre {
                Some((bytes, charge)) => {
                    let r = self.store.materialize(row, charge);
                    r.bytes.copy_from_slice(&bytes);
                    *r.last_charge_ns = charge;
                }
                None => self.store.unmaterialize(row),
            }
        }
        self.vuln = j.vuln;
        self.retention = j.retention;
        self.remap = j.remap;
        self.row_cache.set(j.row_cache);
        self.clock_ns = j.clock_ns;
        self.window_end_ns = j.window_end_ns;
        self.refresh_disabled_at = j.refresh_disabled_at;
        self.generation = j.generation;
        self.activations = j.activations;
        self.open_rows = j.open_rows;
        self.stats = j.stats;
        self.defense = j.defense;
        self.defense_stats = j.defense_stats;
    }

    /// Whether an undo journal is currently active.
    pub fn journal_active(&self) -> bool {
        self.journal.is_some()
    }

    /// Distinct backing rows captured by the active journal (`0` without
    /// one) — the dirty-row footprint a rollback will restore.
    pub fn journal_dirty_rows(&self) -> usize {
        self.journal.as_ref().map_or(0, |j| j.dirty_rows())
    }

    /// Captures `backing`'s pre-image if a journal is active. Must run
    /// *before* any mutation of the row's bytes or charge timestamp.
    #[inline]
    fn journal_capture(&mut self, backing: RowId) {
        if let Some(j) = self.journal.as_deref_mut() {
            j.capture_row(backing.0, &self.store);
        }
    }

    /// The row-store backend this module runs on.
    pub fn store_backend(&self) -> StoreBackend {
        self.store.backend()
    }

    /// Number of rows currently materialized (identical across backends
    /// for the same operation history).
    pub fn rows_materialized(&self) -> usize {
        self.store.materialized_count()
    }

    /// Number of materialized rows still shared copy-on-write with live
    /// forks; `0` for non-Cow backends.
    pub fn rows_shared_with_forks(&self) -> usize {
        self.store.shared_rows()
    }

    /// The module's configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// The module's geometry.
    pub fn geometry(&self) -> &DramGeometry {
        &self.config.geometry
    }

    /// The module's cell layout.
    pub fn layout(&self) -> CellLayout {
        self.config.layout
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.config.geometry.capacity_bytes()
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// The disturbance/decay engine this module runs on.
    pub fn flip_engine(&self) -> FlipEngine {
        self.config.flip_engine
    }

    /// Rebounds the per-row model caches (vulnerability maps, compiled
    /// bitplanes, long-retention cells, expired-cell masks) to `rows`
    /// entries each. Purely a memory/performance knob: evicted rows are
    /// regenerated on demand from the module seed, so simulated behavior
    /// is unaffected.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero.
    pub fn set_model_cache_capacity(&mut self, rows: usize) {
        self.vuln.set_cache_capacity(rows);
        self.retention.set_cache_capacity(rows);
        self.sync_model_stats();
    }

    /// Byte-budget variant of [`Self::set_model_cache_capacity`]: bounds
    /// every per-row model cache by retained payload bytes instead of (in
    /// addition to) entry count, evicting oldest-first while over budget.
    /// `None` clears the budget. Like the row bound this is purely a
    /// memory/performance knob — evicted entries are regenerated from the
    /// module seed on demand.
    pub fn set_model_cache_bytes(&mut self, budget: Option<usize>) {
        self.vuln.set_cache_bytes(budget);
        self.retention.set_cache_bytes(budget);
        self.sync_model_stats();
    }

    /// Rows currently retained in the largest per-row model cache — what
    /// the O(capacity) memory-bound test watches during a templating sweep.
    pub fn model_cache_rows(&self) -> usize {
        self.vuln.cached_rows().max(self.retention.cached_rows())
    }

    /// Payload bytes currently retained across all per-row model caches,
    /// engine-local acceleration structures (compiled planes, expired
    /// masks, the sorted retention index) included. The telemetry gauges
    /// `vuln_cache_bytes`/`retention_cache_bytes` report only the
    /// engine-invariant subset (bit maps and long-cell lists).
    pub fn model_cache_bytes(&self) -> usize {
        self.vuln.cache_bytes() + self.retention.cache_bytes()
    }

    /// Clears the per-flip event log, keeping counters.
    pub fn clear_flip_log(&mut self) {
        self.stats.clear_flip_log();
    }

    /// Takes the retained flip log (oldest first) together with the exact
    /// number of events the bounded ring evicted, leaving the log empty and
    /// resetting its drop counter. The returned transcript is complete
    /// **iff** [`FlipLog::dropped`] is zero; consumers that require a
    /// faithful transcript (record/replay) must check
    /// [`FlipLog::is_complete`] instead of assuming it.
    pub fn take_flip_log(&mut self) -> FlipLog {
        let (events, dropped) = self.stats.flip_log.drain_to_vec();
        FlipLog { events, dropped }
    }

    /// Reconfigures how many flip events the bounded log retains. Zero
    /// disables event retention entirely (counters still accumulate);
    /// shrinking evicts the oldest retained events.
    pub fn set_flip_log_capacity(&mut self, capacity: usize) {
        self.stats.flip_log.set_capacity(capacity);
    }

    /// Whether auto-refresh is currently running.
    pub fn refresh_enabled(&self) -> bool {
        self.refresh_disabled_at.is_none()
    }

    /// Ground-truth cell type of a (logical) row.
    ///
    /// Remapping preserves polarity, so the logical and backing rows agree.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfBounds`] for rows outside the module.
    pub fn cell_type_of_row(&self, row: RowId) -> Result<CellType, DramError> {
        if row.0 >= self.config.geometry.total_rows() {
            return Err(DramError::RowOutOfBounds { row, rows: self.config.geometry.total_rows() });
        }
        Ok(self.config.layout.cell_type(self.resolve_row(row)))
    }

    /// Ground-truth cell type of the row containing a physical address.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfBounds`] for addresses outside the module.
    pub fn cell_type_of_addr(&self, addr: u64) -> Result<CellType, DramError> {
        let row = self.config.geometry.row_of_addr(addr)?;
        self.cell_type_of_row(row)
    }

    /// Ground-truth cell-type map (what a perfect profiler would recover).
    pub fn ground_truth_cell_map(&self) -> CellTypeMap {
        CellTypeMap::from_layout(&self.config.geometry, self.config.layout)
    }

    /// Remaps `faulty` onto `spare` (manufacturer repair).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfBounds`] if either row is outside the
    /// module; see [`RemapTable::remap`] for the remaining conditions.
    pub fn remap_row(&mut self, faulty: RowId, spare: RowId) -> Result<(), DramError> {
        for row in [faulty, spare] {
            if row.0 >= self.config.geometry.total_rows() {
                return Err(DramError::RowOutOfBounds {
                    row,
                    rows: self.config.geometry.total_rows(),
                });
            }
        }
        self.remap.remap(faulty, spare, self.config.layout)?;
        // Either side of the new swap may be the cached resolution.
        self.row_cache.set((ROW_NONE, ROW_NONE));
        Ok(())
    }

    /// The active remap table.
    pub fn remap_table(&self) -> &RemapTable {
        &self.remap
    }

    // ------------------------------------------------------------------
    // Data access
    // ------------------------------------------------------------------

    /// Reads `buf.len()` bytes starting at physical address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfBounds`] if the range exceeds capacity.
    pub fn read_into(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), DramError> {
        self.check_range(addr, buf.len())?;
        self.stats.reads += 1;
        self.set_clock(self.clock_ns + COL_ACCESS_NS);
        for span in Spans::new(self.config.geometry.row_bytes(), addr, buf.len()) {
            let backing = self.resolve_row(span.row);
            self.touch_row(backing);
            let dst = &mut buf[span.off..span.off + span.take];
            match self.store.bytes(backing.0) {
                Some(bytes) => dst.copy_from_slice(&bytes[span.col..span.col + span.take]),
                None => dst.fill(0),
            }
        }
        Ok(())
    }

    /// Reads `len` bytes starting at `addr` into a fresh vector.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfBounds`] if the range exceeds capacity.
    pub fn read(&mut self, addr: u64, len: usize) -> Result<Vec<u8>, DramError> {
        let mut buf = vec![0u8; len];
        self.read_into(addr, &mut buf)?;
        Ok(buf)
    }

    /// Writes `data` starting at physical address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfBounds`] if the range exceeds capacity.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), DramError> {
        self.check_range(addr, data.len())?;
        self.stats.writes += 1;
        self.set_clock(self.clock_ns + COL_ACCESS_NS);
        for span in Spans::new(self.config.geometry.row_bytes(), addr, data.len()) {
            let backing = self.resolve_row(span.row);
            self.touch_row(backing);
            let row = self.store.materialize(backing.0, self.clock_ns);
            row.bytes[span.col..span.col + span.take]
                .copy_from_slice(&data[span.off..span.off + span.take]);
        }
        Ok(())
    }

    /// Reads a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfBounds`] if the range exceeds capacity.
    pub fn read_u64(&mut self, addr: u64) -> Result<u64, DramError> {
        // Single-span fast path: all 8 bytes in one row (always, for rows
        // of at least 8 bytes and an aligned or merely non-straddling
        // address). Skips the span iterator and the staging buffer.
        let row_bytes = self.config.geometry.row_bytes();
        let col = (addr % row_bytes) as usize;
        if row_bytes - col as u64 >= 8 {
            self.check_range(addr, 8)?;
            self.stats.reads += 1;
            self.set_clock(self.clock_ns + COL_ACCESS_NS);
            let backing = self.resolve_row(RowId(addr / row_bytes));
            self.touch_row(backing);
            return Ok(match self.store.bytes(backing.0) {
                Some(bytes) => {
                    u64::from_le_bytes(bytes[col..col + 8].try_into().expect("8-byte slice"))
                }
                None => 0,
            });
        }
        let mut buf = [0u8; 8];
        self.read_into(addr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfBounds`] if the range exceeds capacity.
    pub fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), DramError> {
        // Single-span fast path mirroring `read_u64`.
        let row_bytes = self.config.geometry.row_bytes();
        let col = (addr % row_bytes) as usize;
        if row_bytes - col as u64 >= 8 {
            self.check_range(addr, 8)?;
            self.stats.writes += 1;
            self.set_clock(self.clock_ns + COL_ACCESS_NS);
            let backing = self.resolve_row(RowId(addr / row_bytes));
            self.touch_row(backing);
            let row = self.store.materialize(backing.0, self.clock_ns);
            row.bytes[col..col + 8].copy_from_slice(&value.to_le_bytes());
            return Ok(());
        }
        self.write(addr, &value.to_le_bytes())
    }

    /// Fills `[addr, addr+len)` with `byte` (page zeroing and test patterns).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfBounds`] if the range exceeds capacity.
    pub fn fill(&mut self, addr: u64, len: usize, byte: u8) -> Result<(), DramError> {
        self.check_range(addr, len)?;
        // One write's worth of accounting per row span — the historical
        // delegate-to-`write` semantics — without staging a chunk buffer.
        for span in Spans::new(self.config.geometry.row_bytes(), addr, len) {
            self.stats.writes += 1;
            self.set_clock(self.clock_ns + COL_ACCESS_NS);
            let backing = self.resolve_row(span.row);
            self.touch_row(backing);
            let row = self.store.materialize(backing.0, self.clock_ns);
            row.bytes[span.col..span.col + span.take].fill(byte);
        }
        Ok(())
    }

    /// Debug oracle: reads into `buf` without touching the clock, row
    /// buffer, decay, or statistics. Not available to simulated software.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfBounds`] if the range exceeds capacity.
    pub fn peek_into(&self, addr: u64, buf: &mut [u8]) -> Result<(), DramError> {
        self.check_range(addr, buf.len())?;
        for span in Spans::new(self.config.geometry.row_bytes(), addr, buf.len()) {
            let backing = self.resolve_row(span.row);
            let dst = &mut buf[span.off..span.off + span.take];
            match self.store.bytes(backing.0) {
                Some(bytes) => dst.copy_from_slice(&bytes[span.col..span.col + span.take]),
                None => dst.fill(0),
            }
        }
        Ok(())
    }

    /// Debug oracle: allocating variant of [`peek_into`](Self::peek_into).
    pub fn peek(&self, addr: u64, len: usize) -> Result<Vec<u8>, DramError> {
        let mut buf = vec![0u8; len];
        self.peek_into(addr, &mut buf)?;
        Ok(buf)
    }

    /// Debug oracle: little-endian `u64` variant of [`peek`](Self::peek).
    /// Allocation-free — this sits on the page-walk inspection hot path.
    pub fn peek_u64(&self, addr: u64) -> Result<u64, DramError> {
        let row_bytes = self.config.geometry.row_bytes();
        let col = (addr % row_bytes) as usize;
        if row_bytes - col as u64 >= 8 {
            self.check_range(addr, 8)?;
            let backing = self.resolve_row(RowId(addr / row_bytes));
            return Ok(match self.store.bytes(backing.0) {
                Some(bytes) => {
                    u64::from_le_bytes(bytes[col..col + 8].try_into().expect("8-byte slice"))
                }
                None => 0,
            });
        }
        let mut buf = [0u8; 8];
        self.peek_into(addr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    // ------------------------------------------------------------------
    // Time, refresh, power
    // ------------------------------------------------------------------

    /// Advances the simulated clock by `ns`.
    pub fn advance(&mut self, ns: u64) {
        self.set_clock(self.clock_ns + ns);
    }

    /// Disables auto-refresh (for profiling). Idempotent.
    pub fn disable_refresh(&mut self) {
        if self.refresh_disabled_at.is_none() {
            self.refresh_disabled_at = Some(self.clock_ns);
            self.generation += 1;
            self.reset_window_end();
        }
    }

    /// Re-enables auto-refresh, locking in any decay that occurred while it
    /// was off. Idempotent.
    pub fn enable_refresh(&mut self) {
        if self.refresh_disabled_at.is_some() {
            self.decay_all_materialized();
            self.refresh_disabled_at = None;
            self.generation += 1;
            self.reset_window_end();
        }
    }

    /// Simulates a power-off of `duration_ns`: cells decay on their retention
    /// schedules regardless of refresh state (DRAM remanence, section 8).
    pub fn power_off(&mut self, duration_ns: u64) {
        self.power_off_at_temperature(duration_ns, 1.0);
    }

    /// Power-off with a temperature model: cooling the module multiplies
    /// every cell's effective retention by `retention_factor` (coldboot
    /// attackers chill DRAM precisely to stretch remanence; Halderman et
    /// al. report minutes at −50 °C). `1.0` is ambient; larger is colder.
    ///
    /// # Panics
    ///
    /// Panics unless `retention_factor` is finite and ≥ 1.0.
    pub fn power_off_at_temperature(&mut self, duration_ns: u64, retention_factor: f64) {
        assert!(
            retention_factor.is_finite() && retention_factor >= 1.0,
            "cooling can only extend retention"
        );
        // While power is off every row decays relative to its last charge;
        // cooling divides the *effective* elapsed time.
        let effective = (duration_ns as f64 / retention_factor) as u64;
        self.clock_ns += duration_ns;
        let decay_until = self.clock_ns.saturating_sub(duration_ns - effective.min(duration_ns));
        for idx in self.store.materialized_rows() {
            self.apply_decay_to(RowId(idx), decay_until);
        }
        // After power-up, refresh resumes: whatever survived is recharged.
        self.store.recharge_all(self.clock_ns);
        self.open_rows.fill(ROW_NONE);
        self.activations.fill(NO_ACTIVATIONS);
        self.generation += 1;
        self.refresh_disabled_at = None;
        self.reset_window_end();
    }

    // ------------------------------------------------------------------
    // Hammering
    // ------------------------------------------------------------------

    /// Forces one activation of `row` (modeling an attacker defeating the
    /// row buffer), advancing the clock by `tRC` and disturbing neighbors if
    /// the hammer threshold is crossed within the current refresh window.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfBounds`] for rows outside the module.
    pub fn activate_row(&mut self, row: RowId) -> Result<(), DramError> {
        self.hammer(row, 1)
    }

    /// Performs `count` forced activations of `row`.
    ///
    /// Activations are accounted against refresh windows: if the count spans
    /// a window boundary (refresh enabled), the per-window activation counter
    /// resets at the boundary, exactly as a real refresh restores victim
    /// charge. Neighbor rows are disturbed each time the within-window count
    /// crosses the configured threshold.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfBounds`] for rows outside the module.
    pub fn hammer(&mut self, row: RowId, count: u64) -> Result<(), DramError> {
        if row.0 >= self.config.geometry.total_rows() {
            return Err(DramError::RowOutOfBounds { row, rows: self.config.geometry.total_rows() });
        }
        let backing = self.resolve_row(row);
        let trc = self.config.disturbance.trc_ns.max(1);
        let mut remaining = count;
        while remaining > 0 {
            let fit_by_time = ((self.window_end_ns.saturating_sub(self.clock_ns)) / trc).max(1);
            let fit = remaining.min(fit_by_time);
            self.stats.activations += fit;
            self.set_clock(self.clock_ns + fit * trc);
            self.record_activation(backing, fit);
            remaining -= fit;
        }
        Ok(())
    }

    /// Hammers `row` exactly to the disturbance threshold within the current
    /// window (the canonical "one hammer burst" of the paper's attack-time
    /// model, which budgets one refresh interval per hammered row).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfBounds`] for rows outside the module.
    pub fn hammer_to_threshold(&mut self, row: RowId) -> Result<(), DramError> {
        self.hammer(row, self.config.disturbance.hammer_threshold)
    }

    /// Double-sided hammering of `victim`: both sandwich aggressors are
    /// hammered to threshold, disturbing `victim` (and the aggressors' outer
    /// neighbors). Falls back to single-sided at bank edges.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfBounds`] for rows outside the module.
    pub fn hammer_double_sided(&mut self, victim: RowId) -> Result<(), DramError> {
        let backing = self.resolve_row(victim);
        if backing.0 >= self.config.geometry.total_rows() {
            return Err(DramError::RowOutOfBounds {
                row: victim,
                rows: self.config.geometry.total_rows(),
            });
        }
        let neighbors = self.config.geometry.adjacent_rows(backing)?;
        for aggressor in neighbors {
            self.hammer(aggressor, self.config.disturbance.hammer_threshold)?;
        }
        Ok(())
    }

    /// Activations of `row` within the current refresh window — the signal
    /// a hardware-performance-counter defense like ANVIL watches.
    ///
    /// Rows outside the module were never activated: `0`.
    pub fn window_activations(&self, row: RowId) -> u64 {
        if row.0 >= self.config.geometry.total_rows() {
            return 0;
        }
        let backing = self.resolve_row(row);
        let (gen, win, count) = self.activations[backing.0 as usize];
        if (gen, win) == self.current_window_key() {
            count
        } else {
            0
        }
    }

    /// The `n` most-activated rows of the current refresh window, hottest
    /// first.
    pub fn hottest_rows(&self, n: usize) -> Vec<(RowId, u64)> {
        let key = self.current_window_key();
        let mut rows: Vec<(RowId, u64)> = self
            .activations
            .iter()
            .enumerate()
            .filter(|(_, (gen, win, _))| (*gen, *win) == key)
            .map(|(row, (_, _, count))| (RowId(row as u64), *count))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }

    /// Targeted mitigation: refresh the neighbors of a suspected aggressor
    /// (what ANVIL does on detection) and restart its activation window, so
    /// accumulated hammer progress is lost.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfBounds`] for rows outside the module.
    pub fn refresh_neighbors_of(&mut self, row: RowId) -> Result<(), DramError> {
        if row.0 >= self.config.geometry.total_rows() {
            return Err(DramError::RowOutOfBounds { row, rows: self.config.geometry.total_rows() });
        }
        let backing = self.resolve_row(row);
        for victim in self.config.geometry.adjacent_rows(backing)? {
            self.journal_capture(victim);
            self.store.touch(victim.0, self.clock_ns);
        }
        self.activations[backing.0 as usize] = NO_ACTIVATIONS;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Software defenses
    // ------------------------------------------------------------------

    /// Installs a software defense on the activation path, replacing any
    /// previous one. See [`crate::defense`] for the hook contract.
    pub fn install_defense(&mut self, defense: Box<dyn RowDefense>) {
        self.defense = Some(defense);
        self.defense_stats = DefenseStats::default();
    }

    /// Removes and returns the installed defense, if any. The accumulated
    /// [`DefenseStats`] are kept until the next install.
    pub fn uninstall_defense(&mut self) -> Option<Box<dyn RowDefense>> {
        self.defense.take()
    }

    /// The installed defense, if any.
    pub fn defense(&self) -> Option<&dyn RowDefense> {
        self.defense.as_deref()
    }

    /// Module-side accounting of defense interventions.
    pub fn defense_stats(&self) -> &DefenseStats {
        &self.defense_stats
    }

    /// Telemetry snapshot of the installed defense (`None` when no defense
    /// is installed, so undefended snapshots carry no `defense` group).
    pub fn defense_snapshot(&self) -> Option<DefenseSnapshot> {
        self.defense.as_ref().map(|d| DefenseSnapshot {
            name: d.name(),
            stats: self.defense_stats.clone(),
            counters: d.counters(),
        })
    }

    /// Marks the row containing (logical) `row` as protected for the
    /// installed defense — what the kernel calls for every page-table
    /// frame it allocates. A no-op without a defense.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfBounds`] for rows outside the module.
    pub fn defense_protect_row(&mut self, row: RowId) -> Result<(), DramError> {
        if row.0 >= self.config.geometry.total_rows() {
            return Err(DramError::RowOutOfBounds { row, rows: self.config.geometry.total_rows() });
        }
        let backing = self.resolve_row(row);
        if let Some(defense) = self.defense.as_mut() {
            defense.on_protect_row(backing);
        }
        Ok(())
    }

    /// The fixed vulnerable-bit map of `row` — an experimenter oracle, also
    /// what a templating attacker reconstructs by hammering memory they own.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfBounds`] for rows outside the module.
    pub fn vulnerable_bits(&mut self, row: RowId) -> Result<Vec<VulnerableBit>, DramError> {
        if row.0 >= self.config.geometry.total_rows() {
            return Err(DramError::RowOutOfBounds { row, rows: self.config.geometry.total_rows() });
        }
        let backing = self.resolve_row(row);
        let bits = self.vuln.vulnerable_bits(backing).to_vec();
        self.sync_model_stats();
        Ok(bits)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn check_range(&self, addr: u64, len: usize) -> Result<(), DramError> {
        let cap = self.config.geometry.capacity_bytes();
        if addr >= cap || len as u64 > cap - addr {
            return Err(DramError::OutOfBounds { addr, len, capacity: cap });
        }
        Ok(())
    }

    fn current_window_key(&self) -> (u64, u64) {
        match self.refresh_disabled_at {
            None => (self.generation, self.clock_ns / self.config.refresh_interval_ns),
            Some(t0) => (self.generation, t0 / self.config.refresh_interval_ns),
        }
    }

    /// Resolves a logical row to its backing row through the remap table,
    /// with a one-entry cache in front: page walks and sequential accesses
    /// hit the same row repeatedly, so the common case skips the table.
    #[inline]
    fn resolve_row(&self, row: RowId) -> RowId {
        let (cached_row, cached_backing) = self.row_cache.get();
        if cached_row == row.0 {
            return RowId(cached_backing);
        }
        let backing = self.remap.resolve(row);
        self.row_cache.set((row.0, backing.0));
        backing
    }

    fn set_clock(&mut self, new: u64) {
        debug_assert!(new >= self.clock_ns);
        if new < self.window_end_ns {
            // Common case: still inside the current refresh window (or
            // refresh is off, `window_end_ns == u64::MAX`) — no completed
            // windows to account, no divisions.
            self.clock_ns = new;
            return;
        }
        let interval = self.config.refresh_interval_ns;
        self.stats.refresh_windows += new / interval - self.clock_ns / interval;
        self.clock_ns = new;
        self.window_end_ns = (new / interval + 1) * interval;
    }

    /// Recomputes [`Self::window_end_ns`] after a refresh-state change.
    fn reset_window_end(&mut self) {
        self.window_end_ns = match self.refresh_disabled_at {
            None => {
                let interval = self.config.refresh_interval_ns;
                (self.clock_ns / interval + 1) * interval
            }
            Some(_) => u64::MAX,
        };
    }

    /// Ordinary-access bookkeeping for `row` (already remap-resolved):
    /// pending decay, row-buffer hit/miss, recharge.
    fn touch_row(&mut self, backing: RowId) {
        self.journal_capture(backing);
        if self.refresh_disabled_at.is_some() {
            self.apply_decay_to(backing, self.clock_ns);
        }
        let bank =
            self.config.geometry.bank_coord(backing).expect("backing row in bounds").bank as usize;
        let miss = self.open_rows[bank] != backing.0;
        if miss {
            self.open_rows[bank] = backing.0;
            self.stats.activations += 1;
            self.set_clock(self.clock_ns + self.config.disturbance.trc_ns);
            // Ordinary activations count toward the disturbance threshold
            // too: this is what lets Algorithm 1 hammer page-table rows
            // through the MMU's own walk reads.
            self.record_activation(backing, 1);
        }
        self.store.touch(backing.0, self.clock_ns);
    }

    /// Adds `count` activations to `backing`'s within-window counter and
    /// disturbs neighbors on a threshold crossing, consulting the installed
    /// defense first. Without a defense this is exactly the pre-hook path.
    fn record_activation(&mut self, backing: RowId, count: u64) {
        if self.defense.is_some() {
            self.record_activation_defended(backing, count);
            return;
        }
        self.apply_activations(backing, count);
    }

    /// The undefended (hardware) activation accounting: count the batch,
    /// disturb neighbors on a threshold crossing.
    #[inline]
    fn apply_activations(&mut self, backing: RowId, count: u64) {
        let threshold = self.config.disturbance.hammer_threshold;
        let key = self.current_window_key();
        let (gen, win, have) = self.activations[backing.0 as usize];
        let before = if (gen, win) == key { have } else { 0 };
        let after = before + count;
        self.activations[backing.0 as usize] = (key.0, key.1, after);
        if before < threshold && after >= threshold {
            let _ = self.disturb_neighbors(backing);
        }
    }

    /// Activation accounting with a defense installed: the batch is offered
    /// to the hook, which may allow it, throttle it, or split it around
    /// targeted refreshes. Re-consulting on the remainder lets a defense
    /// break up even a single burst larger than its own threshold.
    fn record_activation_defended(&mut self, backing: RowId, count: u64) {
        self.defense_stats.activations_seen += count;
        let neighbors = self.config.geometry.adjacent_rows(backing).unwrap_or_default();
        let mut remaining = count;
        // Guards against a defense that neither permits progress nor resets
        // the aggressor's counter (which would loop forever).
        let mut stalled_rounds = 0u32;
        while remaining > 0 {
            let key = self.current_window_key();
            let (gen, win, have) = self.activations[backing.0 as usize];
            let before = if (gen, win) == key { have } else { 0 };
            let ctx = ActivationCtx {
                row: backing,
                count: remaining,
                window_activations: before,
                now_ns: self.clock_ns,
                hammer_threshold: self.config.disturbance.hammer_threshold,
                neighbors: &neighbors,
            };
            // Take the box out for the call so the defense's `&mut self`
            // cannot alias the module state it reads through `ctx`.
            let mut defense = self.defense.take().expect("defended path has a defense");
            let verdict = defense.on_activation(&ctx);
            self.defense = Some(defense);
            self.defense_stats.consultations += 1;
            match verdict {
                Verdict::Allow => {
                    self.apply_activations(backing, remaining);
                    remaining = 0;
                }
                Verdict::Throttle { permitted } => {
                    let take = permitted.min(remaining);
                    if take > 0 {
                        self.apply_activations(backing, take);
                    }
                    self.defense_stats.activations_denied += remaining - take;
                    remaining = 0;
                }
                Verdict::Refresh { permitted, targets } => {
                    let take = permitted.min(remaining);
                    if take > 0 {
                        self.apply_activations(backing, take);
                    }
                    remaining -= take;
                    for target in targets {
                        self.targeted_refresh_backing(target);
                    }
                    stalled_rounds = if take == 0 { stalled_rounds + 1 } else { 0 };
                    if stalled_rounds >= 2 {
                        // Defense bug: no forward progress two rounds in a
                        // row. Fail open rather than hang the simulation.
                        self.apply_activations(backing, remaining);
                        remaining = 0;
                    }
                }
            }
        }
    }

    /// Applies one defense-issued targeted refresh: victims of `backing`
    /// recharge at the current clock and its window counter resets —
    /// exactly what a manual [`Self::refresh_neighbors_of`] call does (no
    /// simulated time is charged on either path). Rows outside the module
    /// (a defense bug) are ignored.
    fn targeted_refresh_backing(&mut self, backing: RowId) {
        if backing.0 >= self.config.geometry.total_rows() {
            return;
        }
        if let Ok(victims) = self.config.geometry.adjacent_rows(backing) {
            for victim in victims {
                self.journal_capture(victim);
                self.store.touch(victim.0, self.clock_ns);
            }
        }
        self.activations[backing.0 as usize] = NO_ACTIVATIONS;
        self.defense_stats.targeted_refreshes += 1;
    }

    /// Applies retention decay to a materialized row up to time `now`.
    fn apply_decay_to(&mut self, backing: RowId, now: u64) {
        let Some(last_charge) = self.store.last_charge_ns(backing.0) else { return };
        self.journal_capture(backing);
        let since = match self.refresh_disabled_at {
            Some(t0) => last_charge.max(t0),
            // Power-off path calls with refresh nominally enabled; decay
            // accrues from the last charge directly.
            None => last_charge,
        };
        let elapsed = now.saturating_sub(since);
        if elapsed == 0 {
            return;
        }
        let cell_type = self.config.layout.cell_type(backing);
        let engine = self.config.flip_engine;
        let row = self.store.materialize(backing.0, now);
        let changed = self.retention.apply_decay(backing, cell_type, row.bytes, elapsed, engine);
        *row.last_charge_ns = now;
        self.stats.decay_flips += changed;
        self.sync_model_stats();
    }

    fn decay_all_materialized(&mut self) {
        for idx in self.store.materialized_rows() {
            self.apply_decay_to(RowId(idx), self.clock_ns);
        }
    }

    /// Disturbs the bank-adjacent neighbors of a hammered aggressor.
    fn disturb_neighbors(&mut self, aggressor: RowId) -> Result<(), DramError> {
        for victim in self.config.geometry.adjacent_rows(aggressor)? {
            self.disturb(victim);
        }
        Ok(())
    }

    /// Applies the disturbance flip model to one victim row.
    ///
    /// Both engines are observably identical — same row bytes, same flip
    /// events in the same (ascending-bit) order, same statistics — which
    /// `tests/flip_engine_differential.rs` proves over whole campaigns.
    fn disturb(&mut self, victim: RowId) {
        self.journal_capture(victim);
        let bits = self.vuln.vulnerable_bits(victim);
        if bits.is_empty() {
            self.stats.disturbances += 1;
            self.sync_model_stats();
            return;
        }
        // Disturbance acts on the decayed state if refresh is off.
        if self.refresh_disabled_at.is_some() {
            self.apply_decay_to(victim, self.clock_ns);
        }
        let clock = self.clock_ns;
        match self.config.flip_engine {
            FlipEngine::Scalar => {
                let row = self.store.materialize(victim.0, clock);
                let mut events = Vec::new();
                for vb in bits.iter() {
                    let current = get_bit(row.bytes, vb.bit);
                    if current == vb.direction.source_value() {
                        set_bit(row.bytes, vb.bit, !current);
                        events.push(FlipEvent {
                            row: victim,
                            bit: vb.bit,
                            direction: vb.direction,
                            time_ns: clock,
                        });
                    }
                }
                for e in events {
                    self.stats.record_flip(e);
                }
            }
            FlipEngine::Wordwise => {
                let planes = self.vuln.planes(victim, &bits);
                let row = self.store.materialize(victim.0, clock);
                for pw in planes.iter() {
                    let w = pw.word as usize;
                    let word = load_word(row.bytes, w);
                    // A `1→0`-vulnerable cell fires where the word holds a 1;
                    // a `0→1` cell where it holds a 0. One AND/OR pass flips
                    // every firing cell of the word at once.
                    let fire_otz = word & pw.otz;
                    let fire_zto = !word & pw.zto;
                    let fired = fire_otz | fire_zto;
                    if fired == 0 {
                        continue;
                    }
                    store_word(row.bytes, w, (word & !fire_otz) | fire_zto);
                    self.stats.flips_one_to_zero += u64::from(fire_otz.count_ones());
                    self.stats.flips_zero_to_one += u64::from(fire_zto.count_ones());
                    // Per-bit events in ascending bit order, exactly as the
                    // scalar loop logs them (vulnerable bits are sorted).
                    let base = 64 * w as u64;
                    let mut rest = fired;
                    while rest != 0 {
                        let b = rest.trailing_zeros() as u64;
                        let direction = if fire_otz >> b & 1 == 1 {
                            crate::FlipDirection::OneToZero
                        } else {
                            crate::FlipDirection::ZeroToOne
                        };
                        self.stats.flip_log.push(FlipEvent {
                            row: victim,
                            bit: base + b,
                            direction,
                            time_ns: clock,
                        });
                        rest &= rest - 1;
                    }
                }
            }
        }
        self.stats.disturbances += 1;
        self.sync_model_stats();
    }

    /// Mirrors the model-cache eviction counters and engine-invariant byte
    /// gauges into the stats snapshot.
    fn sync_model_stats(&mut self) {
        self.stats.vuln_cache_evictions = self.vuln.evictions();
        self.stats.retention_cache_evictions = self.retention.evictions();
        self.stats.vuln_cache_bytes = self.vuln.map_bytes() as u64;
        self.stats.retention_cache_bytes = self.retention.long_bytes() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DisturbanceParams;
    use crate::geometry::AddressMapping;
    use crate::vuln::FlipDirection;

    fn module() -> DramModule {
        DramModule::new(DramConfig::small_test())
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = module();
        m.write(100, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.read(100, 4).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(m.read(99, 6).unwrap(), vec![0, 1, 2, 3, 4, 0]);
    }

    #[test]
    fn u64_round_trip() {
        let mut m = module();
        m.write_u64(4096 + 8, 0xDEAD_BEEF_CAFE_F00D).unwrap();
        assert_eq!(m.read_u64(4096 + 8).unwrap(), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.peek_u64(4096 + 8).unwrap(), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn cross_row_access() {
        let mut m = module();
        let row_bytes = m.geometry().row_bytes();
        let addr = row_bytes - 2;
        m.write(addr, &[9, 8, 7, 6]).unwrap();
        assert_eq!(m.read(addr, 4).unwrap(), vec![9, 8, 7, 6]);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut m = module();
        let cap = m.capacity_bytes();
        assert!(m.read(cap, 1).is_err());
        assert!(m.write(cap - 4, &[0; 8]).is_err());
        assert!(m.read_u64(cap - 7).is_err());
    }

    #[test]
    fn fill_works_across_rows() {
        let mut m = module();
        let row_bytes = m.geometry().row_bytes();
        m.fill(row_bytes - 10, 20, 0xAA).unwrap();
        assert!(m.read(row_bytes - 10, 20).unwrap().iter().all(|b| *b == 0xAA));
        assert_eq!(m.read(row_bytes + 10, 1).unwrap(), vec![0]);
    }

    #[test]
    fn clock_advances_on_access() {
        let mut m = module();
        let t0 = m.now_ns();
        m.write(0, &[1]).unwrap();
        assert!(m.now_ns() > t0);
    }

    #[test]
    fn row_buffer_hits_do_not_activate() {
        let mut m = module();
        m.write(0, &[1]).unwrap();
        let acts = m.stats().activations;
        m.write(1, &[2]).unwrap(); // same row: hit
        assert_eq!(m.stats().activations, acts);
        m.write(m.geometry().row_bytes(), &[3]).unwrap(); // different row: miss
        assert_eq!(m.stats().activations, acts + 1);
    }

    #[test]
    fn hammer_flips_true_cell_bits_downward_only() {
        let mut m = module();
        // Rows 0..8 are true cells in small_test layout. Fill victim row 2
        // with all-ones and hammer to threshold from both sides.
        let row_bytes = m.geometry().row_bytes() as usize;
        let victim_addr = 2 * m.geometry().row_bytes();
        m.fill(victim_addr, row_bytes, 0xFF).unwrap();
        m.hammer_double_sided(RowId(2)).unwrap();
        let flips: Vec<_> =
            m.stats().flip_log.iter().filter(|e| e.row == RowId(2)).copied().collect();
        assert!(!flips.is_empty(), "pf=0.02 over 32768 bits should flip something");
        // On all-ones content, only 1→0 flips can fire.
        assert!(flips.iter().all(|e| e.direction == FlipDirection::OneToZero));
    }

    #[test]
    fn hammer_below_threshold_flips_nothing() {
        let mut m = module();
        let row_bytes = m.geometry().row_bytes() as usize;
        m.fill(2 * m.geometry().row_bytes(), row_bytes, 0xFF).unwrap();
        m.hammer(RowId(1), m.config().disturbance.hammer_threshold / 2).unwrap();
        assert_eq!(m.stats().total_flips(), 0);
    }

    #[test]
    fn refresh_window_resets_hammer_progress() {
        let mut m = module();
        let threshold = m.config().disturbance.hammer_threshold;
        let row_bytes = m.geometry().row_bytes() as usize;
        m.fill(2 * m.geometry().row_bytes(), row_bytes, 0xFF).unwrap();
        // Hammer half, skip past a refresh boundary, hammer half again:
        // never crosses the threshold within one window.
        m.hammer(RowId(1), threshold / 2).unwrap();
        m.advance(m.config().refresh_interval_ns);
        m.hammer(RowId(1), threshold / 2).unwrap();
        assert_eq!(m.stats().total_flips(), 0);
    }

    #[test]
    fn anti_cell_rows_flip_upward() {
        let cfg = DramConfig::small_test();
        let mut m = DramModule::new(cfg);
        // Rows 8..16 are anti-cells. Zero-filled victim: only 0→1 fires.
        let victim = RowId(10);
        let victim_addr = victim.0 * m.geometry().row_bytes();
        m.fill(victim_addr, m.geometry().row_bytes() as usize, 0x00).unwrap();
        m.hammer_double_sided(victim).unwrap();
        let flips: Vec<_> =
            m.stats().flip_log.iter().filter(|e| e.row == victim).copied().collect();
        assert!(!flips.is_empty());
        assert!(flips.iter().all(|e| e.direction == FlipDirection::ZeroToOne));
        // And the stored value actually changed.
        let data = m.peek(victim_addr, m.geometry().row_bytes() as usize).unwrap();
        assert!(data.iter().any(|b| *b != 0));
    }

    #[test]
    fn hammering_is_idempotent_on_same_content() {
        let mut m = module();
        let row_bytes = m.geometry().row_bytes() as usize;
        let victim_addr = 2 * m.geometry().row_bytes();
        m.fill(victim_addr, row_bytes, 0xFF).unwrap();
        m.hammer_double_sided(RowId(2)).unwrap();
        let after_first = m.peek(victim_addr, row_bytes).unwrap();
        let flips_first = m.stats().total_flips();
        m.advance(m.config().refresh_interval_ns); // new window
        m.hammer_double_sided(RowId(2)).unwrap();
        let after_second = m.peek(victim_addr, row_bytes).unwrap();
        assert_eq!(after_first, after_second, "all vulnerable bits already fired");
        assert_eq!(m.stats().total_flips(), flips_first);
    }

    #[test]
    fn vulnerability_is_deterministic_across_modules() {
        let mut a = module();
        let mut b = module();
        assert_eq!(a.vulnerable_bits(RowId(3)).unwrap(), b.vulnerable_bits(RowId(3)).unwrap());
    }

    #[test]
    fn disable_refresh_decays_data() {
        let mut m = module();
        m.fill(0, m.geometry().row_bytes() as usize, 0xFF).unwrap(); // true-cell row
        m.disable_refresh();
        m.advance(m.config().retention.max_ns + 1);
        let data = m.read(0, m.geometry().row_bytes() as usize).unwrap();
        let ones: u32 = data.iter().map(|b| b.count_ones()).sum();
        assert!(ones < 100, "true cells should have decayed to ~0, ones={ones}");
        m.enable_refresh();
    }

    #[test]
    fn refresh_prevents_decay() {
        let mut m = module();
        m.fill(0, 64, 0xFF).unwrap();
        m.advance(10 * m.config().retention.max_ns);
        assert!(m.read(0, 64).unwrap().iter().all(|b| *b == 0xFF));
        assert!(m.stats().refresh_windows > 0);
    }

    #[test]
    fn power_off_loses_data_by_polarity() {
        let mut m = module();
        let row_bytes = m.geometry().row_bytes();
        m.fill(0, 32, 0xFF).unwrap(); // true-cell row 0
        m.fill(8 * row_bytes, 32, 0x00).unwrap(); // anti-cell row 8
        m.power_off(m.config().retention.long_max_ns + 1);
        assert!(m.read(0, 32).unwrap().iter().all(|b| *b == 0x00));
        assert!(m.read(8 * row_bytes, 32).unwrap().iter().all(|b| *b == 0xFF));
    }

    #[test]
    fn chilled_power_off_stretches_remanence() {
        // The same outage duration: at ambient the data decays; chilled to
        // a 100x retention factor, it survives.
        let outage = DramConfig::small_test().retention.max_ns + 1;
        let mut ambient = module();
        ambient.fill(0, 32, 0xFF).unwrap();
        ambient.power_off(outage);
        // Every *ordinary* cell decays past max_ns; the rare long-retention
        // population (long_fraction = 1e-3) may legitimately survive, so
        // allow a handful of remanent bits rather than demanding zero.
        let survivors: u32 = ambient.read(0, 32).unwrap().iter().map(|b| b.count_ones()).sum();
        assert!(survivors <= 8, "expected near-total ambient decay, {survivors}/256 bits survive");

        let mut chilled = module();
        chilled.fill(0, 32, 0xFF).unwrap();
        chilled.power_off_at_temperature(outage, 100.0);
        assert_eq!(chilled.read(0, 32).unwrap(), vec![0xFF; 32]);
    }

    #[test]
    #[should_panic(expected = "cooling")]
    fn warming_is_rejected() {
        module().power_off_at_temperature(1, 0.5);
    }

    #[test]
    fn short_power_off_preserves_data() {
        let mut m = module();
        m.fill(0, 32, 0xA5).unwrap();
        m.power_off(m.config().retention.min_ns / 2);
        assert_eq!(m.read(0, 32).unwrap(), vec![0xA5; 32]);
    }

    #[test]
    fn remapped_row_keeps_polarity_and_data_separation() {
        let mut m = module();
        // Row 0 and row 2 are both true-cell rows.
        m.write(2 * m.geometry().row_bytes(), &[0x77]).unwrap();
        m.remap_row(RowId(0), RowId(2)).unwrap();
        // Logical row 0 now reads row 2's storage.
        assert_eq!(m.read(0, 1).unwrap(), vec![0x77]);
        assert_eq!(m.cell_type_of_row(RowId(0)).unwrap(), CellType::True);
    }

    #[test]
    fn hammer_time_accounting() {
        let mut m = module();
        let t0 = m.now_ns();
        let n = 1000u64;
        m.hammer(RowId(5), n).unwrap();
        assert_eq!(m.now_ns() - t0, n * m.config().disturbance.trc_ns);
    }

    #[test]
    fn cell_type_queries() {
        let m = module();
        assert_eq!(m.cell_type_of_row(RowId(0)).unwrap(), CellType::True);
        assert_eq!(m.cell_type_of_row(RowId(8)).unwrap(), CellType::Anti);
        assert_eq!(m.cell_type_of_addr(0).unwrap(), CellType::True);
        assert!(m.cell_type_of_row(RowId(9999)).is_err());
    }

    #[test]
    fn row_cache_never_serves_stale_remaps() {
        let mut m = module();
        let row_bytes = m.geometry().row_bytes();
        // Warm the resolve cache on both rows, then swap them.
        m.write(10, &[0xAB]).unwrap();
        m.write(2 * row_bytes + 10, &[0xCD]).unwrap();
        assert_eq!(m.peek(10, 1).unwrap(), vec![0xAB]);
        m.remap_row(RowId(0), RowId(2)).unwrap();
        // Swap semantics: logical row 0 now reads row 2's storage and vice
        // versa, regardless of what the cache held before the remap.
        assert_eq!(m.peek(10, 1).unwrap(), vec![0xCD]);
        assert_eq!(m.peek(2 * row_bytes + 10, 1).unwrap(), vec![0xAB]);
        assert_eq!(m.read(10, 1).unwrap(), vec![0xCD]);
    }

    #[test]
    fn remap_out_of_bounds_rejected() {
        let mut m = module();
        assert!(m.remap_row(RowId(0), RowId(9999)).is_err());
        assert!(m.remap_row(RowId(9999), RowId(0)).is_err());
    }

    use proptest::prelude::*;

    proptest! {
        // Random reads/writes/fills/peeks against a flat shadow buffer:
        // with refresh running and no hammering, DRAM must behave exactly
        // like plain memory, whatever the open-row cache, remap cache, and
        // span splitting do internally.
        #[test]
        fn data_path_matches_flat_shadow(
            ops in proptest::collection::vec(
                (0u8..4, 0u64..(256 * 1024), 0usize..96, 0u8..255),
                1..32,
            )
        ) {
            let mut m = module();
            let cap = m.capacity_bytes();
            let mut shadow = vec![0u8; cap as usize];
            for (kind, addr, len, byte) in ops {
                let addr = addr % cap;
                let len = len.min((cap - addr) as usize);
                let lo = addr as usize;
                match kind {
                    0 => {
                        let data: Vec<u8> =
                            (0..len).map(|i| byte.wrapping_add(i as u8)).collect();
                        m.write(addr, &data).unwrap();
                        shadow[lo..lo + len].copy_from_slice(&data);
                    }
                    1 => {
                        m.fill(addr, len, byte).unwrap();
                        shadow[lo..lo + len].fill(byte);
                    }
                    2 => {
                        let got = m.read(addr, len).unwrap();
                        prop_assert_eq!(&got[..], &shadow[lo..lo + len]);
                    }
                    _ => {
                        let got = m.peek(addr, len).unwrap();
                        prop_assert_eq!(&got[..], &shadow[lo..lo + len]);
                        if len >= 8 {
                            prop_assert_eq!(
                                m.peek_u64(addr).unwrap(),
                                m.read_u64(addr).unwrap()
                            );
                        }
                    }
                }
            }
            prop_assert_eq!(m.peek(0, cap as usize).unwrap(), shadow);
        }
    }

    /// Full observable state of a module, for byte-identity assertions.
    #[cfg(test)]
    fn observe(m: &DramModule) -> (Vec<u8>, Vec<u64>, u64, String, usize) {
        let contents = m.peek(0, m.capacity_bytes() as usize).unwrap();
        let charges: Vec<u64> = (0..m.geometry().total_rows())
            .map(|r| match m.store.last_charge_ns(r) {
                Some(c) => c + 1,
                None => 0,
            })
            .collect();
        (contents, charges, m.now_ns(), format!("{:?}", m.stats()), m.rows_materialized())
    }

    #[test]
    fn journal_rollback_restores_the_module_byte_identically() {
        for backend in StoreBackend::ALL {
            let mut cfg = DramConfig::small_test();
            cfg.backend = backend;
            let mut m = DramModule::new(cfg);
            m.fill(0, 128, 0xFF).unwrap();
            m.write_u64(4096 + 16, 0x1234_5678).unwrap();
            let before = observe(&m);

            m.journal_begin();
            assert!(m.journal_active());
            // A trial-shaped mutation mix: writes (materializing fresh
            // rows), hammering past the threshold, a refresh outage with
            // decay, a remap, a flip-log drain, and a power cycle.
            m.fill(3 * 4096, 4096, 0xA5).unwrap();
            m.hammer_double_sided(RowId(2)).unwrap();
            m.disable_refresh();
            m.advance(m.config().retention.max_ns + 1);
            m.enable_refresh();
            m.remap_row(RowId(4), RowId(6)).unwrap();
            let _ = m.take_flip_log();
            m.power_off(m.config().retention.min_ns / 2);
            assert!(m.journal_dirty_rows() > 0);

            m.journal_rollback();
            assert!(!m.journal_active());
            assert_eq!(observe(&m), before, "backend {backend}");
            assert!(m.remap_table().is_empty());
        }
    }

    #[test]
    fn journal_rollback_unmaterializes_fresh_rows() {
        let mut m = module();
        let base = m.rows_materialized();
        m.journal_begin();
        m.write(5 * 4096, &[1, 2, 3]).unwrap();
        assert!(m.rows_materialized() > base);
        m.journal_rollback();
        assert_eq!(m.rows_materialized(), base);
    }

    #[test]
    #[should_panic(expected = "active journal")]
    fn forking_with_an_active_journal_is_refused() {
        let mut m = module();
        m.journal_begin();
        let _ = m.fork();
    }

    #[test]
    fn interleaved_mapping_hammer_hits_stride_neighbors() {
        let mut cfg = DramConfig::small_test();
        cfg.geometry = DramGeometry::new(4096, 16, 4, AddressMapping::BankInterleaved);
        cfg.layout = CellLayout::AllTrue;
        cfg.disturbance = DisturbanceParams { pf: 0.05, ..DisturbanceParams::default() };
        let mut m = DramModule::new(cfg);
        // Row 5's bank neighbors are rows 1 and 9.
        for r in [1u64, 9] {
            m.fill(r * 4096, 4096, 0xFF).unwrap();
        }
        m.hammer_to_threshold(RowId(5)).unwrap();
        let flipped_rows: std::collections::HashSet<u64> =
            m.stats().flip_log.iter().map(|e| e.row.0).collect();
        assert!(flipped_rows.is_subset(&[1u64, 9].into_iter().collect()));
        assert!(!flipped_rows.is_empty());
    }
}
