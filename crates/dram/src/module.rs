use std::collections::HashMap;

use crate::cells::{CellLayout, CellType, CellTypeMap};
use crate::config::DramConfig;
use crate::error::DramError;
use crate::geometry::{DramGeometry, RowId};
use crate::remap::RemapTable;
use crate::retention::{get_bit, set_bit, RetentionModel};
use crate::stats::{DramStats, FlipEvent};
use crate::vuln::{VulnerabilityModel, VulnerableBit};

/// Column-access latency charged per read/write operation, nanoseconds.
const COL_ACCESS_NS: u64 = 10;

#[derive(Debug)]
struct RowState {
    bytes: Box<[u8]>,
    /// Simulated time the row's charge was last restored (activation or
    /// refresh-epoch start).
    last_charge_ns: u64,
}

/// A simulated DRAM module.
///
/// The module owns its cell contents (sparsely materialized by row), its
/// fixed vulnerability and retention maps, its refresh machinery, and a
/// simulated clock. All timing-relevant operations advance the clock:
/// activations cost `tRC`, column accesses a fixed latency.
///
/// # RowHammer model
///
/// [`activate_row`](Self::activate_row) models a *forced* activation (the
/// attacker defeats the row buffer with cache flushes or row conflicts).
/// When an aggressor row accumulates `hammer_threshold` activations within
/// one refresh window, its bank-adjacent neighbor rows are disturbed: every
/// vulnerable cell whose stored value matches its flip direction's source
/// value flips. True-cell rows flip almost exclusively `1→0`, anti-cell rows
/// `0→1` (see [`VulnerabilityModel`]).
///
/// # Refresh and retention
///
/// While auto-refresh runs (64 ms windows), cells never decay — retention
/// times are orders of magnitude longer than the refresh interval. Disabling
/// refresh (as the cell-type profiler does) lets cells decay toward their
/// polarity's discharged value on their individual retention schedules.
/// Ordinary accesses recharge the accessed row.
pub struct DramModule {
    config: DramConfig,
    rows: HashMap<u64, RowState>,
    vuln: VulnerabilityModel,
    retention: RetentionModel,
    remap: RemapTable,
    clock_ns: u64,
    /// Some(t) when auto-refresh was disabled at time t.
    refresh_disabled_at: Option<u64>,
    /// Incremented on every refresh enable/disable toggle and power cycle so
    /// stale activation windows can be detected lazily.
    generation: u64,
    /// Activation counts: row -> (generation, window_id, count).
    activations: HashMap<u64, (u64, u64, u64)>,
    /// Open row per bank for row-buffer-hit modeling of ordinary accesses.
    open_rows: HashMap<u32, u64>,
    stats: DramStats,
}

impl std::fmt::Debug for DramModule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DramModule")
            .field("capacity", &self.config.geometry.capacity_bytes())
            .field("clock_ns", &self.clock_ns)
            .field("materialized_rows", &self.rows.len())
            .field("refresh_enabled", &self.refresh_disabled_at.is_none())
            .field("stats", &format_args!("{}", self.stats))
            .finish()
    }
}

impl DramModule {
    /// Creates a module from its configuration. All cells start at logic `0`.
    pub fn new(config: DramConfig) -> Self {
        let vuln = VulnerabilityModel::new(
            &config.geometry,
            config.layout,
            config.disturbance,
            config.seed,
        );
        let retention =
            RetentionModel::new(config.retention, config.geometry.bits_per_row(), config.seed);
        DramModule {
            vuln,
            retention,
            config,
            rows: HashMap::new(),
            remap: RemapTable::new(),
            clock_ns: 0,
            refresh_disabled_at: None,
            generation: 0,
            activations: HashMap::new(),
            open_rows: HashMap::new(),
            stats: DramStats::default(),
        }
    }

    /// The module's configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// The module's geometry.
    pub fn geometry(&self) -> &DramGeometry {
        &self.config.geometry
    }

    /// The module's cell layout.
    pub fn layout(&self) -> CellLayout {
        self.config.layout
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.config.geometry.capacity_bytes()
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Clears the per-flip event log, keeping counters.
    pub fn clear_flip_log(&mut self) {
        self.stats.clear_flip_log();
    }

    /// Takes the flip log, leaving it empty.
    pub fn take_flip_log(&mut self) -> Vec<FlipEvent> {
        std::mem::take(&mut self.stats.flip_log)
    }

    /// Whether auto-refresh is currently running.
    pub fn refresh_enabled(&self) -> bool {
        self.refresh_disabled_at.is_none()
    }

    /// Ground-truth cell type of a (logical) row.
    ///
    /// Remapping preserves polarity, so the logical and backing rows agree.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfBounds`] for rows outside the module.
    pub fn cell_type_of_row(&self, row: RowId) -> Result<CellType, DramError> {
        if row.0 >= self.config.geometry.total_rows() {
            return Err(DramError::RowOutOfBounds { row, rows: self.config.geometry.total_rows() });
        }
        Ok(self.config.layout.cell_type(self.remap.resolve(row)))
    }

    /// Ground-truth cell type of the row containing a physical address.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfBounds`] for addresses outside the module.
    pub fn cell_type_of_addr(&self, addr: u64) -> Result<CellType, DramError> {
        let row = self.config.geometry.row_of_addr(addr)?;
        self.cell_type_of_row(row)
    }

    /// Ground-truth cell-type map (what a perfect profiler would recover).
    pub fn ground_truth_cell_map(&self) -> CellTypeMap {
        CellTypeMap::from_layout(&self.config.geometry, self.config.layout)
    }

    /// Remaps `faulty` onto `spare` (manufacturer repair).
    ///
    /// # Errors
    ///
    /// See [`RemapTable::remap`].
    pub fn remap_row(&mut self, faulty: RowId, spare: RowId) -> Result<(), DramError> {
        self.remap.remap(faulty, spare, self.config.layout)
    }

    /// The active remap table.
    pub fn remap_table(&self) -> &RemapTable {
        &self.remap
    }

    // ------------------------------------------------------------------
    // Data access
    // ------------------------------------------------------------------

    /// Reads `buf.len()` bytes starting at physical address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfBounds`] if the range exceeds capacity.
    pub fn read_into(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), DramError> {
        self.check_range(addr, buf.len())?;
        self.stats.reads += 1;
        self.set_clock(self.clock_ns + COL_ACCESS_NS);
        let mut off = 0usize;
        while off < buf.len() {
            let a = addr + off as u64;
            let row = self.config.geometry.row_of_addr(a).expect("checked range");
            let col = self.config.geometry.col_of_addr(a) as usize;
            let take =
                ((self.config.geometry.row_bytes() as usize) - col).min(buf.len() - off);
            let backing = self.remap.resolve(row);
            self.touch_row(backing);
            match self.rows.get(&backing.0) {
                Some(state) => buf[off..off + take].copy_from_slice(&state.bytes[col..col + take]),
                None => buf[off..off + take].fill(0),
            }
            off += take;
        }
        Ok(())
    }

    /// Reads `len` bytes starting at `addr` into a fresh vector.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfBounds`] if the range exceeds capacity.
    pub fn read(&mut self, addr: u64, len: usize) -> Result<Vec<u8>, DramError> {
        let mut buf = vec![0u8; len];
        self.read_into(addr, &mut buf)?;
        Ok(buf)
    }

    /// Writes `data` starting at physical address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfBounds`] if the range exceeds capacity.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), DramError> {
        self.check_range(addr, data.len())?;
        self.stats.writes += 1;
        self.set_clock(self.clock_ns + COL_ACCESS_NS);
        let mut off = 0usize;
        while off < data.len() {
            let a = addr + off as u64;
            let row = self.config.geometry.row_of_addr(a).expect("checked range");
            let col = self.config.geometry.col_of_addr(a) as usize;
            let take =
                ((self.config.geometry.row_bytes() as usize) - col).min(data.len() - off);
            let backing = self.remap.resolve(row);
            self.touch_row(backing);
            let row_bytes = self.config.geometry.row_bytes() as usize;
            let clock = self.clock_ns;
            let state = self.rows.entry(backing.0).or_insert_with(|| RowState {
                bytes: vec![0u8; row_bytes].into_boxed_slice(),
                last_charge_ns: clock,
            });
            state.bytes[col..col + take].copy_from_slice(&data[off..off + take]);
            off += take;
        }
        Ok(())
    }

    /// Reads a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfBounds`] if the range exceeds capacity.
    pub fn read_u64(&mut self, addr: u64) -> Result<u64, DramError> {
        let mut buf = [0u8; 8];
        self.read_into(addr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfBounds`] if the range exceeds capacity.
    pub fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), DramError> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Fills `[addr, addr+len)` with `byte` (page zeroing and test patterns).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfBounds`] if the range exceeds capacity.
    pub fn fill(&mut self, addr: u64, len: usize, byte: u8) -> Result<(), DramError> {
        self.check_range(addr, len)?;
        // Delegate per-row to write() semantics without building a big buffer.
        let row_bytes = self.config.geometry.row_bytes() as usize;
        let chunk = vec![byte; row_bytes.min(len.max(1))];
        let mut off = 0usize;
        while off < len {
            let a = addr + off as u64;
            let col = self.config.geometry.col_of_addr(a) as usize;
            let take = (row_bytes - col).min(len - off);
            self.write(a, &chunk[..take])?;
            off += take;
        }
        Ok(())
    }

    /// Debug oracle: reads without touching the clock, row buffer, decay, or
    /// statistics. Not available to simulated software.
    pub fn peek(&self, addr: u64, len: usize) -> Result<Vec<u8>, DramError> {
        self.check_range(addr, len)?;
        let mut buf = vec![0u8; len];
        let mut off = 0usize;
        while off < len {
            let a = addr + off as u64;
            let row = self.config.geometry.row_of_addr(a).expect("checked range");
            let col = self.config.geometry.col_of_addr(a) as usize;
            let take = ((self.config.geometry.row_bytes() as usize) - col).min(len - off);
            let backing = self.remap.resolve(row);
            if let Some(state) = self.rows.get(&backing.0) {
                buf[off..off + take].copy_from_slice(&state.bytes[col..col + take]);
            }
            off += take;
        }
        Ok(buf)
    }

    /// Debug oracle: little-endian `u64` variant of [`peek`](Self::peek).
    pub fn peek_u64(&self, addr: u64) -> Result<u64, DramError> {
        let buf = self.peek(addr, 8)?;
        Ok(u64::from_le_bytes(buf.try_into().expect("8 bytes")))
    }

    // ------------------------------------------------------------------
    // Time, refresh, power
    // ------------------------------------------------------------------

    /// Advances the simulated clock by `ns`.
    pub fn advance(&mut self, ns: u64) {
        self.set_clock(self.clock_ns + ns);
    }

    /// Disables auto-refresh (for profiling). Idempotent.
    pub fn disable_refresh(&mut self) {
        if self.refresh_disabled_at.is_none() {
            self.refresh_disabled_at = Some(self.clock_ns);
            self.generation += 1;
        }
    }

    /// Re-enables auto-refresh, locking in any decay that occurred while it
    /// was off. Idempotent.
    pub fn enable_refresh(&mut self) {
        if self.refresh_disabled_at.is_some() {
            self.decay_all_materialized();
            self.refresh_disabled_at = None;
            self.generation += 1;
        }
    }

    /// Simulates a power-off of `duration_ns`: cells decay on their retention
    /// schedules regardless of refresh state (DRAM remanence, section 8).
    pub fn power_off(&mut self, duration_ns: u64) {
        self.power_off_at_temperature(duration_ns, 1.0);
    }

    /// Power-off with a temperature model: cooling the module multiplies
    /// every cell's effective retention by `retention_factor` (coldboot
    /// attackers chill DRAM precisely to stretch remanence; Halderman et
    /// al. report minutes at −50 °C). `1.0` is ambient; larger is colder.
    ///
    /// # Panics
    ///
    /// Panics unless `retention_factor` is finite and ≥ 1.0.
    pub fn power_off_at_temperature(&mut self, duration_ns: u64, retention_factor: f64) {
        assert!(
            retention_factor.is_finite() && retention_factor >= 1.0,
            "cooling can only extend retention"
        );
        // While power is off every row decays relative to its last charge;
        // cooling divides the *effective* elapsed time.
        let effective = (duration_ns as f64 / retention_factor) as u64;
        self.clock_ns += duration_ns;
        let decay_until = self.clock_ns.saturating_sub(duration_ns - effective.min(duration_ns));
        let keys: Vec<u64> = self.rows.keys().copied().collect();
        for key in keys {
            self.apply_decay_to(RowId(key), decay_until);
        }
        // After power-up, refresh resumes: whatever survived is recharged.
        for state in self.rows.values_mut() {
            state.last_charge_ns = self.clock_ns;
        }
        self.open_rows.clear();
        self.activations.clear();
        self.generation += 1;
        self.refresh_disabled_at = None;
    }

    // ------------------------------------------------------------------
    // Hammering
    // ------------------------------------------------------------------

    /// Forces one activation of `row` (modeling an attacker defeating the
    /// row buffer), advancing the clock by `tRC` and disturbing neighbors if
    /// the hammer threshold is crossed within the current refresh window.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfBounds`] for rows outside the module.
    pub fn activate_row(&mut self, row: RowId) -> Result<(), DramError> {
        self.hammer(row, 1)
    }

    /// Performs `count` forced activations of `row`.
    ///
    /// Activations are accounted against refresh windows: if the count spans
    /// a window boundary (refresh enabled), the per-window activation counter
    /// resets at the boundary, exactly as a real refresh restores victim
    /// charge. Neighbor rows are disturbed each time the within-window count
    /// crosses the configured threshold.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfBounds`] for rows outside the module.
    pub fn hammer(&mut self, row: RowId, count: u64) -> Result<(), DramError> {
        if row.0 >= self.config.geometry.total_rows() {
            return Err(DramError::RowOutOfBounds { row, rows: self.config.geometry.total_rows() });
        }
        let backing = self.remap.resolve(row);
        let trc = self.config.disturbance.trc_ns.max(1);
        let mut remaining = count;
        while remaining > 0 {
            let window_end = match self.refresh_disabled_at {
                None => (self.clock_ns / self.config.refresh_interval_ns + 1)
                    * self.config.refresh_interval_ns,
                Some(_) => u64::MAX,
            };
            let fit_by_time = ((window_end.saturating_sub(self.clock_ns)) / trc).max(1);
            let fit = remaining.min(fit_by_time);
            self.stats.activations += fit;
            self.set_clock(self.clock_ns + fit * trc);
            self.record_activation(backing, fit);
            remaining -= fit;
        }
        Ok(())
    }

    /// Hammers `row` exactly to the disturbance threshold within the current
    /// window (the canonical "one hammer burst" of the paper's attack-time
    /// model, which budgets one refresh interval per hammered row).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfBounds`] for rows outside the module.
    pub fn hammer_to_threshold(&mut self, row: RowId) -> Result<(), DramError> {
        self.hammer(row, self.config.disturbance.hammer_threshold)
    }

    /// Double-sided hammering of `victim`: both sandwich aggressors are
    /// hammered to threshold, disturbing `victim` (and the aggressors' outer
    /// neighbors). Falls back to single-sided at bank edges.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfBounds`] for rows outside the module.
    pub fn hammer_double_sided(&mut self, victim: RowId) -> Result<(), DramError> {
        let backing = self.remap.resolve(victim);
        if backing.0 >= self.config.geometry.total_rows() {
            return Err(DramError::RowOutOfBounds {
                row: victim,
                rows: self.config.geometry.total_rows(),
            });
        }
        let neighbors = self.config.geometry.adjacent_rows(backing)?;
        for aggressor in neighbors {
            self.hammer(aggressor, self.config.disturbance.hammer_threshold)?;
        }
        Ok(())
    }

    /// Activations of `row` within the current refresh window — the signal
    /// a hardware-performance-counter defense like ANVIL watches.
    pub fn window_activations(&self, row: RowId) -> u64 {
        let backing = self.remap.resolve(row);
        let (gen, win, count) = self.activation_entry(backing);
        if (gen, win) == self.current_window_key() {
            count
        } else {
            0
        }
    }

    /// The `n` most-activated rows of the current refresh window, hottest
    /// first.
    pub fn hottest_rows(&self, n: usize) -> Vec<(RowId, u64)> {
        let key = self.current_window_key();
        let mut rows: Vec<(RowId, u64)> = self
            .activations
            .iter()
            .filter(|(_, (gen, win, _))| (*gen, *win) == key)
            .map(|(row, (_, _, count))| (RowId(*row), *count))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }

    /// Targeted mitigation: refresh the neighbors of a suspected aggressor
    /// (what ANVIL does on detection) and restart its activation window, so
    /// accumulated hammer progress is lost.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfBounds`] for rows outside the module.
    pub fn refresh_neighbors_of(&mut self, row: RowId) -> Result<(), DramError> {
        if row.0 >= self.config.geometry.total_rows() {
            return Err(DramError::RowOutOfBounds { row, rows: self.config.geometry.total_rows() });
        }
        let backing = self.remap.resolve(row);
        for victim in self.config.geometry.adjacent_rows(backing)? {
            if let Some(state) = self.rows.get_mut(&victim.0) {
                state.last_charge_ns = self.clock_ns;
            }
        }
        self.activations.remove(&backing.0);
        Ok(())
    }

    /// The fixed vulnerable-bit map of `row` — an experimenter oracle, also
    /// what a templating attacker reconstructs by hammering memory they own.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfBounds`] for rows outside the module.
    pub fn vulnerable_bits(&mut self, row: RowId) -> Result<Vec<VulnerableBit>, DramError> {
        if row.0 >= self.config.geometry.total_rows() {
            return Err(DramError::RowOutOfBounds { row, rows: self.config.geometry.total_rows() });
        }
        let backing = self.remap.resolve(row);
        Ok(self.vuln.vulnerable_bits(backing).to_vec())
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn check_range(&self, addr: u64, len: usize) -> Result<(), DramError> {
        let cap = self.config.geometry.capacity_bytes();
        if addr >= cap || len as u64 > cap - addr {
            return Err(DramError::OutOfBounds { addr, len, capacity: cap });
        }
        Ok(())
    }

    fn current_window_key(&self) -> (u64, u64) {
        match self.refresh_disabled_at {
            None => (self.generation, self.clock_ns / self.config.refresh_interval_ns),
            Some(t0) => (self.generation, t0 / self.config.refresh_interval_ns),
        }
    }

    fn activation_entry(&self, row: RowId) -> (u64, u64, u64) {
        self.activations.get(&row.0).copied().unwrap_or((u64::MAX, u64::MAX, 0))
    }

    fn set_clock(&mut self, new: u64) {
        debug_assert!(new >= self.clock_ns);
        if self.refresh_disabled_at.is_none() {
            let interval = self.config.refresh_interval_ns;
            self.stats.refresh_windows += new / interval - self.clock_ns / interval;
        }
        self.clock_ns = new;
    }

    /// Ordinary-access bookkeeping for `row` (already remap-resolved):
    /// pending decay, row-buffer hit/miss, recharge.
    fn touch_row(&mut self, backing: RowId) {
        if self.refresh_disabled_at.is_some() {
            self.apply_decay_to(backing, self.clock_ns);
        }
        let bank = self
            .config
            .geometry
            .bank_coord(backing)
            .expect("backing row in bounds")
            .bank;
        let miss = self.open_rows.get(&bank) != Some(&backing.0);
        if miss {
            self.open_rows.insert(bank, backing.0);
            self.stats.activations += 1;
            self.set_clock(self.clock_ns + self.config.disturbance.trc_ns);
            // Ordinary activations count toward the disturbance threshold
            // too: this is what lets Algorithm 1 hammer page-table rows
            // through the MMU's own walk reads.
            self.record_activation(backing, 1);
        }
        if let Some(state) = self.rows.get_mut(&backing.0) {
            state.last_charge_ns = self.clock_ns;
        }
    }

    /// Adds `count` activations to `backing`'s within-window counter and
    /// disturbs neighbors on a threshold crossing.
    fn record_activation(&mut self, backing: RowId, count: u64) {
        let threshold = self.config.disturbance.hammer_threshold;
        let key = self.current_window_key();
        let (gen, win, have) = self.activation_entry(backing);
        let before = if (gen, win) == key { have } else { 0 };
        let after = before + count;
        self.activations.insert(backing.0, (key.0, key.1, after));
        if before < threshold && after >= threshold {
            let _ = self.disturb_neighbors(backing);
        }
    }

    /// Applies retention decay to a materialized row up to time `now`.
    fn apply_decay_to(&mut self, backing: RowId, now: u64) {
        let Some(state) = self.rows.get_mut(&backing.0) else { return };
        let since = match self.refresh_disabled_at {
            Some(t0) => state.last_charge_ns.max(t0),
            // Power-off path calls with refresh nominally enabled; decay
            // accrues from the last charge directly.
            None => state.last_charge_ns,
        };
        let elapsed = now.saturating_sub(since);
        if elapsed == 0 {
            return;
        }
        let cell_type = self.config.layout.cell_type(backing);
        let changed = self.retention.apply_decay(backing, cell_type, &mut state.bytes, elapsed);
        self.stats.decay_flips += changed;
        state.last_charge_ns = now;
    }

    fn decay_all_materialized(&mut self) {
        let keys: Vec<u64> = self.rows.keys().copied().collect();
        for key in keys {
            self.apply_decay_to(RowId(key), self.clock_ns);
        }
    }

    /// Disturbs the bank-adjacent neighbors of a hammered aggressor.
    fn disturb_neighbors(&mut self, aggressor: RowId) -> Result<(), DramError> {
        for victim in self.config.geometry.adjacent_rows(aggressor)? {
            self.disturb(victim);
        }
        Ok(())
    }

    /// Applies the disturbance flip model to one victim row.
    fn disturb(&mut self, victim: RowId) {
        let bits = self.vuln.vulnerable_bits(victim);
        if bits.is_empty() {
            self.stats.disturbances += 1;
            return;
        }
        // Disturbance acts on the decayed state if refresh is off.
        if self.refresh_disabled_at.is_some() {
            self.apply_decay_to(victim, self.clock_ns);
        }
        let row_bytes = self.config.geometry.row_bytes() as usize;
        let clock = self.clock_ns;
        let state = self.rows.entry(victim.0).or_insert_with(|| RowState {
            bytes: vec![0u8; row_bytes].into_boxed_slice(),
            last_charge_ns: clock,
        });
        let mut events = Vec::new();
        for vb in bits.iter() {
            let current = get_bit(&state.bytes, vb.bit);
            if current == vb.direction.source_value() {
                set_bit(&mut state.bytes, vb.bit, !current);
                events.push(FlipEvent {
                    row: victim,
                    bit: vb.bit,
                    direction: vb.direction,
                    time_ns: clock,
                });
            }
        }
        for e in events {
            self.stats.record_flip(e);
        }
        self.stats.disturbances += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DisturbanceParams;
    use crate::geometry::AddressMapping;
    use crate::vuln::FlipDirection;

    fn module() -> DramModule {
        DramModule::new(DramConfig::small_test())
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = module();
        m.write(100, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.read(100, 4).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(m.read(99, 6).unwrap(), vec![0, 1, 2, 3, 4, 0]);
    }

    #[test]
    fn u64_round_trip() {
        let mut m = module();
        m.write_u64(4096 + 8, 0xDEAD_BEEF_CAFE_F00D).unwrap();
        assert_eq!(m.read_u64(4096 + 8).unwrap(), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.peek_u64(4096 + 8).unwrap(), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn cross_row_access() {
        let mut m = module();
        let row_bytes = m.geometry().row_bytes();
        let addr = row_bytes - 2;
        m.write(addr, &[9, 8, 7, 6]).unwrap();
        assert_eq!(m.read(addr, 4).unwrap(), vec![9, 8, 7, 6]);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut m = module();
        let cap = m.capacity_bytes();
        assert!(m.read(cap, 1).is_err());
        assert!(m.write(cap - 4, &[0; 8]).is_err());
        assert!(m.read_u64(cap - 7).is_err());
    }

    #[test]
    fn fill_works_across_rows() {
        let mut m = module();
        let row_bytes = m.geometry().row_bytes();
        m.fill(row_bytes - 10, 20, 0xAA).unwrap();
        assert!(m.read(row_bytes - 10, 20).unwrap().iter().all(|b| *b == 0xAA));
        assert_eq!(m.read(row_bytes + 10, 1).unwrap(), vec![0]);
    }

    #[test]
    fn clock_advances_on_access() {
        let mut m = module();
        let t0 = m.now_ns();
        m.write(0, &[1]).unwrap();
        assert!(m.now_ns() > t0);
    }

    #[test]
    fn row_buffer_hits_do_not_activate() {
        let mut m = module();
        m.write(0, &[1]).unwrap();
        let acts = m.stats().activations;
        m.write(1, &[2]).unwrap(); // same row: hit
        assert_eq!(m.stats().activations, acts);
        m.write(m.geometry().row_bytes(), &[3]).unwrap(); // different row: miss
        assert_eq!(m.stats().activations, acts + 1);
    }

    #[test]
    fn hammer_flips_true_cell_bits_downward_only() {
        let mut m = module();
        // Rows 0..8 are true cells in small_test layout. Fill victim row 2
        // with all-ones and hammer to threshold from both sides.
        let row_bytes = m.geometry().row_bytes() as usize;
        let victim_addr = 2 * m.geometry().row_bytes();
        m.fill(victim_addr, row_bytes, 0xFF).unwrap();
        m.hammer_double_sided(RowId(2)).unwrap();
        let flips: Vec<_> =
            m.stats().flip_log.iter().filter(|e| e.row == RowId(2)).copied().collect();
        assert!(!flips.is_empty(), "pf=0.02 over 32768 bits should flip something");
        // On all-ones content, only 1→0 flips can fire.
        assert!(flips.iter().all(|e| e.direction == FlipDirection::OneToZero));
    }

    #[test]
    fn hammer_below_threshold_flips_nothing() {
        let mut m = module();
        let row_bytes = m.geometry().row_bytes() as usize;
        m.fill(2 * m.geometry().row_bytes(), row_bytes, 0xFF).unwrap();
        m.hammer(RowId(1), m.config().disturbance.hammer_threshold / 2).unwrap();
        assert_eq!(m.stats().total_flips(), 0);
    }

    #[test]
    fn refresh_window_resets_hammer_progress() {
        let mut m = module();
        let threshold = m.config().disturbance.hammer_threshold;
        let row_bytes = m.geometry().row_bytes() as usize;
        m.fill(2 * m.geometry().row_bytes(), row_bytes, 0xFF).unwrap();
        // Hammer half, skip past a refresh boundary, hammer half again:
        // never crosses the threshold within one window.
        m.hammer(RowId(1), threshold / 2).unwrap();
        m.advance(m.config().refresh_interval_ns);
        m.hammer(RowId(1), threshold / 2).unwrap();
        assert_eq!(m.stats().total_flips(), 0);
    }

    #[test]
    fn anti_cell_rows_flip_upward() {
        let cfg = DramConfig::small_test();
        let mut m = DramModule::new(cfg);
        // Rows 8..16 are anti-cells. Zero-filled victim: only 0→1 fires.
        let victim = RowId(10);
        let victim_addr = victim.0 * m.geometry().row_bytes();
        m.fill(victim_addr, m.geometry().row_bytes() as usize, 0x00).unwrap();
        m.hammer_double_sided(victim).unwrap();
        let flips: Vec<_> =
            m.stats().flip_log.iter().filter(|e| e.row == victim).copied().collect();
        assert!(!flips.is_empty());
        assert!(flips.iter().all(|e| e.direction == FlipDirection::ZeroToOne));
        // And the stored value actually changed.
        let data = m.peek(victim_addr, m.geometry().row_bytes() as usize).unwrap();
        assert!(data.iter().any(|b| *b != 0));
    }

    #[test]
    fn hammering_is_idempotent_on_same_content() {
        let mut m = module();
        let row_bytes = m.geometry().row_bytes() as usize;
        let victim_addr = 2 * m.geometry().row_bytes();
        m.fill(victim_addr, row_bytes, 0xFF).unwrap();
        m.hammer_double_sided(RowId(2)).unwrap();
        let after_first = m.peek(victim_addr, row_bytes).unwrap();
        let flips_first = m.stats().total_flips();
        m.advance(m.config().refresh_interval_ns); // new window
        m.hammer_double_sided(RowId(2)).unwrap();
        let after_second = m.peek(victim_addr, row_bytes).unwrap();
        assert_eq!(after_first, after_second, "all vulnerable bits already fired");
        assert_eq!(m.stats().total_flips(), flips_first);
    }

    #[test]
    fn vulnerability_is_deterministic_across_modules() {
        let mut a = module();
        let mut b = module();
        assert_eq!(a.vulnerable_bits(RowId(3)).unwrap(), b.vulnerable_bits(RowId(3)).unwrap());
    }

    #[test]
    fn disable_refresh_decays_data() {
        let mut m = module();
        m.fill(0, m.geometry().row_bytes() as usize, 0xFF).unwrap(); // true-cell row
        m.disable_refresh();
        m.advance(m.config().retention.max_ns + 1);
        let data = m.read(0, m.geometry().row_bytes() as usize).unwrap();
        let ones: u32 = data.iter().map(|b| b.count_ones()).sum();
        assert!(ones < 100, "true cells should have decayed to ~0, ones={ones}");
        m.enable_refresh();
    }

    #[test]
    fn refresh_prevents_decay() {
        let mut m = module();
        m.fill(0, 64, 0xFF).unwrap();
        m.advance(10 * m.config().retention.max_ns);
        assert!(m.read(0, 64).unwrap().iter().all(|b| *b == 0xFF));
        assert!(m.stats().refresh_windows > 0);
    }

    #[test]
    fn power_off_loses_data_by_polarity() {
        let mut m = module();
        let row_bytes = m.geometry().row_bytes();
        m.fill(0, 32, 0xFF).unwrap(); // true-cell row 0
        m.fill(8 * row_bytes, 32, 0x00).unwrap(); // anti-cell row 8
        m.power_off(m.config().retention.long_max_ns + 1);
        assert!(m.read(0, 32).unwrap().iter().all(|b| *b == 0x00));
        assert!(m.read(8 * row_bytes, 32).unwrap().iter().all(|b| *b == 0xFF));
    }

    #[test]
    fn chilled_power_off_stretches_remanence() {
        // The same outage duration: at ambient the data decays; chilled to
        // a 100x retention factor, it survives.
        let outage = DramConfig::small_test().retention.max_ns + 1;
        let mut ambient = module();
        ambient.fill(0, 32, 0xFF).unwrap();
        ambient.power_off(outage);
        assert!(ambient.read(0, 32).unwrap().iter().all(|b| *b == 0));

        let mut chilled = module();
        chilled.fill(0, 32, 0xFF).unwrap();
        chilled.power_off_at_temperature(outage, 100.0);
        assert_eq!(chilled.read(0, 32).unwrap(), vec![0xFF; 32]);
    }

    #[test]
    #[should_panic(expected = "cooling")]
    fn warming_is_rejected() {
        module().power_off_at_temperature(1, 0.5);
    }

    #[test]
    fn short_power_off_preserves_data() {
        let mut m = module();
        m.fill(0, 32, 0xA5).unwrap();
        m.power_off(m.config().retention.min_ns / 2);
        assert_eq!(m.read(0, 32).unwrap(), vec![0xA5; 32]);
    }

    #[test]
    fn remapped_row_keeps_polarity_and_data_separation() {
        let mut m = module();
        // Row 0 and row 2 are both true-cell rows.
        m.write(2 * m.geometry().row_bytes(), &[0x77]).unwrap();
        m.remap_row(RowId(0), RowId(2)).unwrap();
        // Logical row 0 now reads row 2's storage.
        assert_eq!(m.read(0, 1).unwrap(), vec![0x77]);
        assert_eq!(m.cell_type_of_row(RowId(0)).unwrap(), CellType::True);
    }

    #[test]
    fn hammer_time_accounting() {
        let mut m = module();
        let t0 = m.now_ns();
        let n = 1000u64;
        m.hammer(RowId(5), n).unwrap();
        assert_eq!(m.now_ns() - t0, n * m.config().disturbance.trc_ns);
    }

    #[test]
    fn cell_type_queries() {
        let m = module();
        assert_eq!(m.cell_type_of_row(RowId(0)).unwrap(), CellType::True);
        assert_eq!(m.cell_type_of_row(RowId(8)).unwrap(), CellType::Anti);
        assert_eq!(m.cell_type_of_addr(0).unwrap(), CellType::True);
        assert!(m.cell_type_of_row(RowId(9999)).is_err());
    }

    #[test]
    fn interleaved_mapping_hammer_hits_stride_neighbors() {
        let mut cfg = DramConfig::small_test();
        cfg.geometry = DramGeometry::new(4096, 16, 4, AddressMapping::BankInterleaved);
        cfg.layout = CellLayout::AllTrue;
        cfg.disturbance = DisturbanceParams { pf: 0.05, ..DisturbanceParams::default() };
        let mut m = DramModule::new(cfg);
        // Row 5's bank neighbors are rows 1 and 9.
        for r in [1u64, 9] {
            m.fill(r * 4096, 4096, 0xFF).unwrap();
        }
        m.hammer_to_threshold(RowId(5)).unwrap();
        let flipped_rows: std::collections::HashSet<u64> =
            m.stats().flip_log.iter().map(|e| e.row.0).collect();
        assert!(flipped_rows.is_subset(&[1u64, 9].into_iter().collect()));
        assert!(!flipped_rows.is_empty());
    }
}
