use std::fmt;

use crate::error::DramError;

/// Index of a DRAM row, global across all banks of the module.
///
/// Global row indices order rows by ascending physical address under the
/// module's [`AddressMapping`], which makes "the row holding physical address
/// `a`" a cheap division. Bank-local coordinates are available through
/// [`DramGeometry::bank_coord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(pub u64);

impl RowId {
    /// Returns the raw row index.
    pub fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "row#{}", self.0)
    }
}

/// Bank-local coordinates of a row: which bank it lives in and its index
/// inside that bank's two-dimensional cell array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BankCoord {
    /// Bank index within the module.
    pub bank: u32,
    /// Row index within the bank.
    pub row_in_bank: u64,
}

/// How consecutive physical rows are distributed across banks.
///
/// RowHammer adjacency is a *bank-local* notion: an aggressor row disturbs
/// the rows physically adjacent to it in the same bank. Under
/// [`AddressMapping::RowLinear`] bank-local adjacency coincides with
/// physical-address adjacency; under [`AddressMapping::BankInterleaved`]
/// physically consecutive rows land in different banks (as real memory
/// controllers do for parallelism), and the two adjacent rows of an
/// aggressor are `banks` rows away in physical-address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AddressMapping {
    /// Rows of a bank occupy consecutive physical addresses.
    #[default]
    RowLinear,
    /// Consecutive physical rows rotate across banks.
    BankInterleaved,
}

/// Physical organization of a DRAM module.
///
/// The geometry is deliberately simple — `banks` equally sized banks of
/// `rows_per_bank` rows, each row `row_bytes` wide — which matches the
/// level of abstraction of the paper (section 2.1, Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramGeometry {
    row_bytes: u64,
    rows_per_bank: u64,
    banks: u32,
    mapping: AddressMapping,
}

impl DramGeometry {
    /// Creates a geometry from its dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `row_bytes` is not a power of two, or if any dimension is
    /// zero — those are configuration bugs, not runtime conditions.
    pub fn new(row_bytes: u64, rows_per_bank: u64, banks: u32, mapping: AddressMapping) -> Self {
        assert!(row_bytes.is_power_of_two(), "row size must be a power of two");
        assert!(rows_per_bank > 0, "rows_per_bank must be nonzero");
        assert!(banks > 0, "banks must be nonzero");
        DramGeometry { row_bytes, rows_per_bank, banks, mapping }
    }

    /// Row width in bytes (the paper uses 128 KiB rows throughout).
    pub fn row_bytes(&self) -> u64 {
        self.row_bytes
    }

    /// Rows per bank.
    pub fn rows_per_bank(&self) -> u64 {
        self.rows_per_bank
    }

    /// Number of banks.
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// The bank/row interleaving scheme.
    pub fn mapping(&self) -> AddressMapping {
        self.mapping
    }

    /// Total number of rows in the module.
    pub fn total_rows(&self) -> u64 {
        self.rows_per_bank * self.banks as u64
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_rows() * self.row_bytes
    }

    /// Global row holding physical address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfBounds`] if `addr` exceeds the capacity.
    pub fn row_of_addr(&self, addr: u64) -> Result<RowId, DramError> {
        if addr >= self.capacity_bytes() {
            return Err(DramError::OutOfBounds { addr, len: 1, capacity: self.capacity_bytes() });
        }
        Ok(RowId(addr / self.row_bytes))
    }

    /// Byte offset of `addr` within its row (the column address).
    pub fn col_of_addr(&self, addr: u64) -> u64 {
        addr % self.row_bytes
    }

    /// First physical address of `row`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfBounds`] if `row` is not in the module.
    pub fn addr_of_row(&self, row: RowId) -> Result<u64, DramError> {
        self.check_row(row)?;
        Ok(row.0 * self.row_bytes)
    }

    /// Bank-local coordinates of a global row.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfBounds`] if `row` is not in the module.
    pub fn bank_coord(&self, row: RowId) -> Result<BankCoord, DramError> {
        self.check_row(row)?;
        Ok(match self.mapping {
            AddressMapping::RowLinear => BankCoord {
                bank: (row.0 / self.rows_per_bank) as u32,
                row_in_bank: row.0 % self.rows_per_bank,
            },
            AddressMapping::BankInterleaved => BankCoord {
                bank: (row.0 % self.banks as u64) as u32,
                row_in_bank: row.0 / self.banks as u64,
            },
        })
    }

    /// Inverse of [`bank_coord`](Self::bank_coord).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfBounds`] if the coordinates do not name a
    /// row of this module.
    pub fn row_of_bank_coord(&self, coord: BankCoord) -> Result<RowId, DramError> {
        let row = match self.mapping {
            AddressMapping::RowLinear => coord.bank as u64 * self.rows_per_bank + coord.row_in_bank,
            AddressMapping::BankInterleaved => {
                coord.row_in_bank * self.banks as u64 + coord.bank as u64
            }
        };
        let row = RowId(row);
        if coord.bank >= self.banks || coord.row_in_bank >= self.rows_per_bank {
            return Err(DramError::RowOutOfBounds { row, rows: self.total_rows() });
        }
        self.check_row(row)?;
        Ok(row)
    }

    /// The rows physically adjacent to `row` inside its bank — the victim
    /// rows a RowHammer aggressor disturbs (Figure 1).
    ///
    /// Edge rows of a bank have a single neighbor.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfBounds`] if `row` is not in the module.
    pub fn adjacent_rows(&self, row: RowId) -> Result<Vec<RowId>, DramError> {
        let coord = self.bank_coord(row)?;
        let mut out = Vec::with_capacity(2);
        if coord.row_in_bank > 0 {
            out.push(
                self.row_of_bank_coord(BankCoord {
                    bank: coord.bank,
                    row_in_bank: coord.row_in_bank - 1,
                })
                .expect("neighbor row exists"),
            );
        }
        if coord.row_in_bank + 1 < self.rows_per_bank {
            out.push(
                self.row_of_bank_coord(BankCoord {
                    bank: coord.bank,
                    row_in_bank: coord.row_in_bank + 1,
                })
                .expect("neighbor row exists"),
            );
        }
        Ok(out)
    }

    /// The pair of aggressor rows that sandwich `victim` for double-sided
    /// hammering, when both exist.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfBounds`] if `victim` is not in the module.
    pub fn sandwich_of(&self, victim: RowId) -> Result<Option<(RowId, RowId)>, DramError> {
        let neighbors = self.adjacent_rows(victim)?;
        Ok(match neighbors.as_slice() {
            [a, b] => Some((*a, *b)),
            _ => None,
        })
    }

    /// Number of bits (cells) in one row.
    pub fn bits_per_row(&self) -> u64 {
        self.row_bytes * crate::BITS_PER_BYTE as u64
    }

    fn check_row(&self, row: RowId) -> Result<(), DramError> {
        if row.0 >= self.total_rows() {
            return Err(DramError::RowOutOfBounds { row, rows: self.total_rows() });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> DramGeometry {
        DramGeometry::new(1024, 64, 4, AddressMapping::RowLinear)
    }

    #[test]
    fn capacity_and_rows() {
        let g = geo();
        assert_eq!(g.total_rows(), 256);
        assert_eq!(g.capacity_bytes(), 256 * 1024);
        assert_eq!(g.bits_per_row(), 8192);
    }

    #[test]
    fn addr_row_round_trip() {
        let g = geo();
        for addr in [0u64, 1, 1023, 1024, 123_456, 256 * 1024 - 1] {
            let row = g.row_of_addr(addr).unwrap();
            let base = g.addr_of_row(row).unwrap();
            assert!(base <= addr && addr < base + g.row_bytes());
            assert_eq!(g.col_of_addr(addr), addr - base);
        }
    }

    #[test]
    fn out_of_bounds_addr_rejected() {
        let g = geo();
        assert!(matches!(g.row_of_addr(g.capacity_bytes()), Err(DramError::OutOfBounds { .. })));
    }

    #[test]
    fn row_linear_bank_coords() {
        let g = geo();
        assert_eq!(g.bank_coord(RowId(0)).unwrap(), BankCoord { bank: 0, row_in_bank: 0 });
        assert_eq!(g.bank_coord(RowId(63)).unwrap(), BankCoord { bank: 0, row_in_bank: 63 });
        assert_eq!(g.bank_coord(RowId(64)).unwrap(), BankCoord { bank: 1, row_in_bank: 0 });
        assert_eq!(g.bank_coord(RowId(255)).unwrap(), BankCoord { bank: 3, row_in_bank: 63 });
    }

    #[test]
    fn interleaved_bank_coords() {
        let g = DramGeometry::new(1024, 64, 4, AddressMapping::BankInterleaved);
        assert_eq!(g.bank_coord(RowId(0)).unwrap(), BankCoord { bank: 0, row_in_bank: 0 });
        assert_eq!(g.bank_coord(RowId(1)).unwrap(), BankCoord { bank: 1, row_in_bank: 0 });
        assert_eq!(g.bank_coord(RowId(4)).unwrap(), BankCoord { bank: 0, row_in_bank: 1 });
    }

    #[test]
    fn bank_coord_round_trip_both_mappings() {
        for mapping in [AddressMapping::RowLinear, AddressMapping::BankInterleaved] {
            let g = DramGeometry::new(1024, 64, 4, mapping);
            for r in 0..g.total_rows() {
                let coord = g.bank_coord(RowId(r)).unwrap();
                assert_eq!(g.row_of_bank_coord(coord).unwrap(), RowId(r));
            }
        }
    }

    #[test]
    fn adjacency_stays_within_bank() {
        let g = geo();
        // Row 63 is the last row of bank 0; row 64 is the first row of bank 1.
        // They are not neighbors even though their indices are consecutive.
        let n63 = g.adjacent_rows(RowId(63)).unwrap();
        assert_eq!(n63, vec![RowId(62)]);
        let n64 = g.adjacent_rows(RowId(64)).unwrap();
        assert_eq!(n64, vec![RowId(65)]);
    }

    #[test]
    fn interleaved_adjacency_strides_by_banks() {
        let g = DramGeometry::new(1024, 64, 4, AddressMapping::BankInterleaved);
        let n = g.adjacent_rows(RowId(5)).unwrap();
        assert_eq!(n, vec![RowId(1), RowId(9)]);
    }

    #[test]
    fn sandwich_requires_two_neighbors() {
        let g = geo();
        assert_eq!(g.sandwich_of(RowId(0)).unwrap(), None);
        assert_eq!(g.sandwich_of(RowId(1)).unwrap(), Some((RowId(0), RowId(2))));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_row_rejected() {
        DramGeometry::new(1000, 64, 4, AddressMapping::RowLinear);
    }
}
