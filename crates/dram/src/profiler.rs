//! System-level DRAM profiling (paper section 2.2).
//!
//! The cell type of every row can be determined from software alone: write
//! logic `1` to every cell, disable refresh, wait longer than the retention
//! time of ordinary cells, and read back. Cells that read `0` discharged
//! from the charged-`1` state — true-cells; cells that still read `1` are
//! holding the discharged-`0`... inverted — anti-cells. A majority vote per
//! row tolerates the sparse long-retention population.
//!
//! The same machinery profiles *retention* itself: the coldboot guard of
//! section 8 needs known long-retention true- and anti-cells as canaries.

use std::ops::Range;

use crate::cells::{CellType, CellTypeMap};
use crate::error::DramError;
use crate::geometry::RowId;
use crate::module::DramModule;

/// Configuration of a profiling run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilerConfig {
    /// How long to let cells decay with refresh disabled. Must exceed the
    /// retention of ordinary cells for reliable classification; the default
    /// (10 s) is double the default ordinary maximum.
    pub wait_ns: u64,
    /// Row range to profile, or `None` for the whole module.
    pub row_range: Option<Range<u64>>,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig { wait_ns: 10_000_000_000, row_range: None }
    }
}

impl ProfilerConfig {
    /// Profiles only rows in `range`.
    pub fn with_rows(mut self, range: Range<u64>) -> Self {
        self.row_range = Some(range);
        self
    }
}

/// Result of a cell-type profiling run.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTypeProfile {
    /// The inferred per-row map.
    pub map: CellTypeMap,
    /// First row of the profiled range.
    pub first_row: RowId,
    /// Per-row count of bits that voted against the row's inferred type
    /// (long-retention stragglers). High counts indicate an unreliable wait
    /// time.
    pub dissenting_bits: Vec<u64>,
}

impl CellTypeProfile {
    /// Largest dissent observed in any row.
    pub fn max_dissent(&self) -> u64 {
        self.dissenting_bits.iter().copied().max().unwrap_or(0)
    }
}

/// Runs the write-1s / wait / read-back cell-type identification.
///
/// Refresh is disabled for the duration of the wait and re-enabled before
/// returning. Data in the profiled range is destroyed (as in reality), so
/// profiling is a boot-time, one-shot procedure.
///
/// # Errors
///
/// Returns [`DramError::RowOutOfBounds`] if the configured row range exceeds
/// the module.
pub fn profile_cell_types(
    module: &mut DramModule,
    config: &ProfilerConfig,
) -> Result<CellTypeProfile, DramError> {
    let total_rows = module.geometry().total_rows();
    let range = config.row_range.clone().unwrap_or(0..total_rows);
    if range.end > total_rows {
        return Err(DramError::RowOutOfBounds { row: RowId(range.end - 1), rows: total_rows });
    }
    let row_bytes = module.geometry().row_bytes() as usize;
    for row in range.start..range.end {
        let addr = module.geometry().addr_of_row(RowId(row))?;
        module.fill(addr, row_bytes, 0xFF)?;
    }
    module.disable_refresh();
    module.advance(config.wait_ns);
    let mut types = Vec::with_capacity((range.end - range.start) as usize);
    let mut dissent = Vec::with_capacity(types.capacity());
    let mut data = vec![0u8; row_bytes];
    for row in range.start..range.end {
        let addr = module.geometry().addr_of_row(RowId(row))?;
        module.read_into(addr, &mut data)?;
        let ones: u64 = data.iter().map(|b| b.count_ones() as u64).sum();
        let bits = (row_bytes * crate::BITS_PER_BYTE) as u64;
        // Charged value was `1`. Decayed true-cells read 0, anti-cells 1.
        let inferred = if ones * 2 < bits { CellType::True } else { CellType::Anti };
        let votes_against = match inferred {
            CellType::True => ones,
            CellType::Anti => bits - ones,
        };
        types.push(inferred);
        dissent.push(votes_against);
    }
    module.enable_refresh();
    Ok(CellTypeProfile {
        map: CellTypeMap::from_rows(types, module.geometry().row_bytes()),
        first_row: RowId(range.start),
        dissenting_bits: dissent,
    })
}

/// A long-retention cell discovered by retention profiling, usable as a
/// coldboot canary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RetentionCanary {
    /// The cell's row.
    pub row: RowId,
    /// Bit index within the row.
    pub bit: u64,
    /// Polarity of the row, hence the cell.
    pub cell_type: CellType,
}

/// Result of a retention profiling run.
#[derive(Debug, Clone, PartialEq)]
pub struct RetentionProfile {
    /// Cells that still held their charged value after the probe wait.
    pub long_cells: Vec<RetentionCanary>,
    /// The probe wait used, nanoseconds.
    pub probe_ns: u64,
}

impl RetentionProfile {
    /// Long cells of a given polarity.
    pub fn of_type(&self, cell_type: CellType) -> impl Iterator<Item = &RetentionCanary> {
        self.long_cells.iter().filter(move |c| c.cell_type == cell_type)
    }
}

/// Finds long-retention cells in `rows` by writing the charged pattern,
/// waiting `probe_ns` without refresh, and reading back survivors.
///
/// `probe_ns` should comfortably exceed ordinary retention (default
/// classification wait works well) but stay below the long-cell minimum you
/// want to certify.
///
/// # Errors
///
/// Returns [`DramError::RowOutOfBounds`] if `rows` exceeds the module.
pub fn profile_retention(
    module: &mut DramModule,
    rows: Range<u64>,
    probe_ns: u64,
) -> Result<RetentionProfile, DramError> {
    let total_rows = module.geometry().total_rows();
    if rows.end > total_rows {
        return Err(DramError::RowOutOfBounds { row: RowId(rows.end - 1), rows: total_rows });
    }
    let row_bytes = module.geometry().row_bytes() as usize;
    // Write the *charged* pattern per row polarity: 1s to true-cells, 0s to
    // anti-cells.
    for row in rows.start..rows.end {
        let cell_type = module.cell_type_of_row(RowId(row))?;
        let addr = module.geometry().addr_of_row(RowId(row))?;
        let pattern = match cell_type {
            CellType::True => 0xFF,
            CellType::Anti => 0x00,
        };
        module.fill(addr, row_bytes, pattern)?;
    }
    module.disable_refresh();
    module.advance(probe_ns);
    let mut long_cells = Vec::new();
    let mut data = vec![0u8; row_bytes];
    for row in rows.start..rows.end {
        let cell_type = module.cell_type_of_row(RowId(row))?;
        let addr = module.geometry().addr_of_row(RowId(row))?;
        module.read_into(addr, &mut data)?;
        let charged = !cell_type.discharged_value();
        for (byte_idx, byte) in data.iter().enumerate() {
            if (charged && *byte == 0) || (!charged && *byte == 0xFF) {
                continue; // fast skip: no survivors in this byte
            }
            for bit_in_byte in 0..8u64 {
                let value = byte >> bit_in_byte & 1 == 1;
                if value == charged {
                    long_cells.push(RetentionCanary {
                        row: RowId(row),
                        bit: byte_idx as u64 * 8 + bit_in_byte,
                        cell_type,
                    });
                }
            }
        }
    }
    module.enable_refresh();
    Ok(RetentionProfile { long_cells, probe_ns })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    #[test]
    fn profiler_recovers_alternating_layout() {
        let mut m = DramModule::new(DramConfig::small_test());
        let profile = profile_cell_types(&mut m, &ProfilerConfig::default()).unwrap();
        let truth = m.ground_truth_cell_map();
        assert_eq!(profile.map, truth);
        assert!(m.refresh_enabled(), "profiler must restore refresh");
    }

    #[test]
    fn profiler_recovers_all_anti_layout() {
        let cfg = DramConfig::small_test().with_layout(crate::CellLayout::AllAnti);
        let mut m = DramModule::new(cfg);
        let profile = profile_cell_types(&mut m, &ProfilerConfig::default()).unwrap();
        assert!(profile.map.regions().iter().all(|r| r.cell_type == CellType::Anti));
    }

    #[test]
    fn profiler_row_range_subset() {
        let mut m = DramModule::new(DramConfig::small_test());
        let cfg = ProfilerConfig::default().with_rows(8..16);
        let profile = profile_cell_types(&mut m, &cfg).unwrap();
        assert_eq!(profile.map.rows(), 8);
        assert_eq!(profile.first_row, RowId(8));
        // Rows 8..16 are anti-cells in the small_test layout.
        assert!(profile.map.regions().iter().all(|r| r.cell_type == CellType::Anti));
    }

    #[test]
    fn profiler_rejects_out_of_range() {
        let mut m = DramModule::new(DramConfig::small_test());
        let cfg = ProfilerConfig::default().with_rows(0..1000);
        assert!(profile_cell_types(&mut m, &cfg).is_err());
    }

    #[test]
    fn dissent_is_bounded_by_long_cells() {
        let mut m = DramModule::new(DramConfig::small_test());
        let profile = profile_cell_types(&mut m, &ProfilerConfig::default()).unwrap();
        // long_fraction=1e-3 over 32768 bits/row ⇒ ≈33 expected dissenters.
        assert!(profile.max_dissent() < 200, "dissent {}", profile.max_dissent());
    }

    #[test]
    fn retention_profile_finds_sparse_long_cells() {
        let mut m = DramModule::new(DramConfig::small_test());
        let probe = m.config().retention.max_ns * 2;
        let profile = profile_retention(&mut m, 0..16, probe).unwrap();
        let bits_per_row = m.geometry().bits_per_row();
        let expected = 16.0 * bits_per_row as f64 * m.config().retention.long_fraction;
        let n = profile.long_cells.len() as f64;
        assert!(n > 0.0, "should find some long cells");
        assert!(n < expected * 4.0, "found {n}, expected about {expected}");
        // Both polarities represented (rows 0..8 true, 8..16 anti), usually.
        assert!(
            profile.of_type(CellType::True).count() + profile.of_type(CellType::Anti).count()
                == profile.long_cells.len()
        );
    }

    #[test]
    fn retention_canaries_survive_probe_but_not_forever() {
        let mut m = DramModule::new(DramConfig::small_test());
        let probe = m.config().retention.max_ns * 2;
        let profile = profile_retention(&mut m, 0..8, probe).unwrap();
        if profile.long_cells.is_empty() {
            return; // statistically possible on 8 rows; nothing to check
        }
        // Re-arm the canaries and power off past long retention: all decay.
        for c in &profile.long_cells {
            let addr = m.geometry().addr_of_row(c.row).unwrap() + c.bit / 8;
            m.write(addr, &[0xFF]).unwrap();
        }
        m.power_off(m.config().retention.long_max_ns + 1);
        for c in &profile.long_cells {
            let addr = m.geometry().addr_of_row(c.row).unwrap() + c.bit / 8;
            let byte = m.read(addr, 1).unwrap()[0];
            assert_eq!(byte >> (c.bit % 8) & 1, 0, "true canary should discharge to 0");
        }
    }
}
