//! Software RowHammer defenses hooked into the DRAM activation path.
//!
//! A [`RowDefense`] installed on a [`crate::DramModule`] is consulted on
//! every batch of row activations *before* the batch lands in the
//! per-window activation counter. The defense returns a [`Verdict`]:
//! allow the batch, throttle it (deny the remainder), or permit part of it
//! and then issue a targeted refresh of suspected aggressors — exactly the
//! three moves the software-defense literature uses (ANVIL samples and
//! refreshes, SoftTRR refreshes neighbors of protected page-table rows,
//! BlockHammer rate-limits blacklisted rows).
//!
//! The hook sits at the same seam as the module's own threshold check, so
//! a defense sees precisely what the hardware sees: backing rows (remap
//! already resolved), within-window counters, and the simulated clock.
//! Two contract points keep the simulation deterministic and honest:
//!
//! - **No defense, no change.** A module without a defense installed (and
//!   one with a pure-observer defense that always allows) takes the exact
//!   pre-hook code path: byte-identical contents, flip logs, clocks, and
//!   telemetry.
//! - **Defense refreshes are ordinary refreshes.** A targeted refresh
//!   issued from a verdict is accounted exactly like a manual
//!   [`crate::DramModule::refresh_neighbors_of`] call: victims recharge at
//!   the current clock, the aggressor's window counter resets, and no
//!   simulated time is charged (the refresh rides the normal command
//!   stream). `tests/defense_differential.rs` pins both properties.
//!
//! Throttled (denied) activations still cost `tRC`: the attacker issued
//! the request and the memory controller stalls it; the activation simply
//! never reaches the array, so it cannot contribute hammer progress.

use std::collections::HashSet;

use cta_telemetry::{Group, StatSource};

use crate::geometry::RowId;

/// What the module shows a defense on each activation-hook consultation.
///
/// All rows are *backing* rows: remapping is resolved before the hook
/// fires, so a defense reasons about the physical topology that
/// disturbance acts on.
#[derive(Debug, Clone)]
pub struct ActivationCtx<'a> {
    /// The row being activated.
    pub row: RowId,
    /// Activations proposed in this batch (not yet counted).
    pub count: u64,
    /// The row's within-window activation count before this batch.
    pub window_activations: u64,
    /// Current simulated time, nanoseconds.
    pub now_ns: u64,
    /// The module's disturbance threshold (activations per window).
    pub hammer_threshold: u64,
    /// Bank-adjacent neighbor rows of [`Self::row`] — the rows a
    /// disturbance would flip.
    pub neighbors: &'a [RowId],
}

/// A defense's decision about one activation batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Count the whole batch.
    Allow,
    /// Count at most `permitted` activations and deny the rest of the
    /// batch. Denied activations are tallied in
    /// [`DefenseStats::activations_denied`].
    Throttle {
        /// Activations of the batch allowed to land.
        permitted: u64,
    },
    /// Count `permitted` activations, then issue a targeted refresh of
    /// each row in `targets` (neighbors recharge, the target's window
    /// counter resets). The module re-consults the defense with whatever
    /// remains of the batch, so a defense can split even one huge burst.
    Refresh {
        /// Activations of the batch allowed to land before the refresh.
        permitted: u64,
        /// Suspected aggressor rows to refresh the neighbors of.
        targets: Vec<RowId>,
    },
}

/// Module-side accounting of a defense's interventions, kept separate
/// from [`crate::DramStats`] so installing a defense never perturbs the
/// pre-existing telemetry groups.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct DefenseStats {
    /// Activations presented to the hook (allowed + denied).
    pub activations_seen: u64,
    /// Activations denied by throttle verdicts.
    pub activations_denied: u64,
    /// Targeted refreshes issued from refresh verdicts.
    pub targeted_refreshes: u64,
    /// Hook consultations (one per verdict returned).
    pub consultations: u64,
}

/// A software RowHammer defense observing the DRAM activation stream.
///
/// Implementations must be deterministic: the verdict may depend only on
/// the context and the defense's own state, never on ambient randomness
/// or wall-clock time — campaigns replay byte-identically only if every
/// installed defense does.
pub trait RowDefense {
    /// Short stable identifier, e.g. `"softtrr"`.
    fn name(&self) -> &'static str;

    /// Decides the fate of one activation batch.
    fn on_activation(&mut self, ctx: &ActivationCtx<'_>) -> Verdict;

    /// Marks a (backing) row as protected — the kernel calls this for
    /// every page-table frame it allocates. Defenses that don't track
    /// victims ignore it.
    fn on_protect_row(&mut self, _row: RowId) {}

    /// Defense-specific counters, emitted under the `defense` telemetry
    /// group alongside [`DefenseStats`]. Keys must be stable and
    /// snake_case.
    fn counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }

    /// Clones the defense behind the trait object — forks of a defended
    /// module carry an independent copy of the defense state.
    fn box_clone(&self) -> Box<dyn RowDefense>;
}

impl Clone for Box<dyn RowDefense> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

impl std::fmt::Debug for Box<dyn RowDefense> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RowDefense({})", self.name())
    }
}

/// A defense snapshot for telemetry: module-side [`DefenseStats`] plus
/// the defense's own counters, recorded as the `defense` group. Only
/// emitted when a defense is installed, so undefended snapshots are
/// byte-identical to pre-hook ones.
#[derive(Debug, Clone)]
pub struct DefenseSnapshot {
    /// The installed defense's [`RowDefense::name`].
    pub name: &'static str,
    /// Module-side intervention accounting.
    pub stats: DefenseStats,
    /// The defense's own counters ([`RowDefense::counters`]).
    pub counters: Vec<(&'static str, u64)>,
}

impl StatSource for DefenseSnapshot {
    fn group(&self) -> &'static str {
        "defense"
    }

    fn record(&self, g: &mut Group) {
        g.set_text("name", self.name);
        g.add_u64("activations_seen", self.stats.activations_seen);
        g.add_u64("activations_denied", self.stats.activations_denied);
        g.add_u64("targeted_refreshes", self.stats.targeted_refreshes);
        g.add_u64("consultations", self.stats.consultations);
        for (key, value) in &self.counters {
            g.add_u64(key, *value);
        }
    }
}

// ---------------------------------------------------------------------
// Observer
// ---------------------------------------------------------------------

/// A pure observer: watches the activation stream, never intervenes.
///
/// Exists to prove the hook itself is free of side effects — a module
/// with an observer installed must behave byte-identically to one with
/// no defense at all (flips, clocks, contents, DRAM telemetry).
#[derive(Debug, Default, Clone)]
pub struct ObserverDefense {
    batches: u64,
    hottest_seen: u64,
}

impl ObserverDefense {
    /// Creates an observer with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RowDefense for ObserverDefense {
    fn name(&self) -> &'static str {
        "observer"
    }

    fn on_activation(&mut self, ctx: &ActivationCtx<'_>) -> Verdict {
        self.batches += 1;
        self.hottest_seen = self.hottest_seen.max(ctx.window_activations + ctx.count);
        Verdict::Allow
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![("observer_batches", self.batches), ("observer_hottest_seen", self.hottest_seen)]
    }

    fn box_clone(&self) -> Box<dyn RowDefense> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------
// ANVIL-style sampler
// ---------------------------------------------------------------------

/// Parameters for [`AnvilSamplerDefense`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnvilSamplerParams {
    /// Within-window activation count that flags a row as an aggressor
    /// when a sample observes it.
    pub activation_threshold: u64,
    /// Global activations between samples (the performance-counter
    /// interrupt period). Smaller samples more often.
    pub sample_every: u64,
}

impl Default for AnvilSamplerParams {
    fn default() -> Self {
        // The activation threshold matches cta_ext::AnvilConfig's default;
        // sampling every 4096 activations guarantees at least one sample
        // per threshold-sized burst.
        AnvilSamplerParams { activation_threshold: 16 * 1024, sample_every: 4096 }
    }
}

/// ANVIL as an inline activation-hook defense: counts global activations
/// and, at every sampling point, inspects the current row's within-window
/// count; past the threshold it refreshes the row's neighbors (losing the
/// accumulated hammer progress).
///
/// This is the hook-native port of the explicit polling API
/// `cta_ext::AnvilDetector` — same thresholds, same mitigation, but no
/// caller-driven `sample_and_mitigate` loop.
///
/// **Burst splitting.** A verdict never permits activations *past* the
/// next sampling point: a batch that crosses one is cut there
/// ([`Verdict::Refresh`] with `permitted` up to the sample point — with
/// an empty target list when the row looks cold — so the module
/// re-consults with the remainder). A sampler that instead permitted the
/// whole batch before sampling would let a single full-threshold burst
/// land unmitigated, which is exactly how the defense matrix's `anvil`
/// column used to collapse to `none` against one-shot hammer bursts.
#[derive(Debug, Clone)]
pub struct AnvilSamplerDefense {
    params: AnvilSamplerParams,
    seen: u64,
    alarms: u64,
}

impl AnvilSamplerDefense {
    /// Creates the sampler; `sample_every` of zero is treated as 1.
    pub fn new(params: AnvilSamplerParams) -> Self {
        let params = AnvilSamplerParams {
            sample_every: params.sample_every.max(1),
            activation_threshold: params.activation_threshold.max(1),
        };
        AnvilSamplerDefense { params, seen: 0, alarms: 0 }
    }

    /// Alarms raised so far (rows flagged at a sampling point).
    pub fn alarms(&self) -> u64 {
        self.alarms
    }
}

impl RowDefense for AnvilSamplerDefense {
    fn name(&self) -> &'static str {
        "anvil"
    }

    fn on_activation(&mut self, ctx: &ActivationCtx<'_>) -> Verdict {
        let until_sample = self.params.sample_every - self.seen % self.params.sample_every;
        if ctx.count < until_sample {
            // No sampling point falls inside this batch.
            self.seen += ctx.count;
            return Verdict::Allow;
        }
        // Cut the batch at the sampling point and inspect the row there;
        // the module re-consults with whatever remains, so even one
        // threshold-sized burst is examined every `sample_every`
        // activations.
        self.seen += until_sample;
        if ctx.window_activations + until_sample >= self.params.activation_threshold {
            self.alarms += 1;
            return Verdict::Refresh { permitted: until_sample, targets: vec![ctx.row] };
        }
        Verdict::Refresh { permitted: until_sample, targets: Vec::new() }
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![("anvil_alarms", self.alarms)]
    }

    fn box_clone(&self) -> Box<dyn RowDefense> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------
// SoftTRR
// ---------------------------------------------------------------------

/// Parameters for [`SoftTrrDefense`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftTrrParams {
    /// Within-window activation count of an aggressor adjacent to a
    /// protected row that triggers a targeted refresh. Must be below the
    /// module's hammer threshold to protect anything.
    pub trr_threshold: u64,
}

impl Default for SoftTrrParams {
    fn default() -> Self {
        // One eighth of the default hammer threshold (128 Ki): ample
        // margin while staying insensitive to benign row reuse.
        SoftTrrParams { trr_threshold: 16 * 1024 }
    }
}

/// SoftTRR: software target-row-refresh of page-table rows.
///
/// The kernel registers every page-table frame's row via
/// [`RowDefense::on_protect_row`]. When any row *adjacent to a protected
/// row* accumulates `trr_threshold` activations within a refresh window,
/// the defense permits exactly up to the threshold and then refreshes the
/// aggressor's neighborhood — resetting its hammer progress long before
/// the disturbance threshold. Rows not adjacent to protected rows are
/// never touched, so non-page-table victims see stock behavior.
#[derive(Debug, Default, Clone)]
pub struct SoftTrrDefense {
    params: SoftTrrParams,
    protected: HashSet<u64>,
    refreshes: u64,
}

impl SoftTrrDefense {
    /// Creates the defense; `trr_threshold` of zero is treated as 1.
    pub fn new(params: SoftTrrParams) -> Self {
        let params = SoftTrrParams { trr_threshold: params.trr_threshold.max(1) };
        SoftTrrDefense { params, protected: HashSet::new(), refreshes: 0 }
    }

    /// Number of rows currently registered as protected.
    pub fn protected_rows(&self) -> usize {
        self.protected.len()
    }

    /// Targeted refreshes issued so far.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }
}

impl RowDefense for SoftTrrDefense {
    fn name(&self) -> &'static str {
        "softtrr"
    }

    fn on_activation(&mut self, ctx: &ActivationCtx<'_>) -> Verdict {
        if !ctx.neighbors.iter().any(|n| self.protected.contains(&n.0)) {
            return Verdict::Allow;
        }
        let before = ctx.window_activations;
        if before + ctx.count < self.params.trr_threshold {
            return Verdict::Allow;
        }
        // Let the aggressor reach exactly the TRR threshold, then refresh
        // its neighborhood; the module re-consults with the remainder, so
        // even a single burst of hammer_threshold activations is split
        // into sub-threshold chunks.
        let permitted = self.params.trr_threshold.saturating_sub(before).min(ctx.count);
        self.refreshes += 1;
        Verdict::Refresh { permitted, targets: vec![ctx.row] }
    }

    fn on_protect_row(&mut self, row: RowId) {
        self.protected.insert(row.0);
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("softtrr_refreshes", self.refreshes),
            ("softtrr_protected_rows", self.protected.len() as u64),
        ]
    }

    fn box_clone(&self) -> Box<dyn RowDefense> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------
// BlockHammer
// ---------------------------------------------------------------------

/// Parameters for [`BlockHammerDefense`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockHammerParams {
    /// Within-window activation count past which a row is blacklisted and
    /// further activations are denied for the rest of the window. Must be
    /// below the module's hammer threshold to protect anything.
    pub blacklist_threshold: u64,
}

impl Default for BlockHammerParams {
    fn default() -> Self {
        // One sixteenth of the default hammer threshold: far above any
        // benign per-window reuse the workload suite produces, far below
        // what hammering needs.
        BlockHammerParams { blacklist_threshold: 8 * 1024 }
    }
}

/// BlockHammer-style activation-rate blacklisting.
///
/// Every row gets a per-window activation budget (`blacklist_threshold`);
/// a row that exhausts it is blacklisted for the remainder of the window
/// and further activations are throttled (denied — they still cost `tRC`
/// but never reach the array). Because the budget is below the hammer
/// threshold, a blacklisted row can never disturb its neighbors, for any
/// victim — no knowledge of protected regions required.
#[derive(Debug, Default, Clone)]
pub struct BlockHammerDefense {
    params: BlockHammerParams,
    blacklisted: u64,
}

impl BlockHammerDefense {
    /// Creates the defense; `blacklist_threshold` of zero is treated as 1.
    pub fn new(params: BlockHammerParams) -> Self {
        let params = BlockHammerParams { blacklist_threshold: params.blacklist_threshold.max(1) };
        BlockHammerDefense { params, blacklisted: 0 }
    }

    /// Blacklist events so far (one per row per window that exhausted its
    /// budget).
    pub fn blacklist_events(&self) -> u64 {
        self.blacklisted
    }
}

impl RowDefense for BlockHammerDefense {
    fn name(&self) -> &'static str {
        "blockhammer"
    }

    fn on_activation(&mut self, ctx: &ActivationCtx<'_>) -> Verdict {
        let budget = self.params.blacklist_threshold;
        let before = ctx.window_activations;
        if before >= budget {
            // Already blacklisted this window.
            return Verdict::Throttle { permitted: 0 };
        }
        if before + ctx.count <= budget {
            return Verdict::Allow;
        }
        // This batch exhausts the budget: one blacklist event per
        // row-window, counted at the transition.
        self.blacklisted += 1;
        Verdict::Throttle { permitted: budget - before }
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![("blockhammer_blacklisted", self.blacklisted)]
    }

    fn box_clone(&self) -> Box<dyn RowDefense> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(row: u64, count: u64, before: u64, neighbors: &[RowId]) -> ActivationCtx<'_> {
        ActivationCtx {
            row: RowId(row),
            count,
            window_activations: before,
            now_ns: 0,
            hammer_threshold: 128 * 1024,
            neighbors,
        }
    }

    #[test]
    fn observer_always_allows_and_counts() {
        let mut d = ObserverDefense::new();
        let n = [RowId(1), RowId(3)];
        assert_eq!(d.on_activation(&ctx(2, 100, 0, &n)), Verdict::Allow);
        assert_eq!(d.on_activation(&ctx(2, 50, 100, &n)), Verdict::Allow);
        assert_eq!(d.counters(), vec![("observer_batches", 2), ("observer_hottest_seen", 150)]);
    }

    #[test]
    fn anvil_sampler_flags_only_at_sample_points() {
        let p = AnvilSamplerParams { activation_threshold: 5000, sample_every: 4096 };
        let mut d = AnvilSamplerDefense::new(p);
        let n = [RowId(1)];
        // 100 activations: no sample point crossed, hot or not.
        assert_eq!(d.on_activation(&ctx(2, 100, 5000, &n)), Verdict::Allow);
        // Crossing a sample point with a hot row: the batch is cut at the
        // sample point (3996 = 4096 - 100 already seen) and the row is
        // refreshed there — never permitted to finish the burst first.
        let v = d.on_activation(&ctx(2, 4096, 5000, &n));
        assert_eq!(v, Verdict::Refresh { permitted: 3996, targets: vec![RowId(2)] });
        assert_eq!(d.alarms(), 1);
        // Crossing a sample point with a cold row: cut, but no refresh.
        let v = d.on_activation(&ctx(3, 4096, 0, &n));
        assert_eq!(v, Verdict::Refresh { permitted: 4096, targets: Vec::new() });
        assert_eq!(d.counters(), vec![("anvil_alarms", 1)]);
    }

    #[test]
    fn anvil_sampler_splits_a_single_full_threshold_burst() {
        // One burst as large as the module's hammer threshold, replayed
        // the way record_activation_defended re-consults: the row's
        // window count must stay far below the hammer threshold because
        // every crossing of the 16 Ki activation threshold triggers a
        // refresh (window reset) at the next sample point.
        let p = AnvilSamplerParams::default(); // 16 Ki threshold, 4096 sampling
        let mut d = AnvilSamplerDefense::new(p);
        let n = [RowId(1), RowId(3)];
        let hammer_threshold = 128 * 1024;
        let mut remaining: u64 = hammer_threshold;
        let mut window: u64 = 0;
        let mut peak: u64 = 0;
        while remaining > 0 {
            match d.on_activation(&ctx(2, remaining, window, &n)) {
                Verdict::Allow => {
                    window += remaining;
                    remaining = 0;
                }
                Verdict::Throttle { .. } => panic!("sampler never throttles"),
                Verdict::Refresh { permitted, targets } => {
                    assert!(permitted > 0, "sampler must make forward progress");
                    let take = permitted.min(remaining);
                    window += take;
                    remaining -= take;
                    peak = peak.max(window);
                    if targets.contains(&RowId(2)) {
                        window = 0; // module-side window reset
                    }
                }
            }
            peak = peak.max(window);
        }
        assert!(d.alarms() > 0, "a full-threshold burst must raise alarms");
        assert!(
            peak < hammer_threshold / 4,
            "window peaked at {peak}, close enough to {hammer_threshold} to flip"
        );
    }

    #[test]
    fn softtrr_ignores_rows_without_protected_neighbors() {
        let mut d = SoftTrrDefense::new(SoftTrrParams { trr_threshold: 8 });
        d.on_protect_row(RowId(10));
        let n = [RowId(1), RowId(3)];
        assert_eq!(d.on_activation(&ctx(2, 1_000_000, 0, &n)), Verdict::Allow);
        assert_eq!(d.refreshes(), 0);
    }

    #[test]
    fn softtrr_splits_bursts_at_the_trr_threshold() {
        let mut d = SoftTrrDefense::new(SoftTrrParams { trr_threshold: 8 });
        d.on_protect_row(RowId(3));
        let n = [RowId(1), RowId(3)];
        // Below threshold: allowed.
        assert_eq!(d.on_activation(&ctx(2, 7, 0, &n)), Verdict::Allow);
        // Crossing it: permit up to the threshold, refresh the aggressor.
        let v = d.on_activation(&ctx(2, 100, 7, &n));
        assert_eq!(v, Verdict::Refresh { permitted: 1, targets: vec![RowId(2)] });
        // After the (module-side) reset the remainder re-splits from 0.
        let v = d.on_activation(&ctx(2, 99, 0, &n));
        assert_eq!(v, Verdict::Refresh { permitted: 8, targets: vec![RowId(2)] });
        assert_eq!(d.refreshes(), 2);
        assert_eq!(d.protected_rows(), 1);
    }

    #[test]
    fn blockhammer_denies_past_the_budget() {
        let mut d = BlockHammerDefense::new(BlockHammerParams { blacklist_threshold: 10 });
        let n = [RowId(1)];
        assert_eq!(d.on_activation(&ctx(2, 10, 0, &n)), Verdict::Allow);
        assert_eq!(d.on_activation(&ctx(2, 5, 8, &n)), Verdict::Throttle { permitted: 2 });
        assert_eq!(d.on_activation(&ctx(2, 5, 10, &n)), Verdict::Throttle { permitted: 0 });
        assert_eq!(d.blacklist_events(), 1);
        assert_eq!(d.counters(), vec![("blockhammer_blacklisted", 1)]);
    }

    #[test]
    fn zero_parameters_are_clamped() {
        let a = AnvilSamplerDefense::new(AnvilSamplerParams {
            activation_threshold: 0,
            sample_every: 0,
        });
        assert_eq!(a.params.sample_every, 1);
        assert_eq!(a.params.activation_threshold, 1);
        let s = SoftTrrDefense::new(SoftTrrParams { trr_threshold: 0 });
        assert_eq!(s.params.trr_threshold, 1);
        let b = BlockHammerDefense::new(BlockHammerParams { blacklist_threshold: 0 });
        assert_eq!(b.params.blacklist_threshold, 1);
    }

    #[test]
    fn boxed_defenses_clone_independently() {
        let mut d = SoftTrrDefense::new(SoftTrrParams::default());
        d.on_protect_row(RowId(7));
        let boxed: Box<dyn RowDefense> = Box::new(d);
        let mut copy = boxed.clone();
        copy.on_protect_row(RowId(8));
        // The original is unaffected by mutations of the clone.
        assert_eq!(boxed.counters()[1], ("softtrr_protected_rows", 1));
        assert_eq!(copy.counters()[1], ("softtrr_protected_rows", 2));
    }
}
