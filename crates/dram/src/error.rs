use std::error::Error;
use std::fmt;

use crate::cells::CellType;
use crate::geometry::RowId;

/// Errors reported by the DRAM simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DramError {
    /// A physical address (or address + length) fell outside the module.
    OutOfBounds {
        /// Offending physical address.
        addr: u64,
        /// Length of the attempted access in bytes.
        len: usize,
        /// Capacity of the module in bytes.
        capacity: u64,
    },
    /// A row index exceeded the number of rows in the module.
    RowOutOfBounds {
        /// Offending row.
        row: RowId,
        /// Number of rows in the module.
        rows: u64,
    },
    /// A row remap was requested between rows of different cell types, which
    /// would break sense-amplifier polarity (paper section 7).
    RemapTypeMismatch {
        /// The faulty row being replaced.
        faulty: RowId,
        /// Cell type of the faulty row.
        faulty_type: CellType,
        /// The proposed spare row.
        spare: RowId,
        /// Cell type of the spare row.
        spare_type: CellType,
    },
    /// A spare row was already in use as a remap target.
    SpareInUse {
        /// The busy spare row.
        spare: RowId,
    },
    /// An operation that requires refresh to be disabled (e.g. retention
    /// profiling) was attempted while auto-refresh is running, or vice versa.
    RefreshStateConflict {
        /// Whether refresh was enabled at the time of the call.
        enabled: bool,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::OutOfBounds { addr, len, capacity } => write!(
                f,
                "physical access [{addr:#x}, {:#x}) exceeds module capacity {capacity:#x}",
                addr + *len as u64
            ),
            DramError::RowOutOfBounds { row, rows } => {
                write!(f, "row {row} out of bounds (module has {rows} rows)")
            }
            DramError::RemapTypeMismatch { faulty, faulty_type, spare, spare_type } => write!(
                f,
                "cannot remap {faulty_type:?}-cell row {faulty} onto {spare_type:?}-cell row {spare}"
            ),
            DramError::SpareInUse { spare } => {
                write!(f, "spare row {spare} is already mapped to another faulty row")
            }
            DramError::RefreshStateConflict { enabled } => write!(
                f,
                "operation conflicts with refresh state (refresh currently {})",
                if *enabled { "enabled" } else { "disabled" }
            ),
        }
    }
}

impl Error for DramError {}
