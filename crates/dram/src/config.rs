use crate::cells::CellLayout;
use crate::geometry::{AddressMapping, DramGeometry};
use crate::store::StoreBackend;

/// Parameters of the RowHammer disturbance model.
///
/// The defaults reproduce the bit-flip statistics the paper builds its
/// security analysis on (section 5, citing Kim et al. ISCA 2014 and
/// Drammer): a fraction `pf` of cells is vulnerable to disturbance at all,
/// and a vulnerable cell flips in the leakage direction of its polarity
/// except with probability `reverse_rate` (voltage-coupling effects).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisturbanceParams {
    /// Probability that a given cell is vulnerable to RowHammer (`Pf`).
    /// Paper default: `1e-4`.
    pub pf: f64,
    /// Probability that a vulnerable cell flips *against* its leakage
    /// direction (`P0→1` in true-cells / `P1→0` in anti-cells).
    /// Paper default: `0.002` (0.2%).
    pub reverse_rate: f64,
    /// Activations of an aggressor row within one refresh window required to
    /// fully disturb its neighbors (Kim et al. report ~139k; we default to a
    /// round 128k).
    pub hammer_threshold: u64,
    /// Row-cycle time in nanoseconds charged per activation.
    pub trc_ns: u64,
}

impl Default for DisturbanceParams {
    fn default() -> Self {
        DisturbanceParams {
            pf: 1e-4,
            reverse_rate: 0.002,
            hammer_threshold: 128 * 1024,
            trc_ns: 45,
        }
    }
}

impl DisturbanceParams {
    /// The paper's pessimistic future-scaling scenario (Table 3):
    /// `Pf` ×5 and reverse rate 0.5%.
    pub fn pessimistic() -> Self {
        DisturbanceParams { pf: 5e-4, reverse_rate: 0.005, ..Self::default() }
    }
}

/// Parameters of the retention-time model used for profiling and coldboot
/// experiments.
///
/// Retention times are per-cell, deterministic properties of a module.
/// Most cells retain data for seconds (section 2.1 cites milliseconds to
/// seconds); a small population of unusually strong cells retains far
/// longer, which the coldboot guard (section 8) must avoid relying on —
/// or rather, deliberately selects for its canaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetentionParams {
    /// Minimum retention of ordinary cells, nanoseconds.
    pub min_ns: u64,
    /// Maximum retention of ordinary cells, nanoseconds.
    pub max_ns: u64,
    /// Fraction of cells with unusually long retention.
    pub long_fraction: f64,
    /// Minimum retention of long-retention cells, nanoseconds.
    pub long_min_ns: u64,
    /// Maximum retention of long-retention cells, nanoseconds.
    pub long_max_ns: u64,
}

impl Default for RetentionParams {
    fn default() -> Self {
        RetentionParams {
            min_ns: 500_000_000,   // 0.5 s
            max_ns: 5_000_000_000, // 5 s
            long_fraction: 1e-3,
            long_min_ns: 30_000_000_000,  // 30 s
            long_max_ns: 120_000_000_000, // 120 s
        }
    }
}

/// Derivation version of the per-row vulnerability maps.
///
/// Unlike [`FlipEngine`] and [`StoreBackend`], which are pure
/// implementation knobs, the map generation version *selects which
/// deterministic universe the module lives in*: the two derivations
/// produce different (equally valid) vulnerability maps for the same seed.
/// Within either version, behavior is engine/backend-invariant, and the
/// wordwise evaluation of [`MapGen::Counter`] is differentially pinned
/// bit-for-bit against its scalar per-bit reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MapGen {
    /// v1 (default): per-row ChaCha stream — Poisson-sampled vulnerable-bit
    /// count, then position/direction draws. Cost is O(pf · bits_per_row)
    /// stream draws plus a sort, which wins at sparse paper-default `pf`.
    #[default]
    Stream,
    /// v2: counter-mode per-cell Bernoulli — every cell is tested with one
    /// block-generated hash (`to_unit(hash3(seed ^ VULN, row, bit)) < pf`,
    /// direction by a second salted hash). Cost is O(bits_per_row) single
    /// mixes with no sort, generated a word at a time; it wins at the dense
    /// `pf` of templating stress experiments and is the derivation the
    /// `datapath` benchmarks record.
    Counter,
}

/// Implementation selector for the disturbance and decay inner loops.
///
/// Both engines simulate *bit-identical* behavior — same row contents, same
/// flip-log order, same statistics, same simulated time. The scalar engine
/// is the reference implementation the wordwise engine is differentially
/// tested against; the wordwise engine compiles each row's vulnerability
/// map into `u64` bitplane masks and applies them with AND/OR + popcount.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FlipEngine {
    /// Per-[`crate::VulnerableBit`] scalar loop (reference implementation).
    Scalar,
    /// Mask-compiled wordwise bitplane engine.
    #[default]
    Wordwise,
}

/// Full configuration of a simulated DRAM module.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Physical organization.
    pub geometry: DramGeometry,
    /// True/anti-cell layout.
    pub layout: CellLayout,
    /// RowHammer model parameters.
    pub disturbance: DisturbanceParams,
    /// Retention model parameters.
    pub retention: RetentionParams,
    /// Auto-refresh interval in nanoseconds (JEDEC: 64 ms).
    pub refresh_interval_ns: u64,
    /// Module seed fixing the vulnerability and retention maps.
    pub seed: u64,
    /// Row-storage backend. Changes performance and fork cost only; every
    /// backend simulates bit-identical behavior.
    pub backend: StoreBackend,
    /// Disturbance/decay inner-loop implementation. Changes performance
    /// only; both engines simulate bit-identical behavior.
    pub flip_engine: FlipEngine,
    /// Vulnerability-map derivation version. Changes *which* deterministic
    /// maps the seed fixes (see [`MapGen`]); within a version, behavior is
    /// engine- and backend-invariant.
    pub map_gen: MapGen,
}

/// JEDEC refresh interval: 64 ms.
pub const REFRESH_INTERVAL_NS: u64 = 64_000_000;

impl DramConfig {
    /// A paper-scale module: 128 KiB rows, alternation every 512 rows.
    ///
    /// `capacity_bytes` must be a multiple of the row size; banks default
    /// to 8 with row-linear mapping so that physical adjacency equals
    /// hammer adjacency, matching the paper's presentation.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is not a positive multiple of
    /// `8 banks × 128 KiB`.
    pub fn paper_scale(capacity_bytes: u64, seed: u64) -> Self {
        const ROW: u64 = 128 * 1024;
        const BANKS: u32 = 8;
        assert!(
            capacity_bytes > 0 && capacity_bytes.is_multiple_of(ROW * BANKS as u64),
            "capacity must be a positive multiple of banks*row_bytes"
        );
        let rows_per_bank = capacity_bytes / ROW / BANKS as u64;
        DramConfig {
            geometry: DramGeometry::new(ROW, rows_per_bank, BANKS, AddressMapping::RowLinear),
            layout: CellLayout::alternating_512(),
            disturbance: DisturbanceParams::default(),
            retention: RetentionParams::default(),
            refresh_interval_ns: REFRESH_INTERVAL_NS,
            seed,
            backend: StoreBackend::default(),
            flip_engine: FlipEngine::default(),
            map_gen: MapGen::default(),
        }
    }

    /// A small module for unit tests: 4 KiB rows, 1 bank, 64 rows
    /// (256 KiB total), alternation every 8 rows, aggressive `pf` so flips
    /// actually occur in small experiments.
    pub fn small_test() -> Self {
        DramConfig {
            geometry: DramGeometry::new(4096, 64, 1, AddressMapping::RowLinear),
            layout: CellLayout::Alternating { period_rows: 8, first: crate::CellType::True },
            disturbance: DisturbanceParams { pf: 0.02, ..DisturbanceParams::default() },
            retention: RetentionParams::default(),
            refresh_interval_ns: REFRESH_INTERVAL_NS,
            seed: 0xC0FFEE,
            backend: StoreBackend::default(),
            flip_engine: FlipEngine::default(),
            map_gen: MapGen::default(),
        }
    }

    /// Builder-style override of the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style override of the cell layout.
    pub fn with_layout(mut self, layout: CellLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Builder-style override of the disturbance parameters.
    pub fn with_disturbance(mut self, disturbance: DisturbanceParams) -> Self {
        self.disturbance = disturbance;
        self
    }

    /// Builder-style override of the row-storage backend.
    pub fn with_backend(mut self, backend: StoreBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Builder-style override of the flip engine.
    pub fn with_flip_engine(mut self, engine: FlipEngine) -> Self {
        self.flip_engine = engine;
        self
    }

    /// Builder-style override of the map-generation version.
    pub fn with_map_gen(mut self, map_gen: MapGen) -> Self {
        self.map_gen = map_gen;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellType;

    #[test]
    fn default_disturbance_matches_paper() {
        let d = DisturbanceParams::default();
        assert_eq!(d.pf, 1e-4);
        assert_eq!(d.reverse_rate, 0.002);
    }

    #[test]
    fn pessimistic_matches_table3() {
        let d = DisturbanceParams::pessimistic();
        assert_eq!(d.pf, 5e-4);
        assert_eq!(d.reverse_rate, 0.005);
    }

    #[test]
    fn paper_scale_dimensions() {
        let c = DramConfig::paper_scale(8 << 30, 1);
        assert_eq!(c.geometry.capacity_bytes(), 8 << 30);
        assert_eq!(c.geometry.row_bytes(), 128 * 1024);
        assert_eq!(c.geometry.banks(), 8);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn paper_scale_rejects_ragged_capacity() {
        DramConfig::paper_scale((8 << 30) + 1, 1);
    }

    #[test]
    fn builders_override() {
        let c = DramConfig::small_test().with_seed(9).with_layout(CellLayout::AllAnti);
        assert_eq!(c.seed, 9);
        assert_eq!(c.layout.cell_type(crate::RowId(0)), CellType::Anti);
    }
}
