//! Word-level access to row bytes for the bitplane flip engine.
//!
//! The engine views a row as a sequence of `u64` words: word `w` covers bit
//! indices `[64w, 64w + 64)`, and bit `b` of the word is row bit `64w + b`.
//! Because rows are little-endian byte arrays with bit 0 at the LSB of byte
//! 0, this is exactly `u64::from_le_bytes` over bytes `[8w, 8w + 8)` — the
//! same layout [`crate::DramModule::read_u64`] exposes to software.
//!
//! Rows shorter than 8 bytes (or, in principle, any row whose byte count is
//! not a multiple of 8) make the last word a *tail word*: it is loaded
//! zero-padded and stored back truncated, so engine masks must never set
//! padding bits. Mask builders in `vuln.rs`/`retention.rs` only set bits
//! below the row's bit count, which keeps the padding untouched.

/// Number of `u64` words needed to cover `nbits` bits.
pub(crate) fn words_for_bits(nbits: usize) -> usize {
    nbits.div_ceil(64)
}

/// Loads word `w` of `bytes`, zero-padding past the end of the slice.
#[inline]
pub(crate) fn load_word(bytes: &[u8], w: usize) -> u64 {
    let lo = w * 8;
    let hi = (lo + 8).min(bytes.len());
    let mut buf = [0u8; 8];
    buf[..hi - lo].copy_from_slice(&bytes[lo..hi]);
    u64::from_le_bytes(buf)
}

/// Stores word `w` into `bytes`, truncating past the end of the slice.
///
/// Truncation is only sound when the dropped high bits are zero — i.e. when
/// the caller never set padding bits of a tail word. Debug builds check.
#[inline]
pub(crate) fn store_word(bytes: &mut [u8], w: usize, word: u64) {
    let lo = w * 8;
    let hi = (lo + 8).min(bytes.len());
    debug_assert!(
        hi - lo == 8 || word >> (8 * (hi - lo)) == 0,
        "tail-word store would drop set padding bits"
    );
    bytes[lo..hi].copy_from_slice(&word.to_le_bytes()[..hi - lo]);
}

/// A mask with the low `nbits` bits set, split into words — the "every cell
/// of the row" plane the full-decay path starts from.
pub(crate) fn ones_mask(nbits: usize) -> Vec<u64> {
    let words = words_for_bits(nbits);
    let mut mask = vec![!0u64; words];
    if !nbits.is_multiple_of(64) {
        mask[words - 1] = (1u64 << (nbits % 64)) - 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_layout_matches_bit_helpers() {
        // Bit 0 = LSB of byte 0; bit 9 = bit 1 of byte 1 = word bit 9.
        let mut bytes = vec![0u8; 16];
        crate::retention::set_bit(&mut bytes, 9, true);
        crate::retention::set_bit(&mut bytes, 64, true);
        assert_eq!(load_word(&bytes, 0), 1 << 9);
        assert_eq!(load_word(&bytes, 1), 1);
    }

    #[test]
    fn round_trip_full_words() {
        let mut bytes = vec![0u8; 24];
        store_word(&mut bytes, 1, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(load_word(&mut bytes, 1), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(load_word(&mut bytes, 0), 0);
        assert_eq!(load_word(&mut bytes, 2), 0);
    }

    #[test]
    fn tail_word_loads_zero_padded_and_stores_truncated() {
        let mut bytes = vec![0xFFu8; 4]; // a 32-bit row: one tail word
        assert_eq!(load_word(&bytes, 0), 0xFFFF_FFFF);
        store_word(&mut bytes, 0, 0x1234_5678);
        assert_eq!(bytes, vec![0x78, 0x56, 0x34, 0x12]);
    }

    #[test]
    fn ones_mask_covers_exactly_nbits() {
        assert_eq!(ones_mask(128), vec![!0u64, !0u64]);
        assert_eq!(ones_mask(32), vec![0xFFFF_FFFF]);
        assert_eq!(ones_mask(65), vec![!0u64, 1]);
        let total: u32 = ones_mask(100).iter().map(|w| w.count_ones()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn words_for_bits_rounds_up() {
        assert_eq!(words_for_bits(0), 0);
        assert_eq!(words_for_bits(1), 1);
        assert_eq!(words_for_bits(64), 1);
        assert_eq!(words_for_bits(65), 2);
    }
}
