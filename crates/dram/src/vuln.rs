use std::fmt;
use std::rc::Rc;

use rand::Rng;

use crate::bounded::BoundedCache;
use crate::cells::{CellLayout, CellType};
use crate::config::{DisturbanceParams, FlipEngine, MapGen};
use crate::geometry::{DramGeometry, RowId};
use crate::rng::{hash3, poisson, stream_rng, to_unit, unit_cutoff, RowBlocks};

/// Default capacity (in rows) of the per-row model caches. Generous enough
/// that every workload in the repo runs eviction-free, small enough that a
/// templating sweep over an arbitrarily large module stays O(capacity).
pub(crate) const MODEL_CACHE_ROWS: usize = 4096;

/// Seed salt of the vulnerability map ("VULN"): keys the per-row stream in
/// [`MapGen::Stream`] and the per-cell Bernoulli hash in [`MapGen::Counter`].
const VULN_SALT: u64 = 0x5655_4C4E;

/// Seed salt of the [`MapGen::Counter`] flip-direction hash ("DIRV").
const DIR_SALT: u64 = 0x4449_5256;

/// Direction of a disturbance-induced bit flip, in logic-value terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlipDirection {
    /// A stored `1` becomes `0` (the leakage direction of true-cells).
    OneToZero,
    /// A stored `0` becomes `1` (the leakage direction of anti-cells).
    ZeroToOne,
}

impl FlipDirection {
    /// The leakage-aligned ("primary") flip direction of a cell type.
    pub fn primary_for(cell: CellType) -> FlipDirection {
        match cell {
            CellType::True => FlipDirection::OneToZero,
            CellType::Anti => FlipDirection::ZeroToOne,
        }
    }

    /// The opposite direction.
    pub fn opposite(self) -> FlipDirection {
        match self {
            FlipDirection::OneToZero => FlipDirection::ZeroToOne,
            FlipDirection::ZeroToOne => FlipDirection::OneToZero,
        }
    }

    /// The stored logic value this flip fires on.
    pub fn source_value(self) -> bool {
        matches!(self, FlipDirection::OneToZero)
    }
}

impl fmt::Display for FlipDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlipDirection::OneToZero => f.write_str("1→0"),
            FlipDirection::ZeroToOne => f.write_str("0→1"),
        }
    }
}

/// One cell of a row that is vulnerable to RowHammer disturbance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VulnerableBit {
    /// Bit index within the row (0 = LSB of byte 0).
    pub bit: u64,
    /// The only direction this cell can flip when disturbed.
    pub direction: FlipDirection,
}

/// One active word of a row's compiled bitplanes: the `1→0` and `0→1`
/// vulnerability masks for row bits `[64·word, 64·word + 64)`.
///
/// Vulnerable cells are sparse (`pf` of ~1e-4 puts ~3 bits in a 4 KiB row),
/// so the planes are stored as the ascending list of words where either
/// mask is non-zero rather than as dense arrays — the disturb loop then
/// skips every untouched word of the row for free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PlaneWord {
    /// Word index within the row (bit `b` of the masks is row bit
    /// `64·word + b`).
    pub(crate) word: u32,
    /// Cells that can flip `1→0`.
    pub(crate) otz: u64,
    /// Cells that can flip `0→1`.
    pub(crate) zto: u64,
}

/// The fixed vulnerability map of a module.
///
/// Which cells are flippable — and in which direction — is a *manufacturing
/// property* of a DRAM module: stable across reboots, discoverable by
/// "memory templating" (Drammer), and keyed here on the module seed so that
/// experiments are reproducible. Maps are generated lazily per row and
/// memoized.
///
/// Per the measured statistics the model is parameterized on
/// ([`DisturbanceParams`]): each cell is vulnerable with probability `pf`,
/// and a vulnerable cell flips in its polarity's leakage direction except
/// with probability `reverse_rate` (section 5: `P0→1 = 0.2%` in true-cells).
#[derive(Clone)]
pub struct VulnerabilityModel {
    seed: u64,
    params: DisturbanceParams,
    layout: CellLayout,
    bits_per_row: u64,
    map_gen: MapGen,
    engine: FlipEngine,
    /// Integer thresholds of the [`MapGen::Counter`] Bernoulli tests,
    /// precomputed once from `params` (see [`unit_cutoff`]).
    pf_cutoff: u64,
    rev_cutoff: u64,
    cache: BoundedCache<u64, Rc<[VulnerableBit]>>,
    planes: BoundedCache<u64, Rc<[PlaneWord]>>,
}

impl fmt::Debug for VulnerabilityModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VulnerabilityModel")
            .field("seed", &self.seed)
            .field("params", &self.params)
            .field("bits_per_row", &self.bits_per_row)
            .field("cached_rows", &self.cache.len())
            .finish()
    }
}

impl VulnerabilityModel {
    /// Creates the model for a module with the default [`MapGen::Stream`]
    /// derivation.
    pub fn new(
        geometry: &DramGeometry,
        layout: CellLayout,
        params: DisturbanceParams,
        seed: u64,
    ) -> Self {
        Self::with_modes(geometry, layout, params, seed, MapGen::default(), FlipEngine::default())
    }

    /// Creates the model with an explicit map derivation and (for
    /// [`MapGen::Counter`]) evaluation engine. The engine never changes
    /// *which* map a `(seed, map_gen)` pair fixes — only how it is built;
    /// the differential suites pin the two engines byte-identical.
    pub fn with_modes(
        geometry: &DramGeometry,
        layout: CellLayout,
        params: DisturbanceParams,
        seed: u64,
        map_gen: MapGen,
        engine: FlipEngine,
    ) -> Self {
        VulnerabilityModel {
            seed,
            params,
            layout,
            bits_per_row: geometry.bits_per_row(),
            map_gen,
            engine,
            pf_cutoff: unit_cutoff(params.pf),
            rev_cutoff: unit_cutoff(params.reverse_rate),
            cache: BoundedCache::new(MODEL_CACHE_ROWS),
            planes: BoundedCache::new(MODEL_CACHE_ROWS),
        }
    }

    /// The disturbance parameters the model was built with.
    pub fn params(&self) -> DisturbanceParams {
        self.params
    }

    /// The vulnerable bits of `row`, sorted by bit index.
    ///
    /// Results are memoized; the slice is shared, not recomputed.
    pub fn vulnerable_bits(&mut self, row: RowId) -> Rc<[VulnerableBit]> {
        if let Some(bits) = self.cache.get(&row.0) {
            return Rc::clone(bits);
        }
        let bits = self.generate_row(row);
        self.cache.insert_weighted(
            row.0,
            Rc::clone(&bits),
            std::mem::size_of_val::<[VulnerableBit]>(&bits),
        );
        bits
    }

    /// Whether `row` has at least one vulnerable bit.
    pub fn row_is_vulnerable(&mut self, row: RowId) -> bool {
        !self.vulnerable_bits(row).is_empty()
    }

    /// The compiled bitplanes of `row`, built from `bits` (which must be
    /// the row's [`Self::vulnerable_bits`]) on first use and memoized.
    pub(crate) fn planes(&mut self, row: RowId, bits: &[VulnerableBit]) -> Rc<[PlaneWord]> {
        if let Some(planes) = self.planes.get(&row.0) {
            return Rc::clone(planes);
        }
        let mut words: Vec<PlaneWord> = Vec::new();
        for vb in bits {
            let word = (vb.bit / 64) as u32;
            if words.last().map(|pw| pw.word) != Some(word) {
                words.push(PlaneWord { word, otz: 0, zto: 0 });
            }
            let mask = 1u64 << (vb.bit % 64);
            let pw = words.last_mut().expect("pushed above");
            match vb.direction {
                FlipDirection::OneToZero => pw.otz |= mask,
                FlipDirection::ZeroToOne => pw.zto |= mask,
            }
        }
        let planes: Rc<[PlaneWord]> = words.into();
        self.planes.insert_weighted(
            row.0,
            Rc::clone(&planes),
            std::mem::size_of_val::<[PlaneWord]>(&planes),
        );
        planes
    }

    /// Rows currently memoized (bit maps; the planes cache tracks it).
    pub(crate) fn cached_rows(&self) -> usize {
        self.cache.len().max(self.planes.len())
    }

    /// Total cache evictions (bit maps + compiled planes) since creation.
    pub(crate) fn evictions(&self) -> u64 {
        self.cache.evictions() + self.planes.evictions()
    }

    /// Payload bytes retained across both per-row caches, the engine-local
    /// compiled planes included.
    pub(crate) fn cache_bytes(&self) -> usize {
        self.cache.bytes() + self.planes.bytes()
    }

    /// Payload bytes of the bit-map cache alone — the engine-invariant
    /// model content mirrored into the `vuln_cache_bytes` gauge.
    pub(crate) fn map_bytes(&self) -> usize {
        self.cache.bytes()
    }

    /// Rebounds both per-row caches to `rows` entries.
    pub(crate) fn set_cache_capacity(&mut self, rows: usize) {
        self.cache.set_capacity(rows);
        self.planes.set_capacity(rows);
    }

    /// Sets or clears the payload-byte budget of both per-row caches.
    pub(crate) fn set_cache_bytes(&mut self, budget: Option<usize>) {
        self.cache.set_byte_budget(budget);
        self.planes.set_byte_budget(budget);
    }

    fn generate_row(&self, row: RowId) -> Rc<[VulnerableBit]> {
        match self.map_gen {
            MapGen::Stream => self.generate_row_stream(row),
            MapGen::Counter => match self.engine {
                FlipEngine::Scalar => self.generate_row_counter_scalar(row),
                FlipEngine::Wordwise => self.generate_row_counter_wordwise(row),
            },
        }
    }

    /// The v1 ([`MapGen::Stream`]) derivation: Poisson count + position /
    /// direction draws from a per-row ChaCha stream. O(pf · bits) draws.
    fn generate_row_stream(&self, row: RowId) -> Rc<[VulnerableBit]> {
        let mut rng = stream_rng(self.seed ^ VULN_SALT, row.0);
        let lambda = self.bits_per_row as f64 * self.params.pf;
        let n = poisson(&mut rng, lambda);
        let primary = FlipDirection::primary_for(self.layout.cell_type(row));
        let mut bits: Vec<VulnerableBit> = (0..n)
            .map(|_| {
                let bit = rng.gen_range(0..self.bits_per_row);
                let direction = if rng.gen::<f64>() < self.params.reverse_rate {
                    primary.opposite()
                } else {
                    primary
                };
                VulnerableBit { bit, direction }
            })
            .collect();
        bits.sort_by_key(|b| b.bit);
        bits.dedup_by_key(|b| b.bit);
        bits.into()
    }

    /// The v2 ([`MapGen::Counter`]) derivation, scalar reference: one
    /// `hash3` + genuine-f64 threshold test per cell for vulnerability, a
    /// second salted hash for direction. The wordwise builder below must be
    /// byte-identical to this loop.
    fn generate_row_counter_scalar(&self, row: RowId) -> Rc<[VulnerableBit]> {
        let primary = FlipDirection::primary_for(self.layout.cell_type(row));
        let mut bits: Vec<VulnerableBit> = Vec::new();
        for bit in 0..self.bits_per_row {
            if to_unit(hash3(self.seed ^ VULN_SALT, row.0, bit)) < self.params.pf {
                let reverse =
                    to_unit(hash3(self.seed ^ DIR_SALT, row.0, bit)) < self.params.reverse_rate;
                let direction = if reverse { primary.opposite() } else { primary };
                bits.push(VulnerableBit { bit, direction });
            }
        }
        bits.into()
    }

    /// The v2 derivation, wordwise builder: [`RowBlocks`] Bernoulli words
    /// against the precomputed integer cutoffs, scanned a word at a time.
    /// Emits bits in ascending order by construction (no sort); the
    /// direction word is only derived for words with at least one
    /// vulnerable cell.
    fn generate_row_counter_wordwise(&self, row: RowId) -> Rc<[VulnerableBit]> {
        let primary = FlipDirection::primary_for(self.layout.cell_type(row));
        let vuln = RowBlocks::new(self.seed ^ VULN_SALT, row.0);
        let dir = RowBlocks::new(self.seed ^ DIR_SALT, row.0);
        // Expected pf · bits entries; the slack keeps dense templating maps
        // (pf 0.4, ~13k bits) from reallocating mid-build.
        let expected = (self.params.pf * self.bits_per_row as f64 * 1.1) as usize + 8;
        let mut bits: Vec<VulnerableBit> =
            Vec::with_capacity(expected.min(self.bits_per_row as usize));
        for w in 0..self.bits_per_row.div_ceil(64) {
            let mut mask = vuln.bernoulli_word(w, self.pf_cutoff, self.bits_per_row);
            while mask != 0 {
                let b = mask.trailing_zeros() as u64;
                mask &= mask - 1;
                let bit = 64 * w + b;
                // Direction hash only for vulnerable cells — identical to
                // the word-batched draw, which derives each lane from the
                // same counter ([`RowBlocks::cell`]), but pays one mix per
                // vulnerable bit instead of 64 per occupied word.
                let direction = if dir.cell(bit) >> 11 < self.rev_cutoff {
                    primary.opposite()
                } else {
                    primary
                };
                bits.push(VulnerableBit { bit, direction });
            }
        }
        bits.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::AddressMapping;

    fn model(pf: f64, layout: CellLayout) -> VulnerabilityModel {
        let g = DramGeometry::new(128 * 1024, 64, 1, AddressMapping::RowLinear);
        let params = DisturbanceParams { pf, ..DisturbanceParams::default() };
        VulnerabilityModel::new(&g, layout, params, 0xABCD)
    }

    #[test]
    fn deterministic_per_row() {
        let mut m1 = model(1e-4, CellLayout::AllTrue);
        let mut m2 = model(1e-4, CellLayout::AllTrue);
        assert_eq!(&*m1.vulnerable_bits(RowId(7)), &*m2.vulnerable_bits(RowId(7)));
    }

    #[test]
    fn different_rows_differ() {
        let mut m = model(1e-3, CellLayout::AllTrue);
        assert_ne!(&*m.vulnerable_bits(RowId(1)), &*m.vulnerable_bits(RowId(2)));
    }

    #[test]
    fn density_tracks_pf() {
        let mut m = model(1e-4, CellLayout::AllTrue);
        let bits_per_row = 128 * 1024 * 8;
        let total: usize = (0..64).map(|r| m.vulnerable_bits(RowId(r)).len()).sum();
        let expected = 64.0 * bits_per_row as f64 * 1e-4;
        let observed = total as f64;
        assert!(
            (observed - expected).abs() < expected * 0.25,
            "expected≈{expected} observed={observed}"
        );
    }

    #[test]
    fn true_cell_rows_mostly_flip_one_to_zero() {
        let mut m = model(1e-3, CellLayout::AllTrue);
        let mut primary = 0usize;
        let mut reverse = 0usize;
        for r in 0..64 {
            for b in m.vulnerable_bits(RowId(r)).iter() {
                match b.direction {
                    FlipDirection::OneToZero => primary += 1,
                    FlipDirection::ZeroToOne => reverse += 1,
                }
            }
        }
        assert!(primary > 0);
        let frac = reverse as f64 / (primary + reverse) as f64;
        assert!(frac < 0.02, "reverse fraction {frac} should be near 0.002");
    }

    #[test]
    fn anti_cell_rows_mostly_flip_zero_to_one() {
        let mut m = model(1e-3, CellLayout::AllAnti);
        let mut zto = 0usize;
        let mut otz = 0usize;
        for r in 0..64 {
            for b in m.vulnerable_bits(RowId(r)).iter() {
                match b.direction {
                    FlipDirection::ZeroToOne => zto += 1,
                    FlipDirection::OneToZero => otz += 1,
                }
            }
        }
        assert!(zto > otz * 10);
    }

    #[test]
    fn bits_sorted_and_unique() {
        let mut m = model(1e-3, CellLayout::AllTrue);
        let bits = m.vulnerable_bits(RowId(0));
        for w in bits.windows(2) {
            assert!(w[0].bit < w[1].bit);
        }
    }

    #[test]
    fn planes_compile_exactly_the_vulnerable_bits() {
        let mut m = model(1e-3, CellLayout::AllTrue);
        for r in 0..64 {
            let bits = m.vulnerable_bits(RowId(r));
            let planes = m.planes(RowId(r), &bits);
            // Ascending, non-empty active words.
            for w in planes.windows(2) {
                assert!(w[0].word < w[1].word);
            }
            assert!(planes.iter().all(|pw| pw.otz | pw.zto != 0));
            // Decompiling the planes recovers the bit list exactly.
            let mut recovered = Vec::new();
            for pw in planes.iter() {
                for b in 0..64u64 {
                    let bit = 64 * pw.word as u64 + b;
                    if pw.otz >> b & 1 == 1 {
                        recovered.push(VulnerableBit { bit, direction: FlipDirection::OneToZero });
                    }
                    if pw.zto >> b & 1 == 1 {
                        recovered.push(VulnerableBit { bit, direction: FlipDirection::ZeroToOne });
                    }
                }
            }
            assert_eq!(recovered, bits.to_vec(), "row {r}");
        }
    }

    #[test]
    fn planes_are_memoized_and_bounded() {
        let mut m = model(1e-3, CellLayout::AllTrue);
        m.set_cache_capacity(4);
        for r in 0..16 {
            let bits = m.vulnerable_bits(RowId(r));
            let _ = m.planes(RowId(r), &bits);
        }
        assert_eq!(m.cached_rows(), 4);
        assert_eq!(m.evictions(), 2 * 12, "both caches evict in lockstep here");
    }

    fn counter_model(
        row_bytes: u64,
        pf: f64,
        layout: CellLayout,
        engine: FlipEngine,
    ) -> VulnerabilityModel {
        let g = DramGeometry::new(row_bytes, 64, 1, AddressMapping::RowLinear);
        let params = DisturbanceParams { pf, ..DisturbanceParams::default() };
        VulnerabilityModel::with_modes(&g, layout, params, 0xABCD, MapGen::Counter, engine)
    }

    #[test]
    fn counter_engines_bit_identical_including_tail_words() {
        // 4096-byte rows exercise full 64-bit words; 4/2/1-byte rows force
        // ragged tail words of 32/16/8 bits.
        for row_bytes in [4096u64, 4, 2, 1] {
            for layout in [CellLayout::AllTrue, CellLayout::AllAnti] {
                let mut scalar = counter_model(row_bytes, 0.05, layout, FlipEngine::Scalar);
                let mut wordwise = counter_model(row_bytes, 0.05, layout, FlipEngine::Wordwise);
                for r in 0..64 {
                    assert_eq!(
                        &*scalar.vulnerable_bits(RowId(r)),
                        &*wordwise.vulnerable_bits(RowId(r)),
                        "row_bytes={row_bytes} row={r}"
                    );
                }
            }
        }
    }

    #[test]
    fn counter_bits_stay_inside_the_row_and_sorted() {
        let mut m = counter_model(4, 0.4, CellLayout::AllTrue, FlipEngine::Wordwise);
        for r in 0..64 {
            let bits = m.vulnerable_bits(RowId(r));
            for w in bits.windows(2) {
                assert!(w[0].bit < w[1].bit);
            }
            assert!(bits.iter().all(|b| b.bit < 32), "4-byte row has 32 cells");
        }
    }

    #[test]
    fn counter_density_tracks_pf_and_direction_tracks_polarity() {
        let mut m = counter_model(4096, 0.01, CellLayout::AllTrue, FlipEngine::Wordwise);
        let mut primary = 0usize;
        let mut reverse = 0usize;
        for r in 0..64 {
            for b in m.vulnerable_bits(RowId(r)).iter() {
                match b.direction {
                    FlipDirection::OneToZero => primary += 1,
                    FlipDirection::ZeroToOne => reverse += 1,
                }
            }
        }
        let total = (primary + reverse) as f64;
        let expected = 64.0 * 4096.0 * 8.0 * 0.01;
        assert!((total - expected).abs() < expected * 0.25, "expected≈{expected} got={total}");
        assert!((reverse as f64 / total) < 0.02, "reverse fraction should be near 0.002");
    }

    #[test]
    fn counter_and_stream_derivations_differ_but_are_each_deterministic() {
        let g = DramGeometry::new(4096, 64, 1, AddressMapping::RowLinear);
        let params = DisturbanceParams { pf: 0.01, ..DisturbanceParams::default() };
        let make = |map_gen| {
            VulnerabilityModel::with_modes(
                &g,
                CellLayout::AllTrue,
                params,
                0xABCD,
                map_gen,
                FlipEngine::Wordwise,
            )
        };
        let (mut s1, mut s2) = (make(MapGen::Stream), make(MapGen::Stream));
        let (mut c1, mut c2) = (make(MapGen::Counter), make(MapGen::Counter));
        assert_eq!(&*s1.vulnerable_bits(RowId(3)), &*s2.vulnerable_bits(RowId(3)));
        assert_eq!(&*c1.vulnerable_bits(RowId(3)), &*c2.vulnerable_bits(RowId(3)));
        assert_ne!(
            &*s1.vulnerable_bits(RowId(3)),
            &*c1.vulnerable_bits(RowId(3)),
            "the two derivations fix different universes for the same seed"
        );
    }

    #[test]
    fn direction_helpers() {
        assert_eq!(FlipDirection::primary_for(CellType::True), FlipDirection::OneToZero);
        assert_eq!(FlipDirection::primary_for(CellType::Anti), FlipDirection::ZeroToOne);
        assert_eq!(FlipDirection::OneToZero.opposite(), FlipDirection::ZeroToOne);
        assert!(FlipDirection::OneToZero.source_value());
        assert!(!FlipDirection::ZeroToOne.source_value());
    }
}
