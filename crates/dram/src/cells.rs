use std::fmt;

use crate::geometry::{DramGeometry, RowId};

/// The two physical DRAM cell polarities (paper section 2.1, Figure 2).
///
/// Because sense amplifiers are shared between complementary bitlines, half
/// the cell population stores logic `1` as "charged" and the other half
/// stores logic `0` as "charged". Charge leakage (and RowHammer-accelerated
/// leakage) therefore produces errors in opposite directions:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellType {
    /// Charged state = `1`; leakage errors flow `1 → 0`.
    True,
    /// Charged state = `0`; leakage errors flow `0 → 1`.
    Anti,
}

impl CellType {
    /// Logic value a fully *discharged* cell of this type reads as.
    ///
    /// This is what a cell decays to when refresh stops — the basis of both
    /// the cell-type profiler (section 2.2) and the coldboot guard
    /// (section 8).
    pub fn discharged_value(self) -> bool {
        match self {
            CellType::True => false,
            CellType::Anti => true,
        }
    }

    /// The opposite polarity.
    pub fn opposite(self) -> CellType {
        match self {
            CellType::True => CellType::Anti,
            CellType::Anti => CellType::True,
        }
    }
}

impl fmt::Display for CellType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellType::True => f.write_str("true-cell"),
            CellType::Anti => f.write_str("anti-cell"),
        }
    }
}

/// How cell polarities are laid out across the rows of a module.
///
/// DRAM rows are uniform in cell type (section 2.1), so the layout is a
/// function from row index to [`CellType`]. The paper reports two common
/// patterns, both represented here, plus uniform layouts used as analytical
/// baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellLayout {
    /// True-cell and anti-cell rows alternate every `period_rows` rows;
    /// `first` is the polarity of row 0. `N = 512` is the commonly reported
    /// period (section 2.2).
    Alternating {
        /// Length of each run of same-type rows.
        period_rows: u64,
        /// Polarity of the first run.
        first: CellType,
    },
    /// Mostly true-cells with one anti-cell row every `anti_every` rows —
    /// the "1000:1" modules of section 2.2.
    TrueHeavy {
        /// Interval between anti-cell rows; e.g. 1001 gives a 1000:1 ratio.
        anti_every: u64,
    },
    /// Every row is true-cells.
    AllTrue,
    /// Every row is anti-cells (the pathological baseline of section 5,
    /// where a ZONE_PTP made of anti-cells is shown to be attackable in
    /// hours).
    AllAnti,
}

impl CellLayout {
    /// The conventional layout: alternation every 512 rows, true-cells first.
    pub fn alternating_512() -> Self {
        CellLayout::Alternating { period_rows: 512, first: CellType::True }
    }

    /// Cell type of a row under this layout.
    pub fn cell_type(self, row: RowId) -> CellType {
        match self {
            CellLayout::Alternating { period_rows, first } => {
                if (row.0 / period_rows).is_multiple_of(2) {
                    first
                } else {
                    first.opposite()
                }
            }
            CellLayout::TrueHeavy { anti_every } => {
                if anti_every > 0 && row.0 % anti_every == anti_every - 1 {
                    CellType::Anti
                } else {
                    CellType::True
                }
            }
            CellLayout::AllTrue => CellType::True,
            CellLayout::AllAnti => CellType::Anti,
        }
    }
}

/// A maximal run of consecutive same-type rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellRegion {
    /// First row of the region (inclusive).
    pub start_row: RowId,
    /// One past the last row of the region (exclusive).
    pub end_row: RowId,
    /// Polarity of every row in the region.
    pub cell_type: CellType,
}

impl CellRegion {
    /// Number of rows in the region.
    pub fn rows(&self) -> u64 {
        self.end_row.0 - self.start_row.0
    }

    /// Whether `row` lies inside the region.
    pub fn contains(&self, row: RowId) -> bool {
        self.start_row <= row && row < self.end_row
    }
}

/// A per-row cell-type map for a module, with region summarization.
///
/// This is the artifact the system-level profiler produces and the CTA
/// allocator consumes: the OS only needs to know which physical row ranges
/// are true-cells to build `ZONE_TC` sub-zones (Figure 8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellTypeMap {
    types: Vec<CellType>,
    row_bytes: u64,
}

impl CellTypeMap {
    /// Builds the ground-truth map of a module from its layout.
    pub fn from_layout(geometry: &DramGeometry, layout: CellLayout) -> Self {
        let types = (0..geometry.total_rows()).map(|r| layout.cell_type(RowId(r))).collect();
        CellTypeMap { types, row_bytes: geometry.row_bytes() }
    }

    /// Builds a map from explicitly observed per-row types (as the profiler
    /// does).
    ///
    /// # Panics
    ///
    /// Panics if `types` is empty.
    pub fn from_rows(types: Vec<CellType>, row_bytes: u64) -> Self {
        assert!(!types.is_empty(), "a cell-type map needs at least one row");
        CellTypeMap { types, row_bytes }
    }

    /// Number of rows covered.
    pub fn rows(&self) -> u64 {
        self.types.len() as u64
    }

    /// Row width in bytes used when converting regions to address ranges.
    pub fn row_bytes(&self) -> u64 {
        self.row_bytes
    }

    /// Cell type of `row`, or `None` if out of range.
    pub fn cell_type(&self, row: RowId) -> Option<CellType> {
        self.types.get(row.0 as usize).copied()
    }

    /// Maximal same-type regions in ascending row order.
    pub fn regions(&self) -> Vec<CellRegion> {
        let mut out = Vec::new();
        let mut start = 0u64;
        for i in 1..=self.types.len() {
            if i == self.types.len() || self.types[i] != self.types[start as usize] {
                out.push(CellRegion {
                    start_row: RowId(start),
                    end_row: RowId(i as u64),
                    cell_type: self.types[start as usize],
                });
                start = i as u64;
            }
        }
        out
    }

    /// Maximal true-cell regions expressed as physical byte ranges
    /// `[start, end)` — the inputs to `ZONE_TC` construction.
    pub fn true_cell_byte_ranges(&self) -> Vec<(u64, u64)> {
        self.regions()
            .into_iter()
            .filter(|r| r.cell_type == CellType::True)
            .map(|r| (r.start_row.0 * self.row_bytes, r.end_row.0 * self.row_bytes))
            .collect()
    }

    /// Fraction of rows that are true-cells.
    pub fn true_cell_fraction(&self) -> f64 {
        let t = self.types.iter().filter(|c| **c == CellType::True).count();
        t as f64 / self.types.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::AddressMapping;

    #[test]
    fn discharged_values_are_opposite() {
        assert!(!CellType::True.discharged_value());
        assert!(CellType::Anti.discharged_value());
        assert_eq!(CellType::True.opposite(), CellType::Anti);
    }

    #[test]
    fn alternating_layout_switches_every_period() {
        let l = CellLayout::Alternating { period_rows: 4, first: CellType::True };
        assert_eq!(l.cell_type(RowId(0)), CellType::True);
        assert_eq!(l.cell_type(RowId(3)), CellType::True);
        assert_eq!(l.cell_type(RowId(4)), CellType::Anti);
        assert_eq!(l.cell_type(RowId(7)), CellType::Anti);
        assert_eq!(l.cell_type(RowId(8)), CellType::True);
    }

    #[test]
    fn true_heavy_layout_has_sparse_anti_rows() {
        let l = CellLayout::TrueHeavy { anti_every: 5 };
        let types: Vec<_> = (0..10).map(|r| l.cell_type(RowId(r))).collect();
        assert_eq!(types.iter().filter(|c| **c == CellType::Anti).count(), 2);
        assert_eq!(l.cell_type(RowId(4)), CellType::Anti);
        assert_eq!(l.cell_type(RowId(9)), CellType::Anti);
    }

    #[test]
    fn uniform_layouts() {
        assert_eq!(CellLayout::AllTrue.cell_type(RowId(1234)), CellType::True);
        assert_eq!(CellLayout::AllAnti.cell_type(RowId(0)), CellType::Anti);
    }

    fn map_4x4() -> CellTypeMap {
        let g = DramGeometry::new(1024, 16, 1, AddressMapping::RowLinear);
        CellTypeMap::from_layout(
            &g,
            CellLayout::Alternating { period_rows: 4, first: CellType::True },
        )
    }

    #[test]
    fn regions_are_maximal_and_cover() {
        let m = map_4x4();
        let regions = m.regions();
        assert_eq!(regions.len(), 4);
        assert_eq!(regions[0].rows(), 4);
        assert_eq!(regions[0].cell_type, CellType::True);
        assert_eq!(regions[1].cell_type, CellType::Anti);
        let total: u64 = regions.iter().map(|r| r.rows()).sum();
        assert_eq!(total, m.rows());
    }

    #[test]
    fn true_cell_byte_ranges_match_regions() {
        let m = map_4x4();
        let ranges = m.true_cell_byte_ranges();
        assert_eq!(ranges, vec![(0, 4 * 1024), (8 * 1024, 12 * 1024)]);
    }

    #[test]
    fn true_cell_fraction_of_alternating_is_half() {
        assert!((map_4x4().true_cell_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn region_contains() {
        let m = map_4x4();
        let r = m.regions()[1];
        assert!(r.contains(RowId(4)));
        assert!(r.contains(RowId(7)));
        assert!(!r.contains(RowId(8)));
        assert!(!r.contains(RowId(3)));
    }
}
