use std::fmt;
use std::rc::Rc;

use rand::Rng;

use crate::bitplane::{load_word, ones_mask, store_word, words_for_bits};
use crate::bounded::BoundedCache;
use crate::cells::CellType;
use crate::config::{FlipEngine, RetentionParams};
use crate::geometry::RowId;
use crate::rng::{hash3, mantissa_cutoff, poisson, stream_rng, to_unit, RowBlocks};
use crate::vuln::MODEL_CACHE_ROWS;

/// Seed salt of the ordinary retention draw ("ORDI").
const ORDI_SALT: u64 = 0x4F52_4449;

/// Seed salt of the long-retention population ("RETN").
const RETN_SALT: u64 = 0x5245_544E;

/// Low bits of a packed retention-index key that hold the cell index; the
/// high `64 - 21 = 43` bits hold the retention time in nanoseconds.
const INDEX_BIT_WIDTH: u32 = 21;

/// Default payload-byte budget of the per-row retention index cache. The
/// index weighs 8 bytes per cell (256 KiB for a 4 KiB row), so unlike the
/// other model caches it is bounded by bytes, not entries.
const INDEX_CACHE_BYTES: usize = 64 << 20;

/// A cell with unusually long retention, discoverable by profiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LongCell {
    /// Bit index within its row.
    pub bit: u64,
    /// Retention time in nanoseconds.
    pub retention_ns: u64,
}

/// Deterministic per-cell retention times for a module.
///
/// Retention is a manufacturing property: each cell keeps its charge for a
/// fixed time once refresh stops (section 2.1). Ordinary cells draw their
/// retention uniformly from `[min_ns, max_ns]`; a sparse population of
/// long-retention cells (fraction `long_fraction`) draws from
/// `[long_min_ns, long_max_ns]`. Both populations are functions of the
/// module seed, so profiling results are stable — which the coldboot guard
/// (section 8) depends on.
#[derive(Clone)]
pub(crate) struct RetentionModel {
    seed: u64,
    params: RetentionParams,
    bits_per_row: u64,
    long_cache: BoundedCache<u64, Rc<[LongCell]>>,
    /// Expired-cell masks for the wordwise partial-decay path, keyed by
    /// `(row, elapsed_ns, row bits)`: bit `b` is set iff that cell's
    /// retention has expired after `elapsed_ns` without refresh. A mask is
    /// built from the sorted per-row retention index in O(expired bits)
    /// (one `partition_point`, then one bit-set per expired cell);
    /// memoizing it keeps repeated sweeps of the same elapsed bucket
    /// (profiling passes, forked campaigns) allocation-free.
    expired: BoundedCache<(u64, u64, u64), Rc<[u64]>>,
    /// Sorted per-row retention index, keyed by `(row, row bits)`: one
    /// packed `retention_ns << 21 | bit` key per *ordinary* cell, ascending.
    /// Built lazily — a row's first partial-decay window uses a direct
    /// counter-mode scan and leaves an empty marker; the second distinct
    /// window pays one sort, after which every further window's mask
    /// first-build is a binary search plus O(expired bits) instead of an
    /// O(row bits) rescan. Byte-budgeted (8 bytes/cell, zero-weight
    /// markers) rather than entry-bounded.
    index: BoundedCache<(u64, u64), Rc<[u64]>>,
}

impl fmt::Debug for RetentionModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RetentionModel")
            .field("seed", &self.seed)
            .field("params", &self.params)
            .field("cached_rows", &self.long_cache.len())
            .finish()
    }
}

impl RetentionModel {
    pub(crate) fn new(params: RetentionParams, bits_per_row: u64, seed: u64) -> Self {
        RetentionModel {
            seed,
            params,
            bits_per_row,
            long_cache: BoundedCache::new(MODEL_CACHE_ROWS),
            expired: BoundedCache::new(MODEL_CACHE_ROWS),
            index: {
                let mut index = BoundedCache::new(MODEL_CACHE_ROWS);
                index.set_byte_budget(Some(INDEX_CACHE_BYTES));
                index
            },
        }
    }

    /// Total cache evictions (long cells + expired masks) since creation.
    /// Retention-index evictions are excluded: the index is an engine-local
    /// acceleration structure whose byte budget can evict on one engine and
    /// not the other, and the mirrored stats counter must stay
    /// engine-invariant (the differential suites assert it byte for byte).
    pub(crate) fn evictions(&self) -> u64 {
        self.long_cache.evictions() + self.expired.evictions()
    }

    /// Rows currently memoized in the largest of the caches.
    pub(crate) fn cached_rows(&self) -> usize {
        self.long_cache.len().max(self.expired.len()).max(self.index.len())
    }

    /// Payload bytes retained across all retention caches, engine-local
    /// acceleration structures included.
    pub(crate) fn cache_bytes(&self) -> usize {
        self.long_cache.bytes() + self.expired.bytes() + self.index.bytes()
    }

    /// Payload bytes of the long-cell cache alone — the engine-invariant
    /// model content mirrored into the `retention_cache_bytes` gauge.
    pub(crate) fn long_bytes(&self) -> usize {
        self.long_cache.bytes()
    }

    /// Rebounds all caches to `rows` entries.
    pub(crate) fn set_cache_capacity(&mut self, rows: usize) {
        self.long_cache.set_capacity(rows);
        self.expired.set_capacity(rows);
        self.index.set_capacity(rows);
    }

    /// Sets or clears the payload-byte budget of every retention cache.
    pub(crate) fn set_cache_bytes(&mut self, budget: Option<usize>) {
        self.long_cache.set_byte_budget(budget);
        self.expired.set_byte_budget(budget);
        self.index.set_byte_budget(budget);
    }

    #[allow(dead_code)] // exercised by tests; kept for parity with VulnerabilityModel
    pub(crate) fn params(&self) -> RetentionParams {
        self.params
    }

    /// The long-retention cells of `row`, sorted by bit index.
    pub(crate) fn long_cells(&mut self, row: RowId) -> Rc<[LongCell]> {
        if let Some(cells) = self.long_cache.get(&row.0) {
            return Rc::clone(cells);
        }
        let mut rng = stream_rng(self.seed ^ RETN_SALT, row.0);
        let n = poisson(&mut rng, self.bits_per_row as f64 * self.params.long_fraction);
        let span = self.params.long_max_ns - self.params.long_min_ns;
        let mut cells: Vec<LongCell> = (0..n)
            .map(|_| LongCell {
                bit: rng.gen_range(0..self.bits_per_row),
                retention_ns: self.params.long_min_ns + (rng.gen::<f64>() * span as f64) as u64,
            })
            .collect();
        cells.sort_by_key(|c| c.bit);
        cells.dedup_by_key(|c| c.bit);
        let cells: Rc<[LongCell]> = cells.into();
        self.long_cache.insert_weighted(
            row.0,
            Rc::clone(&cells),
            std::mem::size_of_val::<[LongCell]>(&cells),
        );
        cells
    }

    /// Retention time of an ordinary (non-long) cell.
    fn ordinary_retention_ns(&self, row: RowId, bit: u64) -> u64 {
        let u = to_unit(hash3(self.seed ^ ORDI_SALT, row.0, bit));
        self.params.min_ns + (u * (self.params.max_ns - self.params.min_ns) as f64) as u64
    }

    /// Retention time of any cell (long cells shadow ordinary draws).
    pub(crate) fn retention_ns(&mut self, row: RowId, bit: u64) -> u64 {
        if let Ok(i) = self.long_cells(row).binary_search_by_key(&bit, |c| c.bit) {
            return self.long_cells(row)[i].retention_ns;
        }
        self.ordinary_retention_ns(row, bit)
    }

    /// Applies `elapsed_ns` of unrefreshed decay to a row's stored bytes.
    ///
    /// Cells whose retention has expired read as the discharged value of the
    /// row's polarity. Returns the number of bits whose logic value changed.
    /// Both engines produce byte-identical results; the scalar path is the
    /// reference the wordwise path is differentially tested against.
    pub(crate) fn apply_decay(
        &mut self,
        row: RowId,
        cell_type: CellType,
        bytes: &mut [u8],
        elapsed_ns: u64,
        engine: FlipEngine,
    ) -> u64 {
        if elapsed_ns < self.params.min_ns {
            return 0;
        }
        match engine {
            FlipEngine::Scalar => self.apply_decay_scalar(row, cell_type, bytes, elapsed_ns),
            FlipEngine::Wordwise => self.apply_decay_wordwise(row, cell_type, bytes, elapsed_ns),
        }
    }

    fn apply_decay_scalar(
        &mut self,
        row: RowId,
        cell_type: CellType,
        bytes: &mut [u8],
        elapsed_ns: u64,
    ) -> u64 {
        let discharged = cell_type.discharged_value();
        let mut changed = 0u64;
        if elapsed_ns >= self.params.max_ns {
            // Fast path: every ordinary cell has decayed. Snapshot surviving
            // long cells, blanket-fill, then restore the survivors.
            let long = self.long_cells(row);
            let survivors: Vec<(u64, bool)> = long
                .iter()
                .filter(|c| c.retention_ns > elapsed_ns)
                .map(|c| (c.bit, get_bit(bytes, c.bit)))
                .collect();
            for byte in bytes.iter_mut() {
                let before = *byte;
                *byte = if discharged { 0xFF } else { 0x00 };
                changed += (before ^ *byte).count_ones() as u64;
            }
            for (bit, value) in survivors {
                if get_bit(bytes, bit) != value {
                    set_bit(bytes, bit, value);
                    changed -= 1; // it had been counted as changed by the fill
                }
            }
            changed
        } else {
            // Partial window: check each bit's retention individually.
            for bit in 0..(bytes.len() as u64 * crate::BITS_PER_BYTE as u64) {
                if self.retention_ns(row, bit) < elapsed_ns && get_bit(bytes, bit) != discharged {
                    set_bit(bytes, bit, discharged);
                    changed += 1;
                }
            }
            changed
        }
    }

    fn apply_decay_wordwise(
        &mut self,
        row: RowId,
        cell_type: CellType,
        bytes: &mut [u8],
        elapsed_ns: u64,
    ) -> u64 {
        let target = if cell_type.discharged_value() { !0u64 } else { 0u64 };
        let nbits = bytes.len() * crate::BITS_PER_BYTE;
        if elapsed_ns >= self.params.max_ns {
            // Full decay: every ordinary cell expires; only long cells whose
            // retention outlasts the wait keep their current value. Built on
            // the fly — it needs no per-cell hashing, only the long list.
            let mut mask = ones_mask(nbits);
            for c in self.long_cells(row).iter() {
                if c.retention_ns > elapsed_ns && (c.bit as usize) < nbits {
                    mask[(c.bit / 64) as usize] &= !(1u64 << (c.bit % 64));
                }
            }
            discharge_masked(bytes, &mask, target)
        } else {
            let mask = self.expired_mask(row, elapsed_ns, nbits);
            discharge_masked(bytes, &mask, target)
        }
    }

    /// The expired-cell mask of `row` after `elapsed_ns` in a partial decay
    /// window (`min_ns ≤ elapsed < max_ns`), memoized per elapsed bucket.
    ///
    /// First-build consults the sorted retention index: the expired cells
    /// are exactly the prefix of keys whose retention component is below
    /// `elapsed_ns`, found with one `partition_point`. Rows too large (or
    /// retentions too long) for the packed key encoding fall back to a
    /// direct block-hash scan; both paths reproduce the scalar per-bit
    /// predicate `ordinary_retention_ns(row, bit) < elapsed_ns` exactly.
    fn expired_mask(&mut self, row: RowId, elapsed_ns: u64, nbits: usize) -> Rc<[u64]> {
        let key = (row.0, elapsed_ns, nbits as u64);
        if let Some(mask) = self.expired.get(&key) {
            return Rc::clone(mask);
        }
        let mut mask = vec![0u64; words_for_bits(nbits)];
        let packable =
            self.params.max_ns < 1 << (64 - INDEX_BIT_WIDTH) && nbits <= 1 << INDEX_BIT_WIDTH;
        let index_key = (row.0, nbits as u64);
        let cached = if packable { self.index.get(&index_key).map(Rc::clone) } else { None };
        match cached {
            Some(index) if !index.is_empty() => {
                let expired = index.partition_point(|&k| k >> INDEX_BIT_WIDTH < elapsed_ns);
                for &k in &index[..expired] {
                    let bit = k & ((1 << INDEX_BIT_WIDTH) - 1);
                    mask[(bit / 64) as usize] |= 1u64 << (bit % 64);
                }
            }
            Some(_) if nbits > 0 => {
                // Second distinct elapsed bucket for this row: the sort now
                // pays for itself, so build the real index and use it.
                let index = self.build_index(row, nbits);
                let expired = index.partition_point(|&k| k >> INDEX_BIT_WIDTH < elapsed_ns);
                for &k in &index[..expired] {
                    let bit = k & ((1 << INDEX_BIT_WIDTH) - 1);
                    mask[(bit / 64) as usize] |= 1u64 << (bit % 64);
                }
            }
            _ => {
                // First build for this row (or keys that cannot pack): one
                // counter-mode scan, a third of the scalar mixing cost. The
                // expiry predicate `min_ns + (to_unit(h) · span) as u64 <
                // elapsed` is monotone in the hash mantissa, so one binary
                // search with the genuine float predicate turns the per-bit
                // test into a single integer compare — bit-exactly. When
                // packable, leave an empty-index marker so the next elapsed
                // bucket upgrades to the sorted index.
                let blocks = RowBlocks::new(self.seed ^ ORDI_SALT, row.0);
                let span = (self.params.max_ns - self.params.min_ns) as f64;
                let min_ns = self.params.min_ns;
                let cutoff =
                    mantissa_cutoff(|m| min_ns + ((to_unit(m << 11) * span) as u64) < elapsed_ns);
                for bit in 0..nbits as u64 {
                    if blocks.cell(bit) >> 11 < cutoff {
                        mask[(bit / 64) as usize] |= 1u64 << (bit % 64);
                    }
                }
                if packable {
                    self.index.insert_weighted(index_key, Vec::new().into(), 0);
                }
            }
        }
        // Long cells shadow the ordinary draw at their positions.
        for c in self.long_cells(row).iter() {
            if (c.bit as usize) >= nbits {
                continue;
            }
            let (w, b) = ((c.bit / 64) as usize, c.bit % 64);
            if c.retention_ns < elapsed_ns {
                mask[w] |= 1u64 << b;
            } else {
                mask[w] &= !(1u64 << b);
            }
        }
        let mask: Rc<[u64]> = mask.into();
        self.expired.insert_weighted(key, Rc::clone(&mask), std::mem::size_of_val::<[u64]>(&mask));
        mask
    }

    /// Builds (and caches) the sorted retention index of `row` over its
    /// first `nbits` cells: one `retention_ns << 21 | bit` key per ordinary
    /// cell, ascending. The per-cell hashes come from the counter-mode
    /// block generator, which is hash-for-hash equal to the scalar
    /// [`hash3`] draw, so `partition_point` over the keys reproduces the
    /// scalar per-bit expiry predicate exactly.
    fn build_index(&mut self, row: RowId, nbits: usize) -> Rc<[u64]> {
        let key = (row.0, nbits as u64);
        let blocks = RowBlocks::new(self.seed ^ ORDI_SALT, row.0);
        let span = (self.params.max_ns - self.params.min_ns) as f64;
        let mut keys: Vec<u64> = (0..nbits as u64)
            .map(|bit| {
                let r = self.params.min_ns + (to_unit(blocks.cell(bit)) * span) as u64;
                r << INDEX_BIT_WIDTH | bit
            })
            .collect();
        keys.sort_unstable();
        let keys: Rc<[u64]> = keys.into();
        self.index.insert_weighted(key, Rc::clone(&keys), std::mem::size_of_val::<[u64]>(&keys));
        keys
    }
}

/// Drives every masked bit of `bytes` to its bit in `target` (all-ones or
/// all-zero), returning how many bits actually changed (popcount of the
/// per-word difference).
fn discharge_masked(bytes: &mut [u8], mask: &[u64], target: u64) -> u64 {
    let mut changed = 0u64;
    for (w, &m) in mask.iter().enumerate() {
        if m == 0 {
            continue;
        }
        let word = load_word(bytes, w);
        let diff = (word ^ target) & m;
        if diff == 0 {
            continue;
        }
        store_word(bytes, w, word ^ diff);
        changed += diff.count_ones() as u64;
    }
    changed
}

pub(crate) fn get_bit(bytes: &[u8], bit: u64) -> bool {
    bytes[(bit / 8) as usize] >> (bit % 8) & 1 == 1
}

pub(crate) fn set_bit(bytes: &mut [u8], bit: u64, value: bool) {
    let byte = &mut bytes[(bit / 8) as usize];
    if value {
        *byte |= 1 << (bit % 8);
    } else {
        *byte &= !(1 << (bit % 8));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RetentionModel {
        RetentionModel::new(RetentionParams::default(), 4096 * 8, 0xFEED)
    }

    #[test]
    fn bit_helpers() {
        let mut b = vec![0u8; 2];
        set_bit(&mut b, 9, true);
        assert_eq!(b, vec![0, 2]);
        assert!(get_bit(&b, 9));
        set_bit(&mut b, 9, false);
        assert!(!get_bit(&b, 9));
    }

    #[test]
    fn retention_is_deterministic() {
        let mut m1 = model();
        let mut m2 = model();
        assert_eq!(m1.retention_ns(RowId(3), 100), m2.retention_ns(RowId(3), 100));
    }

    #[test]
    fn ordinary_retention_in_range() {
        let mut m = model();
        let p = m.params();
        for bit in 0..2000 {
            let r = m.retention_ns(RowId(0), bit);
            assert!(r >= p.min_ns);
            assert!(r <= p.long_max_ns);
        }
    }

    #[test]
    fn no_decay_before_min_retention() {
        let mut m = model();
        let mut bytes = vec![0xFFu8; 4096];
        let changed =
            m.apply_decay(RowId(0), CellType::True, &mut bytes, 1_000_000, FlipEngine::Wordwise);
        assert_eq!(changed, 0);
        assert!(bytes.iter().all(|b| *b == 0xFF));
    }

    #[test]
    fn full_decay_discharges_true_cells_to_zero() {
        let mut m = model();
        let mut bytes = vec![0xFFu8; 4096];
        let elapsed = m.params().max_ns + 1;
        let changed =
            m.apply_decay(RowId(0), CellType::True, &mut bytes, elapsed, FlipEngine::Wordwise);
        // All bits decay except surviving long cells.
        let surviving: u64 = bytes.iter().map(|b| b.count_ones() as u64).sum();
        let long = m.long_cells(RowId(0)).len() as u64;
        assert!(surviving <= long);
        assert_eq!(changed, 4096 * 8 - surviving);
    }

    #[test]
    fn full_decay_discharges_anti_cells_to_one() {
        let mut m = model();
        let mut bytes = vec![0x00u8; 4096];
        let elapsed = m.params().max_ns + 1;
        m.apply_decay(RowId(1), CellType::Anti, &mut bytes, elapsed, FlipEngine::Wordwise);
        let zeros: u64 = bytes.iter().map(|b| b.count_zeros() as u64).sum();
        let long = m.long_cells(RowId(1)).len() as u64;
        assert!(zeros <= long, "zeros={zeros} long={long}");
    }

    #[test]
    fn partial_decay_is_monotonic_in_time() {
        let mut m = model();
        let p = m.params();
        let mut early = vec![0xFFu8; 4096];
        let mut late = vec![0xFFu8; 4096];
        m.apply_decay(
            RowId(2),
            CellType::True,
            &mut early,
            p.min_ns + (p.max_ns - p.min_ns) / 4,
            FlipEngine::Wordwise,
        );
        m.apply_decay(
            RowId(2),
            CellType::True,
            &mut late,
            p.min_ns + (p.max_ns - p.min_ns) / 2,
            FlipEngine::Wordwise,
        );
        let ones_early: u32 = early.iter().map(|b| b.count_ones()).sum();
        let ones_late: u32 = late.iter().map(|b| b.count_ones()).sum();
        assert!(ones_late <= ones_early);
        assert!(ones_early < 4096 * 8, "some decay should have happened");
    }

    #[test]
    fn very_long_wait_kills_even_long_cells() {
        let mut m = model();
        let mut bytes = vec![0xFFu8; 4096];
        m.apply_decay(
            RowId(0),
            CellType::True,
            &mut bytes,
            m.params().long_max_ns + 1,
            FlipEngine::Wordwise,
        );
        assert!(bytes.iter().all(|b| *b == 0));
    }

    #[test]
    fn wordwise_decay_matches_scalar_exactly() {
        let p = RetentionParams::default();
        let elapsed_values = [
            p.min_ns,
            p.min_ns + (p.max_ns - p.min_ns) / 3,
            p.max_ns - 1,
            p.max_ns,
            p.max_ns + 1,
            p.long_min_ns + 5,
            p.long_max_ns + 1,
        ];
        for cell_type in [CellType::True, CellType::Anti] {
            for (fill, elapsed) in
                elapsed_values.iter().enumerate().map(|(i, e)| ([0xFF, 0x5A, 0x00][i % 3], *e))
            {
                let mut scalar = model();
                let mut wordwise = model();
                let mut sb = vec![fill; 4096];
                let mut wb = sb.clone();
                let cs =
                    scalar.apply_decay(RowId(3), cell_type, &mut sb, elapsed, FlipEngine::Scalar);
                let cw = wordwise.apply_decay(
                    RowId(3),
                    cell_type,
                    &mut wb,
                    elapsed,
                    FlipEngine::Wordwise,
                );
                assert_eq!(cs, cw, "changed counts diverged at elapsed={elapsed} {cell_type:?}");
                assert_eq!(sb, wb, "row bytes diverged at elapsed={elapsed} {cell_type:?}");
            }
        }
    }

    #[test]
    fn wordwise_decay_matches_scalar_on_tail_words() {
        // Rows whose bit counts are not multiples of 64: the engine's last
        // word is a zero-padded tail word (plus a 96-bit full+tail mix).
        let p = RetentionParams::default();
        for len in [1usize, 2, 4, 12] {
            for elapsed in [p.min_ns + (p.max_ns - p.min_ns) / 2, p.max_ns + 1] {
                let mut scalar = RetentionModel::new(p, (len * 8) as u64, 0xFEED);
                let mut wordwise = RetentionModel::new(p, (len * 8) as u64, 0xFEED);
                let mut sb = vec![0xFFu8; len];
                let mut wb = sb.clone();
                let cs = scalar.apply_decay(
                    RowId(0),
                    CellType::True,
                    &mut sb,
                    elapsed,
                    FlipEngine::Scalar,
                );
                let cw = wordwise.apply_decay(
                    RowId(0),
                    CellType::True,
                    &mut wb,
                    elapsed,
                    FlipEngine::Wordwise,
                );
                assert_eq!(cs, cw, "len={len} elapsed={elapsed}");
                assert_eq!(sb, wb, "len={len} elapsed={elapsed}");
            }
        }
    }

    #[test]
    fn expired_mask_is_memoized_and_bounded() {
        let mut m = model();
        m.set_cache_capacity(2);
        let p = m.params();
        let elapsed = p.min_ns + (p.max_ns - p.min_ns) / 2;
        let mut reference = vec![0xFFu8; 4096];
        m.apply_decay(RowId(0), CellType::True, &mut reference, elapsed, FlipEngine::Wordwise);
        // A second sweep of the same (row, elapsed) hits the mask cache and
        // must decay a fresh row identically.
        let mut again = vec![0xFFu8; 4096];
        m.apply_decay(RowId(0), CellType::True, &mut again, elapsed, FlipEngine::Wordwise);
        assert_eq!(reference, again);
        // Sweeping more rows than the capacity evicts deterministically.
        for r in 1..6 {
            let mut b = vec![0xFFu8; 4096];
            m.apply_decay(RowId(r), CellType::True, &mut b, elapsed, FlipEngine::Wordwise);
        }
        assert!(m.cached_rows() <= 2);
        assert!(m.evictions() > 0);
    }

    #[test]
    fn fallback_scan_matches_scalar_when_index_unpackable() {
        // Retentions too long for the 43-bit packed key: the wordwise
        // partial-decay path must take the direct block-hash fallback and
        // still reproduce the scalar per-bit reference exactly.
        let p = RetentionParams {
            min_ns: 1 << 42,
            max_ns: 1 << 43, // ≥ 2^43 ⟹ keys cannot pack
            long_fraction: 1e-3,
            long_min_ns: 1 << 44,
            long_max_ns: 1 << 45,
        };
        for elapsed in [(1u64 << 42) + (1 << 40), (1 << 42) + (1 << 42) / 2] {
            let mut scalar = RetentionModel::new(p, 4096 * 8, 0xFEED);
            let mut wordwise = RetentionModel::new(p, 4096 * 8, 0xFEED);
            let mut sb = vec![0xA5u8; 4096];
            let mut wb = sb.clone();
            let cs =
                scalar.apply_decay(RowId(7), CellType::True, &mut sb, elapsed, FlipEngine::Scalar);
            let cw = wordwise.apply_decay(
                RowId(7),
                CellType::True,
                &mut wb,
                elapsed,
                FlipEngine::Wordwise,
            );
            assert_eq!(cs, cw, "elapsed={elapsed}");
            assert_eq!(sb, wb, "elapsed={elapsed}");
            assert_eq!(wordwise.index.len(), 0, "unpackable params must not build an index");
        }
    }

    #[test]
    fn index_byte_budget_evicts_without_changing_decay() {
        // A byte budget far below one index's weight (a 4 KiB row's index
        // is 32768 cells × 8 B = 256 KiB) forces eviction on every new row,
        // yet decay results must match an unbudgeted twin bit for bit.
        let p = RetentionParams::default();
        let buckets = [p.min_ns + (p.max_ns - p.min_ns) / 4, p.min_ns + (p.max_ns - p.min_ns) / 2];
        let mut capped = model();
        capped.set_cache_bytes(Some(64 * 1024));
        let mut uncapped = model();
        for r in 0..4 {
            // Two distinct elapsed buckets per row: the first leaves the
            // lazy marker, the second builds the real sorted index.
            for elapsed in buckets {
                let mut cb = vec![0xFFu8; 4096];
                let mut ub = cb.clone();
                capped.apply_decay(
                    RowId(r),
                    CellType::True,
                    &mut cb,
                    elapsed,
                    FlipEngine::Wordwise,
                );
                uncapped.apply_decay(
                    RowId(r),
                    CellType::True,
                    &mut ub,
                    elapsed,
                    FlipEngine::Wordwise,
                );
                assert_eq!(cb, ub, "row {r}");
            }
        }
        // The budget keeps at most one (over-budget) index resident, while
        // the default 64 MiB budget retains all four.
        assert!(capped.index.len() <= 1, "capped index len {}", capped.index.len());
        assert_eq!(uncapped.index.len(), 4);
        assert!(capped.cache_bytes() < uncapped.cache_bytes());
        // Index evictions stay out of the engine-invariant counter.
        assert_eq!(capped.evictions(), uncapped.evictions());
    }

    #[test]
    fn long_cells_sparse() {
        let mut m = model();
        // 4096*8 = 32768 bits, long_fraction 1e-3 → ~33 expected.
        let n = m.long_cells(RowId(5)).len();
        assert!(n < 100, "long cells should be sparse, got {n}");
    }
}
