use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use rand::Rng;

use crate::cells::CellType;
use crate::config::RetentionParams;
use crate::geometry::RowId;
use crate::rng::{hash3, poisson, stream_rng, to_unit};

/// A cell with unusually long retention, discoverable by profiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LongCell {
    /// Bit index within its row.
    pub bit: u64,
    /// Retention time in nanoseconds.
    pub retention_ns: u64,
}

/// Deterministic per-cell retention times for a module.
///
/// Retention is a manufacturing property: each cell keeps its charge for a
/// fixed time once refresh stops (section 2.1). Ordinary cells draw their
/// retention uniformly from `[min_ns, max_ns]`; a sparse population of
/// long-retention cells (fraction `long_fraction`) draws from
/// `[long_min_ns, long_max_ns]`. Both populations are functions of the
/// module seed, so profiling results are stable — which the coldboot guard
/// (section 8) depends on.
#[derive(Clone)]
pub(crate) struct RetentionModel {
    seed: u64,
    params: RetentionParams,
    bits_per_row: u64,
    long_cache: HashMap<u64, Rc<[LongCell]>>,
}

impl fmt::Debug for RetentionModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RetentionModel")
            .field("seed", &self.seed)
            .field("params", &self.params)
            .field("cached_rows", &self.long_cache.len())
            .finish()
    }
}

impl RetentionModel {
    pub(crate) fn new(params: RetentionParams, bits_per_row: u64, seed: u64) -> Self {
        RetentionModel { seed, params, bits_per_row, long_cache: HashMap::new() }
    }

    #[allow(dead_code)] // exercised by tests; kept for parity with VulnerabilityModel
    pub(crate) fn params(&self) -> RetentionParams {
        self.params
    }

    /// The long-retention cells of `row`, sorted by bit index.
    pub(crate) fn long_cells(&mut self, row: RowId) -> Rc<[LongCell]> {
        if let Some(cells) = self.long_cache.get(&row.0) {
            return Rc::clone(cells);
        }
        let mut rng = stream_rng(self.seed ^ 0x5245_544E, row.0); // "RETN"
        let n = poisson(&mut rng, self.bits_per_row as f64 * self.params.long_fraction);
        let span = self.params.long_max_ns - self.params.long_min_ns;
        let mut cells: Vec<LongCell> = (0..n)
            .map(|_| LongCell {
                bit: rng.gen_range(0..self.bits_per_row),
                retention_ns: self.params.long_min_ns + (rng.gen::<f64>() * span as f64) as u64,
            })
            .collect();
        cells.sort_by_key(|c| c.bit);
        cells.dedup_by_key(|c| c.bit);
        cells.into()
    }

    /// Retention time of an ordinary (non-long) cell.
    fn ordinary_retention_ns(&self, row: RowId, bit: u64) -> u64 {
        let u = to_unit(hash3(self.seed ^ 0x4F52_4449, row.0, bit)); // "ORDI"
        self.params.min_ns + (u * (self.params.max_ns - self.params.min_ns) as f64) as u64
    }

    /// Retention time of any cell (long cells shadow ordinary draws).
    pub(crate) fn retention_ns(&mut self, row: RowId, bit: u64) -> u64 {
        if let Ok(i) = self.long_cells(row).binary_search_by_key(&bit, |c| c.bit) {
            return self.long_cells(row)[i].retention_ns;
        }
        self.ordinary_retention_ns(row, bit)
    }

    /// Applies `elapsed_ns` of unrefreshed decay to a row's stored bytes.
    ///
    /// Cells whose retention has expired read as the discharged value of the
    /// row's polarity. Returns the number of bits whose logic value changed.
    pub(crate) fn apply_decay(
        &mut self,
        row: RowId,
        cell_type: CellType,
        bytes: &mut [u8],
        elapsed_ns: u64,
    ) -> u64 {
        if elapsed_ns < self.params.min_ns {
            return 0;
        }
        let discharged = cell_type.discharged_value();
        let mut changed = 0u64;
        if elapsed_ns >= self.params.max_ns {
            // Fast path: every ordinary cell has decayed. Snapshot surviving
            // long cells, blanket-fill, then restore the survivors.
            let long = self.long_cells(row);
            let survivors: Vec<(u64, bool)> = long
                .iter()
                .filter(|c| c.retention_ns > elapsed_ns)
                .map(|c| (c.bit, get_bit(bytes, c.bit)))
                .collect();
            for byte in bytes.iter_mut() {
                let before = *byte;
                *byte = if discharged { 0xFF } else { 0x00 };
                changed += (before ^ *byte).count_ones() as u64;
            }
            for (bit, value) in survivors {
                if get_bit(bytes, bit) != value {
                    set_bit(bytes, bit, value);
                    changed -= 1; // it had been counted as changed by the fill
                }
            }
            changed
        } else {
            // Partial window: check each bit's retention individually.
            for bit in 0..(bytes.len() as u64 * crate::BITS_PER_BYTE as u64) {
                if self.retention_ns(row, bit) < elapsed_ns && get_bit(bytes, bit) != discharged {
                    set_bit(bytes, bit, discharged);
                    changed += 1;
                }
            }
            changed
        }
    }
}

pub(crate) fn get_bit(bytes: &[u8], bit: u64) -> bool {
    bytes[(bit / 8) as usize] >> (bit % 8) & 1 == 1
}

pub(crate) fn set_bit(bytes: &mut [u8], bit: u64, value: bool) {
    let byte = &mut bytes[(bit / 8) as usize];
    if value {
        *byte |= 1 << (bit % 8);
    } else {
        *byte &= !(1 << (bit % 8));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RetentionModel {
        RetentionModel::new(RetentionParams::default(), 4096 * 8, 0xFEED)
    }

    #[test]
    fn bit_helpers() {
        let mut b = vec![0u8; 2];
        set_bit(&mut b, 9, true);
        assert_eq!(b, vec![0, 2]);
        assert!(get_bit(&b, 9));
        set_bit(&mut b, 9, false);
        assert!(!get_bit(&b, 9));
    }

    #[test]
    fn retention_is_deterministic() {
        let mut m1 = model();
        let mut m2 = model();
        assert_eq!(m1.retention_ns(RowId(3), 100), m2.retention_ns(RowId(3), 100));
    }

    #[test]
    fn ordinary_retention_in_range() {
        let mut m = model();
        let p = m.params();
        for bit in 0..2000 {
            let r = m.retention_ns(RowId(0), bit);
            assert!(r >= p.min_ns);
            assert!(r <= p.long_max_ns);
        }
    }

    #[test]
    fn no_decay_before_min_retention() {
        let mut m = model();
        let mut bytes = vec![0xFFu8; 4096];
        let changed = m.apply_decay(RowId(0), CellType::True, &mut bytes, 1_000_000);
        assert_eq!(changed, 0);
        assert!(bytes.iter().all(|b| *b == 0xFF));
    }

    #[test]
    fn full_decay_discharges_true_cells_to_zero() {
        let mut m = model();
        let mut bytes = vec![0xFFu8; 4096];
        let elapsed = m.params().max_ns + 1;
        let changed = m.apply_decay(RowId(0), CellType::True, &mut bytes, elapsed);
        // All bits decay except surviving long cells.
        let surviving: u64 = bytes.iter().map(|b| b.count_ones() as u64).sum();
        let long = m.long_cells(RowId(0)).len() as u64;
        assert!(surviving <= long);
        assert_eq!(changed, 4096 * 8 - surviving);
    }

    #[test]
    fn full_decay_discharges_anti_cells_to_one() {
        let mut m = model();
        let mut bytes = vec![0x00u8; 4096];
        let elapsed = m.params().max_ns + 1;
        m.apply_decay(RowId(1), CellType::Anti, &mut bytes, elapsed);
        let zeros: u64 = bytes.iter().map(|b| b.count_zeros() as u64).sum();
        let long = m.long_cells(RowId(1)).len() as u64;
        assert!(zeros <= long, "zeros={zeros} long={long}");
    }

    #[test]
    fn partial_decay_is_monotonic_in_time() {
        let mut m = model();
        let p = m.params();
        let mut early = vec![0xFFu8; 4096];
        let mut late = vec![0xFFu8; 4096];
        m.apply_decay(RowId(2), CellType::True, &mut early, p.min_ns + (p.max_ns - p.min_ns) / 4);
        m.apply_decay(RowId(2), CellType::True, &mut late, p.min_ns + (p.max_ns - p.min_ns) / 2);
        let ones_early: u32 = early.iter().map(|b| b.count_ones()).sum();
        let ones_late: u32 = late.iter().map(|b| b.count_ones()).sum();
        assert!(ones_late <= ones_early);
        assert!(ones_early < 4096 * 8, "some decay should have happened");
    }

    #[test]
    fn very_long_wait_kills_even_long_cells() {
        let mut m = model();
        let mut bytes = vec![0xFFu8; 4096];
        m.apply_decay(RowId(0), CellType::True, &mut bytes, m.params().long_max_ns + 1);
        assert!(bytes.iter().all(|b| *b == 0));
    }

    #[test]
    fn long_cells_sparse() {
        let mut m = model();
        // 4096*8 = 32768 bits, long_fraction 1e-3 → ~33 expected.
        let n = m.long_cells(RowId(5)).len();
        assert!(n < 100, "long cells should be sparse, got {n}");
    }
}
