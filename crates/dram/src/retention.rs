use std::fmt;
use std::rc::Rc;

use rand::Rng;

use crate::bitplane::{load_word, ones_mask, store_word, words_for_bits};
use crate::bounded::BoundedCache;
use crate::cells::CellType;
use crate::config::{FlipEngine, RetentionParams};
use crate::geometry::RowId;
use crate::rng::{hash3, poisson, stream_rng, to_unit};
use crate::vuln::MODEL_CACHE_ROWS;

/// A cell with unusually long retention, discoverable by profiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LongCell {
    /// Bit index within its row.
    pub bit: u64,
    /// Retention time in nanoseconds.
    pub retention_ns: u64,
}

/// Deterministic per-cell retention times for a module.
///
/// Retention is a manufacturing property: each cell keeps its charge for a
/// fixed time once refresh stops (section 2.1). Ordinary cells draw their
/// retention uniformly from `[min_ns, max_ns]`; a sparse population of
/// long-retention cells (fraction `long_fraction`) draws from
/// `[long_min_ns, long_max_ns]`. Both populations are functions of the
/// module seed, so profiling results are stable — which the coldboot guard
/// (section 8) depends on.
#[derive(Clone)]
pub(crate) struct RetentionModel {
    seed: u64,
    params: RetentionParams,
    bits_per_row: u64,
    long_cache: BoundedCache<u64, Rc<[LongCell]>>,
    /// Expired-cell masks for the wordwise partial-decay path, keyed by
    /// `(row, elapsed_ns, row bits)`: bit `b` is set iff that cell's
    /// retention has expired after `elapsed_ns` without refresh. Building a
    /// mask costs one retention hash per cell — exactly the scalar loop —
    /// so memoizing it is what makes repeated decay sweeps (profiling
    /// passes, forked campaigns) wordwise-cheap.
    expired: BoundedCache<(u64, u64, u64), Rc<[u64]>>,
}

impl fmt::Debug for RetentionModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RetentionModel")
            .field("seed", &self.seed)
            .field("params", &self.params)
            .field("cached_rows", &self.long_cache.len())
            .finish()
    }
}

impl RetentionModel {
    pub(crate) fn new(params: RetentionParams, bits_per_row: u64, seed: u64) -> Self {
        RetentionModel {
            seed,
            params,
            bits_per_row,
            long_cache: BoundedCache::new(MODEL_CACHE_ROWS),
            expired: BoundedCache::new(MODEL_CACHE_ROWS),
        }
    }

    /// Total cache evictions (long cells + expired masks) since creation.
    pub(crate) fn evictions(&self) -> u64 {
        self.long_cache.evictions() + self.expired.evictions()
    }

    /// Rows currently memoized in the larger of the two caches.
    pub(crate) fn cached_rows(&self) -> usize {
        self.long_cache.len().max(self.expired.len())
    }

    /// Rebounds both caches to `rows` entries.
    pub(crate) fn set_cache_capacity(&mut self, rows: usize) {
        self.long_cache.set_capacity(rows);
        self.expired.set_capacity(rows);
    }

    #[allow(dead_code)] // exercised by tests; kept for parity with VulnerabilityModel
    pub(crate) fn params(&self) -> RetentionParams {
        self.params
    }

    /// The long-retention cells of `row`, sorted by bit index.
    pub(crate) fn long_cells(&mut self, row: RowId) -> Rc<[LongCell]> {
        if let Some(cells) = self.long_cache.get(&row.0) {
            return Rc::clone(cells);
        }
        let mut rng = stream_rng(self.seed ^ 0x5245_544E, row.0); // "RETN"
        let n = poisson(&mut rng, self.bits_per_row as f64 * self.params.long_fraction);
        let span = self.params.long_max_ns - self.params.long_min_ns;
        let mut cells: Vec<LongCell> = (0..n)
            .map(|_| LongCell {
                bit: rng.gen_range(0..self.bits_per_row),
                retention_ns: self.params.long_min_ns + (rng.gen::<f64>() * span as f64) as u64,
            })
            .collect();
        cells.sort_by_key(|c| c.bit);
        cells.dedup_by_key(|c| c.bit);
        cells.into()
    }

    /// Retention time of an ordinary (non-long) cell.
    fn ordinary_retention_ns(&self, row: RowId, bit: u64) -> u64 {
        let u = to_unit(hash3(self.seed ^ 0x4F52_4449, row.0, bit)); // "ORDI"
        self.params.min_ns + (u * (self.params.max_ns - self.params.min_ns) as f64) as u64
    }

    /// Retention time of any cell (long cells shadow ordinary draws).
    pub(crate) fn retention_ns(&mut self, row: RowId, bit: u64) -> u64 {
        if let Ok(i) = self.long_cells(row).binary_search_by_key(&bit, |c| c.bit) {
            return self.long_cells(row)[i].retention_ns;
        }
        self.ordinary_retention_ns(row, bit)
    }

    /// Applies `elapsed_ns` of unrefreshed decay to a row's stored bytes.
    ///
    /// Cells whose retention has expired read as the discharged value of the
    /// row's polarity. Returns the number of bits whose logic value changed.
    /// Both engines produce byte-identical results; the scalar path is the
    /// reference the wordwise path is differentially tested against.
    pub(crate) fn apply_decay(
        &mut self,
        row: RowId,
        cell_type: CellType,
        bytes: &mut [u8],
        elapsed_ns: u64,
        engine: FlipEngine,
    ) -> u64 {
        if elapsed_ns < self.params.min_ns {
            return 0;
        }
        match engine {
            FlipEngine::Scalar => self.apply_decay_scalar(row, cell_type, bytes, elapsed_ns),
            FlipEngine::Wordwise => self.apply_decay_wordwise(row, cell_type, bytes, elapsed_ns),
        }
    }

    fn apply_decay_scalar(
        &mut self,
        row: RowId,
        cell_type: CellType,
        bytes: &mut [u8],
        elapsed_ns: u64,
    ) -> u64 {
        let discharged = cell_type.discharged_value();
        let mut changed = 0u64;
        if elapsed_ns >= self.params.max_ns {
            // Fast path: every ordinary cell has decayed. Snapshot surviving
            // long cells, blanket-fill, then restore the survivors.
            let long = self.long_cells(row);
            let survivors: Vec<(u64, bool)> = long
                .iter()
                .filter(|c| c.retention_ns > elapsed_ns)
                .map(|c| (c.bit, get_bit(bytes, c.bit)))
                .collect();
            for byte in bytes.iter_mut() {
                let before = *byte;
                *byte = if discharged { 0xFF } else { 0x00 };
                changed += (before ^ *byte).count_ones() as u64;
            }
            for (bit, value) in survivors {
                if get_bit(bytes, bit) != value {
                    set_bit(bytes, bit, value);
                    changed -= 1; // it had been counted as changed by the fill
                }
            }
            changed
        } else {
            // Partial window: check each bit's retention individually.
            for bit in 0..(bytes.len() as u64 * crate::BITS_PER_BYTE as u64) {
                if self.retention_ns(row, bit) < elapsed_ns && get_bit(bytes, bit) != discharged {
                    set_bit(bytes, bit, discharged);
                    changed += 1;
                }
            }
            changed
        }
    }

    fn apply_decay_wordwise(
        &mut self,
        row: RowId,
        cell_type: CellType,
        bytes: &mut [u8],
        elapsed_ns: u64,
    ) -> u64 {
        let target = if cell_type.discharged_value() { !0u64 } else { 0u64 };
        let nbits = bytes.len() * crate::BITS_PER_BYTE;
        if elapsed_ns >= self.params.max_ns {
            // Full decay: every ordinary cell expires; only long cells whose
            // retention outlasts the wait keep their current value. Built on
            // the fly — it needs no per-cell hashing, only the long list.
            let mut mask = ones_mask(nbits);
            for c in self.long_cells(row).iter() {
                if c.retention_ns > elapsed_ns && (c.bit as usize) < nbits {
                    mask[(c.bit / 64) as usize] &= !(1u64 << (c.bit % 64));
                }
            }
            discharge_masked(bytes, &mask, target)
        } else {
            let mask = self.expired_mask(row, elapsed_ns, nbits);
            discharge_masked(bytes, &mask, target)
        }
    }

    /// The expired-cell mask of `row` after `elapsed_ns` in a partial decay
    /// window (`min_ns ≤ elapsed < max_ns`), memoized per elapsed bucket.
    fn expired_mask(&mut self, row: RowId, elapsed_ns: u64, nbits: usize) -> Rc<[u64]> {
        let key = (row.0, elapsed_ns, nbits as u64);
        if let Some(mask) = self.expired.get(&key) {
            return Rc::clone(mask);
        }
        let mut mask = vec![0u64; words_for_bits(nbits)];
        for bit in 0..nbits as u64 {
            if self.ordinary_retention_ns(row, bit) < elapsed_ns {
                mask[(bit / 64) as usize] |= 1u64 << (bit % 64);
            }
        }
        // Long cells shadow the ordinary draw at their positions.
        for c in self.long_cells(row).iter() {
            if (c.bit as usize) >= nbits {
                continue;
            }
            let (w, b) = ((c.bit / 64) as usize, c.bit % 64);
            if c.retention_ns < elapsed_ns {
                mask[w] |= 1u64 << b;
            } else {
                mask[w] &= !(1u64 << b);
            }
        }
        let mask: Rc<[u64]> = mask.into();
        self.expired.insert(key, Rc::clone(&mask));
        mask
    }
}

/// Drives every masked bit of `bytes` to its bit in `target` (all-ones or
/// all-zero), returning how many bits actually changed (popcount of the
/// per-word difference).
fn discharge_masked(bytes: &mut [u8], mask: &[u64], target: u64) -> u64 {
    let mut changed = 0u64;
    for (w, &m) in mask.iter().enumerate() {
        if m == 0 {
            continue;
        }
        let word = load_word(bytes, w);
        let diff = (word ^ target) & m;
        if diff == 0 {
            continue;
        }
        store_word(bytes, w, word ^ diff);
        changed += diff.count_ones() as u64;
    }
    changed
}

pub(crate) fn get_bit(bytes: &[u8], bit: u64) -> bool {
    bytes[(bit / 8) as usize] >> (bit % 8) & 1 == 1
}

pub(crate) fn set_bit(bytes: &mut [u8], bit: u64, value: bool) {
    let byte = &mut bytes[(bit / 8) as usize];
    if value {
        *byte |= 1 << (bit % 8);
    } else {
        *byte &= !(1 << (bit % 8));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RetentionModel {
        RetentionModel::new(RetentionParams::default(), 4096 * 8, 0xFEED)
    }

    #[test]
    fn bit_helpers() {
        let mut b = vec![0u8; 2];
        set_bit(&mut b, 9, true);
        assert_eq!(b, vec![0, 2]);
        assert!(get_bit(&b, 9));
        set_bit(&mut b, 9, false);
        assert!(!get_bit(&b, 9));
    }

    #[test]
    fn retention_is_deterministic() {
        let mut m1 = model();
        let mut m2 = model();
        assert_eq!(m1.retention_ns(RowId(3), 100), m2.retention_ns(RowId(3), 100));
    }

    #[test]
    fn ordinary_retention_in_range() {
        let mut m = model();
        let p = m.params();
        for bit in 0..2000 {
            let r = m.retention_ns(RowId(0), bit);
            assert!(r >= p.min_ns);
            assert!(r <= p.long_max_ns);
        }
    }

    #[test]
    fn no_decay_before_min_retention() {
        let mut m = model();
        let mut bytes = vec![0xFFu8; 4096];
        let changed =
            m.apply_decay(RowId(0), CellType::True, &mut bytes, 1_000_000, FlipEngine::Wordwise);
        assert_eq!(changed, 0);
        assert!(bytes.iter().all(|b| *b == 0xFF));
    }

    #[test]
    fn full_decay_discharges_true_cells_to_zero() {
        let mut m = model();
        let mut bytes = vec![0xFFu8; 4096];
        let elapsed = m.params().max_ns + 1;
        let changed =
            m.apply_decay(RowId(0), CellType::True, &mut bytes, elapsed, FlipEngine::Wordwise);
        // All bits decay except surviving long cells.
        let surviving: u64 = bytes.iter().map(|b| b.count_ones() as u64).sum();
        let long = m.long_cells(RowId(0)).len() as u64;
        assert!(surviving <= long);
        assert_eq!(changed, 4096 * 8 - surviving);
    }

    #[test]
    fn full_decay_discharges_anti_cells_to_one() {
        let mut m = model();
        let mut bytes = vec![0x00u8; 4096];
        let elapsed = m.params().max_ns + 1;
        m.apply_decay(RowId(1), CellType::Anti, &mut bytes, elapsed, FlipEngine::Wordwise);
        let zeros: u64 = bytes.iter().map(|b| b.count_zeros() as u64).sum();
        let long = m.long_cells(RowId(1)).len() as u64;
        assert!(zeros <= long, "zeros={zeros} long={long}");
    }

    #[test]
    fn partial_decay_is_monotonic_in_time() {
        let mut m = model();
        let p = m.params();
        let mut early = vec![0xFFu8; 4096];
        let mut late = vec![0xFFu8; 4096];
        m.apply_decay(
            RowId(2),
            CellType::True,
            &mut early,
            p.min_ns + (p.max_ns - p.min_ns) / 4,
            FlipEngine::Wordwise,
        );
        m.apply_decay(
            RowId(2),
            CellType::True,
            &mut late,
            p.min_ns + (p.max_ns - p.min_ns) / 2,
            FlipEngine::Wordwise,
        );
        let ones_early: u32 = early.iter().map(|b| b.count_ones()).sum();
        let ones_late: u32 = late.iter().map(|b| b.count_ones()).sum();
        assert!(ones_late <= ones_early);
        assert!(ones_early < 4096 * 8, "some decay should have happened");
    }

    #[test]
    fn very_long_wait_kills_even_long_cells() {
        let mut m = model();
        let mut bytes = vec![0xFFu8; 4096];
        m.apply_decay(
            RowId(0),
            CellType::True,
            &mut bytes,
            m.params().long_max_ns + 1,
            FlipEngine::Wordwise,
        );
        assert!(bytes.iter().all(|b| *b == 0));
    }

    #[test]
    fn wordwise_decay_matches_scalar_exactly() {
        let p = RetentionParams::default();
        let elapsed_values = [
            p.min_ns,
            p.min_ns + (p.max_ns - p.min_ns) / 3,
            p.max_ns - 1,
            p.max_ns,
            p.max_ns + 1,
            p.long_min_ns + 5,
            p.long_max_ns + 1,
        ];
        for cell_type in [CellType::True, CellType::Anti] {
            for (fill, elapsed) in
                elapsed_values.iter().enumerate().map(|(i, e)| ([0xFF, 0x5A, 0x00][i % 3], *e))
            {
                let mut scalar = model();
                let mut wordwise = model();
                let mut sb = vec![fill; 4096];
                let mut wb = sb.clone();
                let cs =
                    scalar.apply_decay(RowId(3), cell_type, &mut sb, elapsed, FlipEngine::Scalar);
                let cw = wordwise.apply_decay(
                    RowId(3),
                    cell_type,
                    &mut wb,
                    elapsed,
                    FlipEngine::Wordwise,
                );
                assert_eq!(cs, cw, "changed counts diverged at elapsed={elapsed} {cell_type:?}");
                assert_eq!(sb, wb, "row bytes diverged at elapsed={elapsed} {cell_type:?}");
            }
        }
    }

    #[test]
    fn wordwise_decay_matches_scalar_on_tail_words() {
        // Rows whose bit counts are not multiples of 64: the engine's last
        // word is a zero-padded tail word (plus a 96-bit full+tail mix).
        let p = RetentionParams::default();
        for len in [1usize, 2, 4, 12] {
            for elapsed in [p.min_ns + (p.max_ns - p.min_ns) / 2, p.max_ns + 1] {
                let mut scalar = RetentionModel::new(p, (len * 8) as u64, 0xFEED);
                let mut wordwise = RetentionModel::new(p, (len * 8) as u64, 0xFEED);
                let mut sb = vec![0xFFu8; len];
                let mut wb = sb.clone();
                let cs = scalar.apply_decay(
                    RowId(0),
                    CellType::True,
                    &mut sb,
                    elapsed,
                    FlipEngine::Scalar,
                );
                let cw = wordwise.apply_decay(
                    RowId(0),
                    CellType::True,
                    &mut wb,
                    elapsed,
                    FlipEngine::Wordwise,
                );
                assert_eq!(cs, cw, "len={len} elapsed={elapsed}");
                assert_eq!(sb, wb, "len={len} elapsed={elapsed}");
            }
        }
    }

    #[test]
    fn expired_mask_is_memoized_and_bounded() {
        let mut m = model();
        m.set_cache_capacity(2);
        let p = m.params();
        let elapsed = p.min_ns + (p.max_ns - p.min_ns) / 2;
        let mut reference = vec![0xFFu8; 4096];
        m.apply_decay(RowId(0), CellType::True, &mut reference, elapsed, FlipEngine::Wordwise);
        // A second sweep of the same (row, elapsed) hits the mask cache and
        // must decay a fresh row identically.
        let mut again = vec![0xFFu8; 4096];
        m.apply_decay(RowId(0), CellType::True, &mut again, elapsed, FlipEngine::Wordwise);
        assert_eq!(reference, again);
        // Sweeping more rows than the capacity evicts deterministically.
        for r in 1..6 {
            let mut b = vec![0xFFu8; 4096];
            m.apply_decay(RowId(r), CellType::True, &mut b, elapsed, FlipEngine::Wordwise);
        }
        assert!(m.cached_rows() <= 2);
        assert!(m.evictions() > 0);
    }

    #[test]
    fn long_cells_sparse() {
        let mut m = model();
        // 4096*8 = 32768 bits, long_fraction 1e-3 → ~33 expected.
        let n = m.long_cells(RowId(5)).len();
        assert!(n < 100, "long cells should be sparse, got {n}");
    }
}
