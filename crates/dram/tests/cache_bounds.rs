//! Memory-bound test for the per-row model caches: a templating sweep over
//! every row of a module must hold the vulnerability/retention caches at
//! O(capacity), not O(rows swept), with the overflow visible as eviction
//! counters in telemetry.

use cta_dram::{
    AddressMapping, CellLayout, CellType, DisturbanceParams, DramConfig, DramGeometry, DramModule,
    RowId,
};
use cta_telemetry::Counters;

/// A 4096-row module with a deliberately small model-cache capacity, so the
/// sweep overflows it many times over.
fn capped_module(capacity: usize) -> DramModule {
    let config = DramConfig {
        geometry: DramGeometry::new(4096, 4096, 1, AddressMapping::RowLinear),
        layout: CellLayout::Alternating { period_rows: 8, first: CellType::True },
        disturbance: DisturbanceParams { pf: 0.02, ..DisturbanceParams::default() },
        ..DramConfig::small_test()
    };
    let mut m = DramModule::new(config);
    m.set_model_cache_capacity(capacity);
    m
}

#[test]
fn templating_sweep_stays_within_cache_capacity() {
    let capacity = 64;
    let mut m = capped_module(capacity);
    let rows = m.geometry().total_rows();
    // The templating loop: reconstruct every row's vulnerability map, and
    // hammer a sample of rows so compiled planes populate too.
    for row in 0..rows {
        let _ = m.vulnerable_bits(RowId(row)).unwrap();
        if row % 37 == 0 {
            m.hammer_to_threshold(RowId(row)).unwrap();
            m.advance(m.config().refresh_interval_ns);
        }
    }
    assert!(
        m.model_cache_rows() <= capacity,
        "cache grew past capacity: {} > {capacity}",
        m.model_cache_rows()
    );
    // Sweeping 4096 rows through a 64-entry cache evicts ~4032 bit maps.
    let stats = m.stats();
    assert!(
        stats.vuln_cache_evictions >= (rows - capacity as u64),
        "sweep should have evicted ≥ {} maps, saw {}",
        rows - capacity as u64,
        stats.vuln_cache_evictions
    );
}

#[test]
fn decay_sweep_bounds_the_retention_caches() {
    let capacity = 32;
    let mut m = capped_module(capacity);
    let row_bytes = m.geometry().row_bytes() as usize;
    // Materialize a spread of rows, then decay them all in one partial
    // refresh outage: one expired mask and one long-cell list per row.
    for row in (0..512u64).step_by(4) {
        m.fill(row * row_bytes as u64, row_bytes, 0xFF).unwrap();
    }
    m.disable_refresh();
    let p = m.config().retention;
    m.advance(p.min_ns + (p.max_ns - p.min_ns) / 2);
    m.enable_refresh();
    assert!(m.stats().decay_flips > 0, "the outage must actually decay cells");
    assert!(
        m.model_cache_rows() <= capacity,
        "retention caches grew past capacity: {} > {capacity}",
        m.model_cache_rows()
    );
    assert!(m.stats().retention_cache_evictions > 0);
}

#[test]
fn eviction_counters_surface_in_telemetry() {
    let mut m = capped_module(16);
    for row in 0..64 {
        let _ = m.vulnerable_bits(RowId(row)).unwrap();
    }
    let mut c = Counters::new("bounds");
    c.record(m.stats());
    let g = c.group("dram").unwrap();
    let evictions = g.get_u64("vuln_cache_evictions").unwrap();
    assert_eq!(evictions, m.stats().vuln_cache_evictions);
    assert!(evictions >= 48, "64 rows through 16 entries evicts ≥ 48, saw {evictions}");
    assert_eq!(g.get_u64("retention_cache_evictions"), Some(m.stats().retention_cache_evictions));
}

#[test]
fn byte_budget_bounds_the_caches_and_surfaces_in_telemetry() {
    // A byte budget instead of an entry bound: sweeping 4096 rows through a
    // 64 KiB budget must keep retained payload bytes near the budget (at
    // most one over-budget entry per cache) while evicting the rest, with
    // the byte gauges visible in telemetry.
    let budget = 64 * 1024;
    let mut m = capped_module(4096); // entry bound slack; bytes do the work
    m.set_model_cache_bytes(Some(budget));
    let rows = m.geometry().total_rows();
    for row in 0..rows {
        let _ = m.vulnerable_bits(RowId(row)).unwrap();
    }
    m.disable_refresh();
    let p = m.config().retention;
    m.fill(0, 64 * 4096, 0xFF).unwrap();
    m.advance(p.min_ns + (p.max_ns - p.min_ns) / 2);
    m.enable_refresh();
    // Each cache may retain one over-budget entry; the module owns a
    // handful of caches, so total retained bytes stay within a few budgets
    // plus one maximal entry — far below the unbudgeted sweep footprint.
    let retained = m.model_cache_bytes();
    assert!(retained > 0, "sweep must retain something");
    assert!(retained < 8 * budget + (4096 * 8 * 8), "retained {retained} B escaped the budget");
    assert!(m.stats().vuln_cache_evictions > 0, "byte budget must evict maps");
    let mut c = Counters::new("bounds");
    c.record(m.stats());
    let g = c.group("dram").unwrap();
    assert_eq!(g.get_u64("vuln_cache_bytes"), Some(m.stats().vuln_cache_bytes));
    assert_eq!(g.get_u64("retention_cache_bytes"), Some(m.stats().retention_cache_bytes));
    assert!(m.stats().vuln_cache_bytes <= budget as u64 + 4096 * 8 * 8);
    // Clearing the budget stops further byte-driven eviction.
    m.set_model_cache_bytes(None);
    let before = m.stats().vuln_cache_evictions;
    for row in 0..256 {
        let _ = m.vulnerable_bits(RowId(row)).unwrap();
    }
    assert_eq!(m.stats().vuln_cache_evictions, before, "entry capacity 4096 fits 256 rows");
}

#[test]
fn byte_budget_eviction_is_behavior_neutral() {
    // Byte-driven eviction regenerates from seed exactly like entry-driven
    // eviction: a budgeted module and an unbudgeted one simulate identically.
    let mut budgeted = capped_module(4096);
    budgeted.set_model_cache_bytes(Some(16 * 1024));
    let mut unbudgeted = capped_module(4096);
    for m in [&mut budgeted, &mut unbudgeted] {
        m.fill(0, 64 * 4096, 0xFF).unwrap();
        for row in 0..64 {
            m.hammer_to_threshold(RowId(row)).unwrap();
            m.advance(m.config().refresh_interval_ns);
        }
    }
    assert_eq!(
        budgeted.peek(0, 64 * 4096).unwrap(),
        unbudgeted.peek(0, 64 * 4096).unwrap(),
        "byte-budget eviction changed simulated behavior"
    );
    assert_eq!(budgeted.stats().total_flips(), unbudgeted.stats().total_flips());
    assert!(budgeted.model_cache_bytes() <= unbudgeted.model_cache_bytes());
}

#[test]
fn eviction_is_behavior_neutral() {
    // A capped module and an uncapped one must simulate identically: evicted
    // maps are regenerated from seed, never altered.
    let mut capped = capped_module(8);
    let mut uncapped = capped_module(4096);
    for m in [&mut capped, &mut uncapped] {
        m.fill(0, 64 * 4096, 0xFF).unwrap();
        for row in 0..64 {
            m.hammer_to_threshold(RowId(row)).unwrap();
            m.advance(m.config().refresh_interval_ns);
        }
    }
    assert_eq!(
        capped.peek(0, 64 * 4096).unwrap(),
        uncapped.peek(0, 64 * 4096).unwrap(),
        "eviction changed simulated behavior"
    );
    assert_eq!(capped.stats().total_flips(), uncapped.stats().total_flips());
    assert!(capped.stats().vuln_cache_evictions > uncapped.stats().vuln_cache_evictions);
}
