//! Differential test: the scalar and wordwise flip engines are observably
//! identical. One seeded operation sequence — writes, fills, hammering,
//! refresh outages with decay-then-disturb interplay, power cycles, peeks —
//! drives a module per engine (and per row-store backend), and every
//! observable must match byte for byte: full DRAM contents, the flip log in
//! order, statistics, telemetry JSON, and the simulated clock.

use cta_dram::{
    AddressMapping, CellLayout, CellType, DisturbanceParams, DramConfig, DramGeometry, DramModule,
    FlipEngine, MapGen, RowId, StoreBackend,
};
use cta_telemetry::Counters;

/// Tiny deterministic generator (SplitMix64) so the op sequence is seeded
/// without pulling RNG crates into the test.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Drives one seeded op sequence against `m`, returning mid-sequence reads
/// (an observable of their own). Roughly a quarter of the steps run with
/// refresh disabled, so hammering regularly exercises the decay-then-disturb
/// path on partially decayed rows.
fn drive(m: &mut DramModule, seed: u64) -> Vec<Vec<u8>> {
    let cap = m.capacity_bytes();
    let rows = m.geometry().total_rows();
    let threshold = m.config().disturbance.hammer_threshold;
    let retention = m.config().retention;
    let mut rng = Mix(seed);
    let mut peeks = Vec::new();
    for step in 0..250 {
        match rng.next() % 12 {
            0..=2 => {
                let addr = rng.next() % cap;
                let len = (rng.next() % 96).min(cap - addr) as usize;
                let byte = (rng.next() & 0xFF) as u8;
                let data: Vec<u8> = (0..len).map(|i| byte.wrapping_add(i as u8)).collect();
                m.write(addr, &data).unwrap();
            }
            3..=4 => {
                let addr = rng.next() % cap;
                let len = (rng.next() % 300).min(cap - addr) as usize;
                m.fill(addr, len, (rng.next() & 0xFF) as u8).unwrap();
            }
            5 => {
                let row = RowId(rng.next() % rows);
                m.hammer(row, threshold).unwrap();
            }
            6 => {
                let row = RowId(1 + rng.next() % (rows.saturating_sub(2).max(1)));
                m.hammer_double_sided(row).unwrap();
            }
            7 => {
                // Partial-window decay: sit refresh-less for a stretch inside
                // [min_ns, max_ns), then hammer into the decayed state.
                m.disable_refresh();
                m.advance(retention.min_ns + (rng.next() % (retention.max_ns - retention.min_ns)));
                let row = RowId(1 + rng.next() % (rows.saturating_sub(2).max(1)));
                m.hammer_double_sided(row).unwrap();
            }
            8 => {
                m.enable_refresh();
            }
            9 => {
                let addr = rng.next() % cap;
                let len = (rng.next() % 64).min(cap - addr) as usize;
                peeks.push(m.peek(addr, len).unwrap());
                let read = m.read(addr, len).unwrap();
                peeks.push(read);
            }
            10 => {
                let row = RowId(rng.next() % rows);
                peeks.push(vec![m.vulnerable_bits(row).unwrap().len() as u8]);
            }
            _ => {
                if step % 50 == 17 {
                    m.power_off(retention.max_ns + rng.next() % retention.long_max_ns);
                } else {
                    m.advance(rng.next() % 1_000_000);
                }
            }
        }
    }
    m.enable_refresh();
    peeks
}

/// Everything an experimenter can observe about a module after a drive.
fn observe(
    m: &mut DramModule,
    peeks: Vec<Vec<u8>>,
) -> (Vec<Vec<u8>>, Vec<u8>, String, String, u64) {
    let contents = m.peek(0, m.capacity_bytes() as usize).unwrap();
    let log = m.take_flip_log();
    // The drop count is an observable of its own: both engines must evict
    // exactly the same events from the bounded window.
    let flips: String = std::iter::once(format!("dropped={};", log.dropped))
        .chain(log.iter().map(|e| format!("{:?}/{}/{}/{};", e.row, e.bit, e.direction, e.time_ns)))
        .collect();
    let mut counters = Counters::new("diff");
    counters.record(m.stats());
    counters.add_u64("dram", "rows_materialized", m.rows_materialized() as u64);
    (peeks, contents, flips, counters.to_json(), m.now_ns())
}

fn assert_engines_identical(config: DramConfig, seed: u64, ctx: &str) {
    let mut scalar = DramModule::new(config.clone().with_flip_engine(FlipEngine::Scalar));
    let mut wordwise = DramModule::new(config.with_flip_engine(FlipEngine::Wordwise));
    let s_peeks = drive(&mut scalar, seed);
    let w_peeks = drive(&mut wordwise, seed);
    let s = observe(&mut scalar, s_peeks);
    let w = observe(&mut wordwise, w_peeks);
    assert_eq!(s.0, w.0, "{ctx}: mid-sequence reads diverged");
    assert_eq!(s.1, w.1, "{ctx}: final row contents diverged");
    assert_eq!(s.2, w.2, "{ctx}: flip logs diverged");
    assert_eq!(s.3, w.3, "{ctx}: telemetry JSON diverged");
    assert_eq!(s.4, w.4, "{ctx}: simulated clocks diverged");
}

/// The differential module: `small_test` semantics on 512-byte rows, so the
/// deliberately slow scalar reference (one retention hash per bit per
/// partial-decay window) keeps the suite fast.
fn diff_config() -> DramConfig {
    DramConfig {
        geometry: DramGeometry::new(512, 64, 1, AddressMapping::RowLinear),
        layout: CellLayout::Alternating { period_rows: 8, first: CellType::True },
        disturbance: DisturbanceParams { pf: 0.05, ..DisturbanceParams::default() },
        ..DramConfig::small_test()
    }
}

#[test]
fn engines_bit_identical_across_all_backends() {
    for map_gen in [MapGen::Stream, MapGen::Counter] {
        for backend in StoreBackend::ALL {
            for seed in [1u64, 42] {
                let config =
                    diff_config().with_seed(seed).with_backend(backend).with_map_gen(map_gen);
                assert_engines_identical(
                    config,
                    seed,
                    &format!("map_gen={map_gen:?} backend={backend} seed={seed}"),
                );
            }
        }
    }
}

#[test]
fn engines_bit_identical_on_tail_word_rows() {
    // 4-byte rows: 32 bits per row, so every engine word is a zero-padded
    // tail word. High pf so the tiny rows still flip.
    for map_gen in [MapGen::Stream, MapGen::Counter] {
        for (row_bytes, seed) in [(4u64, 7u64), (2, 8), (1, 9)] {
            let config = DramConfig {
                geometry: DramGeometry::new(row_bytes, 64, 1, AddressMapping::RowLinear),
                layout: CellLayout::Alternating { period_rows: 8, first: CellType::True },
                disturbance: DisturbanceParams { pf: 0.2, ..DisturbanceParams::default() },
                ..DramConfig::small_test()
            }
            .with_map_gen(map_gen);
            assert_engines_identical(
                config,
                seed,
                &format!("map_gen={map_gen:?} row_bytes={row_bytes}"),
            );
        }
    }
}

#[test]
fn wordwise_tail_flips_stay_inside_the_row() {
    // Hammering 32-bit rows must never set a bit index ≥ 32 (a padding bit
    // of the tail word) or corrupt a neighboring row's bytes.
    let config = DramConfig {
        geometry: DramGeometry::new(4, 64, 1, AddressMapping::RowLinear),
        layout: CellLayout::AllTrue,
        disturbance: DisturbanceParams { pf: 0.3, ..DisturbanceParams::default() },
        ..DramConfig::small_test()
    };
    let mut m = DramModule::new(config);
    m.fill(0, m.capacity_bytes() as usize, 0xFF).unwrap();
    for row in 1..63 {
        m.hammer_to_threshold(RowId(row)).unwrap();
        m.advance(m.config().refresh_interval_ns);
    }
    let log = m.take_flip_log();
    assert!(!log.is_empty(), "pf=0.3 over 62 hammered rows must flip something");
    assert!(log.iter().all(|e| e.bit < 32), "flip escaped the 32-bit row");
    assert_eq!(log.total_recorded(), m.stats().total_flips(), "take must account every flip");
}

#[test]
fn forked_wordwise_module_inherits_warm_planes_and_stays_identical() {
    // Campaign harnesses fork a booted module per trial; the fork clones the
    // model caches, so compiled planes carry over. The fork must still be
    // bit-identical to a cold scalar module driven the same way.
    let config = diff_config().with_backend(StoreBackend::Cow);
    let mut warm = DramModule::new(config.clone().with_flip_engine(FlipEngine::Wordwise));
    // Warm the plane cache by hammering every row once.
    for row in 0..64 {
        warm.hammer_to_threshold(RowId(row)).unwrap();
        warm.advance(warm.config().refresh_interval_ns);
    }
    let mut fork = warm.fork();
    let mut scalar = DramModule::new(config.with_flip_engine(FlipEngine::Scalar));
    // Replay the warm-up on the scalar module so histories agree…
    for row in 0..64 {
        scalar.hammer_to_threshold(RowId(row)).unwrap();
        scalar.advance(scalar.config().refresh_interval_ns);
    }
    // …then drive both through a fresh differential sequence.
    let f_peeks = drive(&mut fork, 5);
    let s_peeks = drive(&mut scalar, 5);
    assert_eq!(f_peeks, s_peeks);
    assert_eq!(
        fork.peek(0, fork.capacity_bytes() as usize).unwrap(),
        scalar.peek(0, scalar.capacity_bytes() as usize).unwrap()
    );
    assert_eq!(fork.now_ns(), scalar.now_ns());
}
