//! Soak test for the bounded flip log: long multi-window hammering must
//! keep the retained event log memory-stable while losing nothing from the
//! aggregate flip totals.

use cta_dram::{DramConfig, DramModule, RowId};

#[test]
fn long_campaign_keeps_flip_log_bounded_with_exact_totals() {
    const CAPACITY: usize = 64;
    const WINDOWS: usize = 40;

    let mut m = DramModule::new(DramConfig::small_test());
    m.set_flip_log_capacity(CAPACITY);

    let victim = RowId(2);
    let row_bytes = m.geometry().row_bytes();
    let victim_addr = victim.0 * row_bytes;
    let refresh_ns = m.config().refresh_interval_ns;

    for window in 0..WINDOWS {
        // Refill the victim with all-ones so disturbance keeps finding
        // chargeable bits, then hammer both neighbors to threshold.
        m.fill(victim_addr, row_bytes as usize, 0xFF).unwrap();
        m.hammer_double_sided(victim).unwrap();
        // Cross a refresh boundary so the next window starts fresh.
        m.advance(refresh_ns);

        // The retained log never outgrows its capacity, no matter how
        // many windows have been hammered.
        assert!(
            m.stats().flip_log.len() <= CAPACITY,
            "window {window}: retained {} events > capacity {CAPACITY}",
            m.stats().flip_log.len()
        );
        // Exactness: every flip counted by the aggregate counters is
        // accounted for as retained-or-dropped in the log.
        assert_eq!(
            m.stats().total_flips(),
            m.stats().flip_log.total_recorded(),
            "window {window}: totals diverged from retained+dropped"
        );
    }

    let stats = m.stats();
    assert!(
        stats.total_flips() > CAPACITY as u64,
        "soak run too small to exercise eviction: {} flips",
        stats.total_flips()
    );
    assert_eq!(stats.flip_log.len(), CAPACITY);
    assert!(stats.flip_log.dropped() > 0);
    // The retained window holds the most recent events: all from late in
    // the run, in non-decreasing time order.
    let times: Vec<u64> = stats.flip_log.iter().map(|e| e.time_ns).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn zero_capacity_disables_retention_but_not_counting() {
    let mut m = DramModule::new(DramConfig::small_test());
    m.set_flip_log_capacity(0);

    let victim = RowId(2);
    let row_bytes = m.geometry().row_bytes();
    m.fill(victim.0 * row_bytes, row_bytes as usize, 0xFF).unwrap();
    m.hammer_double_sided(victim).unwrap();

    let stats = m.stats();
    assert!(stats.total_flips() > 0, "small_test pf should flip bits");
    assert!(stats.flip_log.is_empty());
    assert_eq!(stats.flip_log.dropped(), stats.total_flips());
}
