//! Randomized op-sequence fuzz of the DRAM undo journal.
//!
//! The rollback invariant: for *any* trial body, `journal_begin` →
//! ops → `journal_rollback` leaves the module observably identical to a
//! module that never ran the trial. The proptest below drives a random
//! interleaving of every journaled mutation class — writes, fills,
//! hammering, reads (charge touches), clock advances, refresh
//! enable/disable, decay windows, row remapping, flip-log drains and
//! capacity changes, power-off remanence — against a reference fork taken
//! before the journal opened, then compares:
//!
//! * the full contents fingerprint (FNV-1a over every byte),
//! * the simulated clock, statistics, remap table, and materialization
//!   footprint,
//! * and, to expose charge-plane divergence that identical contents could
//!   mask, the contents again after an identical decay probe (refresh
//!   off, clock past the retention horizon) applied to both modules.

use cta_dram::{DisturbanceParams, DramConfig, DramModule, RowId};
use proptest::prelude::*;

/// One randomized mutation. Parameters are raw and clamped at apply time
/// so every generated sequence is valid.
#[derive(Debug, Clone)]
enum Op {
    Write { addr: u64, byte: u8, len: u8 },
    Fill { addr: u64, byte: u8, len: u8 },
    WriteU64 { addr: u64, value: u64 },
    Read { addr: u64, len: u8 },
    HammerDouble { row: u64 },
    Hammer { row: u64, count: u16 },
    Advance { ns: u32 },
    DisableRefresh,
    EnableRefresh,
    Remap { faulty: u64, spare: u64 },
    TakeFlipLog,
    SetFlipLogCapacity { capacity: u8 },
    PowerOff { ns: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u64>(), any::<u8>(), any::<u8>()).prop_map(|(addr, byte, len)| Op::Write {
            addr,
            byte,
            len
        }),
        (any::<u64>(), any::<u8>(), any::<u8>()).prop_map(|(addr, byte, len)| Op::Fill {
            addr,
            byte,
            len
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(addr, value)| Op::WriteU64 { addr, value }),
        (any::<u64>(), any::<u8>()).prop_map(|(addr, len)| Op::Read { addr, len }),
        any::<u64>().prop_map(|row| Op::HammerDouble { row }),
        (any::<u64>(), any::<u16>()).prop_map(|(row, count)| Op::Hammer { row, count }),
        any::<u32>().prop_map(|ns| Op::Advance { ns }),
        Just(Op::DisableRefresh),
        Just(Op::EnableRefresh),
        (any::<u64>(), any::<u64>()).prop_map(|(faulty, spare)| Op::Remap { faulty, spare }),
        Just(Op::TakeFlipLog),
        any::<u8>().prop_map(|capacity| Op::SetFlipLogCapacity { capacity }),
        any::<u32>().prop_map(|ns| Op::PowerOff { ns }),
    ]
}

fn apply(m: &mut DramModule, op: &Op) {
    let capacity = m.capacity_bytes();
    let rows = m.geometry().total_rows();
    match op {
        Op::Write { addr, byte, len } => {
            let len = (*len as u64 % 64 + 1).min(capacity) as usize;
            let addr = addr % (capacity - len as u64);
            m.write(addr, &vec![*byte; len]).expect("in-bounds write");
        }
        Op::Fill { addr, byte, len } => {
            let len = (*len as u64 % 256 + 1).min(capacity) as usize;
            let addr = addr % (capacity - len as u64);
            m.fill(addr, len, *byte).expect("in-bounds fill");
        }
        Op::WriteU64 { addr, value } => {
            let addr = (addr % (capacity - 8)) & !7;
            m.write_u64(addr, *value).expect("in-bounds write_u64");
        }
        Op::Read { addr, len } => {
            let len = (*len as u64 % 64 + 1).min(capacity) as usize;
            let addr = addr % (capacity - len as u64);
            m.read(addr, len).expect("in-bounds read");
        }
        Op::HammerDouble { row } => {
            m.hammer_double_sided(RowId(row % rows)).expect("valid victim");
        }
        Op::Hammer { row, count } => {
            m.hammer(RowId(row % rows), u64::from(*count) % 512 + 1).expect("valid row");
        }
        Op::Advance { ns } => m.advance(u64::from(*ns) % 10_000_000),
        Op::DisableRefresh => m.disable_refresh(),
        Op::EnableRefresh => m.enable_refresh(),
        Op::Remap { faulty, spare } => {
            let faulty = RowId(faulty % rows);
            let spare = RowId(spare % rows);
            // Remapping can legitimately refuse (same row, already
            // remapped, cell-type mismatch); rejection mutates nothing.
            let _ = m.remap_row(faulty, spare);
        }
        Op::TakeFlipLog => {
            m.take_flip_log();
        }
        Op::SetFlipLogCapacity { capacity } => {
            m.set_flip_log_capacity(*capacity as usize % 128 + 1);
        }
        Op::PowerOff { ns } => m.power_off(u64::from(*ns) % 5_000_000_000),
    }
}

/// FNV-1a 64 over the module's full contents via the non-mutating peek.
fn contents_hash(m: &DramModule) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let capacity = m.capacity_bytes();
    let row_bytes = m.geometry().row_bytes();
    let mut buf = vec![0u8; row_bytes as usize];
    let mut hash = FNV_OFFSET;
    let mut addr = 0u64;
    while addr < capacity {
        let take = row_bytes.min(capacity - addr) as usize;
        m.peek_into(addr, &mut buf[..take]).expect("in-bounds peek");
        for &b in &buf[..take] {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        addr += take as u64;
    }
    hash
}

/// Everything cheaply observable about a module, as one comparable blob.
fn observe(m: &DramModule) -> (u64, u64, String, usize, usize) {
    (
        contents_hash(m),
        m.now_ns(),
        format!("{:?}|{:?}", m.stats(), m.remap_table()),
        m.rows_materialized(),
        m.remap_table().len(),
    )
}

proptest! {
    // Each case builds two small modules and replays a full op sequence;
    // 48 cases keeps the suite under a few seconds while still covering
    // thousands of op interleavings across runs.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rollback_restores_the_module_for_any_op_sequence(
        seed in any::<u64>(),
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let cfg = DramConfig::small_test()
            .with_seed(seed)
            .with_disturbance(DisturbanceParams { pf: 0.05, ..DisturbanceParams::default() });
        let mut m = DramModule::new(cfg);
        // Pre-trial state with some materialized rows and history, so
        // rollback must restore *dirty* pre-images, not just blanks.
        m.fill(0, 4096, 0x5A).expect("prefill");
        m.hammer_double_sided(RowId(1)).expect("prehammer");
        let reference = m.fork();
        let before = observe(&m);

        m.journal_begin();
        for op in &ops {
            apply(&mut m, op);
        }
        m.journal_rollback();

        prop_assert_eq!(observe(&m), before, "rollback must restore the pre-trial observation");

        // Decay probe: identical futures prove the charge plane (which
        // identical contents alone could mask) was restored too. Reads —
        // not peeks — force decay to apply, so any last_charge_ns
        // divergence shows up as different decay flips.
        let horizon = 3 * 64_000_000; // well past the retention window
        let probe = |m: &mut DramModule| {
            m.disable_refresh();
            m.advance(horizon);
            let capacity = m.capacity_bytes();
            let row_bytes = m.geometry().row_bytes() as usize;
            let mut contents = Vec::with_capacity(capacity as usize);
            let mut addr = 0u64;
            while addr < capacity {
                let take = row_bytes.min((capacity - addr) as usize);
                contents.extend(m.read(addr, take).expect("in-bounds read"));
                addr += take as u64;
            }
            (contents, m.stats().clone())
        };
        let mut reference = reference;
        let expected = probe(&mut reference);
        let actual = probe(&mut m);
        prop_assert_eq!(actual.0, expected.0, "decay probe contents diverged");
        prop_assert_eq!(actual.1, expected.1, "decay probe stats diverged");
    }
}
