//! Property-based tests of the DRAM substrate's core invariants.

use cta_dram::{
    AddressMapping, CellLayout, CellType, DisturbanceParams, DramConfig, DramGeometry, DramModule,
    RowId,
};
use proptest::prelude::*;

fn small_geometry() -> impl Strategy<Value = DramGeometry> {
    (
        prop_oneof![Just(1024u64), Just(2048), Just(4096)],
        4u64..32,
        1u32..5,
        prop_oneof![Just(AddressMapping::RowLinear), Just(AddressMapping::BankInterleaved)],
    )
        .prop_map(|(row_bytes, rows, banks, mapping)| {
            DramGeometry::new(row_bytes, rows, banks, mapping)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Physical address → (row, col) → address is the identity.
    #[test]
    fn address_mapping_round_trips(geometry in small_geometry(), frac in 0.0f64..1.0) {
        let addr = (geometry.capacity_bytes() as f64 * frac) as u64;
        let addr = addr.min(geometry.capacity_bytes() - 1);
        let row = geometry.row_of_addr(addr).unwrap();
        let base = geometry.addr_of_row(row).unwrap();
        prop_assert_eq!(base + geometry.col_of_addr(addr), addr);
    }

    /// Bank adjacency is symmetric: if b is a neighbor of a, a is one of b.
    #[test]
    fn adjacency_is_symmetric(geometry in small_geometry(), row in 0u64..128) {
        let row = RowId(row % geometry.total_rows());
        for n in geometry.adjacent_rows(row).unwrap() {
            let back = geometry.adjacent_rows(n).unwrap();
            prop_assert!(back.contains(&row));
        }
    }

    /// Whatever is written is read back identically while refresh runs.
    #[test]
    fn read_after_write_is_identity(
        offset in 0u64..60_000,
        data in proptest::collection::vec(any::<u8>(), 1..256),
    ) {
        let mut m = DramModule::new(DramConfig::small_test());
        let addr = offset.min(m.capacity_bytes() - data.len() as u64);
        m.write(addr, &data).unwrap();
        prop_assert_eq!(m.read(addr, data.len()).unwrap(), data);
    }

    /// Monotonicity: hammering a value stored in a true-cell row can only
    /// clear bits — the reverse-rate is zero in this configuration, making
    /// the guarantee absolute.
    #[test]
    fn true_cells_are_monotonic_under_hammer(
        value in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let cfg = DramConfig::small_test()
            .with_seed(seed)
            .with_layout(CellLayout::AllTrue)
            .with_disturbance(DisturbanceParams {
                pf: 0.05,
                reverse_rate: 0.0,
                ..DisturbanceParams::default()
            });
        let mut m = DramModule::new(cfg);
        let addr = m.geometry().row_bytes(); // row 1
        m.write_u64(addr, value).unwrap();
        m.hammer_double_sided(RowId(1)).unwrap();
        let after = m.read_u64(addr).unwrap();
        prop_assert_eq!(after & !value, 0, "no bit may be set that was clear before");
    }

    /// The dual: anti-cell rows can only gain bits under hammering.
    #[test]
    fn anti_cells_only_gain_bits_under_hammer(
        value in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let cfg = DramConfig::small_test()
            .with_seed(seed)
            .with_layout(CellLayout::AllAnti)
            .with_disturbance(DisturbanceParams {
                pf: 0.05,
                reverse_rate: 0.0,
                ..DisturbanceParams::default()
            });
        let mut m = DramModule::new(cfg);
        let addr = m.geometry().row_bytes();
        m.write_u64(addr, value).unwrap();
        m.hammer_double_sided(RowId(1)).unwrap();
        let after = m.read_u64(addr).unwrap();
        prop_assert_eq!(value & !after, 0, "no bit may be cleared");
    }

    /// The profiler recovers arbitrary alternating layouts exactly.
    #[test]
    fn profiler_recovers_layout(period in 1u64..16, first_true in any::<bool>(), seed in any::<u64>()) {
        let first = if first_true { CellType::True } else { CellType::Anti };
        let cfg = DramConfig::small_test()
            .with_seed(seed)
            .with_layout(CellLayout::Alternating { period_rows: period, first });
        let mut m = DramModule::new(cfg);
        let profile =
            cta_dram::profile_cell_types(&mut m, &cta_dram::ProfilerConfig::default()).unwrap();
        prop_assert_eq!(profile.map, m.ground_truth_cell_map());
    }

    /// Decay never *increases* the charge of a row: once a wait has decayed
    /// some cells, a longer wait decays a superset.
    #[test]
    fn decay_is_monotonic_in_time(seed in any::<u64>()) {
        let build = || DramModule::new(DramConfig::small_test().with_seed(seed));
        let observe = |wait: u64| {
            let mut m = build();
            m.fill(0, 512, 0xFF).unwrap();
            m.disable_refresh();
            m.advance(wait);
            m.read(0, 512).unwrap()
        };
        let p = DramConfig::small_test().retention;
        let short = observe(p.min_ns + (p.max_ns - p.min_ns) / 3);
        let long = observe(p.min_ns + (p.max_ns - p.min_ns) * 2 / 3);
        for (s, l) in short.iter().zip(long.iter()) {
            prop_assert_eq!(l & !s, 0, "a bit alive at long wait must be alive at short wait");
        }
    }
}
