//! Differential tests for the software-defense activation hook.
//!
//! Two contract points from `cta_dram::defense`:
//!
//! - **No defense, no change**: a module with a pure-observer defense is
//!   byte-identical (contents, flip log, clocks, DRAM telemetry) to one
//!   with no defense at all, under a seeded adversarial op sequence.
//! - **Defense refreshes are ordinary refreshes**: a SoftTRR-issued
//!   targeted refresh resets hammer progress and lands in the DRAM
//!   counters exactly like a manual `refresh_neighbors_of` call.

use cta_dram::{
    BlockHammerDefense, BlockHammerParams, DramConfig, DramModule, ObserverDefense, RowId,
    SoftTrrDefense, SoftTrrParams,
};
use cta_telemetry::Counters;

/// Tiny deterministic generator (SplitMix64) so the op sequence is seeded
/// without pulling RNG crates into the test.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Drives one seeded op sequence against `m` (writes, fills, hammering,
/// refresh outages, reads), returning mid-sequence observations.
fn drive(m: &mut DramModule, seed: u64) -> Vec<Vec<u8>> {
    let cap = m.capacity_bytes();
    let rows = m.geometry().total_rows();
    let threshold = m.config().disturbance.hammer_threshold;
    let mut rng = Mix(seed);
    let mut peeks = Vec::new();
    for step in 0..120 {
        match rng.next() % 8 {
            0..=2 => {
                let addr = rng.next() % cap;
                let len = (rng.next() % 96).min(cap - addr) as usize;
                let byte = (rng.next() & 0xFF) as u8;
                let data: Vec<u8> = (0..len).map(|i| byte.wrapping_add(i as u8)).collect();
                m.write(addr, &data).unwrap();
            }
            3 => {
                let row = RowId(rng.next() % rows);
                m.hammer(row, threshold).unwrap();
            }
            4 => {
                let row = RowId(1 + rng.next() % (rows - 2));
                m.hammer_double_sided(row).unwrap();
            }
            5 => {
                if step % 2 == 0 {
                    m.disable_refresh();
                    m.advance(m.config().retention.min_ns / 4);
                } else {
                    m.enable_refresh();
                }
            }
            6 => {
                let addr = rng.next() % cap;
                let len = (rng.next() % 64).min(cap - addr) as usize;
                peeks.push(m.peek(addr, len).unwrap());
                peeks.push(m.read(addr, len).unwrap());
            }
            _ => m.advance(rng.next() % 1_000_000),
        }
    }
    m.enable_refresh();
    peeks
}

/// Full observable state of a module: mid-sequence peeks, final contents,
/// flip transcript, clock, and DRAM telemetry JSON.
fn observe(
    m: &mut DramModule,
    peeks: Vec<Vec<u8>>,
) -> (Vec<Vec<u8>>, Vec<u8>, String, u64, String) {
    let contents = m.peek(0, m.capacity_bytes() as usize).unwrap();
    let log = m.take_flip_log();
    let flips: String = std::iter::once(format!("dropped={};", log.dropped))
        .chain(
            log.iter().map(|e| format!("{:?}/{:?}/{:?}/{};", e.row, e.bit, e.direction, e.time_ns)),
        )
        .collect();
    let mut counters = Counters::new("diff");
    counters.record(m.stats());
    (peeks, contents, flips, m.now_ns(), counters.to_json())
}

#[test]
fn observer_defense_is_byte_identical_to_no_defense() {
    for seed in [7u64, 0xBEEF] {
        let mut plain = DramModule::new(DramConfig::small_test().with_seed(seed));
        let plain_peeks = drive(&mut plain, seed);
        let reference = observe(&mut plain, plain_peeks);

        let mut observed = DramModule::new(DramConfig::small_test().with_seed(seed));
        observed.install_defense(Box::new(ObserverDefense::new()));
        let observed_peeks = drive(&mut observed, seed);
        let result = observe(&mut observed, observed_peeks);

        assert_eq!(result, reference, "seed={seed}");
        // The observer really watched the stream — it just never acted.
        assert!(observed.defense_stats().activations_seen > 0, "seed={seed}");
        assert_eq!(observed.defense_stats().activations_denied, 0);
        assert_eq!(observed.defense_stats().targeted_refreshes, 0);
    }
}

#[test]
fn softtrr_refresh_matches_manual_refresh_calls() {
    // Module A: SoftTRR protecting row 2, aggressor row 1 hammered with one
    // burst of the full hammer threshold. Module B: no defense, the same
    // total activations issued in TRR-threshold-sized chunks with a manual
    // refresh_neighbors_of after each — what SoftTRR does from the hook.
    let trr = SoftTrrParams { trr_threshold: 16 * 1024 };
    let threshold = DramConfig::small_test().disturbance.hammer_threshold;
    let chunks = threshold / trr.trr_threshold;
    assert_eq!(chunks * trr.trr_threshold, threshold, "test wants an exact split");

    let mut defended = DramModule::new(DramConfig::small_test());
    defended.install_defense(Box::new(SoftTrrDefense::new(trr)));
    defended.defense_protect_row(RowId(2)).unwrap();
    defended.fill(2 * 4096, 4096, 0xFF).unwrap();
    defended.hammer(RowId(1), threshold).unwrap();

    let mut manual = DramModule::new(DramConfig::small_test());
    manual.fill(2 * 4096, 4096, 0xFF).unwrap();
    for _ in 0..chunks {
        manual.hammer(RowId(1), trr.trr_threshold).unwrap();
        manual.refresh_neighbors_of(RowId(1)).unwrap();
    }

    // Same hammer progress reset: the within-window counter is cleared on
    // both paths, and neither side ever reached the disturbance threshold.
    assert_eq!(defended.window_activations(RowId(1)), manual.window_activations(RowId(1)));
    assert_eq!(defended.window_activations(RowId(1)), 0);
    assert_eq!(defended.defense_stats().targeted_refreshes, chunks);

    // Identical contents and identical DRAM counters — directional flip
    // counters included — exactly as if the attacker had watched manual
    // refreshes: zero flips either way.
    assert_eq!(
        defended.peek(0, defended.capacity_bytes() as usize).unwrap(),
        manual.peek(0, manual.capacity_bytes() as usize).unwrap()
    );
    assert_eq!(defended.now_ns(), manual.now_ns());
    let json = |m: &DramModule| {
        let mut c = Counters::new("diff");
        c.record(m.stats());
        c.to_json()
    };
    assert_eq!(json(&defended), json(&manual));
    assert_eq!(defended.stats().total_flips(), 0);

    // Control: the same burst with no defense and no manual refreshes does
    // cross the threshold and flip bits in the protected victim.
    let mut undefended = DramModule::new(DramConfig::small_test());
    undefended.fill(2 * 4096, 4096, 0xFF).unwrap();
    undefended.hammer(RowId(1), threshold).unwrap();
    assert!(undefended.stats().total_flips() > 0);
}

#[test]
fn softtrr_protects_only_neighbors_of_protected_rows() {
    // Victim row 2 protected: double-sided hammering of it flips nothing.
    let mut m = DramModule::new(DramConfig::small_test());
    m.install_defense(Box::new(SoftTrrDefense::new(SoftTrrParams::default())));
    m.defense_protect_row(RowId(2)).unwrap();
    m.fill(2 * 4096, 4096, 0xFF).unwrap();
    m.fill(6 * 4096, 4096, 0xFF).unwrap();
    m.hammer_double_sided(RowId(2)).unwrap();
    let protected_flips = m.stats().flip_log.iter().filter(|e| e.row == RowId(2)).count();
    assert_eq!(protected_flips, 0, "SoftTRR must keep the protected row clean");
    assert!(m.defense_stats().targeted_refreshes > 0);

    // Unprotected victim row 6 in the same module: stock behavior, flips.
    m.advance(m.config().refresh_interval_ns); // fresh window
    m.hammer_double_sided(RowId(6)).unwrap();
    let unprotected_flips = m.stats().flip_log.iter().filter(|e| e.row == RowId(6)).count();
    assert!(unprotected_flips > 0, "rows without protected neighbors see stock behavior");
}

#[test]
fn blockhammer_throttles_blacklisted_rows() {
    let params = BlockHammerParams::default();
    let threshold = DramConfig::small_test().disturbance.hammer_threshold;

    let mut m = DramModule::new(DramConfig::small_test());
    m.install_defense(Box::new(BlockHammerDefense::new(params)));
    m.fill(2 * 4096, 4096, 0xFF).unwrap();
    let t0 = m.now_ns();
    m.hammer(RowId(1), threshold).unwrap();

    // The row's window counter is pinned at the blacklist budget, the
    // remainder was denied, and no disturbance ever fired.
    assert_eq!(m.window_activations(RowId(1)), params.blacklist_threshold);
    assert_eq!(m.defense_stats().activations_denied, threshold - params.blacklist_threshold);
    assert_eq!(m.stats().total_flips(), 0);
    // Denied activations still cost tRC — the controller stalls them.
    assert_eq!(m.now_ns() - t0, threshold * m.config().disturbance.trc_ns);

    // Control: without the defense the identical burst flips bits.
    let mut undefended = DramModule::new(DramConfig::small_test());
    undefended.fill(2 * 4096, 4096, 0xFF).unwrap();
    undefended.hammer(RowId(1), threshold).unwrap();
    assert!(undefended.stats().total_flips() > 0);
}

#[test]
fn fork_carries_independent_defense_state() {
    let mut parent = DramModule::new(DramConfig::small_test());
    parent.install_defense(Box::new(BlockHammerDefense::new(BlockHammerParams::default())));
    let mut child = parent.fork();
    assert_eq!(child.defense().map(|d| d.name()), Some("blockhammer"));

    child.hammer(RowId(1), 64 * 1024).unwrap();
    assert!(child.defense_stats().activations_denied > 0);
    assert_eq!(parent.defense_stats().activations_denied, 0);
    assert_eq!(parent.defense_stats().activations_seen, 0);
}

#[test]
fn defense_snapshot_exists_only_when_installed() {
    let mut m = DramModule::new(DramConfig::small_test());
    assert!(m.defense_snapshot().is_none());

    m.install_defense(Box::new(ObserverDefense::new()));
    m.hammer(RowId(1), 100).unwrap();
    let snap = m.defense_snapshot().expect("defense installed");
    assert_eq!(snap.name, "observer");
    assert_eq!(snap.stats.activations_seen, 100);

    let mut c = Counters::new("diff");
    c.record(&snap);
    let g = c.group("defense").expect("defense group recorded");
    assert_eq!(g.get_u64("activations_seen"), Some(100));
    assert_eq!(g.get_u64("observer_batches"), Some(1));
}
