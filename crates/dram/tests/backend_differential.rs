//! Differential test: the three row-store backends are observationally
//! identical. One seeded operation sequence — writes, fills, hammering,
//! refresh outages, power cycles, peeks — drives a module per backend, and
//! every observable (full DRAM contents, flip log, statistics, telemetry
//! JSON) must match byte for byte.

use cta_dram::{DramConfig, DramModule, RowId, StoreBackend};
use cta_telemetry::Counters;

/// Tiny deterministic generator (SplitMix64) so the op sequence is seeded
/// without pulling RNG crates into the test.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Drives one seeded op sequence against `m`, returning the peek results
/// collected along the way (an observable of their own: mid-sequence reads
/// must agree across backends, not just the final state).
fn drive(m: &mut DramModule, seed: u64) -> Vec<Vec<u8>> {
    let cap = m.capacity_bytes();
    let rows = m.geometry().total_rows();
    let threshold = m.config().disturbance.hammer_threshold;
    let mut rng = Mix(seed);
    let mut peeks = Vec::new();
    for step in 0..200 {
        match rng.next() % 10 {
            0..=2 => {
                let addr = rng.next() % cap;
                let len = (rng.next() % 96).min(cap - addr) as usize;
                let byte = (rng.next() & 0xFF) as u8;
                let data: Vec<u8> = (0..len).map(|i| byte.wrapping_add(i as u8)).collect();
                m.write(addr, &data).unwrap();
            }
            3..=4 => {
                let addr = rng.next() % cap;
                let len = (rng.next() % 300).min(cap - addr) as usize;
                m.fill(addr, len, (rng.next() & 0xFF) as u8).unwrap();
            }
            5 => {
                let row = RowId(rng.next() % rows);
                m.hammer(row, threshold).unwrap();
            }
            6 => {
                let row = RowId(1 + rng.next() % (rows - 2));
                m.hammer_double_sided(row).unwrap();
            }
            7 => {
                if step % 2 == 0 {
                    m.disable_refresh();
                    m.advance(m.config().retention.min_ns / 4);
                } else {
                    m.enable_refresh();
                }
            }
            8 => {
                let addr = rng.next() % cap;
                let len = (rng.next() % 64).min(cap - addr) as usize;
                peeks.push(m.peek(addr, len).unwrap());
                let read = m.read(addr, len).unwrap();
                peeks.push(read);
            }
            _ => {
                if step % 50 == 17 {
                    m.power_off(m.config().retention.min_ns / 2);
                } else {
                    m.advance(rng.next() % 1_000_000);
                }
            }
        }
    }
    m.enable_refresh();
    peeks
}

#[test]
fn backends_are_bit_identical_under_seeded_op_sequence() {
    for seed in [1u64, 0xDEAD, 42] {
        let mut reference: Option<(Vec<Vec<u8>>, Vec<u8>, String, String)> = None;
        for backend in StoreBackend::ALL {
            let mut m =
                DramModule::new(DramConfig::small_test().with_seed(seed).with_backend(backend));
            assert_eq!(m.store_backend(), backend);
            let peeks = drive(&mut m, seed);
            let contents = m.peek(0, m.capacity_bytes() as usize).unwrap();
            let log = m.take_flip_log();
            // The drop count is part of the observable: every backend must
            // evict exactly the same events from the bounded window.
            let flips: String =
                std::iter::once(format!("dropped={};", log.dropped))
                    .chain(log.iter().map(|e| {
                        format!("{:?}/{:?}/{:?}/{};", e.row, e.bit, e.direction, e.time_ns)
                    }))
                    .collect();
            let mut counters = Counters::new("diff");
            counters.record(m.stats());
            counters.add_u64("dram", "rows_materialized", m.rows_materialized() as u64);
            let json = counters.to_json();
            match &reference {
                None => reference = Some((peeks, contents, flips, json)),
                Some((ref_peeks, ref_contents, ref_flips, ref_json)) => {
                    assert_eq!(&peeks, ref_peeks, "seed={seed} backend={backend}");
                    assert_eq!(&contents, ref_contents, "seed={seed} backend={backend}");
                    assert_eq!(&flips, ref_flips, "seed={seed} backend={backend}");
                    assert_eq!(&json, ref_json, "seed={seed} backend={backend}");
                }
            }
        }
    }
}

#[test]
fn forked_module_diverges_without_affecting_parent() {
    for backend in StoreBackend::ALL {
        let mut parent = DramModule::new(DramConfig::small_test().with_backend(backend));
        parent.fill(0, 4096, 0xFF).unwrap();
        let before = parent.peek(0, 4096).unwrap();

        let mut child = parent.fork();
        assert_eq!(child.peek(0, 4096).unwrap(), before, "backend={backend}");
        child.fill(0, 4096, 0x00).unwrap();
        child.hammer_double_sided(RowId(2)).unwrap();

        assert_eq!(parent.peek(0, 4096).unwrap(), before, "backend={backend}");
        assert_eq!(parent.stats().total_flips(), 0, "backend={backend}");
        // The child really diverged (zero-filled, modulo rare 0→1 reverse
        // flips from the hammer): nothing close to the parent's all-ones.
        let child_ones: u32 = child.peek(0, 4096).unwrap().iter().map(|b| b.count_ones()).sum();
        assert!(child_ones < 100, "backend={backend}, ones={child_ones}");
    }
}

#[test]
fn cow_fork_shares_rows_until_written() {
    let mut parent = DramModule::new(DramConfig::small_test().with_backend(StoreBackend::Cow));
    parent.fill(0, 4096, 0xAA).unwrap();
    parent.fill(5 * 4096, 4096, 0xBB).unwrap();
    assert_eq!(parent.rows_shared_with_forks(), 0);

    let mut child = parent.fork();
    assert_eq!(parent.rows_shared_with_forks(), parent.rows_materialized());

    // Child writes one row: only that row's sharing breaks.
    child.fill(0, 4096, 0x11).unwrap();
    assert_eq!(parent.rows_shared_with_forks(), parent.rows_materialized() - 1);
    assert!(parent.peek(0, 4096).unwrap().iter().all(|b| *b == 0xAA));

    drop(child);
    assert_eq!(parent.rows_shared_with_forks(), 0);
}
