//! A long-running work-stealing executor with worker-local state.
//!
//! [`parallel_map`](crate::parallel_map) is scoped fork-join: it spawns
//! workers, drains one batch, and tears everything down. A campaign
//! *service* needs the opposite lifecycle — workers that outlive any one
//! batch so they can amortize expensive per-worker state (booted parent
//! kernels, compiled vulnerability maps) across every job they ever run.
//!
//! [`Executor`] provides that lifecycle while keeping the crate's
//! determinism contract:
//!
//! * **Worker-local context.** Each worker thread builds its own context
//!   `W` via the `init` closure *on the worker thread itself*, so `W` need
//!   not be [`Send`] — the simulator's `Kernel` (an `Rc`-based object
//!   graph) can live in a pool inside `W` and never crosses threads.
//! * **Per-worker deques with stealing.** A submitted batch lands on one
//!   worker's deque (preserving locality with that worker's warm parent
//!   pool); idle workers steal from the *back* of other deques, so a
//!   saturated queue drains at full width regardless of submission skew.
//! * **Indexed batches, index-order results.** Every job carries its
//!   index within its batch; results land in per-batch slots and
//!   [`Ticket::wait`] returns them in index order. Scheduling and steal
//!   interleaving are invisible in the output.
//! * **Completion hooks run exactly once**, on whichever worker finishes
//!   the batch's last job, with the full index-ordered result slice —
//!   the seam where a campaign merge + telemetry emission happens without
//!   the submitter having to poll.
//!
//! Panics in a job poison only that job's batch (its [`Ticket::wait`]
//! re-panics); the worker rebuilds its context via `init` and keeps
//! serving other batches.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Monotonic counters describing everything an [`Executor`] has done.
///
/// All values are cumulative since construction; none of them feed back
/// into scheduling, so observing them is side-effect free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Jobs handed to [`Executor::submit`] so far.
    pub submitted: u64,
    /// Jobs whose handler ran to completion (success or poison).
    pub completed: u64,
    /// Jobs a worker popped from *another* worker's deque.
    pub stolen: u64,
    /// Batches submitted.
    pub batches: u64,
    /// Handler panics caught (each also rebuilds that worker's context).
    pub panics: u64,
}

/// Per-batch completion callback: receives the index-ordered results.
type CompletionHook<R> = Box<dyn FnOnce(&[R]) + Send>;

struct BatchInner<R> {
    slots: Vec<Option<R>>,
    remaining: usize,
    finished: Option<Vec<R>>,
    poisoned: Option<String>,
    on_complete: Option<CompletionHook<R>>,
}

struct BatchState<R> {
    inner: Mutex<BatchInner<R>>,
    done: Condvar,
}

struct Task<J, R> {
    job: J,
    index: usize,
    batch: Arc<BatchState<R>>,
}

struct Shared<J, R> {
    queues: Vec<Mutex<VecDeque<Task<J, R>>>>,
    /// Paired with `work`: submitters notify under this lock, idle workers
    /// re-check `pending` under it before sleeping, so wakeups can't be
    /// missed.
    idle: Mutex<()>,
    work: Condvar,
    pending: AtomicU64,
    shutdown: AtomicBool,
    next_queue: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    stolen: AtomicU64,
    batches: AtomicU64,
    panics: AtomicU64,
}

impl<J, R> Shared<J, R> {
    fn next_task(&self, me: usize) -> Option<Task<J, R>> {
        loop {
            if let Some(task) = self.queues[me].lock().expect("queue poisoned").pop_front() {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                return Some(task);
            }
            for other in 0..self.queues.len() {
                if other == me {
                    continue;
                }
                if let Some(task) = self.queues[other].lock().expect("queue poisoned").pop_back() {
                    self.pending.fetch_sub(1, Ordering::AcqRel);
                    self.stolen.fetch_add(1, Ordering::Relaxed);
                    return Some(task);
                }
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            let guard = self.idle.lock().expect("idle lock poisoned");
            if self.pending.load(Ordering::Acquire) == 0 && !self.shutdown.load(Ordering::Acquire) {
                drop(self.work.wait(guard).expect("idle lock poisoned"));
            }
        }
    }

    fn complete(&self, batch: &Arc<BatchState<R>>, index: usize, result: R) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let mut inner = batch.inner.lock().expect("batch poisoned");
        debug_assert!(inner.slots[index].is_none(), "slot {index} double-filled");
        inner.slots[index] = Some(result);
        inner.remaining -= 1;
        if inner.remaining > 0 {
            return;
        }
        let results: Vec<R> = if inner.poisoned.is_some() {
            // A sibling job panicked: results are partial; skip the hook
            // and let Ticket::wait surface the poison.
            batch.done.notify_all();
            return;
        } else {
            inner.slots.drain(..).map(|s| s.expect("batch slot unfilled")).collect()
        };
        let hook = inner.on_complete.take();
        drop(inner);
        // The hook runs outside the batch lock (it may do real work:
        // merge counters, write telemetry) but *before* waiters observe
        // completion, so a Ticket::wait that returns has the hook's side
        // effects already durable.
        if let Some(hook) = hook {
            hook(&results);
        }
        let mut inner = batch.inner.lock().expect("batch poisoned");
        inner.finished = Some(results);
        batch.done.notify_all();
    }

    fn poison(&self, batch: &Arc<BatchState<R>>, message: String) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.panics.fetch_add(1, Ordering::Relaxed);
        let mut inner = batch.inner.lock().expect("batch poisoned");
        inner.remaining -= 1;
        if inner.poisoned.is_none() {
            inner.poisoned = Some(message);
        }
        batch.done.notify_all();
    }
}

/// Handle to one submitted batch; redeems for the index-ordered results.
pub struct Ticket<R> {
    batch: Arc<BatchState<R>>,
}

/// Cloneable identity of one submitted batch, for [`Executor::cancel`].
///
/// Unlike [`Ticket`] (which is consumed by `wait`), a handle can be
/// cloned and stashed in a registry so that *other* threads can cancel
/// the batch's still-queued jobs while the submitter waits.
pub struct BatchHandle<R> {
    batch: Arc<BatchState<R>>,
}

impl<R> Clone for BatchHandle<R> {
    fn clone(&self) -> Self {
        BatchHandle { batch: Arc::clone(&self.batch) }
    }
}

impl<R> Ticket<R> {
    /// A cloneable handle identifying this batch for cancellation.
    pub fn handle(&self) -> BatchHandle<R> {
        BatchHandle { batch: Arc::clone(&self.batch) }
    }

    /// Blocks until every job in the batch has run (and the completion
    /// hook, if any, has returned), then yields the results in submission
    /// index order.
    ///
    /// # Panics
    ///
    /// Re-panics (with the original message) if any job in the batch
    /// panicked.
    pub fn wait(self) -> Vec<R> {
        let mut inner = self.batch.inner.lock().expect("batch poisoned");
        loop {
            if let Some(message) = inner.poisoned.clone() {
                if inner.remaining == 0 {
                    panic!("executor batch poisoned: {message}");
                }
            }
            if let Some(results) = inner.finished.take() {
                return results;
            }
            inner = self.batch.done.wait(inner).expect("batch poisoned");
        }
    }

    /// True once every job in the batch has completed (or the batch is
    /// poisoned); [`wait`](Self::wait) will not block.
    pub fn is_done(&self) -> bool {
        let inner = self.batch.inner.lock().expect("batch poisoned");
        inner.finished.is_some() || (inner.poisoned.is_some() && inner.remaining == 0)
    }
}

/// A persistent pool of worker threads with worker-local context,
/// per-worker deques, and work stealing. See the module docs for the
/// determinism contract.
pub struct Executor<J, R> {
    shared: Arc<Shared<J, R>>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl<J, R> Executor<J, R>
where
    J: Send + 'static,
    R: Send + 'static,
{
    /// Spawns `workers` threads (`0` = one per core, via
    /// [`worker_count`](crate::worker_count)). Each thread calls
    /// `init(worker_index)` once to build its local context, then serves
    /// jobs through `handler` until the executor is dropped.
    ///
    /// `W` is built on the worker thread and never leaves it, so it does
    /// not need to be `Send`.
    pub fn new<W, I, F>(workers: usize, init: I, handler: F) -> Self
    where
        I: Fn(usize) -> W + Send + Sync + 'static,
        F: Fn(&mut W, J) -> R + Send + Sync + 'static,
    {
        let workers = crate::worker_count(workers);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Mutex::new(()),
            work: Condvar::new(),
            pending: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            next_queue: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        });
        let init = Arc::new(init);
        let handler = Arc::new(handler);
        let handles = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                let init = Arc::clone(&init);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("cta-exec-{me}"))
                    .spawn(move || {
                        let mut ctx = init(me);
                        while let Some(task) = shared.next_task(me) {
                            let Task { job, index, batch } = task;
                            match catch_unwind(AssertUnwindSafe(|| handler(&mut ctx, job))) {
                                Ok(result) => shared.complete(&batch, index, result),
                                Err(payload) => {
                                    shared.poison(&batch, panic_message(payload.as_ref()));
                                    // The handler may have left ctx (e.g. a
                                    // kernel pool) mid-mutation; rebuild it.
                                    ctx = init(me);
                                }
                            }
                        }
                    })
                    .expect("failed to spawn executor worker")
            })
            .collect();
        Executor { shared, handles, workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Submits an indexed batch of jobs; see [`submit_with`](Self::submit_with).
    pub fn submit(&self, jobs: Vec<J>) -> Ticket<R> {
        self.submit_hook(jobs, None, None)
    }

    /// Submits an indexed batch with a completion hook. The hook runs
    /// exactly once, on the worker that finishes the batch's last job,
    /// with the full index-ordered result slice — before any
    /// [`Ticket::wait`] on this batch returns. (It is skipped if the
    /// batch is poisoned by a panic.)
    ///
    /// The whole batch is pushed onto a single worker's deque (batches
    /// round-robin across workers), so one campaign's trials prefer one
    /// worker's warm context; idle workers steal from the back.
    pub fn submit_with<C>(&self, jobs: Vec<J>, on_complete: C) -> Ticket<R>
    where
        C: FnOnce(&[R]) + Send + 'static,
    {
        self.submit_hook(jobs, None, Some(Box::new(on_complete)))
    }

    /// [`submit_with`](Self::submit_with), but the batch lands on worker
    /// `affinity % workers` instead of the round-robin cursor. Callers
    /// whose worker contexts hold expensive keyed state (e.g. pooled
    /// parent kernels per tenant) route same-key batches to the same
    /// worker so the warm context is reused; stealing still rebalances
    /// under load, so affinity is a preference, not a partition.
    pub fn submit_with_affinity<C>(
        &self,
        affinity: usize,
        jobs: Vec<J>,
        on_complete: C,
    ) -> Ticket<R>
    where
        C: FnOnce(&[R]) + Send + 'static,
    {
        self.submit_hook(jobs, Some(affinity), Some(Box::new(on_complete)))
    }

    fn submit_hook(
        &self,
        jobs: Vec<J>,
        affinity: Option<usize>,
        on_complete: Option<CompletionHook<R>>,
    ) -> Ticket<R> {
        let n = jobs.len();
        self.shared.batches.fetch_add(1, Ordering::Relaxed);
        self.shared.submitted.fetch_add(n as u64, Ordering::Relaxed);
        let batch = Arc::new(BatchState {
            inner: Mutex::new(BatchInner {
                slots: (0..n).map(|_| None).collect(),
                remaining: n,
                finished: None,
                poisoned: None,
                on_complete,
            }),
            done: Condvar::new(),
        });
        if n == 0 {
            let mut inner = batch.inner.lock().expect("batch poisoned");
            if let Some(hook) = inner.on_complete.take() {
                hook(&[]);
            }
            inner.finished = Some(Vec::new());
            drop(inner);
            return Ticket { batch };
        }
        let target = match affinity {
            Some(a) => a % self.shared.queues.len(),
            None => {
                (self.shared.next_queue.fetch_add(1, Ordering::Relaxed) as usize)
                    % self.shared.queues.len()
            }
        };
        self.shared.pending.fetch_add(n as u64, Ordering::AcqRel);
        {
            let mut queue = self.shared.queues[target].lock().expect("queue poisoned");
            for (index, job) in jobs.into_iter().enumerate() {
                queue.push_back(Task { job, index, batch: Arc::clone(&batch) });
            }
        }
        let _guard = self.shared.idle.lock().expect("idle lock poisoned");
        self.shared.work.notify_all();
        Ticket { batch }
    }

    /// Removes the batch's still-queued jobs from every worker deque,
    /// filling their result slots with `filler(index)` instead of running
    /// them, and returns how many jobs were dropped.
    ///
    /// Jobs already claimed by a worker are *not* interrupted — they
    /// drain normally, so cancellation never tears state out from under a
    /// running handler. The batch still completes as usual: dropped slots
    /// count toward the `completed` counter (their filler results are
    /// results like any other), the completion hook runs once the last
    /// in-flight job finishes, and `Ticket::wait` returns the full
    /// index-ordered slice with filler values in the dropped positions.
    /// Cancelling a batch with nothing queued (already drained, or
    /// already finished) is a no-op returning 0.
    pub fn cancel<F>(&self, handle: &BatchHandle<R>, filler: F) -> usize
    where
        F: Fn(usize) -> R,
    {
        let mut dropped = 0usize;
        for queue in &self.shared.queues {
            let mut removed = Vec::new();
            {
                let mut q = queue.lock().expect("queue poisoned");
                let mut kept = VecDeque::with_capacity(q.len());
                for task in q.drain(..) {
                    if Arc::ptr_eq(&task.batch, &handle.batch) {
                        removed.push(task.index);
                    } else {
                        kept.push_back(task);
                    }
                }
                *q = kept;
            }
            if removed.is_empty() {
                continue;
            }
            self.shared.pending.fetch_sub(removed.len() as u64, Ordering::AcqRel);
            // Outside the queue lock: the last fill may run the batch's
            // completion hook, which can do real work.
            for index in removed {
                self.shared.complete(&handle.batch, index, filler(index));
                dropped += 1;
            }
        }
        dropped
    }

    /// Snapshot of the executor's cumulative counters.
    pub fn stats(&self) -> ExecutorStats {
        ExecutorStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            stolen: self.shared.stolen.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            panics: self.shared.panics.load(Ordering::Relaxed),
        }
    }
}

impl<J, R> Drop for Executor<J, R> {
    /// Graceful drain: workers finish every queued job (so outstanding
    /// tickets still complete), then exit.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.shared.idle.lock().expect("idle lock poisoned");
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            // A worker that panicked outside a job already poisoned its
            // batches; don't double-panic the destructor.
            drop(handle.join());
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn results_come_back_in_index_order() {
        let exec: Executor<usize, usize> = Executor::new(
            4,
            |_| (),
            |(), job| {
                if job < 4 {
                    std::thread::sleep(std::time::Duration::from_millis(3));
                }
                job * 10
            },
        );
        let out = exec.submit((0..16).collect()).wait();
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn worker_context_need_not_be_send() {
        // Rc is !Send: proves context lives and dies on its worker.
        let exec: Executor<u64, u64> = Executor::new(
            3,
            |worker| Rc::new(Cell::new(worker as u64)),
            |ctx, job| {
                ctx.set(ctx.get() + 1);
                job + 1
            },
        );
        let out = exec.submit(vec![10, 20, 30]).wait();
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn many_batches_interleave_without_crosstalk() {
        let exec = Arc::new(Executor::new(4, |_| (), |(), job: u64| job * job));
        let tickets: Vec<(u64, Ticket<u64>)> =
            (0..8u64).map(|b| (b, exec.submit((b * 100..b * 100 + 50).collect()))).collect();
        for (b, ticket) in tickets {
            let out = ticket.wait();
            assert_eq!(out.len(), 50);
            for (i, v) in out.iter().enumerate() {
                let job = b * 100 + i as u64;
                assert_eq!(*v, job * job);
            }
        }
    }

    #[test]
    fn completion_hook_runs_once_with_ordered_results() {
        let seen: Arc<Mutex<Vec<Vec<u64>>>> = Arc::new(Mutex::new(Vec::new()));
        let exec = Executor::new(2, |_| (), |(), job: u64| job + 100);
        let seen2 = Arc::clone(&seen);
        let ticket = exec.submit_with(vec![1, 2, 3], move |results: &[u64]| {
            seen2.lock().unwrap().push(results.to_vec());
        });
        let out = ticket.wait();
        assert_eq!(out, vec![101, 102, 103]);
        // Hook has already run by the time wait() returned.
        assert_eq!(*seen.lock().unwrap(), vec![vec![101, 102, 103]]);
    }

    #[test]
    fn empty_batch_completes_immediately() {
        let exec: Executor<u64, u64> = Executor::new(2, |_| (), |(), job| job);
        let fired = Arc::new(AtomicBool::new(false));
        let fired2 = Arc::clone(&fired);
        let ticket = exec.submit_with(Vec::new(), move |r: &[u64]| {
            assert!(r.is_empty());
            fired2.store(true, Ordering::SeqCst);
        });
        assert!(ticket.is_done());
        assert_eq!(ticket.wait(), Vec::<u64>::new());
        assert!(fired.load(Ordering::SeqCst));
    }

    #[test]
    fn panic_poisons_only_its_batch_and_worker_recovers() {
        let rebuilds = Arc::new(AtomicU64::new(0));
        let rebuilds2 = Arc::clone(&rebuilds);
        let exec = Executor::new(
            2,
            move |_| {
                rebuilds2.fetch_add(1, Ordering::SeqCst);
            },
            |(), job: u64| {
                assert!(job != 42, "planted failure");
                job
            },
        );
        let bad = exec.submit(vec![41, 42, 43]);
        let good = exec.submit(vec![1, 2, 3]);
        assert_eq!(good.wait(), vec![1, 2, 3]);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| bad.wait()));
        assert!(err.is_err(), "poisoned batch must re-panic on wait");
        assert_eq!(exec.stats().panics, 1);
        // Executor still serves jobs after the poison.
        assert_eq!(exec.submit(vec![7]).wait(), vec![7]);
        drop(exec); // join workers so the rebuild is observable
                    // 2 initial contexts + 1 rebuild after the panic.
        assert_eq!(rebuilds.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn stats_count_jobs_and_batches() {
        let exec = Executor::new(2, |_| (), |(), job: u64| job);
        for _ in 0..5 {
            exec.submit(vec![1, 2, 3, 4]).wait();
        }
        let stats = exec.stats();
        assert_eq!(stats.submitted, 20);
        assert_eq!(stats.completed, 20);
        assert_eq!(stats.batches, 5);
        assert_eq!(stats.panics, 0);
    }

    #[test]
    fn cancel_drops_queued_jobs_and_fills_their_slots() {
        use std::sync::mpsc;
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Arc::new(Mutex::new(release_rx));
        let exec = Executor::new(
            1, // one worker: jobs 1..8 stay queued while job 0 blocks
            |_| (),
            move |(), job: u64| {
                if job == 0 {
                    started_tx.send(()).unwrap();
                    release_rx.lock().unwrap().recv().unwrap();
                }
                job + 100
            },
        );
        let ticket = exec.submit((0..8).collect());
        let handle = ticket.handle();
        started_rx.recv().unwrap(); // job 0 is in flight, 1..8 queued
        let dropped = exec.cancel(&handle, |index| index as u64);
        assert_eq!(dropped, 7);
        release_tx.send(()).unwrap();
        let out = ticket.wait();
        // Slot 0 ran; slots 1..8 hold the filler values.
        assert_eq!(out, vec![100, 1, 2, 3, 4, 5, 6, 7]);
        // Filled slots count as completed, so the ledger still balances.
        let stats = exec.stats();
        assert_eq!(stats.submitted, 8);
        assert_eq!(stats.completed, 8);
    }

    #[test]
    fn cancel_after_completion_is_a_noop() {
        let exec = Executor::new(2, |_| (), |(), job: u64| job);
        let ticket = exec.submit(vec![1, 2, 3]);
        let handle = ticket.handle();
        assert_eq!(ticket.wait(), vec![1, 2, 3]);
        assert_eq!(exec.cancel(&handle, |_| 999), 0);
    }

    #[test]
    fn cancel_leaves_other_batches_untouched() {
        use std::sync::mpsc;
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Arc::new(Mutex::new(release_rx));
        let exec = Executor::new(
            1,
            |_| (),
            move |(), job: u64| {
                if job == 0 {
                    started_tx.send(()).unwrap();
                    release_rx.lock().unwrap().recv().unwrap();
                }
                job * 2
            },
        );
        let doomed = exec.submit(vec![0, 1, 2]);
        let survivor = exec.submit(vec![10, 11]);
        started_rx.recv().unwrap();
        assert_eq!(exec.cancel(&doomed.handle(), |_| 0), 2);
        release_tx.send(()).unwrap();
        assert_eq!(doomed.wait(), vec![0, 0, 0]);
        assert_eq!(survivor.wait(), vec![20, 22]);
    }

    #[test]
    fn drop_drains_outstanding_work() {
        let exec = Executor::new(
            2,
            |_| (),
            |(), job: u64| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                job
            },
        );
        let ticket = exec.submit((0..32).collect());
        drop(exec); // graceful drain: queued jobs still run
        assert_eq!(ticket.wait().len(), 32);
    }
}
