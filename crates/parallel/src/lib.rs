//! Deterministic parallel execution across independent seeded trials.
//!
//! The simulator's shared state (`DramModule`, kernels, page tables)
//! stays single-threaded by design — determinism there comes from
//! a single totally-ordered event stream. The experiment drivers, though,
//! are embarrassingly parallel *across trials*: Monte Carlo shards, Table 4
//! benchmark×repetition cells, and attack campaigns across seeds are
//! independent by construction, each owning its own RNG stream and (where
//! needed) its own simulated machine.
//!
//! This crate provides the execution layer those drivers share, built on
//! three rules that together make parallel results **bit-identical** to
//! serial ones:
//!
//! 1. **Work is indexed.** Every trial has a fixed index; [`parallel_map`]
//!    returns results in index order no matter which worker ran what when.
//! 2. **Seeds derive from `(seed, index)`.** [`shard_seed`] gives shard 0
//!    the campaign seed *unchanged* (so a one-shard run reproduces the
//!    serial implementation's stream exactly) and SplitMix64-mixes the
//!    others.
//! 3. **Reduction happens in index order** on the caller's thread, so
//!    non-associative float accumulation matches the serial loop.
//!
//! `threads <= 1` always takes the in-place serial path — same call order,
//! same allocations, same results — which is the documented way to
//! reproduce today's single-threaded output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a requested worker count: `0` means "one per available core".
///
/// Any non-zero request is honored as-is (oversubscription is the
/// caller's business; determinism never depends on the count).
pub fn worker_count(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Derives the RNG seed for shard `index` of a campaign seeded with
/// `seed`.
///
/// Shard 0 receives `seed` itself, which is what makes a `shards = 1` run
/// reproduce the pre-sharding serial implementation bit-for-bit. Other
/// shards get an avalanche mix (SplitMix64 over `seed ^ golden·index`) so
/// neighboring indices land in unrelated parts of the seed space.
pub fn shard_seed(seed: u64, index: u32) -> u64 {
    if index == 0 {
        return seed;
    }
    let mut z = seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Splits `total` items across `shards` as evenly as possible: the first
/// `total % shards` shards take one extra. The split depends only on
/// `(total, shards)`, never on scheduling.
pub fn shard_sizes(total: u64, shards: u32) -> Vec<u64> {
    assert!(shards > 0, "need at least one shard");
    let shards64 = shards as u64;
    let base = total / shards64;
    let extra = total % shards64;
    (0..shards64).map(|i| base + u64::from(i < extra)).collect()
}

/// Runs `f(0..n)` across up to `threads` scoped workers and returns the
/// results **in index order**.
///
/// Workers pull indices from a shared atomic counter, so scheduling is
/// nondeterministic — but each index's result lands in its own slot and
/// the returned `Vec` is assembled in index order, making the output
/// independent of interleaving. With `threads <= 1` (or `n <= 1`) the
/// whole map runs serially on the calling thread: the exact serial path.
///
/// # Panics
///
/// Propagates a panic from any worker (the scope joins all threads
/// first), and panics if a result slot is somehow left unfilled — both
/// indicate bugs in `f`, not in scheduling.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = worker_count(threads).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("result slot poisoned")
                .unwrap_or_else(|| panic!("slot {i} unfilled"))
        })
        .collect()
}

/// [`parallel_map`] for fallible work, with **cooperative early-cancel**:
/// once any job fails, queued jobs at *higher* indices are skipped instead
/// of run to completion, and the lowest-index error is returned.
///
/// Error selection is still deterministic: a failing index is only ever
/// skipped when a strictly lower failing index has already been recorded,
/// so the returned error is the same lowest-index error a run-everything
/// implementation would pick — independent of worker count or scheduling.
/// Only the *wasted work after a failure* changes. The serial path
/// (`threads <= 1`) short-circuits at the first error, which is the same
/// error by construction (indices run in order).
///
/// # Errors
///
/// The lowest-index job error, if any job failed.
pub fn try_parallel_map<T, E, F>(n: usize, threads: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let threads = worker_count(threads).min(n.max(1));
    if threads <= 1 || n <= 1 {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(f(i)?);
        }
        return Ok(out);
    }

    let slots: Vec<Mutex<Option<Result<T, E>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    // Lowest failing index seen so far; `usize::MAX` = no failure. Workers
    // consult it before starting a job: an index above the watermark can
    // never win error selection and its success would be discarded anyway.
    let first_err = AtomicUsize::new(usize::MAX);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if i > first_err.load(Ordering::Acquire) {
                    continue;
                }
                let value = f(i);
                if value.is_err() {
                    first_err.fetch_min(i, Ordering::AcqRel);
                }
                *slots[i].lock().expect("result slot poisoned") = Some(value);
            });
        }
    });
    let cutoff = first_err.load(Ordering::Acquire);
    if cutoff == usize::MAX {
        return Ok(slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .unwrap_or_else(|| panic!("slot {i} unfilled"))
                    .unwrap_or_else(|_| panic!("slot {i} failed without raising the watermark"))
            })
            .collect());
    }
    match slots
        .into_iter()
        .nth(cutoff)
        .expect("watermark within bounds")
        .into_inner()
        .expect("result slot poisoned")
    {
        Some(Err(e)) => Err(e),
        _ => panic!("slot {cutoff} does not hold the recorded error"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let serial = parallel_map(100, 1, |i| i * i);
        let parallel = parallel_map(100, 8, |i| i * i);
        assert_eq!(serial, parallel);
        assert_eq!(serial[7], 49);
    }

    #[test]
    fn order_is_by_index_not_completion() {
        // Make early indices slow: completion order inverts index order.
        let out = parallel_map(16, 4, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn shard_sizes_cover_total_exactly() {
        for total in [0u64, 1, 7, 100, 101, 1023] {
            for shards in [1u32, 2, 3, 7, 16] {
                let sizes = shard_sizes(total, shards);
                assert_eq!(sizes.len(), shards as usize);
                assert_eq!(sizes.iter().sum::<u64>(), total);
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "uneven split {sizes:?}");
            }
        }
    }

    #[test]
    fn shard_zero_preserves_seed() {
        for seed in [0u64, 1, 0xC0FFEE, u64::MAX] {
            assert_eq!(shard_seed(seed, 0), seed);
        }
    }

    #[test]
    fn shard_seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> =
            (0..64).map(|i| shard_seed(0xBEEF, i)).collect();
        assert_eq!(seeds.len(), 64);
    }

    #[test]
    fn try_map_returns_lowest_index_error() {
        let out: Result<Vec<u32>, usize> =
            try_parallel_map(10, 4, |i| if i % 3 == 2 { Err(i) } else { Ok(i as u32) });
        assert_eq!(out, Err(2));
    }

    #[test]
    fn try_map_cancels_queued_work_after_failure() {
        // Index 0 fails immediately; every other job sleeps. With the
        // watermark in place, workers skip (almost) everything queued
        // behind the failure instead of running all 64 jobs.
        let executed = AtomicUsize::new(0);
        let out: Result<Vec<usize>, &str> = try_parallel_map(64, 4, |i| {
            if i == 0 {
                return Err("boom");
            }
            executed.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(std::time::Duration::from_millis(1));
            Ok(i)
        });
        assert_eq!(out, Err("boom"));
        let ran = executed.load(Ordering::Relaxed);
        assert!(ran < 64, "early-cancel skipped nothing: {ran}/64 jobs ran");
    }

    #[test]
    fn try_map_error_selection_survives_cancellation() {
        // Two failing indices; the high one is fast and fails first in
        // wall-clock terms, but selection must still pick index 3.
        for _ in 0..16 {
            let out: Result<Vec<usize>, usize> = try_parallel_map(12, 4, |i| {
                if i == 3 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    Err(i)
                } else if i == 9 {
                    Err(i)
                } else {
                    Ok(i)
                }
            });
            assert_eq!(out, Err(3));
        }
    }

    #[test]
    fn try_map_serial_short_circuits() {
        let executed = AtomicUsize::new(0);
        let out: Result<Vec<usize>, usize> = try_parallel_map(10, 1, |i| {
            executed.fetch_add(1, Ordering::Relaxed);
            if i == 4 {
                Err(i)
            } else {
                Ok(i)
            }
        });
        assert_eq!(out, Err(4));
        assert_eq!(executed.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn worker_count_zero_resolves_to_cores() {
        assert!(worker_count(0) >= 1);
        assert_eq!(worker_count(5), 5);
    }

    #[test]
    fn empty_and_single_item_maps() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i), vec![0]);
    }
}
