//! The Table 1 registry: published RowHammer attacks.

use std::fmt;

/// What data the attack corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VictimData {
    /// Page-table entries.
    Ptes,
    /// Instruction opcodes.
    Opcodes,
    /// RSA key material.
    RsaKeys,
    /// Intel SGX enclave state.
    Sgx,
}

impl fmt::Display for VictimData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VictimData::Ptes => "PTEs",
            VictimData::Opcodes => "Opcodes",
            VictimData::RsaKeys => "RSA Keys",
            VictimData::Sgx => "Intel SGX",
        };
        f.write_str(s)
    }
}

/// Platform the attack was demonstrated on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Native x86.
    X86,
    /// Virtual machines.
    Vm,
    /// ARM (mobile).
    Arm,
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Platform::X86 => "x86",
            Platform::Vm => "VM",
            Platform::Arm => "ARM",
        };
        f.write_str(s)
    }
}

/// One published attack (a row of Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnownAttack {
    /// Short citation tag as used in the paper.
    pub reference: &'static str,
    /// Corrupted data.
    pub victim: VictimData,
    /// Attack effect.
    pub effect: &'static str,
    /// Demonstration platform.
    pub platform: Platform,
    /// Whether CTA's PTE protection addresses this attack family directly.
    pub mitigated_by_cta: bool,
}

/// The Table 1 rows.
pub fn catalog() -> Vec<KnownAttack> {
    vec![
        KnownAttack {
            reference: "Seaborn & Dullien '15",
            victim: VictimData::Ptes,
            effect: "Privilege Escalation",
            platform: Platform::X86,
            mitigated_by_cta: true,
        },
        KnownAttack {
            reference: "Seaborn & Dullien '15",
            victim: VictimData::Opcodes,
            effect: "Sandbox Escapes",
            platform: Platform::X86,
            mitigated_by_cta: false,
        },
        KnownAttack {
            reference: "Cheng et al. '18",
            victim: VictimData::Ptes,
            effect: "Privilege Escalation",
            platform: Platform::X86,
            mitigated_by_cta: true,
        },
        KnownAttack {
            reference: "Xiao et al. '16",
            victim: VictimData::Ptes,
            effect: "Privilege Escalation",
            platform: Platform::Vm,
            mitigated_by_cta: true,
        },
        KnownAttack {
            reference: "Gruss et al. '16 (rowhammer.js)",
            victim: VictimData::Ptes,
            effect: "Privilege Escalation",
            platform: Platform::X86,
            mitigated_by_cta: true,
        },
        KnownAttack {
            reference: "Razavi et al. '16 (Flip Feng Shui)",
            victim: VictimData::RsaKeys,
            effect: "Compromised Authentication",
            platform: Platform::Vm,
            mitigated_by_cta: false,
        },
        KnownAttack {
            reference: "van der Veen et al. '16 (Drammer)",
            victim: VictimData::Ptes,
            effect: "Privilege Escalation",
            platform: Platform::Arm,
            mitigated_by_cta: true,
        },
        KnownAttack {
            reference: "Gruss et al. '17",
            victim: VictimData::Opcodes,
            effect: "Denial-of-Service and Privilege Escalation",
            platform: Platform::X86,
            mitigated_by_cta: false,
        },
        KnownAttack {
            reference: "Bhattacharya & Mukhopadhyay '16",
            victim: VictimData::RsaKeys,
            effect: "Fault Analysis",
            platform: Platform::X86,
            mitigated_by_cta: false,
        },
        KnownAttack {
            reference: "Jang et al. '17 (SGX-Bomb)",
            victim: VictimData::Sgx,
            effect: "Denial-of-Service",
            platform: Platform::X86,
            mitigated_by_cta: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_ten_rows() {
        assert_eq!(catalog().len(), 10);
    }

    #[test]
    fn pte_attacks_are_the_majority_and_mitigated() {
        let rows = catalog();
        let pte_rows: Vec<_> = rows.iter().filter(|a| a.victim == VictimData::Ptes).collect();
        assert_eq!(pte_rows.len(), 5);
        assert!(pte_rows.iter().all(|a| a.mitigated_by_cta));
    }

    #[test]
    fn non_pte_attacks_not_claimed() {
        for row in catalog() {
            if row.victim != VictimData::Ptes {
                assert!(!row.mitigated_by_cta, "{} over-claims", row.reference);
            }
        }
    }

    #[test]
    fn displays() {
        assert_eq!(VictimData::Ptes.to_string(), "PTEs");
        assert_eq!(Platform::Arm.to_string(), "ARM");
    }
}
