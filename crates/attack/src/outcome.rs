//! Attack outcomes and the section 5 attack-time accounting.

use std::fmt;

/// Result of running an attack.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttackOutcome {
    /// The attacker demonstrated privilege escalation: it *read* the kernel
    /// secret through its own mappings.
    pub secret_read: bool,
    /// The attacker also *overwrote* the kernel secret (full write
    /// primitive).
    pub secret_overwritten: bool,
    /// A self-referencing PTE was found by scanning the attacker's
    /// mappings.
    pub self_reference_found: bool,
    /// Rows the attacker hammered.
    pub rows_hammered: u64,
    /// Disturbance flips the module recorded during the attack.
    pub flips_induced: u64,
    /// Mappings the attacker created (spray width).
    pub mappings_created: u64,
    /// Simulated time consumed, nanoseconds.
    pub sim_time_ns: u64,
    /// Human-readable trace of the attack's phases.
    pub log: Vec<String>,
}

impl AttackOutcome {
    /// Overall success: privilege escalation demonstrated.
    pub fn success(&self) -> bool {
        self.secret_read
    }

    pub(crate) fn note(&mut self, msg: impl Into<String>) {
        self.log.push(msg.into());
    }
}

impl fmt::Display for AttackOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: self-ref={} flips={} rows={} mappings={} sim_time={:.3}s",
            if self.success() { "SUCCESS" } else { "FAILED" },
            self.self_reference_found,
            self.flips_induced,
            self.rows_hammered,
            self.mappings_created,
            self.sim_time_ns as f64 / 1e9,
        )?;
        for line in &self.log {
            writeln!(f, "  - {line}")?;
        }
        Ok(())
    }
}

/// The section 5 attack-time accounting for Algorithm 1.
///
/// The paper measures three step costs on an i7-6700 prototype and projects
/// the brute-force attack time from them:
///
/// - step (1), refilling `ZONE_PTP` with PTEs for a new target page:
///   ≈ 184 ms;
/// - step (2), hammering one row: at least one refresh interval, 64 ms;
/// - step (3), checking one PTE for self-reference: ≈ 600 ns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackTimeModel {
    /// Step (1) cost per target page, nanoseconds.
    pub fill_ns: u64,
    /// Step (2) cost per hammered row, nanoseconds.
    pub hammer_row_ns: u64,
    /// Step (3) cost per PTE checked, nanoseconds.
    pub check_pte_ns: u64,
}

impl Default for AttackTimeModel {
    fn default() -> Self {
        AttackTimeModel { fill_ns: 184_000_000, hammer_row_ns: 64_000_000, check_pte_ns: 600 }
    }
}

impl AttackTimeModel {
    /// Worst-case time for Algorithm 1 in nanoseconds:
    /// `target_pages × (fill + rows × (hammer + ptes_per_row × check))`.
    pub fn worst_case_ns(&self, target_pages: u64, zone_rows: u64, ptes_per_row: u64) -> u128 {
        let per_row = self.hammer_row_ns as u128 + ptes_per_row as u128 * self.check_pte_ns as u128;
        target_pages as u128 * (self.fill_ns as u128 + zone_rows as u128 * per_row)
    }

    /// Expected attack time in days given the expected number of
    /// exploitable PTE locations (section 5: `worst / (⌈E⌉ + 1)` when
    /// `E ≥ 1`, `worst / 2` for the rare-success regime).
    pub fn expected_days(
        &self,
        target_pages: u64,
        zone_rows: u64,
        ptes_per_row: u64,
        expected_exploitable: f64,
    ) -> f64 {
        let worst = self.worst_case_ns(target_pages, zone_rows, ptes_per_row) as f64;
        let divisor =
            if expected_exploitable >= 1.0 { expected_exploitable.ceil() + 1.0 } else { 2.0 };
        worst / divisor / 1e9 / 86_400.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_8gb_32mb_unrestricted_time() {
        // 2^21 - 8192 target pages, 256 rows, 16384 PTEs/row, E=6.7 ⇒ 57.6 d.
        let m = AttackTimeModel::default();
        let days = m.expected_days((1 << 21) - 8192, 256, 16384, 6.7);
        assert!((days - 57.6).abs() < 0.7, "days={days}");
    }

    #[test]
    fn paper_8gb_32mb_restricted_time() {
        // Same worst case halved: 230.7 days.
        let m = AttackTimeModel::default();
        let days = m.expected_days((1 << 21) - 8192, 256, 16384, 4.69e-6);
        assert!((days - 230.7).abs() < 2.5, "days={days}");
    }

    #[test]
    fn paper_8gb_64mb_unrestricted_time() {
        // 64 MiB zone: 512 rows, 2^21-16384 pages, E=11.73 ⇒ 70.3 days.
        let m = AttackTimeModel::default();
        let days = m.expected_days((1 << 21) - 16384, 512, 16384, 11.73);
        assert!((days - 70.3).abs() < 1.0, "days={days}");
    }

    #[test]
    fn outcome_display() {
        let mut o = AttackOutcome::default();
        o.note("phase 1");
        assert!(o.to_string().contains("FAILED"));
        o.secret_read = true;
        assert!(o.to_string().contains("SUCCESS"));
        assert!(!o.success() || o.secret_read);
    }
}
