//! RowHammer attacks against the simulated kernel.
//!
//! Attack code in this crate plays by *attacker rules*: a malicious
//! user-mode process that can only map, read, write, and hammer memory it
//! owns, flush the TLB, and observe the contents of its own mappings. The
//! only simulator affordance is the hammer primitive itself
//! ([`hammer::HammerDriver`]), which stands in for the cache-flush +
//! alternating-access loops of real exploits.
//!
//! Implemented attack families:
//!
//! - [`spray::SprayAttack`] — the probabilistic PTE-spray privilege
//!   escalation of Seaborn & Dullien (Figure 3): spray page tables, hammer
//!   owned rows, scan for PTE-looking data, then run the full exploit chain
//!   to read the kernel secret;
//! - [`templating::TemplatingAttack`] — Drammer-style deterministic attack:
//!   template flippable bits in owned memory, free the chosen victim frame,
//!   massage a page table onto it, hammer once;
//! - [`brute::BruteForceCtaAttack`] — the paper's Algorithm 1, tailored to
//!   CTA systems, with the section 5 attack-time accounting;
//! - [`catalog()`] — the Table 1 registry of published RowHammer attacks.
//!
//! [`campaign`] runs any of these across many seeds — one freshly built
//! kernel per trial, optionally in parallel with deterministic,
//! seed-ordered results (see `cta_parallel`). [`executor`] is the
//! long-running service form of the same contract: parent kernels are
//! booted once per (machine, seed, tenant) and every trial runs on a
//! copy-on-write fork, with campaigns fanned out across a work-stealing
//! worker pool and merged byte-identically to the serial path.
//!
//! Every attack returns an [`outcome::AttackOutcome`] scoring success by
//! *observed behavior* (kernel secret leaked / overwritten), cross-checked
//! against the [`cta_core::verify`] self-reference detector.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute;
pub mod campaign;
pub mod catalog;
pub mod executor;
pub mod hammer;
pub mod outcome;
pub mod recording;
pub mod spray;
pub mod templating;

pub use brute::BruteForceCtaAttack;
pub use campaign::{
    brute_campaign, run_campaign, run_campaign_with_counters, run_forked_campaign,
    run_forked_campaign_with_counters, spray_campaign, templating_campaign, CampaignSummary,
};
pub use catalog::{catalog, KnownAttack, Platform, VictimData};
pub use executor::{
    CampaignExecutor, CampaignOutput, CampaignRequest, CampaignTicket, ExecutorConfig,
    ServiceStats, TenantLimits, TrialIsolation,
};
pub use hammer::HammerDriver;
pub use outcome::{AttackOutcome, AttackTimeModel};
pub use recording::{
    record_campaign, replay_recording, verify_flip_accounting, RecordedAttack, Recording,
    RecordingError, RecordingSpec, ReplayReport, ReplayTarget, TrialRecord,
};
pub use spray::SprayAttack;
pub use templating::TemplatingAttack;
