//! The persistent campaign executor: boot once, fork (or journal) per
//! trial.
//!
//! [`crate::recording`]'s scoped path builds a fresh kernel per trial —
//! boot plus vulnerability-map compile dominate each trial's cost. A
//! service facing sustained campaign traffic amortizes that: every worker
//! thread keeps per-tenant [`KernelPool`]s of booted *parent* kernels
//! (keyed by the full machine configuration, seed included) and serves
//! each trial from a [`cta_vm::Kernel::fork`] — O(changed rows) on the
//! CoW backend. Campaigns are submitted as indexed trial batches to a
//! [`cta_parallel::executor::Executor`]: one worker's deque per campaign
//! (locality with that worker's warm parents), work stealing when the
//! queue saturates.
//!
//! **Trial isolation.** [`TrialIsolation`] selects how a trial is kept
//! from perturbing its pooled parent: [`TrialIsolation::Fork`] (the
//! default) copies the parent per trial, while
//! [`TrialIsolation::Journal`] runs the trial **in place** on the parent
//! under [`KernelPool::run_journaled`]'s undo journal and rolls it back —
//! O(touched state) instead of O(parent). Rollback is byte-identical to a
//! fresh fork (pinned by the isolation differential suites), so the two
//! modes produce byte-identical campaign output and share the same pooled
//! parents ([`TrialIsolation`] is deliberately absent from the parent
//! key).
//!
//! **Cancellation.** [`CampaignExecutor::cancel`] drops a submitted
//! campaign's still-queued trials from the worker deques; in-flight
//! trials drain normally. Dropped trials surface as
//! [`CampaignOutput::dropped_trials`] and are excluded from the merged
//! transcript/counters; a `cancelled` event is emitted on the JSONL
//! stream.
//!
//! **Determinism contract.** A campaign's observable output — its
//! [`TrialRecord`]s, merged [`Counters`], and [`CampaignSummary`] — is
//! byte-identical to the scoped serial path for the same
//! [`RecordingSpec`] and [`ReplayTarget`], regardless of worker count,
//! submission order, or steal interleaving:
//!
//! * each trial runs [`crate::recording`]'s shared trial body on a fork
//!   of a parent booted from the trial's own spec + seed (fork of a
//!   fresh boot ≡ fresh boot, pinned by the backend differential
//!   suites);
//! * results carry their batch index, and the merge — identical to the
//!   scoped path's — folds shards in seed order on whichever worker
//!   completes the campaign;
//! * error selection is lowest-seed-index, matching
//!   [`cta_parallel::try_parallel_map`].
//!
//! Wall-clock observables (per-trial latency, campaign wall time) are
//! deliberately kept *outside* the deterministic output: they ride in
//! separate [`CampaignOutput`] fields and the JSONL event stream, never
//! in the merged counters.
//!
//! **Telemetry.** Each completed campaign emits one JSON line through the
//! strict [`cta_telemetry::jsonl`] writer (schema:
//! [`cta_telemetry::schema::validate_executor_event`]) as soon as its
//! merge finishes — incremental, tail-able progress for a long-running
//! queue. Pool pressure is published through per-worker gauges
//! ([`ServiceStats`]), including the byte-accounted
//! `model_cache_bytes` that per-tenant [`TenantLimits`] bound.

use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use cta_parallel::executor::{BatchHandle, Executor, Ticket};
use cta_telemetry::json::{self, JsonValue};
use cta_telemetry::jsonl::JsonlWriter;
use cta_telemetry::Counters;
use cta_vm::KernelPool;

use crate::campaign::CampaignSummary;
use crate::recording::{
    compare_with_recording, run_trial_on, Recording, RecordingError, RecordingSpec, ReplayReport,
    ReplayTarget, TrialRecord,
};

/// Default snapshot label for executor-merged campaign telemetry; matches
/// the `executor` schema declaration in [`cta_telemetry::schema`].
pub const EXECUTOR_LABEL: &str = "executor";

/// Static configuration of a [`CampaignExecutor`].
#[derive(Debug, Clone, Copy)]
pub struct ExecutorConfig {
    /// Worker threads (`0` = one per core).
    pub workers: usize,
    /// Default parent-kernel pool capacity per worker per tenant
    /// (overridable per tenant via [`TenantLimits`]).
    pub parents_per_worker: usize,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig { workers: 0, parents_per_worker: 4 }
    }
}

/// Per-tenant resource bounds, adjustable at runtime via
/// [`CampaignExecutor::set_tenant_limits`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TenantLimits {
    /// Parent-pool capacity per worker (None = executor default).
    pub max_parents_per_worker: Option<usize>,
    /// DRAM model-cache byte budget applied to each parent kernel booted
    /// for this tenant (None = unbounded). Budgets are behavior-neutral:
    /// they bound memory, never results.
    pub model_cache_bytes: Option<usize>,
}

/// How a trial is isolated from the pooled parent kernel that serves it.
///
/// Both modes produce byte-identical campaign output (transcripts, merged
/// counters, contents hashes) — journal rollback restores the parent
/// byte-identically to what a fork would have left — so isolation is an
/// implementation knob, never part of the parent key or the result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TrialIsolation {
    /// Fork the parent per trial: O(materialized rows) per trial on the
    /// CoW backend, O(parent) on dense backends.
    #[default]
    Fork,
    /// Run the trial in place on the parent under an undo journal and
    /// roll back: O(touched state) per trial on every backend.
    Journal,
}

impl TrialIsolation {
    /// Canonical lowercase name (`fork` / `journal`), as accepted by
    /// [`FromStr`](std::str::FromStr) and the `cta --isolation` flag.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TrialIsolation::Fork => "fork",
            TrialIsolation::Journal => "journal",
        }
    }
}

impl std::str::FromStr for TrialIsolation {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fork" => Ok(TrialIsolation::Fork),
            "journal" => Ok(TrialIsolation::Journal),
            other => Err(format!("unknown isolation `{other}` (expected fork or journal)")),
        }
    }
}

/// One campaign submission: whose it is, what to run, and how.
#[derive(Debug, Clone)]
pub struct CampaignRequest {
    /// Tenant whose parent pools and limits apply.
    pub tenant: String,
    /// Label of the merged telemetry snapshot. Defaults to
    /// [`EXECUTOR_LABEL`]; the replay path uses the recording label so
    /// merged telemetry compares byte-identically.
    pub label: String,
    /// The campaign spec (attack, machine, seeds).
    pub spec: RecordingSpec,
    /// Implementation target (backend / flip engine / defense).
    pub target: ReplayTarget,
    /// How each trial is isolated from its pooled parent.
    pub isolation: TrialIsolation,
}

impl CampaignRequest {
    /// A request for `tenant` running `spec` under the default target.
    pub fn new(tenant: impl Into<String>, spec: RecordingSpec) -> Self {
        CampaignRequest {
            tenant: tenant.into(),
            label: EXECUTOR_LABEL.to_string(),
            spec,
            target: ReplayTarget::default(),
            isolation: TrialIsolation::default(),
        }
    }
}

/// A completed campaign's merged output.
#[derive(Debug, Clone)]
pub struct CampaignOutput {
    /// Executor-assigned campaign id (submission order).
    pub campaign: u64,
    /// The submitting tenant.
    pub tenant: String,
    /// Per-trial transcripts, in seed order — byte-identical to the
    /// scoped serial path.
    pub trials: Vec<TrialRecord>,
    /// Merged campaign telemetry — byte-identical to the scoped path.
    pub counters: Counters,
    /// Aggregate outcome counts.
    pub summary: CampaignSummary,
    /// Wall-clock latency of each trial (submit → trial completion), in
    /// completion-index order. Nondeterministic by nature; never part of
    /// the merged counters.
    pub trial_latencies_ns: Vec<u64>,
    /// Wall-clock campaign latency (submit → merge), nanoseconds.
    pub wall_ns: u64,
    /// Trials dropped by [`CampaignExecutor::cancel`] before they ran.
    /// Dropped trials appear in no transcript, counter, or summary — the
    /// merged output covers exactly the trials that ran — so this count
    /// (like the latencies) stays outside the deterministic observables.
    pub dropped_trials: u64,
}

/// A point-in-time view of the executor's scheduling and pool gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Worker threads serving the queue.
    pub workers: u64,
    /// Campaigns submitted.
    pub campaigns: u64,
    /// Trials submitted.
    pub trials_submitted: u64,
    /// Trials completed.
    pub trials_completed: u64,
    /// Trials served from a stolen deque entry.
    pub steals: u64,
    /// Parent kernels booted (pool misses).
    pub parent_boots: u64,
    /// Trials served by forking an already-resident parent.
    pub fork_hits: u64,
    /// Trials served in place under an undo journal
    /// ([`TrialIsolation::Journal`]).
    pub journal_runs: u64,
    /// Parents evicted to respect pool capacities.
    pub evictions: u64,
    /// Parents currently resident across all workers and tenants.
    pub pool_parents: u64,
    /// DRAM model-cache bytes held by resident parents (the gauge
    /// [`TenantLimits::model_cache_bytes`] bounds per parent).
    pub pool_model_cache_bytes: u64,
}

struct CampaignCtx {
    id: u64,
    tenant: String,
    label: String,
    spec: RecordingSpec,
    target: ReplayTarget,
    isolation: TrialIsolation,
    submitted: Instant,
}

struct TrialJob {
    ctx: Arc<CampaignCtx>,
    index: usize,
}

struct ExecutedTrial {
    record: TrialRecord,
    shard: Counters,
    dropped: u64,
    latency_ns: u64,
}

/// One trial slot's result: `Ok(Some)` for a trial that ran, `Ok(None)`
/// for a slot dropped by [`CampaignExecutor::cancel`] before it ran.
type TrialOut = Result<Option<ExecutedTrial>, RecordingError>;

/// Shared (worker-visible) executor state.
struct ExecState {
    default_parents: usize,
    limits: Mutex<HashMap<String, TenantLimits>>,
    // Tenant → home worker, first-come sequential so tenants spread
    // evenly across workers regardless of their names.
    homes: Mutex<HashMap<String, usize>>,
    jsonl: Mutex<Option<JsonlWriter<Box<dyn Write + Send>>>>,
    next_event: AtomicU64,
    // Campaign id → (tenant, batch handle) for campaigns still in flight;
    // entries are removed by the completion hook, so `cancel` can only
    // target batches whose merge has not yet run.
    active: Mutex<HashMap<u64, (String, BatchHandle<TrialOut>)>>,
    // Per-worker gauges, republished after every trial (totals, not
    // deltas, so updates are idempotent).
    pool_parents: Vec<AtomicU64>,
    pool_bytes: Vec<AtomicU64>,
    boots: Vec<AtomicU64>,
    fork_hits: Vec<AtomicU64>,
    journal_runs: Vec<AtomicU64>,
    evictions: Vec<AtomicU64>,
}

/// Worker-local context: per-tenant parent pools. Lives and dies on its
/// worker thread (`Kernel` is deliberately `!Send`).
struct WorkerCtx {
    worker: usize,
    pools: HashMap<String, KernelPool<String>>,
    state: Arc<ExecState>,
}

impl WorkerCtx {
    fn run(&mut self, job: TrialJob) -> TrialOut {
        let ctx = &job.ctx;
        let seed = ctx.spec.seeds[job.index];
        let limits = self
            .state
            .limits
            .lock()
            .expect("limits poisoned")
            .get(&ctx.tenant)
            .copied()
            .unwrap_or_default();
        let capacity = limits.max_parents_per_worker.unwrap_or(self.state.default_parents);
        let pool =
            self.pools.entry(ctx.tenant.clone()).or_insert_with(|| KernelPool::new(capacity));
        pool.set_capacity(capacity);

        let key = parent_key(&ctx.spec, ctx.target, seed, &limits);
        let spec = &ctx.spec;
        let target = ctx.target;
        let boot = || {
            let mut parent = spec.builder(seed, target).build()?;
            if let Some(budget) = limits.model_cache_bytes {
                parent.dram_mut().set_model_cache_bytes(Some(budget));
            }
            Ok(parent)
        };
        // Both arms run the same trial body on what is observably the
        // same kernel — rollback restores the parent byte-identically, so
        // which arm served a trial is invisible in its output.
        let trial = match ctx.isolation {
            TrialIsolation::Fork => {
                let mut kernel = pool.fork_for(&key, boot).map_err(RecordingError::Vm)?;
                run_trial_on(&mut kernel, spec, seed)
            }
            TrialIsolation::Journal => pool
                .run_journaled(&key, boot, |kernel| run_trial_on(kernel, spec, seed))
                .map_err(RecordingError::Vm)?,
        };
        let result = trial.map(|(record, shard, log)| {
            Some(ExecutedTrial {
                record,
                shard,
                dropped: log.dropped,
                latency_ns: elapsed_ns(ctx.submitted),
            })
        });
        self.publish_gauges();
        result
    }

    fn publish_gauges(&self) {
        let mut parents = 0u64;
        let mut bytes = 0u64;
        let mut boots = 0u64;
        let mut hits = 0u64;
        let mut journal_runs = 0u64;
        let mut evictions = 0u64;
        for pool in self.pools.values() {
            parents += pool.len() as u64;
            bytes += pool.model_cache_bytes();
            let stats = pool.stats();
            boots += stats.boots;
            hits += stats.fork_hits;
            journal_runs += stats.journal_runs;
            evictions += stats.evictions;
        }
        let w = self.worker;
        self.state.pool_parents[w].store(parents, Ordering::Relaxed);
        self.state.pool_bytes[w].store(bytes, Ordering::Relaxed);
        self.state.boots[w].store(boots, Ordering::Relaxed);
        self.state.fork_hits[w].store(hits, Ordering::Relaxed);
        self.state.journal_runs[w].store(journal_runs, Ordering::Relaxed);
        self.state.evictions[w].store(evictions, Ordering::Relaxed);
    }
}

/// Everything a parent kernel's boot depends on, canonically encoded.
/// Attack parameters and `flip_log_capacity` are deliberately absent —
/// they act on the *fork* — so campaigns with different attacks share
/// parents booted for the same machine. Float parameters are encoded by
/// bit pattern (exact, locale-free).
fn parent_key(
    spec: &RecordingSpec,
    target: ReplayTarget,
    seed: u64,
    limits: &TenantLimits,
) -> String {
    let d = &spec.disturbance;
    format!(
        "m{}:r{}:c{}:p{}:prot{}:prof{}:pf{:016x}:rev{:016x}:ht{}:trc{}:gen{:?}:s{}:be{}:fe{:?}:def{:?}:mcb{:?}",
        spec.memory_bytes,
        spec.row_bytes,
        spec.cell_period_rows,
        spec.ptp_bytes,
        spec.protected as u8,
        spec.profile_cells as u8,
        d.pf.to_bits(),
        d.reverse_rate.to_bits(),
        d.hammer_threshold,
        d.trc_ns,
        spec.map_gen,
        seed,
        target.backend.name(),
        target.flip_engine,
        target.defense,
        limits.model_cache_bytes,
    )
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Handle to one submitted campaign.
pub struct CampaignTicket {
    id: u64,
    ticket: Ticket<TrialOut>,
    merged: Arc<Mutex<Option<Result<CampaignOutput, RecordingError>>>>,
}

impl CampaignTicket {
    /// The executor-assigned campaign id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// True once the campaign has fully merged; `wait` will not block.
    pub fn is_done(&self) -> bool {
        self.ticket.is_done()
    }

    /// Blocks until the campaign completes and yields its merged output
    /// (the completion hook has already emitted the JSONL event by then).
    ///
    /// # Errors
    ///
    /// The campaign's deterministic merge error: the lowest-seed-index
    /// trial failure, a lossy flip log, or accounting drift.
    pub fn wait(self) -> Result<CampaignOutput, RecordingError> {
        let _ = self.ticket.wait();
        self.merged
            .lock()
            .expect("merge slot poisoned")
            .take()
            .expect("completion hook merges before wait returns")
    }
}

/// The persistent boot-once, fork-per-request campaign service. See the
/// module docs for the determinism contract.
pub struct CampaignExecutor {
    exec: Executor<TrialJob, TrialOut>,
    state: Arc<ExecState>,
    next_campaign: AtomicU64,
}

impl CampaignExecutor {
    /// Spawns the worker pool. Workers boot parents lazily, per tenant,
    /// on first use.
    #[must_use]
    pub fn new(config: ExecutorConfig) -> Self {
        let workers = cta_parallel::worker_count(config.workers);
        let state = Arc::new(ExecState {
            default_parents: config.parents_per_worker.max(1),
            limits: Mutex::new(HashMap::new()),
            homes: Mutex::new(HashMap::new()),
            jsonl: Mutex::new(None),
            next_event: AtomicU64::new(0),
            active: Mutex::new(HashMap::new()),
            pool_parents: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            pool_bytes: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            boots: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            fork_hits: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            journal_runs: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            evictions: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        });
        let init_state = Arc::clone(&state);
        let exec = Executor::new(
            workers,
            move |worker| WorkerCtx {
                worker,
                pools: HashMap::new(),
                state: Arc::clone(&init_state),
            },
            |ctx: &mut WorkerCtx, job| ctx.run(job),
        );
        CampaignExecutor { exec, state, next_campaign: AtomicU64::new(0) }
    }

    /// Streams one strict-JSON line per completed campaign into `sink`
    /// (replacing any previous sink). Lines are written by the completing
    /// worker, inside the completion hook, so the stream is ordered by
    /// completion.
    pub fn set_jsonl_sink<W: Write + Send + 'static>(&self, sink: W) {
        *self.state.jsonl.lock().expect("jsonl poisoned") =
            Some(JsonlWriter::new(Box::new(sink) as Box<dyn Write + Send>));
    }

    /// Installs (or replaces) `tenant`'s resource limits. Capacity changes
    /// apply from each worker's next trial for that tenant; byte budgets
    /// apply to parents booted afterwards.
    pub fn set_tenant_limits(&self, tenant: impl Into<String>, limits: TenantLimits) {
        self.state.limits.lock().expect("limits poisoned").insert(tenant.into(), limits);
    }

    /// Submits a campaign; trials fan out across the worker pool.
    ///
    /// # Errors
    ///
    /// [`RecordingError::RetentionDisabled`] when the spec disables
    /// flip-log retention (checked at submission, like the scoped path).
    pub fn submit(&self, request: CampaignRequest) -> Result<CampaignTicket, RecordingError> {
        if request.spec.flip_log_capacity == 0 {
            return Err(RecordingError::RetentionDisabled);
        }
        let id = self.next_campaign.fetch_add(1, Ordering::Relaxed);
        let ctx = Arc::new(CampaignCtx {
            id,
            tenant: request.tenant,
            label: request.label,
            spec: request.spec,
            target: request.target,
            isolation: request.isolation,
            submitted: Instant::now(),
        });
        let jobs: Vec<TrialJob> = (0..ctx.spec.seeds.len())
            .map(|index| TrialJob { ctx: Arc::clone(&ctx), index })
            .collect();
        let merged: Arc<Mutex<Option<Result<CampaignOutput, RecordingError>>>> =
            Arc::new(Mutex::new(None));
        let merged_slot = Arc::clone(&merged);
        let hook_state = Arc::clone(&self.state);
        // Same tenant → same home worker, so a tenant's parents stay
        // warm in one pool instead of every worker booting its own copy.
        let affinity = {
            let mut homes = self.state.homes.lock().expect("homes poisoned");
            let next = homes.len();
            *homes.entry(ctx.tenant.clone()).or_insert(next)
        };
        let tenant = ctx.tenant.clone();
        let ticket =
            self.exec.submit_with_affinity(affinity, jobs, move |results: &[TrialOut]| {
                let output = merge_campaign(&ctx, results);
                if let Ok(output) = &output {
                    emit_event(&hook_state, output);
                }
                *merged_slot.lock().expect("merge slot poisoned") = Some(output);
                hook_state.active.lock().expect("active poisoned").remove(&ctx.id);
            });
        // Register for cancellation — then undo the registration if the
        // campaign already completed (the hook's removal may have run
        // before the insert; an empty campaign completes inline above).
        self.state.active.lock().expect("active poisoned").insert(id, (tenant, ticket.handle()));
        if ticket.is_done() {
            self.state.active.lock().expect("active poisoned").remove(&id);
        }
        Ok(CampaignTicket { id, ticket, merged })
    }

    /// Drops campaign `campaign`'s still-queued trials from the worker
    /// deques, returning how many were dropped. In-flight trials drain
    /// normally; the campaign still merges (over the trials that ran) and
    /// its ticket still completes, with the drop count in
    /// [`CampaignOutput::dropped_trials`]. When trials were dropped, a
    /// `cancelled` event is emitted on the JSONL stream. Cancelling an
    /// unknown or already-merged campaign is a no-op returning 0.
    pub fn cancel(&self, campaign: u64) -> usize {
        let entry = self
            .state
            .active
            .lock()
            .expect("active poisoned")
            .get(&campaign)
            .map(|(tenant, handle)| (tenant.clone(), handle.clone()));
        let Some((tenant, handle)) = entry else { return 0 };
        let dropped = self.exec.cancel(&handle, |_| Ok(None));
        if dropped > 0 {
            emit_cancelled_event(&self.state, &tenant, campaign, dropped as u64);
        }
        dropped
    }

    /// Submits `request` and blocks for its merged output.
    ///
    /// # Errors
    ///
    /// Everything [`Self::submit`] and [`CampaignTicket::wait`] can raise.
    pub fn run(&self, request: CampaignRequest) -> Result<CampaignOutput, RecordingError> {
        self.submit(request)?.wait()
    }

    /// Replays a golden recording *through the executor* under `target`,
    /// asserting byte-identity with the recorded transcript — the service
    /// path proves it reproduces the scoped path's artifact exactly.
    ///
    /// # Errors
    ///
    /// [`RecordingError::Mismatch`] on the first divergence, plus
    /// everything the scoped replay can raise.
    pub fn replay(
        &self,
        recording: &Recording,
        target: ReplayTarget,
    ) -> Result<ReplayReport, RecordingError> {
        self.replay_isolated(recording, target, TrialIsolation::Fork)
    }

    /// [`Self::replay`] under an explicit [`TrialIsolation`] — the gate
    /// that proves journaled in-place trials reproduce the recorded
    /// artifact byte-identically, exactly as forked trials do.
    ///
    /// # Errors
    ///
    /// [`RecordingError::Mismatch`] on the first divergence, plus
    /// everything the scoped replay can raise.
    pub fn replay_isolated(
        &self,
        recording: &Recording,
        target: ReplayTarget,
        isolation: TrialIsolation,
    ) -> Result<ReplayReport, RecordingError> {
        let request = CampaignRequest {
            tenant: "replay".to_string(),
            label: crate::recording::RECORDING_LABEL.to_string(),
            spec: recording.spec.clone(),
            target,
            isolation,
        };
        let output = self.run(request)?;
        compare_with_recording(recording, &output.trials, &output.counters, target)
    }

    /// Point-in-time scheduling and pool gauges.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        let exec = self.exec.stats();
        let sum = |slots: &[AtomicU64]| slots.iter().map(|s| s.load(Ordering::Relaxed)).sum();
        ServiceStats {
            workers: self.exec.workers() as u64,
            campaigns: exec.batches,
            trials_submitted: exec.submitted,
            trials_completed: exec.completed,
            steals: exec.stolen,
            parent_boots: sum(&self.state.boots),
            fork_hits: sum(&self.state.fork_hits),
            journal_runs: sum(&self.state.journal_runs),
            evictions: sum(&self.state.evictions),
            pool_parents: sum(&self.state.pool_parents),
            pool_model_cache_bytes: sum(&self.state.pool_bytes),
        }
    }

    /// Records the service gauges into `counters` under the `executor`
    /// group.
    pub fn record_counters(&self, counters: &mut Counters) {
        let s = self.stats();
        counters.set_u64("executor", "workers", s.workers);
        counters.set_u64("executor", "campaigns", s.campaigns);
        counters.set_u64("executor", "trials_submitted", s.trials_submitted);
        counters.set_u64("executor", "trials_completed", s.trials_completed);
        counters.set_u64("executor", "steals", s.steals);
        counters.set_u64("executor", "parent_boots", s.parent_boots);
        counters.set_u64("executor", "fork_hits", s.fork_hits);
        counters.set_u64("executor", "journal_runs", s.journal_runs);
        counters.set_u64("executor", "evictions", s.evictions);
        counters.set_u64("executor", "pool_parents", s.pool_parents);
        counters.set_u64("executor", "pool_model_cache_bytes", s.pool_model_cache_bytes);
    }
}

/// The deterministic seed-order merge — line for line the scoped path's
/// (`run_trials` + `record`): lowest-index error selection, per-trial
/// lossless-transcript enforcement, shard merge in seed order, summary
/// recording, and the flip-accounting cross-check.
fn merge_campaign(
    ctx: &CampaignCtx,
    results: &[TrialOut],
) -> Result<CampaignOutput, RecordingError> {
    let mut counters = Counters::new(&ctx.label);
    let mut trials = Vec::with_capacity(results.len());
    let mut latencies = Vec::with_capacity(results.len());
    let mut dropped_trials = 0u64;
    for result in results {
        match result {
            Err(e) => return Err(e.clone()),
            // A slot cancelled before its trial ran: excluded from the
            // merge entirely, counted separately.
            Ok(None) => dropped_trials += 1,
            Ok(Some(trial)) => {
                if trial.dropped > 0 {
                    return Err(RecordingError::LossyFlipLog {
                        seed: trial.record.seed,
                        dropped: trial.dropped,
                        retained: trial.record.flips.len(),
                    });
                }
                counters.merge(&trial.shard);
                trials.push(trial.record.clone());
                latencies.push(trial.latency_ns);
            }
        }
    }
    let summary = CampaignSummary::from_outcomes(trials.iter().map(|t| &t.outcome));
    counters.record(&summary);
    // A campaign whose every trial was cancelled before running merged no
    // telemetry shards: there are no DRAM counters to cross-check.
    if !trials.is_empty() {
        crate::recording::verify_flip_accounting(&counters, &trials)?;
    }
    Ok(CampaignOutput {
        campaign: ctx.id,
        tenant: ctx.tenant.clone(),
        trials,
        counters,
        summary,
        trial_latencies_ns: latencies,
        wall_ns: elapsed_ns(ctx.submitted),
        dropped_trials,
    })
}

/// Emits one campaign event line (best effort: a broken sink must not
/// fail the campaign, whose output is already merged).
fn emit_event(state: &ExecState, output: &CampaignOutput) {
    // A campaign that ran no trials merged no telemetry shards; its
    // snapshot would fail the executor-event schema (and, when every slot
    // was cancelled, the `cancelled` event already tells the story).
    if output.trials.is_empty() {
        return;
    }
    let mut guard = state.jsonl.lock().expect("jsonl poisoned");
    let Some(writer) = guard.as_mut() else { return };
    let Ok(telemetry) = json::parse(&output.counters.to_json()) else { return };
    let mut latencies = output.trial_latencies_ns.clone();
    latencies.sort_unstable();
    let p99 = percentile_ns(&latencies, 99);
    let seq = state.next_event.fetch_add(1, Ordering::Relaxed);
    let doc = JsonValue::Object(vec![
        ("event".to_string(), JsonValue::String("campaign".to_string())),
        ("seq".to_string(), JsonValue::Number(seq as f64)),
        ("tenant".to_string(), JsonValue::String(output.tenant.clone())),
        ("campaign".to_string(), JsonValue::Number(output.campaign as f64)),
        ("trials".to_string(), JsonValue::Number(output.summary.trials as f64)),
        ("dropped_trials".to_string(), JsonValue::Number(clamp_json(output.dropped_trials))),
        ("successes".to_string(), JsonValue::Number(output.summary.successes as f64)),
        ("total_flips".to_string(), JsonValue::Number(clamp_json(output.summary.total_flips))),
        ("wall_ns".to_string(), JsonValue::Number(clamp_json(output.wall_ns))),
        ("p99_trial_ns".to_string(), JsonValue::Number(clamp_json(p99))),
        ("telemetry".to_string(), telemetry),
    ]);
    let _ = writer.write(&doc);
}

/// Emits one `cancelled` event line (best effort, like campaign events):
/// which campaign lost queued trials, and how many.
fn emit_cancelled_event(state: &ExecState, tenant: &str, campaign: u64, dropped: u64) {
    let mut guard = state.jsonl.lock().expect("jsonl poisoned");
    let Some(writer) = guard.as_mut() else { return };
    let seq = state.next_event.fetch_add(1, Ordering::Relaxed);
    let doc = JsonValue::Object(vec![
        ("event".to_string(), JsonValue::String("cancelled".to_string())),
        ("seq".to_string(), JsonValue::Number(seq as f64)),
        ("tenant".to_string(), JsonValue::String(tenant.to_string())),
        ("campaign".to_string(), JsonValue::Number(campaign as f64)),
        ("dropped_trials".to_string(), JsonValue::Number(clamp_json(dropped))),
    ]);
    let _ = writer.write(&doc);
}

/// Clamps a u64 into JSON's exact-integer range (2^53); gauges this large
/// are saturated, not meaningful.
fn clamp_json(value: u64) -> f64 {
    value.min(1 << 53) as f64
}

/// The `p`-th percentile (nearest-rank) of an ascending-sorted slice.
fn percentile_ns(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * p).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&v, 50), 50);
        assert_eq!(percentile_ns(&v, 99), 99);
        assert_eq!(percentile_ns(&v, 100), 100);
        assert_eq!(percentile_ns(&[7], 99), 7);
        assert_eq!(percentile_ns(&[], 99), 0);
    }

    #[test]
    fn parent_key_separates_configs_and_merges_attacks() {
        use crate::{RecordedAttack, SprayAttack, TemplatingAttack};
        let spray = RecordingSpec::new(RecordedAttack::Spray(SprayAttack::default()), vec![1]);
        let mut templ =
            RecordingSpec::new(RecordedAttack::Templating(TemplatingAttack::default()), vec![1]);
        templ.threads = 4; // implementation knob: must not split parents
        let target = ReplayTarget::default();
        let limits = TenantLimits::default();
        // Same machine + seed, different attack: same parent.
        assert_eq!(parent_key(&spray, target, 1, &limits), parent_key(&templ, target, 1, &limits));
        // Different seed: different vulnerability universe, new parent.
        assert_ne!(parent_key(&spray, target, 1, &limits), parent_key(&spray, target, 2, &limits));
        // Different machine: new parent.
        let mut bigger = spray.clone();
        bigger.memory_bytes *= 2;
        assert_ne!(parent_key(&spray, target, 1, &limits), parent_key(&bigger, target, 1, &limits));
        // Different byte budget: budgets attach to parents at boot.
        let bounded = TenantLimits { model_cache_bytes: Some(1 << 20), ..limits };
        assert_ne!(parent_key(&spray, target, 1, &limits), parent_key(&spray, target, 1, &bounded));
    }
}
