//! The attacker's hammer primitive.

use cta_dram::RowId;
use cta_vm::{Access, Kernel, Pid, VirtAddr, VmError};

/// User-level double-sided hammering, expressed through kernel-visible
/// operations.
///
/// A real exploit defeats the row buffer with `clflush` or row-conflict
/// access pairs and loops ~10⁵–10⁶ times; we compress that loop into the
/// DRAM module's bulk [`hammer`](cta_dram::DramModule::hammer) call (same
/// effect, same simulated time) while keeping the *addressing* honest: the
/// attacker can only aim at rows backing virtual addresses it owns.
#[derive(Debug, Clone, Copy, Default)]
pub struct HammerDriver;

impl HammerDriver {
    /// Creates a driver.
    pub fn new() -> Self {
        HammerDriver
    }

    /// Hammers the row backing `va` to the disturbance threshold, then
    /// flushes the TLB (so subsequent accesses re-walk possibly-corrupted
    /// tables). Returns the hammered row.
    ///
    /// # Errors
    ///
    /// Translation faults if the attacker does not own `va`.
    pub fn hammer_row_of(
        &self,
        kernel: &mut Kernel,
        pid: Pid,
        va: VirtAddr,
    ) -> Result<RowId, VmError> {
        let row = kernel.row_of_virt(pid, va)?;
        let threshold = kernel.dram().config().disturbance.hammer_threshold;
        kernel.dram_mut().hammer(row, threshold)?;
        kernel.flush_tlb();
        Ok(row)
    }

    /// Algorithm 1's step (2): hammer the *page-table row* serving `va` by
    /// repeatedly accessing `va` with TLB flushes — each walk's PTE read
    /// activates the page-table row, so the MMU itself becomes the
    /// aggressor-row driver.
    ///
    /// Faults encountered mid-loop (the hammering may corrupt the very
    /// tables being walked) are counted, not fatal.
    ///
    /// Returns the number of successful walks.
    ///
    /// # Errors
    ///
    /// Only hard kernel errors (unknown process) propagate.
    pub fn hammer_by_walks(
        &self,
        kernel: &mut Kernel,
        pid: Pid,
        va: VirtAddr,
        walks: u64,
    ) -> Result<u64, VmError> {
        let mut ok = 0u64;
        for _ in 0..walks {
            kernel.flush_tlb();
            match kernel.translate(pid, va, Access::user_read()) {
                Ok(_) => ok += 1,
                Err(VmError::Translate(_)) => {}
                Err(VmError::NoSuchProcess { pid }) => return Err(VmError::NoSuchProcess { pid }),
                Err(_) => {}
            }
        }
        Ok(ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cta_core::SystemBuilder;
    use cta_mem::PAGE_SIZE;

    #[test]
    fn hammer_row_of_requires_owned_mapping() {
        let mut k = SystemBuilder::small_test().build().unwrap();
        let pid = k.create_process(false).unwrap();
        let d = HammerDriver::new();
        assert!(d.hammer_row_of(&mut k, pid, VirtAddr(0xDEAD_0000)).is_err());
        k.mmap_anonymous(pid, VirtAddr(0x40_0000), PAGE_SIZE, true).unwrap();
        let row = d.hammer_row_of(&mut k, pid, VirtAddr(0x40_0000)).unwrap();
        // The hammered row is the one backing the page.
        let phys = k.translate(pid, VirtAddr(0x40_0000), Access::user_read()).unwrap();
        assert_eq!(row, k.dram().geometry().row_of_addr(phys).unwrap());
    }

    #[test]
    fn hammer_row_reaches_threshold_activations() {
        let mut k = SystemBuilder::small_test().build().unwrap();
        let pid = k.create_process(false).unwrap();
        k.mmap_anonymous(pid, VirtAddr(0x40_0000), PAGE_SIZE, true).unwrap();
        let before = k.dram().stats().activations;
        HammerDriver::new().hammer_row_of(&mut k, pid, VirtAddr(0x40_0000)).unwrap();
        let threshold = k.dram().config().disturbance.hammer_threshold;
        assert!(k.dram().stats().activations >= before + threshold);
    }

    #[test]
    fn walks_hammer_the_pt_row() {
        // Lower the threshold so a test-sized walk loop crosses it.
        let mut builder = SystemBuilder::small_test();
        let mut params = cta_dram::DisturbanceParams { pf: 0.05, ..Default::default() };
        params.hammer_threshold = 64;
        builder = builder.disturbance(params);
        let mut k = builder.build().unwrap();
        let pid = k.create_process(false).unwrap();
        k.mmap_anonymous(pid, VirtAddr(0x40_0000), PAGE_SIZE, true).unwrap();
        let d = HammerDriver::new();
        let ok = d.hammer_by_walks(&mut k, pid, VirtAddr(0x40_0000), 200).unwrap();
        assert!(ok > 0);
        // The PT row got at least `ok` activations; with threshold 64 the
        // module should have registered disturbances.
        assert!(k.dram().stats().disturbances > 0);
    }
}
