//! The probabilistic PTE-spray privilege-escalation attack (Figure 3).
//!
//! Faithful to Seaborn & Dullien's exploit structure:
//!
//! 1. **Spray**: map one RW file into many 2 MiB-spaced virtual regions, so
//!    the kernel builds one page table per region; interleave one anonymous
//!    page per region so the attacker owns aggressor rows physically
//!    adjacent to the sprayed page tables (on a stock kernel, the buddy
//!    allocator interleaves them naturally).
//! 2. **Hammer** the owned aggressor rows.
//! 3. **Scan** every owned mapping: a page whose content changed into
//!    PTE-looking 64-bit words is a corrupted PTE now pointing at a page
//!    table — *PTE self-reference*.
//! 4. **Exploit**: use the writable window onto that page table to learn
//!    the attacker's own physical frames, locate the virtual region the
//!    table serves with a marker probe, then walk all of physical memory
//!    one frame at a time until the kernel secret is found — and overwrite
//!    it.

use cta_mem::PAGE_SIZE;
use cta_vm::{Access, Kernel, Pid, Pte, PteFlags, VirtAddr, VmError};

use crate::hammer::HammerDriver;
use crate::outcome::AttackOutcome;

const REGION_STRIDE: u64 = 2 << 20;
const VA_BASE: u64 = 0x4000_0000;
const MARKER: [u8; 16] = *b"MARKER-SPRAY-V1!";

/// Configuration of the spray attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SprayAttack {
    /// Number of 2 MiB virtual regions to spray page tables into.
    pub regions: u64,
    /// Pages in the sprayed file (≥ 2; the exploit needs two windows).
    pub file_pages: u64,
    /// Maximum aggressor rows to hammer.
    pub max_hammer_rows: u64,
    /// Flush the TLB and paging-structure caches before every probe
    /// (each virtual access and each hammer pass), the way Algorithm 1
    /// interleaves accesses with `invlpg`. Forces every translation to
    /// walk live DRAM, making the attack's DRAM traffic independent of
    /// the machine's translation-cache configuration.
    pub flush_per_probe: bool,
}

impl Default for SprayAttack {
    fn default() -> Self {
        SprayAttack { regions: 64, file_pages: 2, max_hammer_rows: 64, flush_per_probe: false }
    }
}

impl SprayAttack {
    /// Invalidates all translation caches before a probe when
    /// `flush_per_probe` is set, so the next access walks from CR3.
    fn probe_sync(&self, kernel: &mut Kernel) {
        if self.flush_per_probe {
            kernel.flush_tlb();
        }
    }

    /// Runs the attack as a fresh unprivileged process on `kernel`.
    ///
    /// # Errors
    ///
    /// Infrastructure errors only (process creation, out-of-memory during
    /// spray). Attack-level failures are reported in the outcome, not as
    /// errors.
    ///
    /// # Panics
    ///
    /// Panics if `file_pages < 2`.
    pub fn run(&self, kernel: &mut Kernel) -> Result<AttackOutcome, VmError> {
        assert!(self.file_pages >= 2, "exploit needs at least two file pages");
        let mut out = AttackOutcome::default();
        let t0 = kernel.now_ns();
        let flips0 = kernel.dram().stats().total_flips();

        // --- Phase 1: spray -------------------------------------------------
        let pid = kernel.create_process(false)?;
        let file = kernel.create_file(self.file_pages * PAGE_SIZE)?;
        let mut region_vas: Vec<VirtAddr> = Vec::new();
        for i in 0..self.regions {
            let va = VirtAddr(VA_BASE + i * REGION_STRIDE);
            // Memory (or ZONE_PTP) may run out mid-spray: saturating the
            // zone is normal attacker behavior, not an error.
            match kernel.mmap_file(pid, va, file, true) {
                Ok(()) => {}
                Err(VmError::Alloc(_)) => break,
                Err(e) => return Err(e),
            }
            let anon = va.offset(self.file_pages * PAGE_SIZE);
            match kernel.mmap_anonymous(pid, anon, PAGE_SIZE, true) {
                Ok(()) => {}
                Err(VmError::Alloc(_)) => {
                    region_vas.push(va);
                    break;
                }
                Err(e) => return Err(e),
            }
            region_vas.push(va);
            out.mappings_created += self.file_pages + 1;
        }
        if region_vas.is_empty() {
            out.note("spray could not create any mappings".to_string());
            out.sim_time_ns = kernel.now_ns() - t0;
            return Ok(out);
        }
        out.note(format!("sprayed {} regions ({} mappings)", self.regions, out.mappings_created));
        // Stamp each file page with a distinctive pattern. Writes may fault
        // if ambient flips have already clipped one of our own mappings
        // (true-cell 1→0 flips can clear present bits — availability, not
        // escalation); tolerate it.
        for j in 0..self.file_pages {
            let pattern = vec![0xA0u8 | (j as u8 + 1); 32];
            self.probe_sync(kernel);
            let _ = kernel.write_virt(
                pid,
                region_vas[0].offset(j * PAGE_SIZE),
                &pattern,
                Access::user_write(),
            );
        }

        // --- Phase 2: hammer -------------------------------------------------
        let driver = HammerDriver::new();
        for va in region_vas.iter().take(self.max_hammer_rows as usize) {
            let anon = va.offset(self.file_pages * PAGE_SIZE);
            self.probe_sync(kernel);
            if driver.hammer_row_of(kernel, pid, anon).is_ok() {
                out.rows_hammered += 1;
            }
        }
        out.flips_induced = kernel.dram().stats().total_flips() - flips0;
        out.note(format!(
            "hammered {} rows, {} flips induced",
            out.rows_hammered, out.flips_induced
        ));

        // --- Phase 3: scan for corrupted mappings ---------------------------
        let max_pfn = kernel.dram().capacity_bytes() / PAGE_SIZE;
        let mut candidates: Vec<VirtAddr> = Vec::new();
        for va in &region_vas {
            for j in 0..=self.file_pages {
                let page_va = va.offset(j * PAGE_SIZE);
                let mut buf = vec![0u8; PAGE_SIZE as usize];
                self.probe_sync(kernel);
                if kernel.read_virt(pid, page_va, &mut buf, Access::user_read()).is_err() {
                    continue;
                }
                let pte_like = buf
                    .chunks_exact(8)
                    .map(|c| Pte(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
                    .filter(|p| p.looks_like_user_pte(max_pfn))
                    .count();
                if pte_like >= 2 {
                    candidates.push(page_va);
                }
            }
        }
        if candidates.is_empty() {
            out.note("scan found no PTE-looking pages: no self-reference");
            out.sim_time_ns = kernel.now_ns() - t0;
            return Ok(out);
        }
        out.self_reference_found = true;
        out.note(format!("{} candidate self-references found", candidates.len()));

        // --- Phase 4: exploit ------------------------------------------------
        for candidate in candidates {
            match self.exploit(kernel, pid, candidate, &region_vas, max_pfn, &mut out) {
                Ok(true) => break,
                Ok(false) => continue,
                Err(_) => continue,
            }
        }
        out.sim_time_ns = kernel.now_ns() - t0;
        Ok(out)
    }

    /// Attempts the full exploit chain through one candidate window.
    fn exploit(
        &self,
        kernel: &mut Kernel,
        pid: Pid,
        va_pte: VirtAddr,
        region_vas: &[VirtAddr],
        max_pfn: u64,
        out: &mut AttackOutcome,
    ) -> Result<bool, VmError> {
        // Pick a probe entry that cannot clobber our own window.
        let leaf_idx = va_pte.index(cta_mem::PtLevel::Pt);
        let probe_entry: u64 = if leaf_idx == 1 { 0 } else { 1 };
        let src_entry: u64 = 1 - probe_entry;

        // Learn the physical frame of file page `src_entry` by *reading the
        // page table through our corrupted mapping* — this is the point
        // where the attack breaks VA→PA secrecy.
        let mut raw = [0u8; 8];
        self.probe_sync(kernel);
        kernel.read_virt(pid, va_pte.offset(src_entry * 8), &mut raw, Access::user_read())?;
        let src_pte = Pte(u64::from_le_bytes(raw));
        if !src_pte.looks_like_user_pte(max_pfn) {
            return Ok(false);
        }
        let f_src = src_pte.pfn();

        // Craft: table[probe_entry] := file page `src_entry`'s frame.
        let crafted = Pte::new(f_src, PteFlags::user_data());
        self.probe_sync(kernel);
        kernel.write_virt(
            pid,
            va_pte.offset(probe_entry * 8),
            &crafted.0.to_le_bytes(),
            Access::user_write(),
        )?;
        kernel.flush_tlb();

        // Marker-probe: stamp file page `src_entry`, then find the region
        // whose page `probe_entry` echoes the marker — that region is served
        // by the table behind our window. Use any still-writable mapping of
        // the shared file page.
        let mut stamped = false;
        for va in region_vas {
            self.probe_sync(kernel);
            if kernel
                .write_virt(pid, va.offset(src_entry * PAGE_SIZE), &MARKER, Access::user_write())
                .is_ok()
            {
                stamped = true;
                break;
            }
        }
        if !stamped {
            return Ok(false);
        }
        let mut probe_va = None;
        for va in region_vas {
            let page_va = va.offset(probe_entry * PAGE_SIZE);
            if page_va == va_pte {
                continue;
            }
            let mut buf = [0u8; 16];
            self.probe_sync(kernel);
            if kernel.read_virt(pid, page_va, &mut buf, Access::user_read()).is_ok()
                && buf == MARKER
            {
                probe_va = Some(page_va);
                break;
            }
        }
        let Some(probe_va) = probe_va else {
            out.note("candidate window did not map one of our regions".to_string());
            return Ok(false);
        };
        out.note(format!("write window established: {va_pte} edits the table serving {probe_va}"));

        // Arbitrary physical read: walk every frame through the window.
        let (secret_pfn, secret) = kernel.kernel_secret();
        for f in 0..max_pfn {
            let probe_pte = Pte::new(cta_mem::Pfn(f), PteFlags::user_data());
            self.probe_sync(kernel);
            kernel.write_virt(
                pid,
                va_pte.offset(probe_entry * 8),
                &probe_pte.0.to_le_bytes(),
                Access::user_write(),
            )?;
            kernel.flush_tlb();
            let mut buf = [0u8; 16];
            if kernel.read_virt(pid, probe_va, &mut buf, Access::user_read()).is_err() {
                continue;
            }
            if buf == secret {
                out.secret_read = true;
                out.note(format!("kernel secret read from frame {f} (truth: {})", secret_pfn.0));
                // Demonstrate the write primitive too.
                self.probe_sync(kernel);
                if kernel
                    .write_virt(pid, probe_va, b"PWNED-BY-ROWHMR!", Access::user_write())
                    .is_ok()
                {
                    out.secret_overwritten = true;
                    out.note("kernel secret overwritten".to_string());
                }
                return Ok(true);
            }
        }
        out.note("frame walk did not locate the secret".to_string());
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cta_core::verify::verify_system;
    use cta_core::SystemBuilder;
    use cta_dram::DisturbanceParams;

    fn builder(seed: u64, protected: bool) -> SystemBuilder {
        SystemBuilder::new(8 << 20)
            .ptp_bytes(512 * 1024)
            .seed(seed)
            .protected(protected)
            .disturbance(DisturbanceParams { pf: 0.05, ..DisturbanceParams::default() })
    }

    #[test]
    fn spray_attack_succeeds_on_stock_kernel_for_some_seed() {
        let attack = SprayAttack::default();
        let mut successes = 0;
        for seed in 0..8u64 {
            let mut k = builder(seed, false).build().unwrap();
            let out = attack.run(&mut k).unwrap();
            if out.success() {
                successes += 1;
                assert!(out.self_reference_found);
                assert!(out.flips_induced > 0);
                // Cross-check with the ground-truth verifier: the system
                // really does contain a self-referencing PTE.
                let report = verify_system(&k).unwrap();
                assert!(!report.is_clean());
                // And the secret really was overwritten in DRAM.
                if out.secret_overwritten {
                    let (pfn, _) = k.kernel_secret();
                    let data = k.dram().peek(pfn.addr().0, 16).unwrap();
                    assert_eq!(&data, b"PWNED-BY-ROWHMR!");
                }
            }
        }
        assert!(successes >= 1, "attack should succeed on some module out of 8");
    }

    #[test]
    fn spray_attack_always_fails_under_cta() {
        let attack = SprayAttack::default();
        for seed in 0..8u64 {
            let mut k = builder(seed, true).build().unwrap();
            let out = attack.run(&mut k).unwrap();
            assert!(!out.success(), "seed {seed}: CTA breached:\n{out}");
            // The monotonicity argument is stronger than "no success":
            // no self-reference may even be *found*.
            let report = verify_system(&k).unwrap();
            assert_eq!(report.self_references().count(), 0, "seed {seed}");
        }
    }

    #[test]
    fn spray_attack_reports_flips_even_when_failing() {
        let mut k = builder(3, true).build().unwrap();
        let out = SprayAttack::default().run(&mut k).unwrap();
        // Hammering still flips bits (in data rows) — the defense does not
        // stop RowHammer, it makes it harmless to page tables.
        assert!(out.rows_hammered > 0);
        assert!(!out.log.is_empty());
    }
}
