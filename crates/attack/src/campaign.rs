//! Multi-seed attack campaigns over independent simulated machines.
//!
//! A single attack run answers "does this exploit work against *this*
//! module?"; the paper's claims are statistical, over many modules drawn
//! from the flip distribution. A *campaign* runs one attack per seed,
//! each against a freshly built kernel, and collects the outcomes.
//!
//! Campaigns follow the `cta_parallel` determinism contract: every seed's
//! trial is fully independent (its kernel is built *inside* the worker —
//! the simulator's shared state is single-threaded by design and never
//! crosses a thread boundary), and results come back in seed order, so
//! the output is a pure function of the seed list regardless of
//! `threads`. `threads <= 1` runs the exact serial loop.

use cta_telemetry::{Counters, Group, StatSource};
use cta_vm::{Kernel, VmError};

use crate::brute::BruteForceReport;
use crate::outcome::AttackOutcome;
use crate::{BruteForceCtaAttack, SprayAttack, TemplatingAttack};

/// Runs one trial per seed, up to `threads` at a time, returning results
/// in seed order.
///
/// `build` constructs the trial's kernel from its seed; `run` executes
/// the attack against it. Both run entirely inside the worker: kernels
/// are `!Send` (the DRAM vulnerability model is reference-counted) and
/// never leave the thread that built them.
///
/// # Errors
///
/// The lowest-seed-index error, if any trial failed to build or run.
pub fn run_campaign<T, B, R>(
    seeds: &[u64],
    threads: usize,
    build: B,
    run: R,
) -> Result<Vec<T>, VmError>
where
    T: Send,
    B: Fn(u64) -> Result<Kernel, VmError> + Sync,
    R: Fn(&mut Kernel) -> Result<T, VmError> + Sync,
{
    cta_parallel::try_parallel_map(seeds.len(), threads, |i| {
        let mut kernel = build(seeds[i])?;
        run(&mut kernel)
    })
}

/// Runs a [`SprayAttack`] against one freshly built kernel per seed.
///
/// # Errors
///
/// The lowest-seed-index error, if any trial failed.
pub fn spray_campaign<B>(
    attack: &SprayAttack,
    seeds: &[u64],
    threads: usize,
    build: B,
) -> Result<Vec<AttackOutcome>, VmError>
where
    B: Fn(u64) -> Result<Kernel, VmError> + Sync,
{
    run_campaign(seeds, threads, build, |k| attack.run(k))
}

/// Runs a [`TemplatingAttack`] against one freshly built kernel per seed.
///
/// # Errors
///
/// The lowest-seed-index error, if any trial failed.
pub fn templating_campaign<B>(
    attack: &TemplatingAttack,
    seeds: &[u64],
    threads: usize,
    build: B,
) -> Result<Vec<AttackOutcome>, VmError>
where
    B: Fn(u64) -> Result<Kernel, VmError> + Sync,
{
    run_campaign(seeds, threads, build, |k| attack.run(k))
}

/// Runs the Algorithm 1 brute force against one freshly built kernel per
/// seed, keeping each trial's step-count report alongside its outcome.
///
/// # Errors
///
/// The lowest-seed-index error, if any trial failed.
pub fn brute_campaign<B>(
    attack: &BruteForceCtaAttack,
    seeds: &[u64],
    threads: usize,
    build: B,
) -> Result<Vec<(AttackOutcome, BruteForceReport)>, VmError>
where
    B: Fn(u64) -> Result<Kernel, VmError> + Sync,
{
    run_campaign(seeds, threads, build, |k| attack.run(k))
}

/// Like [`run_campaign`], but each trial also snapshots its kernel's full
/// telemetry (DRAM, TLB, kernel, allocator counters) before the machine is
/// dropped, and the per-trial snapshots are merged **in seed order** into
/// one labeled [`Counters`] registry.
///
/// Counter merging is integer addition, so the merged registry is
/// identical for any `threads` value — the same determinism contract the
/// trial results themselves follow.
///
/// # Errors
///
/// The lowest-seed-index error, if any trial failed to build or run.
pub fn run_campaign_with_counters<T, B, R>(
    label: &str,
    seeds: &[u64],
    threads: usize,
    build: B,
    run: R,
) -> Result<(Vec<T>, Counters), VmError>
where
    T: Send,
    B: Fn(u64) -> Result<Kernel, VmError> + Sync,
    R: Fn(&mut Kernel) -> Result<T, VmError> + Sync,
{
    let trials = cta_parallel::try_parallel_map(seeds.len(), threads, |i| {
        let mut kernel = build(seeds[i])?;
        let result = run(&mut kernel)?;
        let mut shard = Counters::new(label);
        kernel.record_counters(&mut shard);
        Ok::<_, VmError>((result, shard))
    })?;

    let mut counters = Counters::new(label);
    let mut results = Vec::with_capacity(trials.len());
    for (result, shard) in trials {
        counters.merge(&shard);
        results.push(result);
    }
    counters.set_u64("campaign", "trials", seeds.len() as u64);
    Ok((results, counters))
}

/// Runs `trials` trials against forks of one pre-booted kernel, serially,
/// returning results in trial order.
///
/// The boot-once/fork-per-trial counterpart of [`run_campaign`] for
/// experiments whose trials share one module: because boot is
/// deterministic, forking a freshly booted kernel is bit-identical to
/// rebooting it, minus the boot cost. With the
/// [`cta_dram::StoreBackend::Cow`] backend each fork is O(materialized
/// rows) cheap. Trials run serially on the caller's thread — the parent
/// kernel is `!Send` and cannot be shared across workers.
///
/// `run` receives the trial index alongside the forked kernel, for trials
/// that vary attack parameters (not the module) per trial.
///
/// # Errors
///
/// The lowest-index error, if any trial failed.
pub fn run_forked_campaign<T, R>(
    parent: &Kernel,
    trials: usize,
    mut run: R,
) -> Result<Vec<T>, VmError>
where
    R: FnMut(usize, &mut Kernel) -> Result<T, VmError>,
{
    let mut results = Vec::with_capacity(trials);
    for i in 0..trials {
        let mut kernel = parent.fork();
        results.push(run(i, &mut kernel)?);
    }
    Ok(results)
}

/// Like [`run_forked_campaign`], but each trial also snapshots its forked
/// kernel's full telemetry before the fork is dropped, merged **in trial
/// order** into one labeled [`Counters`] registry (plus a
/// `campaign.trials` count) — the same shape
/// [`run_campaign_with_counters`] produces.
///
/// # Errors
///
/// The lowest-index error, if any trial failed.
pub fn run_forked_campaign_with_counters<T, R>(
    label: &str,
    parent: &Kernel,
    trials: usize,
    mut run: R,
) -> Result<(Vec<T>, Counters), VmError>
where
    R: FnMut(usize, &mut Kernel) -> Result<T, VmError>,
{
    let mut counters = Counters::new(label);
    let mut results = Vec::with_capacity(trials);
    for i in 0..trials {
        let mut kernel = parent.fork();
        results.push(run(i, &mut kernel)?);
        let mut shard = Counters::new(label);
        kernel.record_counters(&mut shard);
        counters.merge(&shard);
    }
    counters.set_u64("campaign", "trials", trials as u64);
    Ok((results, counters))
}

/// Aggregate statistics over a campaign's outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSummary {
    /// Trials run (one per seed).
    pub trials: usize,
    /// Trials where the attacker demonstrated privilege escalation.
    pub successes: usize,
    /// Total disturbance flips across all trials.
    pub total_flips: u64,
    /// Total rows hammered across all trials.
    pub total_rows_hammered: u64,
    /// Total simulated time across all trials, nanoseconds.
    pub total_sim_time_ns: u64,
}

impl CampaignSummary {
    /// Folds outcomes (in campaign order) into aggregate counts.
    pub fn from_outcomes<'a, I>(outcomes: I) -> Self
    where
        I: IntoIterator<Item = &'a AttackOutcome>,
    {
        let mut s = CampaignSummary {
            trials: 0,
            successes: 0,
            total_flips: 0,
            total_rows_hammered: 0,
            total_sim_time_ns: 0,
        };
        for out in outcomes {
            s.trials += 1;
            s.successes += usize::from(out.success());
            s.total_flips += out.flips_induced;
            s.total_rows_hammered += out.rows_hammered;
            s.total_sim_time_ns += out.sim_time_ns;
        }
        s
    }

    /// Fraction of trials that escalated privilege.
    pub fn success_rate(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.successes as f64 / self.trials as f64
    }
}

impl StatSource for CampaignSummary {
    fn group(&self) -> &'static str {
        "campaign"
    }

    fn record(&self, g: &mut Group) {
        g.add_u64("trials", self.trials as u64);
        g.add_u64("successes", self.successes as u64);
        g.add_u64("total_flips", self.total_flips);
        g.add_u64("total_rows_hammered", self.total_rows_hammered);
        g.add_u64("total_sim_time_ns", self.total_sim_time_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cta_core::SystemBuilder;
    use cta_dram::DisturbanceParams;

    fn build(seed: u64, protected: bool) -> Result<Kernel, VmError> {
        SystemBuilder::new(8 << 20)
            .ptp_bytes(512 * 1024)
            .seed(seed)
            .protected(protected)
            .disturbance(DisturbanceParams { pf: 0.05, ..DisturbanceParams::default() })
            .build()
    }

    #[test]
    fn parallel_spray_campaign_matches_serial_loop() {
        let attack = SprayAttack::default();
        let seeds: Vec<u64> = (0..6).collect();
        // Ground truth: today's serial pattern, one run after another.
        let mut serial = Vec::new();
        for &seed in &seeds {
            let mut k = build(seed, false).unwrap();
            serial.push(attack.run(&mut k).unwrap());
        }
        for threads in [1, 4] {
            let campaign =
                spray_campaign(&attack, &seeds, threads, |seed| build(seed, false)).unwrap();
            assert_eq!(campaign, serial, "threads={threads}");
        }
    }

    #[test]
    fn campaign_summary_counts_successes() {
        let attack = SprayAttack::default();
        let seeds: Vec<u64> = (0..8).collect();
        let stock = spray_campaign(&attack, &seeds, 4, |seed| build(seed, false)).unwrap();
        let cta = spray_campaign(&attack, &seeds, 4, |seed| build(seed, true)).unwrap();
        let stock_summary = CampaignSummary::from_outcomes(&stock);
        let cta_summary = CampaignSummary::from_outcomes(&cta);
        // Same statistical claim the per-seed unit tests make, now through
        // the campaign API: stock falls to some module, CTA to none.
        assert!(stock_summary.successes >= 1, "{stock_summary:?}");
        assert_eq!(cta_summary.successes, 0, "{cta_summary:?}");
        assert_eq!(cta_summary.trials, 8);
        assert!(cta_summary.total_rows_hammered > 0);
        assert!((0.0..=1.0).contains(&stock_summary.success_rate()));
    }

    #[test]
    fn campaign_counters_merge_deterministically_across_shards() {
        let attack = SprayAttack::default();
        let seeds: Vec<u64> = (0..6).collect();
        let run = |k: &mut Kernel| attack.run(k);

        let (serial_out, serial_counters) =
            run_campaign_with_counters("spray", &seeds, 1, |s| build(s, false), run).unwrap();
        for threads in [2, 4] {
            let (out, counters) =
                run_campaign_with_counters("spray", &seeds, threads, |s| build(s, false), run)
                    .unwrap();
            assert_eq!(out, serial_out, "threads={threads}");
            // The merged registry — every group, key, and flag — must be
            // exactly what the serial run produced.
            assert_eq!(counters, serial_counters, "threads={threads}");
            assert_eq!(counters.to_json(), serial_counters.to_json(), "threads={threads}");
        }

        // The merged counters really aggregate across trials: flips seen
        // by the DRAM group equal the sum over individual outcomes.
        let dram = serial_counters.group("dram").unwrap();
        let outcome_flips: u64 = serial_out.iter().map(|o| o.flips_induced).sum();
        let one_to_zero = dram.get_u64("flips_one_to_zero").unwrap();
        let zero_to_one = dram.get_u64("flips_zero_to_one").unwrap();
        assert_eq!(one_to_zero + zero_to_one, outcome_flips);
        assert_eq!(serial_counters.group("campaign").unwrap().get_u64("trials"), Some(6));
    }

    #[test]
    fn forked_campaign_matches_reboot_per_trial_on_every_backend() {
        use cta_dram::StoreBackend;
        let attack = SprayAttack::default();
        let trials = 4usize;
        let seeds = vec![77u64; trials]; // reboot campaign: same module each trial
        for backend in StoreBackend::ALL {
            let build = |seed: u64| {
                SystemBuilder::new(8 << 20)
                    .ptp_bytes(512 * 1024)
                    .seed(seed)
                    .disturbance(DisturbanceParams { pf: 0.05, ..DisturbanceParams::default() })
                    .backend(backend)
                    .build()
            };
            let rebooted = spray_campaign(&attack, &seeds, 1, build).unwrap();
            let parent = build(77).unwrap();
            let forked = run_forked_campaign(&parent, trials, |_, k| attack.run(k)).unwrap();
            assert_eq!(forked, rebooted, "backend={backend}");
        }
    }

    #[test]
    fn forked_campaign_counters_match_reboot_per_trial() {
        let attack = SprayAttack::default();
        let trials = 4usize;
        let seeds = vec![9u64; trials];
        let (reboot_out, reboot_counters) =
            run_campaign_with_counters("spray", &seeds, 1, |s| build(s, false), |k| attack.run(k))
                .unwrap();
        let parent = build(9, false).unwrap();
        let (fork_out, fork_counters) =
            run_forked_campaign_with_counters("spray", &parent, trials, |_, k| attack.run(k))
                .unwrap();
        assert_eq!(fork_out, reboot_out);
        assert_eq!(fork_counters, reboot_counters);
        assert_eq!(fork_counters.to_json(), reboot_counters.to_json());
    }

    #[test]
    fn brute_campaign_returns_reports_in_seed_order() {
        let attack = BruteForceCtaAttack::default();
        let seeds = [3u64, 5, 7];
        let parallel = brute_campaign(&attack, &seeds, 3, |seed| build(seed, true)).unwrap();
        let serial = brute_campaign(&attack, &seeds, 1, |seed| build(seed, true)).unwrap();
        assert_eq!(parallel, serial);
        assert_eq!(parallel.len(), seeds.len());
        for (out, report) in &parallel {
            assert!(!out.success());
            assert!(report.rows_hammered > 0 || report.fill_mappings > 0);
        }
    }
}
