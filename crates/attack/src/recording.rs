//! Flip-log record/replay: capture a campaign's complete flip transcript,
//! then prove any backend/engine combination reproduces it byte for byte.
//!
//! The simulator's determinism contract says a campaign is a pure function
//! of its spec: the same seeds produce the same flips, the same DRAM
//! contents, and the same telemetry no matter which
//! [`StoreBackend`](cta_dram::StoreBackend) stores the rows, which
//! [`FlipEngine`](cta_dram::FlipEngine) computes the flips, or how many
//! threads run the trials. The differential test suites check that
//! contract pairwise at every commit; a [`Recording`] turns it into an
//! *artifact*: a golden transcript checked into the repository that every
//! future build must reproduce exactly. A regression that perturbs the
//! simulation — a reordered hammer loop, an off-by-one in decay windows, a
//! backend that drifts — fails replay with a positioned mismatch instead
//! of silently changing every downstream experiment.
//!
//! The subsystem exists because the flip log is *bounded*: the
//! [`RingLog`](cta_telemetry::RingLog) retains a window and counts
//! evictions. A recording whose window wrapped is not a transcript — it is
//! a suffix — so [`record_campaign`] fails loudly ([`RecordingError::LossyFlipLog`])
//! whenever a trial drops events, and refuses outright
//! ([`RecordingError::RetentionDisabled`]) when the spec disables
//! retention. Replay re-checks both, and additionally cross-checks the
//! accounting invariant: the campaign's `total_flips` counter must equal
//! the transcript length plus reported drops, and the DRAM module's own
//! directional flip counters must agree ([`verify_flip_accounting`]).
//!
//! Recordings serialize through the strict [`cta_telemetry::json`] emitter
//! and parse back through the strict parser, so a fixture that loads at
//! all is standards-valid JSON with a schema-valid embedded telemetry
//! snapshot ([`cta_telemetry::schema`]).
//!
//! What is — and is not — free to vary at replay:
//!
//! * **Backend, flip engine, threads**: implementation knobs, recorded
//!   nowhere in the transcript's meaning; [`ReplayTarget::all`] enumerates
//!   the backend × engine grid for exhaustive gates.
//! * **MapGen**: *not* an implementation knob. It selects which
//!   deterministic vulnerability universe the seed fixes, so it is part of
//!   the [`RecordingSpec`] and replay always uses the recorded value.

use std::fmt;

use cta_core::{DefenseSpec, SystemBuilder};
use cta_dram::{DisturbanceParams, FlipDirection, FlipEvent, FlipLog, MapGen, RowId};
use cta_telemetry::json::{self, JsonValue};
use cta_telemetry::{schema, Counters};
use cta_vm::{Kernel, VmError};

use crate::campaign::CampaignSummary;
use crate::outcome::AttackOutcome;
use crate::{SprayAttack, TemplatingAttack};

/// Current on-disk format version (bumped on incompatible changes).
/// Version 2 switched `contents_hash` from byte-at-a-time FNV-1a to the
/// wordwise variant ([`fnv1a64_wordwise`]): the byte-serial multiply
/// chain capped transcript hashing near 700 MB/s and dominated every
/// trial's non-attack cost, which in turn capped the persistent
/// executor's fork amortization. Version-1 fixtures must be regenerated
/// (`replay-check --record`).
pub const RECORDING_VERSION: u64 = 2;

/// Counters label used for a recording's embedded telemetry snapshot;
/// matches the `recording` schema declaration in [`cta_telemetry::schema`].
pub const RECORDING_LABEL: &str = "recording";

/// The attack a recording runs each trial.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordedAttack {
    /// PTE-spray privilege escalation ([`SprayAttack`]).
    Spray(SprayAttack),
    /// Drammer-style templating ([`TemplatingAttack`]).
    Templating(TemplatingAttack),
}

impl RecordedAttack {
    /// Runs the attack against one trial kernel.
    fn run(&self, kernel: &mut Kernel) -> Result<AttackOutcome, VmError> {
        match self {
            RecordedAttack::Spray(a) => a.run(kernel),
            RecordedAttack::Templating(a) => a.run(kernel),
        }
    }

    /// Stable kind tag used in the serialized form.
    fn kind(&self) -> &'static str {
        match self {
            RecordedAttack::Spray(_) => "spray",
            RecordedAttack::Templating(_) => "templating",
        }
    }
}

/// Everything needed to re-run a recorded campaign deterministically.
///
/// Implementation knobs (backend, flip engine) are deliberately absent:
/// they must not change the transcript, and replay exists to prove it.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordingSpec {
    /// The attack each trial runs.
    pub attack: RecordedAttack,
    /// Machine size in bytes.
    pub memory_bytes: u64,
    /// DRAM row size in bytes.
    pub row_bytes: u64,
    /// Cell-type alternation period in rows.
    pub cell_period_rows: u64,
    /// `ZONE_PTP` size in bytes (only meaningful when `protected`).
    pub ptp_bytes: u64,
    /// Whether CTA protection is enabled.
    pub protected: bool,
    /// Identify cell types with the boot-time profiler instead of the
    /// module's ground truth. Part of the spec (it changes what the
    /// machine computes at boot), defaulting to `false`; a missing key in
    /// a serialized recording means `false`.
    pub profile_cells: bool,
    /// Disturbance (RowHammer) model parameters.
    pub disturbance: DisturbanceParams,
    /// Vulnerability-map derivation version. Part of the spec — it picks
    /// the universe, it is not an implementation detail.
    pub map_gen: MapGen,
    /// One trial per seed, in order.
    pub seeds: Vec<u64>,
    /// Worker threads for the trial loop (any value yields the same
    /// transcript; recorded so replays default to the same schedule).
    pub threads: usize,
    /// Flip-log retention capacity per trial module. Must be large enough
    /// to hold every flip of a trial; zero is rejected at record time.
    pub flip_log_capacity: usize,
}

impl RecordingSpec {
    /// A spec running `attack` on small default machines over `seeds`.
    pub fn new(attack: RecordedAttack, seeds: Vec<u64>) -> Self {
        RecordingSpec {
            attack,
            memory_bytes: 8 << 20,
            row_bytes: 4096,
            cell_period_rows: 64,
            ptp_bytes: 512 * 1024,
            protected: false,
            profile_cells: false,
            disturbance: DisturbanceParams { pf: 0.05, ..DisturbanceParams::default() },
            map_gen: MapGen::default(),
            seeds,
            threads: 1,
            flip_log_capacity: cta_telemetry::DEFAULT_LOG_CAPACITY,
        }
    }

    /// The builder for one trial's kernel under implementation `target` —
    /// the machine every trial of this spec boots (and the machine the
    /// persistent executor boots once per tenant/config and forks per
    /// trial).
    pub fn builder(&self, seed: u64, target: ReplayTarget) -> SystemBuilder {
        SystemBuilder::new(self.memory_bytes)
            .row_bytes(self.row_bytes)
            .cell_period(self.cell_period_rows)
            .ptp_bytes(self.ptp_bytes)
            .protected(self.protected)
            .profile_cells(self.profile_cells)
            .disturbance(self.disturbance)
            .map_gen(self.map_gen)
            .seed(seed)
            .backend(target.backend)
            .flip_engine(target.flip_engine)
            .defense(target.defense)
    }
}

/// The implementation combination a replay runs against. The recorded
/// transcript must be invariant under every choice here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayTarget {
    /// Row-store backend.
    pub backend: cta_dram::StoreBackend,
    /// Disturbance/decay inner-loop implementation.
    pub flip_engine: cta_dram::FlipEngine,
    /// Software defense installed on the trial machines. Golden gates
    /// replay under the default [`DefenseSpec::None`], which must be
    /// byte-identical to the recorded (undefended) campaign. Any installed
    /// defense diverges at least at the telemetry comparison (defended
    /// kernels emit a `defense` counter group): a pure
    /// [`DefenseSpec::Observer`] replays the flip transcript, contents,
    /// clock, and outcome exactly and fails only there, while an *acting*
    /// defense diverges in the transcript itself. Both are deliberate
    /// divergence probes, expected to fail with
    /// [`RecordingError::Mismatch`].
    pub defense: DefenseSpec,
}

impl fmt::Display for ReplayTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let engine = match self.flip_engine {
            cta_dram::FlipEngine::Scalar => "scalar",
            cta_dram::FlipEngine::Wordwise => "wordwise",
        };
        write!(f, "{}/{engine}", self.backend.name())?;
        if !self.defense.is_none() {
            write!(f, "+{}", self.defense)?;
        }
        Ok(())
    }
}

impl ReplayTarget {
    /// Every backend × flip-engine combination, for exhaustive gates.
    #[must_use]
    pub fn all() -> Vec<ReplayTarget> {
        let mut targets = Vec::new();
        for backend in cta_dram::StoreBackend::ALL {
            for flip_engine in [cta_dram::FlipEngine::Scalar, cta_dram::FlipEngine::Wordwise] {
                targets.push(ReplayTarget { backend, flip_engine, defense: DefenseSpec::None });
            }
        }
        targets
    }
}

/// One trial's complete observable record.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// The trial's seed.
    pub seed: u64,
    /// The attack's outcome, including its phase log.
    pub outcome: AttackOutcome,
    /// Every disturbance flip the module recorded, in order.
    pub flips: Vec<FlipEvent>,
    /// FNV-1a 64 hash of the module's full final contents.
    pub contents_hash: u64,
    /// The module's simulated clock at trial end, nanoseconds.
    pub end_ns: u64,
}

/// A recorded campaign: spec, per-trial transcripts, and the merged
/// telemetry snapshot (label [`RECORDING_LABEL`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Recording {
    /// The campaign spec replay re-runs.
    pub spec: RecordingSpec,
    /// Per-trial transcripts, in seed order.
    pub trials: Vec<TrialRecord>,
    /// The merged campaign telemetry, parsed from the deterministic
    /// [`Counters::to_json`] emission.
    pub telemetry: JsonValue,
}

/// Result of a successful replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// The implementation combination that reproduced the recording.
    pub target: ReplayTarget,
    /// Trials replayed.
    pub trials: usize,
    /// Total flip events verified byte-identical.
    pub flips_verified: u64,
}

/// Why recording, replay, or (de)serialization failed.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordingError {
    /// A trial kernel failed to build or run.
    Vm(VmError),
    /// The spec disables flip-log retention (`flip_log_capacity == 0`), so
    /// recording would produce an empty-but-"successful" transcript.
    RetentionDisabled,
    /// A trial's flip log wrapped: the transcript is a suffix, not a
    /// record. Raise `flip_log_capacity` above the trial's flip count.
    LossyFlipLog {
        /// Seed of the lossy trial.
        seed: u64,
        /// Events evicted from the bounded window.
        dropped: u64,
        /// Events retained.
        retained: usize,
    },
    /// The flip-accounting invariant failed: telemetry counters and the
    /// flip transcript disagree about how many flips happened.
    Accounting {
        /// Which comparison failed.
        what: &'static str,
        /// Count derived from the flip transcript.
        from_log: u64,
        /// Count reported by telemetry.
        from_counters: u64,
    },
    /// A replayed trial diverged from the recording.
    Mismatch {
        /// Seed of the diverging trial (`u64::MAX` for campaign-level
        /// observables such as merged telemetry).
        seed: u64,
        /// Which observable diverged.
        what: &'static str,
        /// Human-readable divergence detail.
        detail: String,
    },
    /// The serialized form is not strict JSON.
    Json(json::JsonError),
    /// The serialized form is valid JSON of the wrong shape.
    Malformed {
        /// `.`-separated path to the offending member.
        path: String,
        /// What is wrong there.
        message: String,
    },
    /// A value does not fit a JSON number exactly (> 2⁵³).
    Unrepresentable {
        /// Which value overflowed.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
}

impl fmt::Display for RecordingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordingError::Vm(e) => write!(f, "trial failed: {e}"),
            RecordingError::RetentionDisabled => f.write_str(
                "recording requires flip-log retention; flip_log_capacity is 0 \
                 (every flip would be dropped and the transcript would be empty)",
            ),
            RecordingError::LossyFlipLog { seed, dropped, retained } => write!(
                f,
                "trial seed={seed}: flip log wrapped ({dropped} events dropped, {retained} \
                 retained); raise flip_log_capacity to record a complete transcript"
            ),
            RecordingError::Accounting { what, from_log, from_counters } => write!(
                f,
                "flip accounting drift ({what}): transcript says {from_log}, \
                 telemetry says {from_counters}"
            ),
            RecordingError::Mismatch { seed, what, detail } => {
                if *seed == u64::MAX {
                    write!(f, "replay mismatch ({what}): {detail}")
                } else {
                    write!(f, "replay mismatch at seed={seed} ({what}): {detail}")
                }
            }
            RecordingError::Json(e) => write!(f, "recording is not strict JSON: {e}"),
            RecordingError::Malformed { path, message } => {
                write!(f, "malformed recording at {path}: {message}")
            }
            RecordingError::Unrepresentable { what, value } => {
                write!(f, "{what} = {value} exceeds 2^53 and cannot be stored as JSON")
            }
        }
    }
}

impl std::error::Error for RecordingError {}

impl From<VmError> for RecordingError {
    fn from(e: VmError) -> Self {
        RecordingError::Vm(e)
    }
}

impl From<json::JsonError> for RecordingError {
    fn from(e: json::JsonError) -> Self {
        RecordingError::Json(e)
    }
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a 64-bit hash (dependency-free contents fingerprint).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Wordwise FNV-1a 64: one xor-multiply round per little-endian `u64`
/// word instead of per byte, with a trailing partial word (if any)
/// folded byte-at-a-time. Eight times fewer sequential multiplies than
/// [`fnv1a64`] — the difference between transcript hashing at ~700 MB/s
/// and at multiple GB/s, which matters because every recorded trial
/// fingerprints the module's entire final contents. This is the
/// `contents_hash` function of recording format version 2.
#[must_use]
pub fn fnv1a64_wordwise(bytes: &[u8]) -> u64 {
    let mut hasher = WordHasher::new();
    hasher.update(bytes);
    hasher.finish()
}

/// Streaming form of [`fnv1a64_wordwise`]: feed contents in arbitrary
/// chunks (the trial body streams row by row, never materializing the
/// whole module) and get the same hash as one call over the
/// concatenation. Carries sub-word remainders across `update` calls so
/// chunk boundaries are invisible.
struct WordHasher {
    hash: u64,
    pending: [u8; 8],
    npending: usize,
}

impl WordHasher {
    fn new() -> Self {
        WordHasher { hash: FNV_OFFSET, pending: [0; 8], npending: 0 }
    }

    fn round(&mut self, word: u64) {
        self.hash ^= word;
        self.hash = self.hash.wrapping_mul(FNV_PRIME);
    }

    fn update(&mut self, mut bytes: &[u8]) {
        if self.npending > 0 {
            let take = bytes.len().min(8 - self.npending);
            self.pending[self.npending..self.npending + take].copy_from_slice(&bytes[..take]);
            self.npending += take;
            bytes = &bytes[take..];
            if self.npending < 8 {
                return;
            }
            self.round(u64::from_le_bytes(self.pending));
            self.npending = 0;
        }
        let mut words = bytes.chunks_exact(8);
        for word in &mut words {
            self.round(u64::from_le_bytes(word.try_into().expect("8-byte chunk")));
        }
        let tail = words.remainder();
        self.pending[..tail.len()].copy_from_slice(tail);
        self.npending = tail.len();
    }

    fn finish(mut self) -> u64 {
        // Trailing partial word: byte-at-a-time rounds, so inputs that
        // differ only in a zero-padded tail still hash differently.
        for i in 0..self.npending {
            self.hash ^= u64::from(self.pending[i]);
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
        self.hash
    }
}

/// Runs one trial under `target` and captures its full observable record
/// plus a telemetry shard. Counter capture happens *before* the flip log
/// is drained (so the `flip_log_retained` gauge reflects the trial), and
/// record/replay share this function, so the order is identical on both
/// sides by construction.
fn run_trial(
    spec: &RecordingSpec,
    target: ReplayTarget,
    seed: u64,
) -> Result<(TrialRecord, Counters, FlipLog), RecordingError> {
    let mut kernel = spec.builder(seed, target).build()?;
    run_trial_on(&mut kernel, spec, seed)
}

/// The trial body shared by the scoped path above and the persistent
/// executor (which supplies a kernel *forked* from a pooled parent —
/// bit-identical to a fresh boot, which is what makes the executor's
/// output byte-identical to this path by construction).
pub(crate) fn run_trial_on(
    kernel: &mut Kernel,
    spec: &RecordingSpec,
    seed: u64,
) -> Result<(TrialRecord, Counters, FlipLog), RecordingError> {
    kernel.dram_mut().set_flip_log_capacity(spec.flip_log_capacity);
    let outcome = spec.attack.run(kernel)?;
    let mut shard = Counters::new(RECORDING_LABEL);
    kernel.record_counters(&mut shard);
    let end_ns = kernel.dram().now_ns();
    // Stream the contents fingerprint row by row through one reused
    // buffer: same bytes, same hash as one whole-capacity peek, without
    // allocating (and memset-ing) a module-sized copy per trial.
    let capacity = kernel.dram().capacity_bytes();
    let row_bytes = kernel.dram().geometry().row_bytes();
    let mut row = vec![0u8; row_bytes as usize];
    let mut hasher = WordHasher::new();
    let mut addr = 0u64;
    while addr < capacity {
        let take = row_bytes.min(capacity - addr) as usize;
        kernel.dram().peek_into(addr, &mut row[..take]).map_err(VmError::Dram)?;
        hasher.update(&row[..take]);
        addr += take as u64;
    }
    let contents_hash = hasher.finish();
    let log = kernel.dram_mut().take_flip_log();
    let record = TrialRecord { seed, outcome, flips: log.events.clone(), contents_hash, end_ns };
    Ok((record, shard, log))
}

/// Runs every trial of `spec` under `target`, in seed order, enforcing
/// the lossless-transcript requirement per trial.
fn run_trials(
    spec: &RecordingSpec,
    target: ReplayTarget,
) -> Result<(Vec<TrialRecord>, Counters), RecordingError> {
    if spec.flip_log_capacity == 0 {
        return Err(RecordingError::RetentionDisabled);
    }
    let shards = cta_parallel::try_parallel_map(spec.seeds.len(), spec.threads.max(1), |i| {
        run_trial(spec, target, spec.seeds[i])
    })?;

    let mut counters = Counters::new(RECORDING_LABEL);
    let mut trials = Vec::with_capacity(shards.len());
    for (record, shard, log) in shards {
        if !log.is_complete() {
            return Err(RecordingError::LossyFlipLog {
                seed: record.seed,
                dropped: log.dropped,
                retained: log.len(),
            });
        }
        counters.merge(&shard);
        trials.push(record);
    }
    let summary = CampaignSummary::from_outcomes(trials.iter().map(|t| &t.outcome));
    counters.record(&summary);
    Ok((trials, counters))
}

/// Asserts the flip-accounting invariant between a campaign's telemetry
/// and its flip transcript: `campaign.total_flips` must equal the
/// transcript's event count, and the DRAM module's directional flip
/// counters must sum to the same value. Any drift means some layer
/// counted flips the transcript never saw (or vice versa).
///
/// # Errors
///
/// [`RecordingError::Accounting`] naming the first disagreeing pair.
pub fn verify_flip_accounting(
    counters: &Counters,
    trials: &[TrialRecord],
) -> Result<(), RecordingError> {
    let from_log: u64 = trials.iter().map(|t| t.flips.len() as u64).sum();
    let campaign_flips = counters.group("campaign").and_then(|g| g.get_u64("total_flips")).ok_or(
        RecordingError::Accounting {
            what: "campaign.total_flips missing",
            from_log,
            from_counters: 0,
        },
    )?;
    if campaign_flips != from_log {
        return Err(RecordingError::Accounting {
            what: "campaign.total_flips vs flip transcript",
            from_log,
            from_counters: campaign_flips,
        });
    }
    let dram = counters.group("dram");
    let directional = dram
        .and_then(|g| Some(g.get_u64("flips_one_to_zero")? + g.get_u64("flips_zero_to_one")?))
        .ok_or(RecordingError::Accounting {
            what: "dram flip counters missing",
            from_log,
            from_counters: 0,
        })?;
    if directional != from_log {
        return Err(RecordingError::Accounting {
            what: "dram directional flips vs flip transcript",
            from_log,
            from_counters: directional,
        });
    }
    let dropped = dram.and_then(|g| g.get_u64("flip_log_dropped")).unwrap_or(0);
    if dropped != 0 {
        return Err(RecordingError::Accounting {
            what: "dram.flip_log_dropped must be zero in a lossless recording",
            from_log,
            from_counters: dropped,
        });
    }
    Ok(())
}

/// Records a campaign: runs `spec` under the default implementation
/// target and captures the complete flip transcript, final contents hash,
/// clock, outcome, and merged telemetry per trial.
///
/// # Errors
///
/// [`RecordingError::RetentionDisabled`] when the spec disables flip-log
/// retention; [`RecordingError::LossyFlipLog`] when any trial's log
/// wrapped; [`RecordingError::Accounting`] on counter/transcript drift;
/// [`RecordingError::Vm`] when a trial fails to build or run.
pub fn record_campaign(spec: &RecordingSpec) -> Result<Recording, RecordingError> {
    let (trials, counters) = run_trials(spec, ReplayTarget::default())?;
    verify_flip_accounting(&counters, &trials)?;
    let telemetry = json::parse(&counters.to_json())?;
    Ok(Recording { spec: spec.clone(), trials, telemetry })
}

/// Replays a recording under `target`, asserting every observable matches
/// byte for byte: the flip transcript (row, bit, direction, timestamp of
/// every event), the final DRAM contents hash, the simulated clock, the
/// attack outcome (including its phase log), and the merged telemetry
/// snapshot. Also re-verifies the flip-accounting invariant.
///
/// # Errors
///
/// [`RecordingError::Mismatch`] on the first divergence, plus everything
/// [`record_campaign`] can raise.
pub fn replay_recording(
    recording: &Recording,
    target: ReplayTarget,
) -> Result<ReplayReport, RecordingError> {
    let (trials, counters) = run_trials(&recording.spec, target)?;
    compare_with_recording(recording, &trials, &counters, target)
}

/// The replay comparison proper, shared by [`replay_recording`] and the
/// persistent executor's replay path: asserts `trials` + `counters`
/// (however they were produced) match the recording byte for byte, after
/// re-verifying the flip-accounting invariant.
pub(crate) fn compare_with_recording(
    recording: &Recording,
    trials: &[TrialRecord],
    counters: &Counters,
    target: ReplayTarget,
) -> Result<ReplayReport, RecordingError> {
    verify_flip_accounting(counters, trials)?;

    if trials.len() != recording.trials.len() {
        return Err(RecordingError::Mismatch {
            seed: u64::MAX,
            what: "trial count",
            detail: format!("recorded {}, replayed {}", recording.trials.len(), trials.len()),
        });
    }
    for (replayed, recorded) in trials.iter().zip(&recording.trials) {
        let seed = recorded.seed;
        if replayed.flips != recorded.flips {
            let detail = first_flip_divergence(&recorded.flips, &replayed.flips);
            return Err(RecordingError::Mismatch { seed, what: "flip transcript", detail });
        }
        if replayed.contents_hash != recorded.contents_hash {
            return Err(RecordingError::Mismatch {
                seed,
                what: "contents hash",
                detail: format!(
                    "recorded {:#018x}, replayed {:#018x}",
                    recorded.contents_hash, replayed.contents_hash
                ),
            });
        }
        if replayed.end_ns != recorded.end_ns {
            return Err(RecordingError::Mismatch {
                seed,
                what: "simulated clock",
                detail: format!("recorded {} ns, replayed {} ns", recorded.end_ns, replayed.end_ns),
            });
        }
        if replayed.outcome != recorded.outcome {
            return Err(RecordingError::Mismatch {
                seed,
                what: "attack outcome",
                detail: format!("recorded {:?}, replayed {:?}", recorded.outcome, replayed.outcome),
            });
        }
    }

    let telemetry = json::parse(&counters.to_json())?;
    if telemetry != recording.telemetry {
        return Err(RecordingError::Mismatch {
            seed: u64::MAX,
            what: "telemetry snapshot",
            detail: format!(
                "recorded {}, replayed {}",
                recording.telemetry.to_compact_string(),
                telemetry.to_compact_string()
            ),
        });
    }

    Ok(ReplayReport {
        target,
        trials: trials.len(),
        flips_verified: trials.iter().map(|t| t.flips.len() as u64).sum(),
    })
}

/// Points at the first diverging event of two flip transcripts.
fn first_flip_divergence(recorded: &[FlipEvent], replayed: &[FlipEvent]) -> String {
    for (i, (a, b)) in recorded.iter().zip(replayed).enumerate() {
        if a != b {
            return format!("event {i}: recorded {a:?}, replayed {b:?}");
        }
    }
    format!("recorded {} events, replayed {}", recorded.len(), replayed.len())
}

// --- serialization -----------------------------------------------------

fn num(what: &'static str, value: u64) -> Result<JsonValue, RecordingError> {
    if value > (1u64 << 53) {
        return Err(RecordingError::Unrepresentable { what, value });
    }
    Ok(JsonValue::Number(value as f64))
}

fn obj(members: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

impl Recording {
    /// Serializes to compact strict JSON (the golden-fixture format).
    ///
    /// # Errors
    ///
    /// [`RecordingError::Unrepresentable`] if any counter exceeds 2⁵³
    /// (the contents hash is exempt: it is stored as a hex string).
    pub fn to_json_string(&self) -> Result<String, RecordingError> {
        let spec = &self.spec;
        let params = match &spec.attack {
            RecordedAttack::Spray(a) => obj(vec![
                ("regions", num("regions", a.regions)?),
                ("file_pages", num("file_pages", a.file_pages)?),
                ("max_hammer_rows", num("max_hammer_rows", a.max_hammer_rows)?),
                ("flush_per_probe", JsonValue::Bool(a.flush_per_probe)),
            ]),
            RecordedAttack::Templating(a) => obj(vec![
                ("arena_pages", num("arena_pages", a.arena_pages)?),
                ("max_attempts", num("max_attempts", a.max_attempts as u64)?),
                ("flush_per_probe", JsonValue::Bool(a.flush_per_probe)),
            ]),
        };
        let mut seeds = Vec::with_capacity(spec.seeds.len());
        for &s in &spec.seeds {
            seeds.push(num("seed", s)?);
        }
        let spec_json = obj(vec![
            ("attack", JsonValue::String(spec.attack.kind().to_string())),
            ("params", params),
            ("memory_bytes", num("memory_bytes", spec.memory_bytes)?),
            ("row_bytes", num("row_bytes", spec.row_bytes)?),
            ("cell_period_rows", num("cell_period_rows", spec.cell_period_rows)?),
            ("ptp_bytes", num("ptp_bytes", spec.ptp_bytes)?),
            ("protected", JsonValue::Bool(spec.protected)),
            ("profile_cells", JsonValue::Bool(spec.profile_cells)),
            (
                "disturbance",
                obj(vec![
                    ("pf", JsonValue::Number(spec.disturbance.pf)),
                    ("reverse_rate", JsonValue::Number(spec.disturbance.reverse_rate)),
                    (
                        "hammer_threshold",
                        num("hammer_threshold", spec.disturbance.hammer_threshold)?,
                    ),
                    ("trc_ns", num("trc_ns", spec.disturbance.trc_ns)?),
                ]),
            ),
            (
                "map_gen",
                JsonValue::String(
                    match spec.map_gen {
                        MapGen::Stream => "stream",
                        MapGen::Counter => "counter",
                    }
                    .to_string(),
                ),
            ),
            ("seeds", JsonValue::Array(seeds)),
            ("threads", num("threads", spec.threads as u64)?),
            ("flip_log_capacity", num("flip_log_capacity", spec.flip_log_capacity as u64)?),
        ]);

        let mut trials = Vec::with_capacity(self.trials.len());
        for t in &self.trials {
            let mut flips = Vec::with_capacity(t.flips.len());
            for e in &t.flips {
                flips.push(JsonValue::Array(vec![
                    num("flip row", e.row.0)?,
                    num("flip bit", e.bit)?,
                    JsonValue::Number(match e.direction {
                        FlipDirection::OneToZero => 0.0,
                        FlipDirection::ZeroToOne => 1.0,
                    }),
                    num("flip time_ns", e.time_ns)?,
                ]));
            }
            let o = &t.outcome;
            trials.push(obj(vec![
                ("seed", num("seed", t.seed)?),
                (
                    "outcome",
                    obj(vec![
                        ("secret_read", JsonValue::Bool(o.secret_read)),
                        ("secret_overwritten", JsonValue::Bool(o.secret_overwritten)),
                        ("self_reference_found", JsonValue::Bool(o.self_reference_found)),
                        ("rows_hammered", num("rows_hammered", o.rows_hammered)?),
                        ("flips_induced", num("flips_induced", o.flips_induced)?),
                        ("mappings_created", num("mappings_created", o.mappings_created)?),
                        ("sim_time_ns", num("sim_time_ns", o.sim_time_ns)?),
                        (
                            "log",
                            JsonValue::Array(
                                o.log.iter().map(|l| JsonValue::String(l.clone())).collect(),
                            ),
                        ),
                    ]),
                ),
                ("flips", JsonValue::Array(flips)),
                ("contents_hash", JsonValue::String(format!("{:#018x}", t.contents_hash))),
                ("end_ns", num("end_ns", t.end_ns)?),
            ]));
        }

        let doc = obj(vec![
            ("version", num("version", RECORDING_VERSION)?),
            ("spec", spec_json),
            ("trials", JsonValue::Array(trials)),
            ("telemetry", self.telemetry.clone()),
        ]);
        Ok(doc.to_compact_string())
    }

    /// Parses a recording from its strict-JSON serialized form, validating
    /// the embedded telemetry snapshot against the `recording` schema
    /// declaration.
    ///
    /// # Errors
    ///
    /// [`RecordingError::Json`] when the input is not strict JSON;
    /// [`RecordingError::Malformed`] on any shape violation.
    pub fn from_json_str(input: &str) -> Result<Recording, RecordingError> {
        let doc = json::parse(input)?;
        let version = get_u64(&doc, "version", "version")?;
        if version != RECORDING_VERSION {
            return Err(malformed(
                "version",
                format!("unsupported version {version} (expected {RECORDING_VERSION})"),
            ));
        }
        let spec_json = get(&doc, "spec", "spec")?;
        let kind = get_str(spec_json, "attack", "spec.attack")?;
        let params = get(spec_json, "params", "spec.params")?;
        let attack = match kind.as_str() {
            "spray" => RecordedAttack::Spray(SprayAttack {
                regions: get_u64(params, "regions", "spec.params.regions")?,
                file_pages: get_u64(params, "file_pages", "spec.params.file_pages")?,
                max_hammer_rows: get_u64(params, "max_hammer_rows", "spec.params.max_hammer_rows")?,
                flush_per_probe: get_bool(
                    params,
                    "flush_per_probe",
                    "spec.params.flush_per_probe",
                )?,
            }),
            "templating" => RecordedAttack::Templating(TemplatingAttack {
                arena_pages: get_u64(params, "arena_pages", "spec.params.arena_pages")?,
                max_attempts: get_u64(params, "max_attempts", "spec.params.max_attempts")? as usize,
                flush_per_probe: get_bool(
                    params,
                    "flush_per_probe",
                    "spec.params.flush_per_probe",
                )?,
            }),
            other => {
                return Err(malformed("spec.attack", format!("unknown attack kind `{other}`")))
            }
        };
        let disturbance_json = get(spec_json, "disturbance", "spec.disturbance")?;
        let disturbance = DisturbanceParams {
            pf: get_f64(disturbance_json, "pf", "spec.disturbance.pf")?,
            reverse_rate: get_f64(
                disturbance_json,
                "reverse_rate",
                "spec.disturbance.reverse_rate",
            )?,
            hammer_threshold: get_u64(
                disturbance_json,
                "hammer_threshold",
                "spec.disturbance.hammer_threshold",
            )?,
            trc_ns: get_u64(disturbance_json, "trc_ns", "spec.disturbance.trc_ns")?,
        };
        let map_gen = match get_str(spec_json, "map_gen", "spec.map_gen")?.as_str() {
            "stream" => MapGen::Stream,
            "counter" => MapGen::Counter,
            other => return Err(malformed("spec.map_gen", format!("unknown map_gen `{other}`"))),
        };
        let seeds_json = get(spec_json, "seeds", "spec.seeds")?;
        let JsonValue::Array(seed_items) = seeds_json else {
            return Err(malformed("spec.seeds", "must be an array"));
        };
        let mut seeds = Vec::with_capacity(seed_items.len());
        for (i, item) in seed_items.iter().enumerate() {
            seeds.push(as_u64(item, &format!("spec.seeds[{i}]"))?);
        }
        let spec = RecordingSpec {
            attack,
            memory_bytes: get_u64(spec_json, "memory_bytes", "spec.memory_bytes")?,
            row_bytes: get_u64(spec_json, "row_bytes", "spec.row_bytes")?,
            cell_period_rows: get_u64(spec_json, "cell_period_rows", "spec.cell_period_rows")?,
            ptp_bytes: get_u64(spec_json, "ptp_bytes", "spec.ptp_bytes")?,
            protected: get_bool(spec_json, "protected", "spec.protected")?,
            // Optional for backward compatibility: version-1 fixtures
            // recorded before the key existed mean `false`.
            profile_cells: match spec_json.get("profile_cells") {
                None => false,
                Some(JsonValue::Bool(b)) => *b,
                Some(_) => return Err(malformed("spec.profile_cells", "must be a boolean")),
            },
            disturbance,
            map_gen,
            seeds,
            threads: get_u64(spec_json, "threads", "spec.threads")? as usize,
            flip_log_capacity: get_u64(spec_json, "flip_log_capacity", "spec.flip_log_capacity")?
                as usize,
        };

        let trials_json = get(&doc, "trials", "trials")?;
        let JsonValue::Array(trial_items) = trials_json else {
            return Err(malformed("trials", "must be an array"));
        };
        let mut trials = Vec::with_capacity(trial_items.len());
        for (i, item) in trial_items.iter().enumerate() {
            trials.push(parse_trial(item, i)?);
        }

        let telemetry = get(&doc, "telemetry", "telemetry")?.clone();
        let schema_errors = schema::validate_snapshot(&telemetry);
        if let Some(first) = schema_errors.first() {
            return Err(malformed(
                format!("telemetry.{}", first.path),
                format!("{} ({} violations total)", first.message, schema_errors.len()),
            ));
        }
        Ok(Recording { spec, trials, telemetry })
    }
}

fn parse_trial(item: &JsonValue, index: usize) -> Result<TrialRecord, RecordingError> {
    let path = format!("trials[{index}]");
    let outcome_json = get(item, "outcome", &format!("{path}.outcome"))?;
    let outcome = AttackOutcome {
        secret_read: get_bool(outcome_json, "secret_read", &format!("{path}.outcome.secret_read"))?,
        secret_overwritten: get_bool(
            outcome_json,
            "secret_overwritten",
            &format!("{path}.outcome.secret_overwritten"),
        )?,
        self_reference_found: get_bool(
            outcome_json,
            "self_reference_found",
            &format!("{path}.outcome.self_reference_found"),
        )?,
        rows_hammered: get_u64(outcome_json, "rows_hammered", &format!("{path}.outcome.rows"))?,
        flips_induced: get_u64(outcome_json, "flips_induced", &format!("{path}.outcome.flips"))?,
        mappings_created: get_u64(
            outcome_json,
            "mappings_created",
            &format!("{path}.outcome.mappings"),
        )?,
        sim_time_ns: get_u64(outcome_json, "sim_time_ns", &format!("{path}.outcome.sim_time_ns"))?,
        log: {
            let log_json = get(outcome_json, "log", &format!("{path}.outcome.log"))?;
            let JsonValue::Array(lines) = log_json else {
                return Err(malformed(format!("{path}.outcome.log"), "must be an array"));
            };
            let mut log = Vec::with_capacity(lines.len());
            for (j, line) in lines.iter().enumerate() {
                let JsonValue::String(s) = line else {
                    return Err(malformed(format!("{path}.outcome.log[{j}]"), "must be a string"));
                };
                log.push(s.clone());
            }
            log
        },
    };

    let flips_json = get(item, "flips", &format!("{path}.flips"))?;
    let JsonValue::Array(flip_items) = flips_json else {
        return Err(malformed(format!("{path}.flips"), "must be an array"));
    };
    let mut flips = Vec::with_capacity(flip_items.len());
    for (j, flip) in flip_items.iter().enumerate() {
        let fp = format!("{path}.flips[{j}]");
        let JsonValue::Array(fields) = flip else {
            return Err(malformed(fp, "must be a [row, bit, direction, time_ns] array"));
        };
        if fields.len() != 4 {
            return Err(malformed(fp, "must have exactly 4 elements"));
        }
        let direction = match as_u64(&fields[2], &format!("{fp}[2]"))? {
            0 => FlipDirection::OneToZero,
            1 => FlipDirection::ZeroToOne,
            other => {
                return Err(malformed(
                    format!("{fp}[2]"),
                    format!("direction must be 0 or 1, got {other}"),
                ))
            }
        };
        flips.push(FlipEvent {
            row: RowId(as_u64(&fields[0], &format!("{fp}[0]"))?),
            bit: as_u64(&fields[1], &format!("{fp}[1]"))?,
            direction,
            time_ns: as_u64(&fields[3], &format!("{fp}[3]"))?,
        });
    }

    let hash_str = get_str(item, "contents_hash", &format!("{path}.contents_hash"))?;
    let contents_hash = parse_hex_u64(&hash_str).ok_or_else(|| {
        malformed(format!("{path}.contents_hash"), "must be an 0x-prefixed hex u64")
    })?;

    Ok(TrialRecord {
        seed: get_u64(item, "seed", &format!("{path}.seed"))?,
        outcome,
        flips,
        contents_hash,
        end_ns: get_u64(item, "end_ns", &format!("{path}.end_ns"))?,
    })
}

fn parse_hex_u64(s: &str) -> Option<u64> {
    let digits = s.strip_prefix("0x")?;
    if digits.is_empty() || digits.len() > 16 {
        return None;
    }
    u64::from_str_radix(digits, 16).ok()
}

fn malformed(path: impl Into<String>, message: impl Into<String>) -> RecordingError {
    RecordingError::Malformed { path: path.into(), message: message.into() }
}

fn get<'a>(doc: &'a JsonValue, key: &str, path: &str) -> Result<&'a JsonValue, RecordingError> {
    doc.get(key).ok_or_else(|| malformed(path, "missing"))
}

fn get_u64(doc: &JsonValue, key: &str, path: &str) -> Result<u64, RecordingError> {
    as_u64(get(doc, key, path)?, path)
}

fn as_u64(v: &JsonValue, path: &str) -> Result<u64, RecordingError> {
    match v.as_f64() {
        Some(n) if n >= 0.0 && n.fract() == 0.0 && n <= (1u64 << 53) as f64 => Ok(n as u64),
        _ => Err(malformed(path, "must be a non-negative integral number")),
    }
}

fn get_f64(doc: &JsonValue, key: &str, path: &str) -> Result<f64, RecordingError> {
    get(doc, key, path)?.as_f64().ok_or_else(|| malformed(path, "must be a number"))
}

fn get_bool(doc: &JsonValue, key: &str, path: &str) -> Result<bool, RecordingError> {
    match get(doc, key, path)? {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err(malformed(path, "must be a boolean")),
    }
}

fn get_str(doc: &JsonValue, key: &str, path: &str) -> Result<String, RecordingError> {
    match get(doc, key, path)? {
        JsonValue::String(s) => Ok(s.clone()),
        _ => Err(malformed(path, "must be a string")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn hex_round_trip() {
        for v in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let s = format!("{v:#018x}");
            assert_eq!(parse_hex_u64(&s), Some(v), "{s}");
        }
        assert_eq!(parse_hex_u64("0x"), None);
        assert_eq!(parse_hex_u64("ff"), None);
        assert_eq!(parse_hex_u64("0x00000000000000000"), None, "17 digits");
    }

    #[test]
    fn unrepresentable_counters_are_rejected_at_serialize_time() {
        assert!(num("x", 1 << 53).is_ok());
        assert!(matches!(
            num("x", (1 << 53) + 1),
            Err(RecordingError::Unrepresentable { what: "x", .. })
        ));
    }

    #[test]
    fn replay_target_grid_is_the_full_cross_product() {
        let all = ReplayTarget::all();
        assert_eq!(all.len(), 6);
        let unique: std::collections::HashSet<String> = all.iter().map(|t| t.to_string()).collect();
        assert_eq!(unique.len(), 6, "{unique:?}");
        assert!(unique.contains("sparse/scalar") && unique.contains("cow/wordwise"));
    }

    #[test]
    fn error_display_names_the_failure() {
        let e = RecordingError::LossyFlipLog { seed: 7, dropped: 12, retained: 4 };
        let msg = e.to_string();
        assert!(msg.contains("seed=7") && msg.contains("12"), "{msg}");
        assert!(RecordingError::RetentionDisabled.to_string().contains("flip_log_capacity"));
    }
}
