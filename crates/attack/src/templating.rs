//! Deterministic RowHammer via memory templating (Drammer-style).
//!
//! Instead of spraying and praying, the attacker first **templates** its own
//! memory — hammering rows it owns and recording exactly which bits flip in
//! which direction — then **massages** physical memory so a *page table*
//! lands on a frame with a known, exploitable flip, and finally hammers
//! once, deterministically corrupting a chosen PTE into a self-map of its
//! own page table.
//!
//! The massage relies on two allocator behaviors the attacker can observe
//! or assume (both hold for the Linux buddy allocator and for ours):
//! contiguous allocation of a fresh arena, and lowest-address-first reuse
//! of freed frames.
//!
//! Under CTA the massage step is impossible: page tables are served from
//! `ZONE_PTP`, which the attacker can neither template (no access above the
//! low water mark) nor steer allocations into — so the templated frame is
//! never repopulated with a page table and the final hammer hits plain
//! data. This is the property that defeats Drammer (section 4,
//! Property (1)).

use cta_mem::{Pfn, PtLevel, PAGE_SIZE};
use cta_vm::{Access, Kernel, Pid, Pte, PteFlags, VirtAddr, VmError};

use crate::hammer::HammerDriver;
use crate::outcome::AttackOutcome;

const ARENA_VA: u64 = 0x4000_0000;

/// A templated flip the attacker recorded in its own memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Template {
    /// Arena page index of the victim page.
    pub page: u64,
    /// Would-be PTE slot within the page (bit / 64).
    pub entry: u64,
    /// Bit position within the 64-bit word.
    pub bit_in_word: u32,
    /// The flip sets the bit (`0→1`).
    pub sets_bit: bool,
}

/// Configuration of the templating attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemplatingAttack {
    /// Arena size in pages (templated region; must fit one 2 MiB slot).
    pub arena_pages: u64,
    /// Maximum templates to try before giving up.
    pub max_attempts: usize,
    /// Flush the TLB and paging-structure caches before every probe
    /// (each virtual access and each hammer pass), the way Algorithm 1
    /// interleaves accesses with `invlpg`. Forces every translation to
    /// walk live DRAM, making the attack's DRAM traffic independent of
    /// the machine's translation-cache configuration.
    pub flush_per_probe: bool,
}

impl Default for TemplatingAttack {
    fn default() -> Self {
        TemplatingAttack { arena_pages: 192, max_attempts: 12, flush_per_probe: false }
    }
}

impl TemplatingAttack {
    /// Invalidates all translation caches before a probe when
    /// `flush_per_probe` is set, so the next access walks from CR3.
    fn probe_sync(&self, kernel: &mut Kernel) {
        if self.flush_per_probe {
            kernel.flush_tlb();
        }
    }

    /// Runs the attack as a fresh unprivileged process.
    ///
    /// # Errors
    ///
    /// Infrastructure errors only; attack-level failure is reported in the
    /// outcome.
    pub fn run(&self, kernel: &mut Kernel) -> Result<AttackOutcome, VmError> {
        let mut out = AttackOutcome::default();
        let t0 = kernel.now_ns();
        let flips0 = kernel.dram().stats().total_flips();
        let pid = kernel.create_process(false)?;
        let arena = VirtAddr(ARENA_VA);
        kernel.mmap_anonymous(pid, arena, self.arena_pages * PAGE_SIZE, true)?;
        out.mappings_created = self.arena_pages;

        // --- Phase 1: template -----------------------------------------------
        let templates = self.template(kernel, pid, arena, &mut out)?;
        out.note(format!("templating found {} usable flips", templates.len()));
        if templates.is_empty() {
            // The templating phase itself hammered: account for its flips
            // even on the give-up path, or campaign totals drift from the
            // module's flip log (caught by `verify_flip_accounting`).
            out.flips_induced = kernel.dram().stats().total_flips() - flips0;
            out.sim_time_ns = kernel.now_ns() - t0;
            return Ok(out);
        }

        // --- Phases 2–4 per template: massage, hammer, exploit ---------------
        let mut region_seq = 0u64;
        let mut consumed: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut tried_pages: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut attempts = 0usize;
        for template in templates {
            if attempts >= self.max_attempts {
                break;
            }
            if !tried_pages.insert(template.page) {
                continue; // one attempt per victim page
            }
            attempts += 1;
            match self.attempt(
                kernel,
                pid,
                arena,
                template,
                &mut region_seq,
                &mut consumed,
                &mut out,
            ) {
                Ok(true) => break,
                Ok(false) => continue,
                Err(_) => continue,
            }
        }
        out.flips_induced = kernel.dram().stats().total_flips() - flips0;
        out.sim_time_ns = kernel.now_ns() - t0;
        Ok(out)
    }

    /// Hammers the arena and records `0→1` flips usable for a PTE attack.
    fn template(
        &self,
        kernel: &mut Kernel,
        pid: Pid,
        arena: VirtAddr,
        out: &mut AttackOutcome,
    ) -> Result<Vec<Template>, VmError> {
        let driver = HammerDriver::new();
        let mut templates = Vec::new();
        let zeros = vec![0u8; PAGE_SIZE as usize];
        for v in 2..self.arena_pages - 2 {
            let victim = arena.offset(v * PAGE_SIZE);
            // Probe the 0→1 direction: zero the page, double-sided hammer,
            // read back set bits. Earlier hammering may have corrupted our
            // own mappings (cleared W/P bits) — skip such pages, as a real
            // templating tool does.
            self.probe_sync(kernel);
            if kernel.write_virt(pid, victim, &zeros, Access::user_write()).is_err() {
                continue;
            }
            // Fresh refresh window so earlier hammering does not bleed in.
            let interval = kernel.dram().config().refresh_interval_ns;
            kernel.dram_mut().advance(interval);
            self.probe_sync(kernel);
            if driver.hammer_row_of(kernel, pid, arena.offset((v - 1) * PAGE_SIZE)).is_err()
                || driver.hammer_row_of(kernel, pid, arena.offset((v + 1) * PAGE_SIZE)).is_err()
            {
                continue;
            }
            out.rows_hammered += 2;
            let mut buf = vec![0u8; PAGE_SIZE as usize];
            self.probe_sync(kernel);
            if kernel.read_virt(pid, victim, &mut buf, Access::user_read()).is_err() {
                continue;
            }
            for (byte_idx, byte) in buf.iter().enumerate() {
                if *byte == 0 {
                    continue;
                }
                for bit in 0..8u32 {
                    if byte >> bit & 1 == 1 {
                        let bitpos = byte_idx as u64 * 8 + bit as u64;
                        let entry = bitpos / 64;
                        let bit_in_word = (bitpos % 64) as u32;
                        templates.push(Template { page: v, entry, bit_in_word, sets_bit: true });
                    }
                }
            }
        }
        // Keep only templates a PTE attack can use: the flip must hit the
        // frame field, the entry slot must leave room for lower file pages,
        // and the implied donor page w = v − 2^k must exist in the arena.
        templates.retain(|t| {
            if !(12..=51).contains(&t.bit_in_word) || t.entry == 0 || t.entry > 400 {
                return false;
            }
            let k = t.bit_in_word - 12;
            // k = 0 would free *adjacent* frames (donor next to victim),
            // which the buddy allocator coalesces into a larger block and
            // re-splits in a different order, breaking the massage. The
            // real Drammer has the same constraint in disguise (it works in
            // contiguous chunks); we simply skip bit-12 templates.
            if k == 0 || k >= 7 {
                return false;
            }
            let span = 1u64 << k;
            // Enough non-adjacent filler pages must exist below the donor.
            t.page > span + 2 && t.entry < (t.page - span) / 2
        });
        Ok(templates)
    }

    /// One massage + hammer + exploit attempt for a specific template.
    #[allow(clippy::too_many_arguments)]
    fn attempt(
        &self,
        kernel: &mut Kernel,
        pid: Pid,
        arena: VirtAddr,
        template: Template,
        region_seq: &mut u64,
        consumed: &mut std::collections::HashSet<u64>,
        out: &mut AttackOutcome,
    ) -> Result<bool, VmError> {
        let k = template.bit_in_word - 12;
        let v = template.page;
        let w = v - (1u64 << k); // donor page whose frame the PTE will hold
        let e = template.entry;
        let file_pages = e + 1;

        if consumed.contains(&v) || consumed.contains(&w) || consumed.contains(&(v + 1)) {
            out.note(format!("template page {v}: pages consumed by earlier attempt"));
            return Ok(false);
        }

        // Free exactly e pages below w, then w, then v — lowest-first reuse
        // places file page `e` on w's frame and the page table on v's frame.
        // Fillers are spaced two pages apart so no two freed frames are
        // buddies: coalescing would reorder the buddy allocator's reuse.
        let mut to_free: Vec<u64> = Vec::new();
        let mut idx = 1u64;
        while (to_free.len() as u64) < e && idx + 1 < w {
            // Keep v's upper aggressor mapped in the arena; the lower one
            // is either kept or re-owned through the file mapping below.
            if idx != v - 1 && idx != v + 1 && !consumed.contains(&idx) {
                to_free.push(idx);
            }
            idx += 2;
        }
        if (to_free.len() as u64) < e {
            out.note(format!("template page {v}: not enough donor pages below {w}"));
            return Ok(false);
        }
        to_free.push(w);
        to_free.push(v);
        for page in &to_free {
            kernel.munmap(pid, arena.offset(page * PAGE_SIZE), PAGE_SIZE)?;
            consumed.insert(*page);
        }

        // Massage: the new file takes the freed low frames (file page e on
        // w), and the fresh region's page table lands on v.
        let file = kernel.create_file(file_pages * PAGE_SIZE)?;
        *region_seq += 1;
        let region = VirtAddr(ARENA_VA + *region_seq * (2 << 20));
        kernel.mmap_file(pid, region, file, true)?;
        out.mappings_created += file_pages;

        // Hammer v's row from both neighbors. When k = 0 the donor page w
        // is the lower aggressor itself — re-owned via the file mapping.
        let lower_aggressor = if w == v - 1 {
            region.offset(e * PAGE_SIZE)
        } else {
            arena.offset((v - 1) * PAGE_SIZE)
        };
        let driver = HammerDriver::new();
        let interval = kernel.dram().config().refresh_interval_ns;
        kernel.dram_mut().advance(interval);
        self.probe_sync(kernel);
        if driver.hammer_row_of(kernel, pid, lower_aggressor).is_err()
            || driver.hammer_row_of(kernel, pid, arena.offset((v + 1) * PAGE_SIZE)).is_err()
        {
            out.note(format!("template page {v}: aggressors unavailable"));
            return Ok(false);
        }
        out.rows_hammered += 2;

        // Detect: region page e should now read as a page table (self-map).
        let window = region.offset(e * PAGE_SIZE);
        let mut buf = vec![0u8; PAGE_SIZE as usize];
        self.probe_sync(kernel);
        if kernel.read_virt(pid, window, &mut buf, Access::user_read()).is_err() {
            return Ok(false);
        }
        let max_pfn = kernel.dram().capacity_bytes() / PAGE_SIZE;
        let pte_like = buf
            .chunks_exact(8)
            .map(|c| Pte(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .filter(|p| p.looks_like_user_pte(max_pfn))
            .count();
        if pte_like < 2 {
            out.note(format!(
                "template page {v}: flip did not fire (window still reads file data)"
            ));
            return Ok(false);
        }
        out.self_reference_found = true;
        out.note(format!(
            "template (page {v}, entry {e}, bit {}) produced a PTE self-map",
            template.bit_in_word
        ));

        // Exploit through the self-map: entry p of the table selects region
        // page p, so the attacker has an arbitrary-phys window immediately.
        let probe_entry = if e == 0 { 1u64 } else { 0 };
        let probe_va = region.offset(probe_entry * PAGE_SIZE);
        let (_, secret) = kernel.kernel_secret();
        for f in 0..max_pfn {
            let crafted = Pte::new(Pfn(f), PteFlags::user_data());
            self.probe_sync(kernel);
            if kernel
                .write_virt(
                    pid,
                    window.offset(probe_entry * 8),
                    &crafted.0.to_le_bytes(),
                    Access::user_write(),
                )
                .is_err()
            {
                return Ok(false);
            }
            kernel.flush_tlb();
            let mut probe = [0u8; 16];
            if kernel.read_virt(pid, probe_va, &mut probe, Access::user_read()).is_err() {
                continue;
            }
            if probe == secret {
                out.secret_read = true;
                out.note(format!("kernel secret read via templated self-map (frame {f})"));
                self.probe_sync(kernel);
                if kernel
                    .write_virt(pid, probe_va, b"PWNED-BY-TMPLT!!", Access::user_write())
                    .is_ok()
                {
                    out.secret_overwritten = true;
                }
                return Ok(true);
            }
        }
        Ok(false)
    }
}

// `PtLevel` is referenced in documentation comments above.
#[allow(unused_imports)]
use PtLevel as _PtLevelDocOnly;

#[cfg(test)]
mod tests {
    use super::*;
    use cta_core::verify::verify_system;
    use cta_core::SystemBuilder;
    use cta_dram::DisturbanceParams;

    fn builder(seed: u64, protected: bool) -> SystemBuilder {
        SystemBuilder::new(8 << 20)
            .ptp_bytes(512 * 1024)
            .seed(seed)
            .protected(protected)
            .disturbance(DisturbanceParams { pf: 0.004, ..DisturbanceParams::default() })
    }

    #[test]
    fn templating_succeeds_deterministically_on_stock_kernel() {
        let attack = TemplatingAttack::default();
        let mut successes = 0;
        for seed in 0..6u64 {
            let mut k = builder(seed, false).build().unwrap();
            let out = attack.run(&mut k).unwrap();
            if out.success() {
                successes += 1;
                assert!(out.self_reference_found);
                let report = verify_system(&k).unwrap();
                assert!(!report.is_clean());
            }
        }
        assert!(successes >= 1, "templating should succeed on some module");
    }

    #[test]
    fn templating_is_reproducible_for_a_fixed_module() {
        // Determinism claim: same module seed ⇒ same outcome.
        let attack = TemplatingAttack::default();
        let out1 = attack.run(&mut builder(1, false).build().unwrap()).unwrap();
        let out2 = attack.run(&mut builder(1, false).build().unwrap()).unwrap();
        assert_eq!(out1.success(), out2.success());
        assert_eq!(out1.self_reference_found, out2.self_reference_found);
    }

    #[test]
    fn templating_always_fails_under_cta() {
        let attack = TemplatingAttack::default();
        for seed in 0..6u64 {
            let mut k = builder(seed, true).build().unwrap();
            let out = attack.run(&mut k).unwrap();
            assert!(!out.success(), "seed {seed}: CTA breached:\n{out}");
            assert_eq!(verify_system(&k).unwrap().self_references().count(), 0);
        }
    }

    #[test]
    fn templating_under_cta_fails_at_placement_not_by_luck() {
        // Even when templates exist, no page table can land on a templated
        // (below-mark) frame: all PT pages stay above the mark.
        let mut k = builder(0, true).build().unwrap();
        let _ = TemplatingAttack::default().run(&mut k).unwrap();
        let mark = k.ptp_layout().unwrap().low_water_mark();
        for pid in k.pids() {
            for (pfn, _) in k.process(pid).unwrap().pt_pages() {
                assert!(pfn.addr().0 >= mark);
            }
        }
    }
}
