//! Algorithm 1: the brute-force RowHammer attack against a CTA system.
//!
//! With CTA in place the attacker cannot hammer `ZONE_PTP` rows directly
//! (it owns no memory above the low water mark). Algorithm 1's insight is
//! that the **MMU's own page-table walks** activate the PTE rows: by
//! mapping a file at many addresses (filling `ZONE_PTP` with page tables)
//! and then accessing those addresses in a TLB-flush loop, the attacker
//! turns the walker into its aggressor-row driver — then scans its own
//! mappings for self-reference, one candidate target page at a time,
//! brute-forcing the whole physical address space below the mark.
//!
//! Section 5 shows the expected time for this attack is measured in
//! *days to years*; [`BruteForceCtaAttack`] runs a budgeted number of
//! iterations faithfully and extrapolates total cost with
//! [`AttackTimeModel`], regenerating the paper's numbers from the observed
//! per-step structure.

use cta_mem::{PtLevel, PAGE_SIZE};
use cta_vm::{Access, Kernel, Pte, VirtAddr, VmError};

use crate::hammer::HammerDriver;
use crate::outcome::{AttackOutcome, AttackTimeModel};

const VA_BASE: u64 = 0x7000_0000;

/// Per-run accounting that feeds the attack-time extrapolation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BruteForceReport {
    /// Target pages actually attempted (the paper loops over *all* pages
    /// below the mark; we budget).
    pub target_pages_tried: u64,
    /// Page-table rows hammered via walk loops.
    pub rows_hammered: u64,
    /// PTEs checked for self-reference.
    pub ptes_checked: u64,
    /// Mappings created to fill `ZONE_PTP`.
    pub fill_mappings: u64,
    /// Regions whose scan faulted because hammering corrupted a
    /// page-table entry on their own walk path (in a real system the
    /// process crashes here — a failed, *detected* attack, not an
    /// escalation).
    pub faulted_regions: u64,
}

impl BruteForceReport {
    /// Projects the full-attack worst-case duration in days using `model`
    /// and the machine's real dimensions.
    pub fn projected_worst_case_days(
        &self,
        model: &AttackTimeModel,
        target_pages_total: u64,
        zone_rows: u64,
        ptes_per_row: u64,
    ) -> f64 {
        model.worst_case_ns(target_pages_total, zone_rows, ptes_per_row) as f64 / 1e9 / 86_400.0
    }
}

/// The Algorithm 1 driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BruteForceCtaAttack {
    /// How many 2 MiB regions to map when filling `ZONE_PTP` with PTEs.
    pub fill_regions: u64,
    /// Walks per hammered mapping (should exceed the hammer threshold to
    /// disturb; the simulated threshold is configurable).
    pub walks_per_row: u64,
    /// Target-page iterations to actually execute.
    pub target_page_budget: u64,
}

impl Default for BruteForceCtaAttack {
    fn default() -> Self {
        BruteForceCtaAttack { fill_regions: 24, walks_per_row: 256, target_page_budget: 2 }
    }
}

impl BruteForceCtaAttack {
    /// Runs the budgeted attack, returning the outcome and the accounting
    /// report.
    ///
    /// # Errors
    ///
    /// Infrastructure errors only.
    pub fn run(&self, kernel: &mut Kernel) -> Result<(AttackOutcome, BruteForceReport), VmError> {
        let mut out = AttackOutcome::default();
        let mut report = BruteForceReport::default();
        let t0 = kernel.now_ns();
        let flips0 = kernel.dram().stats().total_flips();
        let pid = kernel.create_process(false)?;
        let max_pfn = kernel.dram().capacity_bytes() / PAGE_SIZE;

        for target in 0..self.target_page_budget {
            // Step (1): fill ZONE_PTP with PTEs. Each fresh 2 MiB region
            // forces a new last-level page table; under CTA they all land in
            // ZONE_PTP.
            let file = kernel.create_file(PAGE_SIZE)?;
            let mut region_vas = Vec::new();
            for i in 0..self.fill_regions {
                let va = VirtAddr(VA_BASE + target * self.fill_regions * (2 << 20) + i * (2 << 20));
                match kernel.mmap_file(pid, va, file, true) {
                    Ok(()) => {
                        region_vas.push(va);
                        report.fill_mappings += 1;
                    }
                    Err(VmError::Alloc(_)) => break, // ZONE_PTP exhausted
                    Err(e) => return Err(e),
                }
            }
            report.target_pages_tried += 1;
            out.mappings_created += region_vas.len() as u64;

            // Step (2): hammer each PT row through walk loops.
            let driver = HammerDriver::new();
            for va in &region_vas {
                let interval = kernel.dram().config().refresh_interval_ns;
                kernel.dram_mut().advance(interval);
                driver.hammer_by_walks(kernel, pid, *va, self.walks_per_row)?;
                report.rows_hammered += 1;
                out.rows_hammered += 1;
            }

            // Step (3): check all PTEs for self-reference by reading each
            // mapping and pattern-matching (the 600 ns/PTE memcmp of §5).
            for va in &region_vas {
                let mut buf = vec![0u8; PAGE_SIZE as usize];
                if kernel.read_virt(pid, *va, &mut buf, Access::user_read()).is_err() {
                    report.faulted_regions += 1;
                    continue;
                }
                let pte_like = buf
                    .chunks_exact(8)
                    .map(|c| Pte(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
                    .inspect(|_| report.ptes_checked += 1)
                    .filter(|p| p.looks_like_user_pte(max_pfn))
                    .count();
                if pte_like >= 2 {
                    out.self_reference_found = true;
                    out.note(format!("self-reference candidate at {va} (target {target})"));
                }
            }

            // Release the fill so the next target page can be re-sprayed.
            for va in &region_vas {
                let _ = kernel.munmap(pid, *va, PAGE_SIZE);
            }
        }

        out.flips_induced = kernel.dram().stats().total_flips() - flips0;
        out.sim_time_ns = kernel.now_ns() - t0;
        out.note(format!(
            "budgeted run: {} targets, {} rows hammered, {} PTEs checked",
            report.target_pages_tried, report.rows_hammered, report.ptes_checked
        ));
        Ok((out, report))
    }
}

// `PtLevel` appears in doc comments only.
#[allow(unused_imports)]
use PtLevel as _DocOnly;

#[cfg(test)]
mod tests {
    use super::*;
    use cta_core::verify::verify_system;
    use cta_core::SystemBuilder;
    use cta_dram::DisturbanceParams;

    fn cta_system(seed: u64) -> cta_vm::Kernel {
        SystemBuilder::new(8 << 20)
            .ptp_bytes(512 * 1024)
            .seed(seed)
            .protected(true)
            .disturbance(DisturbanceParams {
                pf: 0.02,
                hammer_threshold: 128, // walk loops can reach this in-test
                ..DisturbanceParams::default()
            })
            .build()
            .unwrap()
    }

    #[test]
    fn algorithm1_never_escalates_under_cta() {
        for seed in 0..4u64 {
            let mut k = cta_system(seed);
            let (out, report) = BruteForceCtaAttack::default().run(&mut k).unwrap();
            assert!(!out.success(), "seed {seed}: {out}");
            assert!(report.target_pages_tried > 0);
            // Every scan either read PTE candidates or faulted because the
            // walker corrupted its own path (a crashed — still failed —
            // attack); both are non-escalation outcomes, and which one a
            // given seed produces depends on where the flips landed.
            assert!(
                report.ptes_checked > 0 || report.faulted_regions > 0,
                "seed {seed}: scan phase never engaged: {report:?}"
            );
            assert_eq!(verify_system(&k).unwrap().self_references().count(), 0);
        }
    }

    #[test]
    fn walk_hammering_does_disturb_ptp_rows() {
        // The attack's hammer mechanism works — flips do occur inside
        // ZONE_PTP — they are just monotonic and therefore harmless.
        let mut k = cta_system(7);
        let (out, _) =
            BruteForceCtaAttack { fill_regions: 16, walks_per_row: 512, target_page_budget: 1 }
                .run(&mut k)
                .unwrap();
        assert!(out.flips_induced > 0, "expected disturbance flips in PT rows");
    }

    #[test]
    fn projection_reproduces_paper_scale() {
        let report = BruteForceReport {
            target_pages_tried: 2,
            rows_hammered: 32,
            ptes_checked: 16384,
            fill_mappings: 32,
            faulted_regions: 0,
        };
        // 8 GiB / 32 MiB PTP: 2^21−8192 targets, 256 rows, 16384 PTEs/row.
        let days = report.projected_worst_case_days(
            &AttackTimeModel::default(),
            (1 << 21) - 8192,
            256,
            16384,
        );
        assert!((days - 461.4).abs() < 5.0, "worst case ≈ 461 days, got {days}");
    }
}
